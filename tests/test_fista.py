"""Tests for the FISTA solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SolverError
from repro.optim.fista import minimize_fista
from repro.optim.projection import project_box, project_halfspace_box


def _quadratic(Q, q):
    def f(x):
        return 0.5 * float(x @ Q @ x) + float(q @ x)

    def g(x):
        return Q @ x + q

    return f, g


class TestFista:
    def test_unconstrained_quadratic(self):
        Q = np.diag([1.0, 4.0])
        q = np.array([-1.0, -8.0])
        f, g = _quadratic(Q, q)
        res = minimize_fista(f, g, lambda v: v, np.zeros(2), tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, [1.0, 2.0], atol=1e-5)

    def test_box_constrained(self):
        Q = np.eye(2)
        q = np.array([-5.0, -5.0])
        f, g = _quadratic(Q, q)
        res = minimize_fista(
            f, g, lambda v: project_box(v, 0.0, 1.0), np.zeros(2)
        )
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-6)

    def test_known_lipschitz_accepted(self):
        Q = 10.0 * np.eye(3)
        f, g = _quadratic(Q, -np.ones(3))
        res = minimize_fista(
            f, g, lambda v: project_box(v, 0.0, 1.0), np.zeros(3), lipschitz=10.0
        )
        np.testing.assert_allclose(res.x, 0.1, atol=1e-6)

    def test_nonfinite_start_raises(self):
        def f(x):
            return float("nan")

        with pytest.raises(SolverError):
            minimize_fista(f, lambda x: x, lambda v: v, np.zeros(1))

    def test_max_iter_reported(self):
        Q = np.eye(2)
        f, g = _quadratic(Q, np.zeros(2))
        res = minimize_fista(
            f, g, lambda v: v, np.ones(2) * 100, max_iter=1, tol=1e-16
        )
        assert not res.converged
        assert res.iterations == 1


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_fista_matches_slsqp_on_random_qps(seed: int):
    """Property: FISTA solves random box+halfspace QPs to SLSQP accuracy."""
    import scipy.optimize

    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    R = rng.normal(size=(n, n))
    Q = R @ R.T + 0.5 * np.eye(n)
    q = rng.normal(size=n)
    a = rng.uniform(0.1, 1.0, n)
    budget = float(rng.uniform(0.3, 2.0))

    def f(x):
        return 0.5 * float(x @ Q @ x) + float(q @ x)

    def g(x):
        return Q @ x + q

    res = minimize_fista(
        f, g, lambda v: project_halfspace_box(v, a, budget), np.zeros(n), tol=1e-10
    )
    ref = scipy.optimize.minimize(
        f,
        np.zeros(n),
        jac=g,
        bounds=[(0, 1)] * n,
        constraints=[{"type": "ineq", "fun": lambda y: budget - a @ y}],
        method="SLSQP",
    )
    assert res.objective <= ref.fun + 1e-5 * (1 + abs(ref.fun))
    # Feasibility.
    assert np.all(res.x >= -1e-9) and np.all(res.x <= 1 + 1e-9)
    assert a @ res.x <= budget + 1e-7

"""The public-API stability contract of :mod:`repro.api`.

``repro.api.__all__`` is the supported surface: removing or renaming a
name there is a breaking change and must update the snapshot below
*deliberately*. Internal module layout is free to move as long as the
facade keeps resolving.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.exceptions import ConfigurationError

#: The supported public surface. Additions append here; removals are
#: breaking changes. Keep sorted.
PUBLIC_API = [
    "AFHC",
    "BandwidthDegradation",
    "BaseStation",
    "BeladyVolume",
    "CHC",
    "CacheDegradation",
    "CachingPolicy",
    "ContentCatalog",
    "ConvergenceTrace",
    "CostBreakdown",
    "DemandMatrix",
    "DemandSurge",
    "DistributedOfflineOptimal",
    "EdgeMetrics",
    "FIFO",
    "FaultSchedule",
    "JointProblem",
    "LFU",
    "LRFU",
    "LRU",
    "LinearOperatingCost",
    "MUClass",
    "Network",
    "NoCache",
    "OfflineOptimal",
    "OnlineSolveSettings",
    "PerfectPredictor",
    "PerturbedPredictor",
    "PolicyPlan",
    "PolicyResilience",
    "PredictorBlackout",
    "PrimalDualResult",
    "QuadraticOperatingCost",
    "RHC",
    "Recorder",
    "ResilienceReport",
    "RunResult",
    "RuntimeConfig",
    "SWEEP_AXES",
    "SbsOutage",
    "Scenario",
    "SmallBaseStation",
    "SolveBudget",
    "SolveCache",
    "StageTimers",
    "StaticTopK",
    "SweepResult",
    "TraceEvent",
    "assert_feasible_under_faults",
    "bandwidth_sweep",
    "beta_sweep",
    "build_scenario",
    "compare_policies",
    "compute_edge_metrics",
    "cost_ratios",
    "current_recorder",
    "default_fault_schedule",
    "default_policies",
    "diurnal_demand",
    "evaluate_plan",
    "flash_crowd_demand",
    "headline_comparison",
    "inject_faults",
    "noise_sweep",
    "paper_demand",
    "paper_scenario",
    "read_trace",
    "record_into",
    "render_headline_table",
    "render_resilience_table",
    "render_sweep_table",
    "render_trace_dashboard",
    "replay_trace",
    "run_manifest",
    "run_policies",
    "run_policy",
    "run_resilience",
    "sample_poisson_trace",
    "single_cell_network",
    "single_outage_with_degradation",
    "solve_primal_dual",
    "sweep",
    "sweep_to_dict",
    "window_sweep",
    "write_manifest",
    "write_trace",
]


class TestPublicSurface:
    def test_all_matches_snapshot(self):
        assert sorted(api.__all__) == PUBLIC_API

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_star_import_is_clean(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)
        assert set(PUBLIC_API) <= set(namespace)


class TestFacadeFunctions:
    def test_build_scenario_is_paper_scenario(self):
        a = api.build_scenario(seed=3, horizon=4)
        b = api.paper_scenario(seed=3, horizon=4)
        assert a.horizon == b.horizon == 4
        assert (a.demand.rates == b.demand.rates).all()

    def test_compare_policies_defaults_and_keys(self):
        scenario = api.build_scenario(seed=1, horizon=4)
        results = api.compare_policies(
            scenario, [api.LRFU(), api.NoCache()]
        )
        assert set(results) == {"LRFU", "NoCache"}
        for result in results.values():
            assert result.cost.total > 0

    def test_compare_policies_deduplicates_names(self):
        scenario = api.build_scenario(seed=1, horizon=3)
        results = api.compare_policies(scenario, [api.LRFU(), api.LRFU()])
        assert set(results) == {"LRFU", "LRFU#2"}

    def test_sweep_dispatch(self):
        result = api.sweep(
            "noise", [0.0, 0.3], horizon=3, seeds=(1,), window=2
        )
        assert [p.value for p in result.points] == [0.0, 0.3]

    def test_sweep_window_axis_casts_to_int(self):
        result = api.sweep("window", [2.0, 3.0], horizon=3, seeds=(1,))
        assert [p.value for p in result.points] == [2, 3]

    def test_sweep_unknown_axis(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            api.sweep("zipf")

    def test_doctests(self):
        import doctest

        failures, _ = doctest.testmod(api)
        assert failures == 0

"""The public-API stability contract of :mod:`repro.api`.

``repro.api.__all__`` is the supported surface: removing or renaming a
name there is a breaking change and must update the snapshot below
*deliberately*. Internal module layout is free to move as long as the
facade keeps resolving.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.exceptions import ConfigurationError

#: The supported public surface. Additions append here; removals are
#: breaking changes. Keep sorted.
PUBLIC_API = [
    "AFHC",
    "BandwidthDegradation",
    "BaseStation",
    "BeladyVolume",
    "CHC",
    "CacheDegradation",
    "CachingPolicy",
    "ContentCatalog",
    "ConvergenceTrace",
    "CostBreakdown",
    "DEPRECATED_API",
    "Decision",
    "DemandMatrix",
    "DemandSurge",
    "Diagnosis",
    "DistributedOfflineOptimal",
    "EdgeMetrics",
    "FIFO",
    "FaultSchedule",
    "Finding",
    "HealthScoreStrategy",
    "JointProblem",
    "LFU",
    "LRFU",
    "LRU",
    "LeastConnectionsStrategy",
    "LinearOperatingCost",
    "MUClass",
    "MetricsServer",
    "Network",
    "NoCache",
    "OfflineOptimal",
    "OnlineSolveSettings",
    "OptimalYStrategy",
    "PerfectPredictor",
    "PerturbedPredictor",
    "PolicyPlan",
    "PolicyResilience",
    "PredictorBlackout",
    "PrimalDualResult",
    "QuadraticOperatingCost",
    "QuantileSketch",
    "RHC",
    "Recorder",
    "ReplayReport",
    "Request",
    "ResilienceReport",
    "RoundRobinStrategy",
    "RoutingStrategy",
    "RunResult",
    "RuntimeConfig",
    "SWEEP_AXES",
    "SbsOutage",
    "Scenario",
    "ServeReport",
    "SloSpec",
    "SloTracker",
    "SmallBaseStation",
    "SolveBudget",
    "SolveCache",
    "StageTimers",
    "StaticTopK",
    "SweepResult",
    "TraceEvent",
    "WindowedCounter",
    "analyze_trace",
    "assert_feasible_under_faults",
    "bandwidth_sweep",
    "beta_sweep",
    "build_scenario",
    "compare_policies",
    "compute_edge_metrics",
    "cost_ratios",
    "current_recorder",
    "decision_digest",
    "default_fault_schedule",
    "default_policies",
    "diurnal_demand",
    "evaluate_plan",
    "flash_crowd_demand",
    "headline_comparison",
    "inject_faults",
    "noise_sweep",
    "open_loop_requests",
    "paper_demand",
    "paper_scenario",
    "parse_slo_specs",
    "read_decision_log",
    "read_trace",
    "record_into",
    "render_diagnosis",
    "render_headline_table",
    "render_resilience_table",
    "render_serve_report",
    "render_sweep_table",
    "render_top_frame",
    "render_trace_dashboard",
    "replay_plan",
    "replay_trace",
    "requests_from_trace",
    "run_manifest",
    "run_policies",
    "run_policy",
    "run_resilience",
    "run_serve",
    "sample_poisson_trace",
    "serve_requests",
    "single_cell_network",
    "single_outage_with_degradation",
    "solve_primal_dual",
    "strategy_by_name",
    "sweep",
    "sweep_to_dict",
    "window_sweep",
    "write_decision_log",
    "write_manifest",
    "write_trace",
]


class TestPublicSurface:
    def test_all_matches_snapshot(self):
        assert sorted(api.__all__) == PUBLIC_API

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_star_import_is_clean(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)
        assert set(PUBLIC_API) <= set(namespace)


class TestFacadeFunctions:
    def test_build_scenario_is_paper_scenario(self):
        a = api.build_scenario(seed=3, horizon=4)
        b = api.paper_scenario(seed=3, horizon=4)
        assert a.horizon == b.horizon == 4
        assert (a.demand.rates == b.demand.rates).all()

    def test_compare_policies_defaults_and_keys(self):
        scenario = api.build_scenario(seed=1, horizon=4)
        results = api.compare_policies(
            scenario, [api.LRFU(), api.NoCache()]
        )
        assert set(results) == {"LRFU", "NoCache"}
        for result in results.values():
            assert result.cost.total > 0

    def test_compare_policies_deduplicates_names(self):
        scenario = api.build_scenario(seed=1, horizon=3)
        results = api.compare_policies(scenario, [api.LRFU(), api.LRFU()])
        assert set(results) == {"LRFU", "LRFU#2"}

    def test_sweep_dispatch(self):
        result = api.sweep(
            "noise", [0.0, 0.3], horizon=3, seeds=(1,), window=2
        )
        assert [p.value for p in result.points] == [0.0, 0.3]

    def test_sweep_window_axis_casts_to_int(self):
        result = api.sweep("window", [2.0, 3.0], horizon=3, seeds=(1,))
        assert [p.value for p in result.points] == [2, 3]

    def test_sweep_unknown_axis(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            api.sweep("zipf")

    def test_doctests(self):
        import doctest

        failures, _ = doctest.testmod(api)
        assert failures == 0


class TestDeprecatedEntryPoints:
    """Leaked internals superseded by the serve layer: warn-once shims."""

    @pytest.fixture(autouse=True)
    def _reset(self):
        api.reset_api_deprecations()
        yield
        api.reset_api_deprecations()

    def _replay_args(self):
        import numpy as np

        scenario = api.build_scenario(seed=1, horizon=2)
        trace = api.sample_poisson_trace(
            scenario.demand, rng=np.random.default_rng(0)
        )
        net = scenario.network
        x = np.zeros((2, net.num_sbs, net.num_items))
        y = np.zeros((2, net.num_classes, net.num_items))
        return scenario.network, trace, x, y

    def test_replay_trace_warns_once_and_delegates(self):
        args = self._replay_args()
        with pytest.warns(DeprecationWarning, match="replay_plan"):
            report = api.replay_trace(*args)
        assert report.total_requests == int(args[1].counts.sum())
        # second call: no further warning
        with warnings_catcher() as caught:
            api.replay_trace(*args)
        assert not [w for w in caught if w.category is DeprecationWarning]

    def test_replay_plan_is_supported_and_silent(self):
        args = self._replay_args()
        with warnings_catcher() as caught:
            report = api.replay_plan(*args)
        assert not [w for w in caught if w.category is DeprecationWarning]
        assert report.total_requests == int(args[1].counts.sum())

    def test_removal_window_documented(self):
        assert api.DEPRECATED_API == {"replay_trace": "v1.2"}


def warnings_catcher():
    import warnings

    ctx = warnings.catch_warnings(record=True)

    class _Catcher:
        def __enter__(self):
            caught = ctx.__enter__()
            warnings.simplefilter("always")
            return caught

        def __exit__(self, *exc):
            return ctx.__exit__(*exc)

    return _Catcher()

"""Tests for subproblem P1 (caching LP / min-cost flow, Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.caching_lp import (
    caching_objective,
    class_prices,
    solve_caching,
)
from repro.exceptions import ConfigurationError
from repro.network import ContentCatalog, MUClass, Network, SmallBaseStation
from repro.network.topology import single_cell_network


def _net(K=5, C=2, beta=2.0, M=3, rng=None):
    omega = rng.uniform(0, 1, M) if rng is not None else [0.5] * M
    return single_cell_network(
        num_items=K,
        cache_size=C,
        bandwidth=4.0,
        replacement_cost=beta,
        omega_bs=omega,
    )


class TestClassPrices:
    def test_aggregates_over_classes(self):
        net = _net(K=2, M=3)
        mu = np.ones((4, 3, 2))
        prices = class_prices(net, mu)
        assert prices.shape == (4, 1, 2)
        np.testing.assert_allclose(prices, 3.0)

    def test_multi_sbs_routing(self):
        net = Network(
            ContentCatalog(2),
            (SmallBaseStation(0, 1, 1.0, 1.0), SmallBaseStation(1, 1, 1.0, 1.0)),
            (MUClass(0, 0, 0.5), MUClass(1, 1, 0.5), MUClass(2, 1, 0.5)),
        )
        mu = np.ones((1, 3, 2))
        prices = class_prices(net, mu)
        np.testing.assert_allclose(prices[0, 0], 1.0)
        np.testing.assert_allclose(prices[0, 1], 2.0)


class TestSolveCaching:
    def test_zero_prices_empty_cache(self):
        net = _net(beta=1.0)
        mu = np.zeros((3, 3, 5))
        sol = solve_caching(net, mu, np.zeros((1, 5)))
        assert sol.x.sum() == 0.0
        assert sol.objective == pytest.approx(0.0)

    def test_high_price_caches_item(self):
        net = _net(K=3, C=1, beta=1.0, M=1)
        mu = np.zeros((2, 1, 3))
        mu[:, 0, 2] = 10.0
        sol = solve_caching(net, mu, np.zeros((1, 3)))
        np.testing.assert_allclose(sol.x[:, 0, 2], 1.0)
        # One fetch (beta=1), gain 2*10.
        assert sol.objective == pytest.approx(1.0 - 20.0)

    def test_respects_capacity(self):
        net = _net(K=4, C=2, beta=0.5, M=1)
        mu = np.full((3, 1, 4), 5.0)
        sol = solve_caching(net, mu, np.zeros((1, 4)))
        assert np.all(sol.x.sum(axis=2) <= 2)

    def test_initial_cache_fetch_free(self):
        net = _net(K=2, C=1, beta=100.0, M=1)
        mu = np.zeros((1, 1, 2))
        mu[0, 0, 0] = 1.0  # small gain, not worth a 100-cost fetch...
        x0 = np.array([[1.0, 0.0]])  # ...but item 0 is already cached.
        sol = solve_caching(net, mu, x0)
        assert sol.x[0, 0, 0] == 1.0
        assert sol.objective == pytest.approx(-1.0)

    def test_switching_cost_induces_persistence(self):
        """With beta large, the cache holds one item across a price dip."""
        net = _net(K=2, C=1, beta=3.0, M=1)
        mu = np.zeros((3, 1, 2))
        mu[0, 0, 0] = 4.0
        mu[1, 0, 1] = 4.5  # momentary better item, not worth 2 switches
        mu[2, 0, 0] = 4.0
        sol = solve_caching(net, mu, np.zeros((1, 2)))
        np.testing.assert_allclose(sol.x[:, 0, 0], 1.0)
        np.testing.assert_allclose(sol.x[:, 0, 1], 0.0)

    def test_switching_when_shift_is_persistent(self):
        net = _net(K=2, C=1, beta=1.0, M=1)
        mu = np.zeros((4, 1, 2))
        mu[:2, 0, 0] = 5.0
        mu[2:, 0, 1] = 5.0
        sol = solve_caching(net, mu, np.zeros((1, 2)))
        np.testing.assert_allclose(sol.x[:2, 0, 0], 1.0)
        np.testing.assert_allclose(sol.x[2:, 0, 1], 1.0)

    def test_zero_capacity(self):
        net = _net(K=3, C=0, M=1)
        mu = np.ones((2, 1, 3))
        sol = solve_caching(net, mu, np.zeros((1, 3)))
        assert sol.x.sum() == 0.0

    def test_rejects_negative_mu(self):
        net = _net()
        with pytest.raises(ConfigurationError):
            solve_caching(net, -np.ones((1, 3, 5)), np.zeros((1, 5)))

    def test_rejects_bad_shape(self):
        net = _net()
        with pytest.raises(ConfigurationError):
            solve_caching(net, np.ones((1, 2, 5)), np.zeros((1, 5)))

    def test_objective_matches_evaluator(self, rng):
        net = _net(K=4, C=2, beta=1.5, M=2, rng=rng)
        mu = rng.uniform(0, 3, (5, 2, 4))
        x0 = np.array([[1.0, 0.0, 1.0, 0.0]])
        sol = solve_caching(net, mu, x0)
        assert sol.objective == pytest.approx(
            caching_objective(net, sol.x, mu, x0)
        )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_flow_and_lp_backends_agree(seed: int):
    """Property: flow, HiGHS-LP, and own-simplex-LP find equal optima."""
    rng = np.random.default_rng(seed)
    K = int(rng.integers(2, 6))
    T = int(rng.integers(1, 5))
    M = int(rng.integers(1, 4))
    C = int(rng.integers(0, K + 1))
    beta = float(rng.uniform(0, 4))
    net = single_cell_network(
        num_items=K,
        cache_size=C,
        bandwidth=3.0,
        replacement_cost=beta,
        omega_bs=rng.uniform(0, 1, M),
    )
    mu = rng.uniform(0, 3, (T, M, K)) * (rng.random((T, M, K)) > 0.3)
    x0 = (rng.random((1, K)) > 0.5).astype(float)
    objs = {}
    for backend in ("flow", "lp", "lp-simplex"):
        sol = solve_caching(net, mu, x0, backend=backend)
        assert set(np.unique(sol.x)) <= {0.0, 1.0}  # Theorem 1: integral
        assert np.all(sol.x.sum(axis=2) <= C)
        objs[backend] = sol.objective
    vals = list(objs.values())
    assert max(vals) - min(vals) < 1e-6 * (1 + abs(vals[0]))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_flow_beats_all_static_caches(seed: int):
    """Property: the P1 optimum is at least as good as every static cache."""
    from itertools import combinations

    rng = np.random.default_rng(seed)
    K, T, C = 4, 3, 2
    net = single_cell_network(
        num_items=K, cache_size=C, bandwidth=3.0,
        replacement_cost=float(rng.uniform(0, 3)), omega_bs=[0.5],
    )
    mu = rng.uniform(0, 2, (T, 1, K))
    x0 = np.zeros((1, K))
    sol = solve_caching(net, mu, x0)
    for chosen in combinations(range(K), C):
        x_static = np.zeros((T, 1, K))
        x_static[:, 0, list(chosen)] = 1.0
        static_obj = caching_objective(net, x_static, mu, x0)
        assert sol.objective <= static_obj + 1e-9

"""Tests for the CHC rounding policy (Theorem 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rounding import (
    approximation_ratio,
    optimal_rounding_threshold,
    round_caching,
    round_load_balancing,
)
from repro.exceptions import ConfigurationError


class TestThreshold:
    def test_optimal_value(self):
        rho = optimal_rounding_threshold()
        assert rho == pytest.approx((3 - np.sqrt(5)) / 2)
        # The paper's balance point: 1/rho == 1/(1-rho)^2.
        assert 1 / rho == pytest.approx(1 / (1 - rho) ** 2)

    def test_paper_ratio_2_62(self):
        ratio = approximation_ratio(optimal_rounding_threshold())
        assert ratio == pytest.approx(2.618, abs=1e-3)

    def test_optimal_threshold_minimizes_ratio(self):
        rho_star = optimal_rounding_threshold()
        best = approximation_ratio(rho_star)
        for rho in np.linspace(0.05, 0.95, 50):
            assert approximation_ratio(float(rho)) >= best - 1e-9

    def test_sbs_cost_term_optional(self):
        rho = 0.5
        assert approximation_ratio(rho, include_sbs_cost=True) == pytest.approx(4.0)
        assert approximation_ratio(rho, include_sbs_cost=False) == pytest.approx(4.0)
        # At the paper's rho*, including the 1/rho^2 term changes the bound.
        rho = optimal_rounding_threshold()
        assert approximation_ratio(rho, include_sbs_cost=True) > approximation_ratio(rho)

    def test_rho_validation(self):
        with pytest.raises(ConfigurationError):
            approximation_ratio(0.0)
        with pytest.raises(ConfigurationError):
            approximation_ratio(1.0)


class TestRoundCaching:
    def test_thresholding(self):
        x = np.array([[[0.9, 0.4, 0.1, 0.0]]])
        out = round_caching(x, np.array([4]))
        np.testing.assert_allclose(out, [[[1.0, 1.0, 0.0, 0.0]]])

    def test_custom_rho(self):
        x = np.array([[[0.45, 0.35]]])
        out = round_caching(x, np.array([2]), rho=0.4)
        np.testing.assert_allclose(out, [[[1.0, 0.0]]])

    def test_capacity_repair_keeps_largest(self):
        x = np.array([[[0.9, 0.8, 0.5, 0.45]]])
        out = round_caching(x, np.array([2]))
        np.testing.assert_allclose(out, [[[1.0, 1.0, 0.0, 0.0]]])

    def test_feasible_input_unchanged_count(self):
        # All-integral input stays identical.
        x = np.array([[[1.0, 0.0, 1.0]]])
        out = round_caching(x, np.array([2]))
        np.testing.assert_allclose(out, x)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            round_caching(np.ones((2, 2)), np.array([1]))
        with pytest.raises(ConfigurationError):
            round_caching(np.full((1, 1, 2), 1.5), np.array([1]))
        with pytest.raises(ConfigurationError):
            round_caching(np.zeros((1, 1, 2)), np.array([1]), rho=2.0)


class TestRoundLoadBalancing:
    def test_zeroes_uncached(self):
        y = np.full((1, 2, 3), 0.6)
        x = np.zeros((1, 1, 3))
        x[0, 0, 1] = 1.0
        out = round_load_balancing(y, x, np.array([0, 0]))
        assert out[0, 0, 1] == pytest.approx(0.6)
        assert out[0, :, 0].sum() == 0.0
        assert out[0, :, 2].sum() == 0.0

    def test_clips_to_unit(self):
        y = np.full((1, 1, 1), 1.4)
        x = np.ones((1, 1, 1))
        out = round_load_balancing(y, x, np.array([0]))
        assert out[0, 0, 0] == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), rho=st.floats(0.05, 0.95))
def test_rounding_properties(seed: int, rho: float):
    """Properties: output is 0/1, within capacity, and monotone in x-bar."""
    rng = np.random.default_rng(seed)
    T, N, K = 3, 2, 6
    caps = rng.integers(1, K, size=N)
    x_frac = rng.uniform(0, 1, (T, N, K))
    # Make input capacity-consistent the way CHC averages are: scale down.
    for n in range(N):
        for t in range(T):
            total = x_frac[t, n].sum()
            if total > caps[n]:
                x_frac[t, n] *= caps[n] / total
    out = round_caching(x_frac, caps, rho=rho)
    assert set(np.unique(out)) <= {0.0, 1.0}
    assert np.all(out.sum(axis=2) <= caps[None, :])
    # Entries below threshold are never selected.
    assert np.all(out[x_frac < rho] == 0.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_rounding_replacement_bound(seed: int):
    """Theorem 3 (part 1): rounded replacement cost <= (1/rho) * fractional.

    The bound holds per consecutive pair when the rounded trajectory is the
    thresholded fractional one (no capacity repair triggered).
    """
    from repro.network.costs import replacement_cost
    from repro.network.topology import single_cell_network

    rng = np.random.default_rng(seed)
    K = 6
    net = single_cell_network(
        num_items=K, cache_size=K, bandwidth=1.0, replacement_cost=1.0,
        omega_bs=[0.5],
    )
    rho = optimal_rounding_threshold()
    x_frac = rng.uniform(0, 1, (2, 1, K))
    rounded = round_caching(x_frac, np.array([K]), rho=rho)
    frac_cost = replacement_cost(net, x_frac[1], x_frac[0])
    round_cost = replacement_cost(net, rounded[1], rounded[0])
    # Insertions 0 -> 1 in the rounded trajectory required a fractional
    # climb of at least (rho - (rho - eps)) ... the theorem's statement
    # compares against the *fractional switching cost from zero*; we verify
    # the conservative global form with the fractional trajectory's
    # insertions measured from the rounded support.
    climbs = np.clip(x_frac[1] - x_frac[0], 0, None)
    inserted = (rounded[1] - rounded[0]) > 0.5
    # Every rounded insertion has x_frac[1] >= rho, so the per-item bound
    # x_frac-based cost >= rho holds whenever the item started at 0.
    started_zero = x_frac[0] < 1e-12
    per_item_ok = climbs[0][inserted[0] & started_zero[0]] >= rho - 1e-9
    assert np.all(per_item_ok)

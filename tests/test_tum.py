"""Tests for the total-unimodularity utilities (Theorem 1 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optim.tum import (
    ghouila_houri_check,
    is_interval_matrix,
    is_totally_unimodular,
)


class TestIsTotallyUnimodular:
    def test_identity_is_tu(self):
        assert is_totally_unimodular(np.eye(3))

    def test_paper_switching_matrix_is_tu(self):
        """The paper's D = [1, -1, 1] (Eq. 25) and its T-slot extension."""
        assert is_totally_unimodular(np.array([[1.0, -1.0, 1.0]]))
        # Two-slot extension: rows p_t - x_t + x_{t-1} >= 0 pattern.
        D2 = np.array(
            [
                [1.0, 0.0, -1.0, 0.0, 0.0],
                [0.0, 1.0, 1.0, -1.0, 0.0],
            ]
        )
        assert is_totally_unimodular(D2)

    def test_interval_capacity_block_is_tu(self):
        """Constraint (1)'s per-slot capacity rows form an interval matrix."""
        A = np.array([[1.0, 1.0, 0.0, 0.0], [0.0, 0.0, 1.0, 1.0]])
        assert is_interval_matrix(A)
        assert is_totally_unimodular(A)

    def test_known_non_tu_matrix(self):
        # Determinant 2 submatrix (odd cycle incidence).
        A = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]])
        assert not is_totally_unimodular(A)
        assert not ghouila_houri_check(A)

    def test_rejects_non_pm_one_entries(self):
        with pytest.raises(ConfigurationError):
            is_totally_unimodular(np.array([[2.0, 0.0]]))

    def test_max_order_short_circuit(self):
        A = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]])
        # Only checking 1x1 minors cannot detect the violation.
        assert is_totally_unimodular(A, max_order=1)


class TestIntervalMatrix:
    def test_contiguous_ones(self):
        assert is_interval_matrix(np.array([[1.0], [1.0], [0.0]]))
        assert is_interval_matrix(np.array([[0.0], [1.0], [1.0]]))

    def test_gap_detected(self):
        assert not is_interval_matrix(np.array([[1.0], [0.0], [1.0]]))

    def test_non_binary_rejected(self):
        assert not is_interval_matrix(np.array([[-1.0], [1.0]]))

    def test_requires_matrix(self):
        with pytest.raises(ConfigurationError):
            is_interval_matrix(np.ones(3))


class TestGhouilaHouri:
    def test_agrees_with_determinant_check_on_small_matrices(self):
        rng = np.random.default_rng(5)
        for _ in range(25):
            A = rng.choice([-1.0, 0.0, 1.0], size=(3, 3), p=[0.2, 0.5, 0.3])
            assert ghouila_houri_check(A) == is_totally_unimodular(A)


def test_caching_lp_constraint_matrix_is_tu():
    """Theorem 1: the full P1 constraint matrix (capacity + switching) is TU.

    Built for a small instance (T=2, K=2) over variables
    ``(x_11, x_12, x_21, x_22, p_11, p_12, p_21, p_22)``.
    """
    cap = np.array(
        [
            [1, 1, 0, 0, 0, 0, 0, 0],
            [0, 0, 1, 1, 0, 0, 0, 0],
        ],
        dtype=float,
    )
    switch = np.array(
        [
            [1, 0, 0, 0, -1, 0, 0, 0],
            [0, 1, 0, 0, 0, -1, 0, 0],
            [-1, 0, 1, 0, 0, 0, -1, 0],
            [0, -1, 0, 1, 0, 0, 0, -1],
        ],
        dtype=float,
    )
    A = np.vstack([cap, switch])
    assert is_totally_unimodular(A, max_order=4)

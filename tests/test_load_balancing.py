"""Tests for subproblem P2 and the fixed-cache load-balancing oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.load_balancing import (
    _solve_p2_fista,
    p2_objective,
    solve_p2,
    solve_y_given_x,
)
from repro.core.problem import JointProblem
from repro.exceptions import DimensionMismatchError
from repro.network.costs import LinearOperatingCost
from repro.network.topology import single_cell_network
from repro.workload.demand import paper_demand


def _problem(rng, *, K=5, M=4, T=3, C=2, B=4.0, omega_hat=0.0, density=(0.0, 3.0)):
    net = single_cell_network(
        num_items=K,
        cache_size=C,
        bandwidth=B,
        replacement_cost=1.0,
        omega_bs=rng.uniform(0.1, 1.0, M),
        omega_sbs=omega_hat,
    )
    demand = paper_demand(T, M, K, rng=rng, density_range=density)
    return JointProblem(net, demand.rates)


class TestSolveP2:
    def test_zero_mu_saturates_bandwidth(self, rng):
        """With no prices the solver offloads up to the bandwidth limit."""
        prob = _problem(rng, B=2.0, density=(1.0, 3.0))
        sol = solve_p2(prob, np.zeros(prob.y_shape))
        for t in range(prob.horizon):
            load = float((prob.demand[t] * sol.y[t]).sum())
            assert load <= 2.0 + 1e-6
            assert load == pytest.approx(2.0, rel=1e-3)  # demand >> bandwidth

    def test_huge_mu_shuts_offloading(self, rng):
        prob = _problem(rng)
        sol = solve_p2(prob, np.full(prob.y_shape, 1e9))
        assert sol.y.sum() == pytest.approx(0.0, abs=1e-6)

    def test_mu_shape_validated(self, rng):
        prob = _problem(rng)
        with pytest.raises(DimensionMismatchError):
            solve_p2(prob, np.zeros((1, 1, 1)))

    def test_objective_matches_evaluator(self, rng):
        prob = _problem(rng)
        mu = rng.uniform(0, 2, prob.y_shape)
        sol = solve_p2(prob, mu)
        assert sol.objective == pytest.approx(
            p2_objective(prob, sol.y, mu), rel=1e-6
        )

    def test_fast_path_matches_fista(self, rng):
        for _ in range(5):
            prob = _problem(rng, T=2)
            mu = rng.uniform(0, 4, prob.y_shape) * (rng.random(prob.y_shape) > 0.3)
            fast = solve_p2(prob, mu)
            slow = _solve_p2_fista(prob, mu, tol=1e-11, max_iter=8000)
            assert fast.objective == pytest.approx(
                slow.objective, rel=1e-4, abs=1e-6
            )

    def test_general_costs_use_fista(self, rng):
        prob = _problem(rng, omega_hat=0.05)
        mu = rng.uniform(0, 1, prob.y_shape)
        sol = solve_p2(prob, mu)
        # Feasibility under the general path.
        assert np.all(sol.y >= -1e-8) and np.all(sol.y <= 1 + 1e-8)
        for t in range(prob.horizon):
            assert (prob.demand[t] * sol.y[t]).sum() <= 4.0 + 1e-5


class TestSolveYGivenX:
    def test_respects_cache_mask(self, rng):
        prob = _problem(rng)
        x = np.zeros(prob.x_shape)
        x[:, 0, 1] = 1.0
        sol = solve_y_given_x(prob, x)
        mask = np.ones(prob.y_shape, dtype=bool)
        mask[:, :, 1] = False
        assert sol.y[mask].sum() == pytest.approx(0.0, abs=1e-9)

    def test_empty_cache_zero_offload(self, rng):
        prob = _problem(rng)
        sol = solve_y_given_x(prob, np.zeros(prob.x_shape))
        assert sol.y.sum() == 0.0

    def test_full_cache_saturates_or_serves_all(self, rng):
        prob = _problem(rng, C=5, B=1000.0)
        x = np.ones(prob.x_shape)
        sol = solve_y_given_x(prob, x)
        # Bandwidth ample: everything with positive omega served locally.
        demanded = prob.demand > 0
        np.testing.assert_allclose(sol.y[demanded], 1.0, atol=1e-6)

    def test_greedy_prefers_high_omega(self, rng):
        net = single_cell_network(
            num_items=1,
            cache_size=1,
            bandwidth=1.0,
            replacement_cost=1.0,
            omega_bs=[0.1, 0.9],
        )
        demand = np.ones((1, 2, 1))
        prob = JointProblem(net, demand)
        x = np.ones((1, 1, 1))
        sol = solve_y_given_x(prob, x)
        # Only 1 unit of bandwidth: it must go to the omega=0.9 class.
        assert sol.y[0, 1, 0] == pytest.approx(1.0)
        assert sol.y[0, 0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_cache(self, rng):
        """More cached content never increases the optimal cost."""
        prob = _problem(rng)
        x_small = np.zeros(prob.x_shape)
        x_small[:, 0, 0] = 1.0
        x_big = x_small.copy()
        x_big[:, 0, 1] = 1.0
        cost_small = prob.cost(x_small, solve_y_given_x(prob, x_small).y)
        cost_big = prob.cost(x_big, solve_y_given_x(prob, x_big).y)
        assert cost_big.operating <= cost_small.operating + 1e-6

    def test_x_shape_validated(self, rng):
        prob = _problem(rng)
        with pytest.raises(DimensionMismatchError):
            solve_y_given_x(prob, np.zeros((1, 1, 1)))

    def test_fista_path_given_x(self, rng):
        prob = _problem(rng, omega_hat=0.02, T=2)
        x = np.zeros(prob.x_shape)
        x[:, 0, :3] = 1.0
        sol = solve_y_given_x(prob, x)
        mask = x[:, prob.network.class_sbs, :] == 0
        assert np.abs(sol.y[mask]).max(initial=0.0) <= 1e-8

    def test_linear_cost_plugged_in(self, rng):
        net = single_cell_network(
            num_items=3, cache_size=3, bandwidth=2.0, replacement_cost=1.0,
            omega_bs=[0.5, 0.8],
        )
        demand = paper_demand(2, 2, 3, rng=rng, density_range=(0.5, 2.0))
        prob = JointProblem(
            net, demand.rates, bs_cost=LinearOperatingCost(), sbs_cost=LinearOperatingCost()
        )
        x = np.ones(prob.x_shape)
        sol = solve_y_given_x(prob, x)
        for t in range(2):
            assert (prob.demand[t] * sol.y[t]).sum() <= 2.0 + 1e-6


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_p2_fast_agrees_with_fista_property(seed: int):
    """Property: the water-filling solver matches FISTA on random instances."""
    rng = np.random.default_rng(seed)
    K = int(rng.integers(2, 5))
    M = int(rng.integers(1, 4))
    T = int(rng.integers(1, 3))
    B = float(rng.uniform(0.5, 5.0))
    net = single_cell_network(
        num_items=K, cache_size=1, bandwidth=B, replacement_cost=1.0,
        omega_bs=rng.uniform(0.0, 1.0, M),
    )
    demand = paper_demand(T, M, K, rng=rng, density_range=(0.0, 2.0))
    prob = JointProblem(net, demand.rates)
    mu = rng.uniform(0, 3, prob.y_shape) * (rng.random(prob.y_shape) > 0.5)
    fast = solve_p2(prob, mu)
    slow = _solve_p2_fista(prob, mu, tol=1e-11, max_iter=8000)
    assert fast.objective <= slow.objective + 1e-4 * (1 + abs(slow.objective))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_y_given_x_feasible_property(seed: int):
    """Property: the oracle's output always satisfies every constraint."""
    rng = np.random.default_rng(seed)
    K, M, T, C = 4, 3, 2, 2
    net = single_cell_network(
        num_items=K, cache_size=C, bandwidth=float(rng.uniform(0.5, 4.0)),
        replacement_cost=1.0, omega_bs=rng.uniform(0, 1, M),
    )
    demand = paper_demand(T, M, K, rng=rng, density_range=(0.0, 3.0))
    prob = JointProblem(net, demand.rates)
    x = np.zeros(prob.x_shape)
    for t in range(T):
        x[t, 0, rng.choice(K, C, replace=False)] = 1.0
    sol = solve_y_given_x(prob, x)
    prob.check_feasible(x, sol.y)

"""The ``repro obs analyze`` diagnoser: detectors, determinism, CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import TraceEvent, write_trace
from repro.obs.analyze import analyze_trace, render_diagnosis


def ev(seq, kind, slot=None, **fields):
    return TraceEvent.make(seq, kind, slot=slot, **fields)


class TestDetectors:
    def test_empty_trace_is_clean(self):
        diagnosis = analyze_trace([])
        assert diagnosis.verdict == "clean"
        assert diagnosis.findings == ()
        assert diagnosis.stats["events"] == 0

    def test_fault_window_pairs_edges(self):
        diagnosis = analyze_trace(
            [
                ev(0, "fault_injected", slot=3),
                ev(1, "fault_cleared", slot=7),
            ]
        )
        (finding,) = diagnosis.findings
        assert finding.kind == "fault_window"
        assert finding.slots == (3, 6)  # cleared-at slot is healthy again
        assert diagnosis.verdict == "clean"  # info only

    def test_unclosed_fault_extends_to_last_slot(self):
        diagnosis = analyze_trace(
            [
                ev(0, "fault_injected", slot=2),
                ev(1, "slot_end", slot=9),
            ]
        )
        (finding,) = diagnosis.findings
        assert finding.slots == (2, 9)

    def test_convergence_stall_needs_a_plateau(self):
        stalled = [
            ev(i, "solve_done", slot=i, gap=0.5 - 0.001 * i, converged=False)
            for i in range(4)
        ]
        diagnosis = analyze_trace(stalled)
        kinds = [f.kind for f in diagnosis.findings]
        assert "convergence_stall" in kinds
        assert diagnosis.verdict == "warn"

        improving = [
            ev(i, "solve_done", slot=i, gap=0.5 / (2**i), converged=False)
            for i in range(4)
        ]
        assert analyze_trace(improving).verdict == "clean"

    def test_patience_stopped_solves_are_not_stalls(self):
        # The online ub-patience exit stops a window solve by design once
        # the feasible incumbent stagnates; a gap plateau there is benign.
        patient = [
            ev(
                i,
                "solve_done",
                slot=i,
                gap=0.5,
                converged=False,
                stopped_by_patience=True,
            )
            for i in range(6)
        ]
        assert analyze_trace(patient).verdict == "clean"
        # Interleaved patience stops also break a genuine-looking run.
        mixed = []
        for i in range(6):
            mixed.append(
                ev(
                    2 * i,
                    "solve_done",
                    slot=2 * i,
                    gap=0.5,
                    converged=False,
                )
            )
            mixed.append(
                ev(
                    2 * i + 1,
                    "solve_done",
                    slot=2 * i + 1,
                    gap=0.5,
                    converged=False,
                    stopped_by_patience=True,
                )
            )
        assert analyze_trace(mixed).verdict == "clean"

    def test_solver_storm_severity_scales(self):
        warn = [ev(i, "budget_exhausted", slot=i) for i in range(3)]
        diagnosis = analyze_trace(warn)
        (finding,) = diagnosis.findings
        assert finding.kind == "solver_storm"
        assert finding.severity == "warning"

        critical = warn + [
            ev(10 + i, "log", slot=3 + i, message="P1 fallback engaged")
            for i in range(7)
        ]
        diagnosis = analyze_trace(critical)
        (finding,) = diagnosis.findings
        assert finding.severity == "critical"
        assert diagnosis.verdict == "degraded"
        assert finding.data["fallback_log"] == 7

    def test_shed_burst_correlates_with_fault_window(self):
        events = [
            ev(0, "fault_injected", slot=4),
            ev(1, "request_shed", slot=4, mu_class=0),
            ev(2, "request_shed", slot=5, mu_class=0),
            ev(3, "fault_cleared", slot=6),
            ev(4, "request_shed", slot=9, mu_class=0),
        ]
        diagnosis = analyze_trace(events)
        bursts = [f for f in diagnosis.findings if f.kind == "shed_burst"]
        assert len(bursts) == 2
        by_slots = {f.slots: f.data["fault_correlated"] for f in bursts}
        assert by_slots == {(4, 5): True, (9, 9): False}

    def test_swap_starvation_needs_consecutive_lag(self):
        starved = [
            ev(i, "plan_swap", slot=i, plan_slot=max(0, i - 1), strategy="s")
            for i in range(1, 5)
        ]
        diagnosis = analyze_trace(starved)
        kinds = [f.kind for f in diagnosis.findings]
        assert "swap_starvation" in kinds

        fresh = [
            ev(i, "plan_swap", slot=i, plan_slot=i, strategy="s")
            for i in range(1, 5)
        ]
        assert analyze_trace(fresh).verdict == "clean"

    def test_slo_burn_groups_contiguous_alert_runs(self):
        events = [
            ev(0, "slo_alert", slot=2, slo="p99_decision_us"),
            ev(1, "slo_alert", slot=3, slo="p99_decision_us"),
            ev(2, "slo_alert", slot=7, slo="p99_decision_us"),
            ev(3, "slo_alert", slot=3, slo="shed_ratio"),
        ]
        diagnosis = analyze_trace(events)
        burns = [f for f in diagnosis.findings if f.kind == "slo_burn"]
        spans = sorted((f.data["slo"], f.slots) for f in burns)
        assert spans == [
            ("p99_decision_us", (2, 3)),
            ("p99_decision_us", (7, 7)),
            ("shed_ratio", (3, 3)),
        ]

    def test_accepts_dict_events(self):
        payload = ev(0, "request_shed", slot=1, mu_class=0).to_dict()
        diagnosis = analyze_trace([payload])
        assert diagnosis.findings[0].kind == "shed_burst"


class TestDeterminism:
    def _trace(self):
        return [
            ev(0, "fault_injected", slot=1),
            ev(1, "request_shed", slot=1, mu_class=0),
            ev(2, "request_shed", slot=2, mu_class=1),
            ev(3, "fault_cleared", slot=3),
            ev(4, "budget_exhausted", slot=3),
            ev(5, "budget_exhausted", slot=4),
            ev(6, "budget_exhausted", slot=5),
            ev(7, "slo_alert", slot=5, slo="shed_ratio"),
        ]

    def test_two_runs_are_byte_identical(self):
        first = analyze_trace(self._trace())
        second = analyze_trace(self._trace())
        assert first.to_json() == second.to_json()
        assert render_diagnosis(first) == render_diagnosis(second)

    def test_findings_sorted_severity_first(self):
        diagnosis = analyze_trace(self._trace())
        ranks = [f.severity for f in diagnosis.findings]
        order = {"critical": 0, "warning": 1, "info": 2}
        assert ranks == sorted(ranks, key=order.__getitem__)

    def test_json_round_trips(self):
        diagnosis = analyze_trace(self._trace())
        payload = json.loads(diagnosis.to_json())
        assert payload["verdict"] == diagnosis.verdict
        assert len(payload["findings"]) == len(diagnosis.findings)


class TestAnalyzeCli:
    def _write(self, tmp_path, events):
        from repro.obs import Recorder

        recorder = Recorder()
        recorder.events.extend(events)
        path = tmp_path / "trace.jsonl"
        write_trace(path, recorder)
        return str(path)

    def test_clean_trace_passes_strict(self, tmp_path, capsys):
        path = self._write(
            tmp_path, [ev(0, "slot_end", slot=0, policy="serve", total=1.0)]
        )
        assert cli_main(["obs", "analyze", path, "--strict"]) == 0
        assert "verdict: CLEAN" in capsys.readouterr().out

    def test_warn_trace_fails_strict_but_not_default(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            [
                ev(i, "request_shed", slot=i, mu_class=0)
                for i in range(3)
            ],
        )
        assert cli_main(["obs", "analyze", path]) == 0
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["obs", "analyze", path, "--strict"])
        assert excinfo.value.code == 1
        capsys.readouterr()

    def test_json_output_is_canonical(self, tmp_path, capsys):
        path = self._write(
            tmp_path, [ev(0, "slo_alert", slot=4, slo="shed_ratio")]
        )
        assert cli_main(["obs", "analyze", path, "--json"]) == 0
        out = capsys.readouterr().out.strip().splitlines()[0]
        payload = json.loads(out)
        assert payload["verdict"] == "warn"
        assert payload["findings"][0]["kind"] == "slo_burn"

    def test_missing_trace_argument_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["obs", "analyze"])
        assert excinfo.value.code == 2
        capsys.readouterr()

"""Tests for the projection operators (box, halfspace+box, capped simplex)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.optim.projection import (
    project_box,
    project_capped_simplex,
    project_halfspace_box,
    project_halfspace_box_batch,
)


class TestProjectBox:
    def test_clips(self):
        v = np.array([-1.0, 0.5, 2.0])
        np.testing.assert_allclose(project_box(v, 0.0, 1.0), [0.0, 0.5, 1.0])

    def test_empty_box_raises(self):
        with pytest.raises(InfeasibleProblemError):
            project_box(np.array([0.0]), 1.0, 0.0)


class TestHalfspaceBox:
    def test_inactive_constraint_is_plain_clip(self):
        v = np.array([0.2, 0.3])
        a = np.ones(2)
        out = project_halfspace_box(v, a, budget=10.0)
        np.testing.assert_allclose(out, v)

    def test_active_constraint_hits_budget(self):
        v = np.array([1.0, 1.0, 1.0])
        a = np.ones(3)
        out = project_halfspace_box(v, a, budget=1.5)
        assert a @ out == pytest.approx(1.5, abs=1e-8)
        np.testing.assert_allclose(out, 0.5, atol=1e-8)

    def test_weighted_projection_feasible_and_optimal(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = 5
            v = rng.normal(size=n)
            a = rng.uniform(0.1, 2.0, n)
            budget = rng.uniform(0.2, 2.0)
            out = project_halfspace_box(v, a, budget)
            assert np.all(out >= -1e-10) and np.all(out <= 1 + 1e-10)
            assert a @ out <= budget + 1e-8
            # Optimality: no feasible point is closer (spot check via cvx-ish
            # comparison with scipy).
            import scipy.optimize

            res = scipy.optimize.minimize(
                lambda y: 0.5 * np.sum((y - v) ** 2),
                np.clip(v, 0, 1),
                jac=lambda y: y - v,
                bounds=[(0, 1)] * n,
                constraints=[{"type": "ineq", "fun": lambda y: budget - a @ y}],
                method="SLSQP",
            )
            assert 0.5 * np.sum((out - v) ** 2) <= res.fun + 1e-6

    def test_unreachable_budget_raises(self):
        v = np.zeros(2)
        a = np.ones(2)
        with pytest.raises(InfeasibleProblemError):
            project_halfspace_box(v, a, budget=-1.0, lo=0.5, hi=1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            project_halfspace_box(np.ones(2), np.array([1.0, -1.0]), 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            project_halfspace_box(np.ones(3), np.ones(2), 1.0)


class TestHalfspaceBoxBatch:
    def test_matches_scalar_version(self):
        rng = np.random.default_rng(1)
        V = rng.normal(size=(6, 8))
        A = rng.uniform(0.1, 1.5, size=(6, 8))
        budgets = rng.uniform(0.5, 3.0, size=6)
        batch = project_halfspace_box_batch(V, A, budgets)
        for i in range(6):
            single = project_halfspace_box(V[i], A[i], budgets[i])
            np.testing.assert_allclose(batch[i], single, atol=1e-6)

    def test_broadcast_weights(self):
        V = np.ones((3, 4))
        a = np.ones(4)
        out = project_halfspace_box_batch(V, a, np.array([4.0, 2.0, 1.0]))
        np.testing.assert_allclose(out.sum(axis=1), [4.0, 2.0, 1.0], atol=1e-7)

    def test_bad_budget_shape(self):
        with pytest.raises(ConfigurationError):
            project_halfspace_box_batch(np.ones((2, 2)), np.ones(2), np.ones(3))

    def test_requires_2d(self):
        with pytest.raises(ConfigurationError):
            project_halfspace_box_batch(np.ones(4), np.ones(4), np.ones(1))


class TestCappedSimplex:
    def test_exact_sum(self):
        v = np.array([0.9, 0.5, 0.1])
        out = project_capped_simplex(v, total=1.0, cap=1.0)
        assert out.sum() == pytest.approx(1.0, abs=1e-8)
        assert np.all(out >= -1e-10) and np.all(out <= 1 + 1e-10)

    def test_respects_caps(self):
        v = np.array([5.0, 5.0, -5.0])
        out = project_capped_simplex(v, total=1.2, cap=np.array([1.0, 0.5, 1.0]))
        assert out.sum() == pytest.approx(1.2, abs=1e-7)
        assert out[1] <= 0.5 + 1e-9

    def test_unreachable_total_raises(self):
        with pytest.raises(InfeasibleProblemError):
            project_capped_simplex(np.zeros(2), total=3.0, cap=1.0)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), budget=st.floats(0.05, 5.0))
def test_halfspace_projection_properties(seed: int, budget: float):
    """Properties: feasibility and idempotence of the projection."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 10))
    v = rng.normal(scale=2.0, size=n)
    a = rng.uniform(0.0, 2.0, n)
    out = project_halfspace_box(v, a, budget)
    assert np.all(out >= -1e-9) and np.all(out <= 1 + 1e-9)
    assert a @ out <= budget + 1e-7
    again = project_halfspace_box(out, a, budget)
    np.testing.assert_allclose(again, out, atol=1e-6)

"""Tests for the successive-shortest-path min-cost-flow solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.optim.mincostflow import MinCostFlow


class TestMinCostFlowBasics:
    def test_two_path_split(self):
        g = MinCostFlow(4)
        g.add_arc(0, 1, 2, 1.0)
        g.add_arc(0, 2, 2, 2.0)
        g.add_arc(1, 3, 2, 1.0)
        g.add_arc(2, 3, 2, 0.5)
        res = g.solve(0, 3, 3)
        assert res.amount == 3
        assert res.cost == pytest.approx(6.5)

    def test_insufficient_capacity_partial_flow(self):
        g = MinCostFlow(3)
        g.add_arc(0, 1, 1, 1.0)
        g.add_arc(1, 2, 1, 1.0)
        res = g.solve(0, 2, 5)
        assert res.amount == 1

    def test_negative_costs_dag(self):
        g = MinCostFlow(4)
        g.add_arc(0, 1, 2, 0.0)
        first = g.add_arc(1, 2, 1, -5.0)
        second = g.add_arc(1, 2, 1, 1.0)
        g.add_arc(2, 3, 2, 0.0)
        res = g.solve(0, 3, 2, dag=True)
        assert res.amount == 2
        assert res.cost == pytest.approx(-4.0)
        assert res.arc_flow[first] == 1.0
        assert res.arc_flow[second] == 1.0

    def test_negative_costs_bellman_ford(self):
        g = MinCostFlow(4)
        g.add_arc(0, 1, 1, -2.0)
        g.add_arc(1, 2, 1, -3.0)
        g.add_arc(0, 2, 1, 0.0)
        g.add_arc(2, 3, 2, 1.0)
        res = g.solve(0, 3, 2)
        assert res.amount == 2
        assert res.cost == pytest.approx((-2 - 3 + 1) + (0 + 1))

    def test_stop_when_unprofitable(self):
        g = MinCostFlow(3)
        g.add_arc(0, 1, 1, -2.0)
        g.add_arc(0, 1, 1, 3.0)
        g.add_arc(1, 2, 2, 0.0)
        res = g.solve(0, 2, 2, stop_when_unprofitable=True)
        assert res.amount == 1
        assert res.cost == pytest.approx(-2.0)

    def test_residual_rerouting(self):
        # Classic case where a later augmentation must undo an earlier arc.
        g = MinCostFlow(4)
        g.add_arc(0, 1, 1, 1.0)
        g.add_arc(0, 2, 1, 5.0)
        g.add_arc(1, 3, 1, 1.0)
        g.add_arc(1, 2, 1, 0.0)
        g.add_arc(2, 3, 1, 1.0)
        res = g.solve(0, 3, 2)
        assert res.amount == 2
        assert res.cost == pytest.approx((1 + 1) + (5 + 1))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MinCostFlow(0)
        g = MinCostFlow(2)
        with pytest.raises(ConfigurationError):
            g.add_arc(0, 5, 1, 0.0)
        with pytest.raises(ConfigurationError):
            g.add_arc(0, 1, -1, 0.0)
        with pytest.raises(ConfigurationError):
            g.solve(0, 0, 1)
        with pytest.raises(ConfigurationError):
            g.solve(0, 1, -1)

    def test_non_dag_rejected_in_dag_mode(self):
        g = MinCostFlow(2)
        g.add_arc(0, 1, 1, 0.0)
        g.add_arc(1, 0, 1, 0.0)
        with pytest.raises(ConfigurationError):
            g.solve(0, 1, 1, dag=True)


def _random_flow_instance(rng: np.random.Generator):
    """A random DAG-ish transportation instance plus its LP formulation."""
    n_nodes = int(rng.integers(4, 8))
    arcs = []
    for u in range(n_nodes - 1):
        for v in range(u + 1, n_nodes):
            if rng.random() < 0.6:
                arcs.append((u, v, int(rng.integers(1, 4)), float(rng.normal())))
    # Ensure connectivity source -> sink.
    arcs.append((0, n_nodes - 1, 2, 5.0))
    return n_nodes, arcs


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_flow_matches_lp_on_random_instances(seed: int):
    """Property: SSP flow cost equals the LP min-cost flow value."""
    import scipy.optimize

    rng = np.random.default_rng(seed)
    n_nodes, arcs = _random_flow_instance(rng)
    target = int(rng.integers(1, 4))

    g = MinCostFlow(n_nodes)
    for u, v, cap, cost in arcs:
        g.add_arc(u, v, cap, cost)
    res = g.solve(0, n_nodes - 1, target, dag=True)

    # LP: min sum c_e f_e st conservation, 0 <= f <= cap, flow value fixed.
    n_arcs = len(arcs)
    A_eq = np.zeros((n_nodes, n_arcs))
    for j, (u, v, _cap, _c) in enumerate(arcs):
        A_eq[u, j] += 1.0
        A_eq[v, j] -= 1.0
    b_eq = np.zeros(n_nodes)
    b_eq[0] = res.amount
    b_eq[n_nodes - 1] = -res.amount
    lp = scipy.optimize.linprog(
        c=[c for *_rest, c in arcs],
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=[(0, cap) for _u, _v, cap, _c in arcs],
        method="highs",
    )
    assert lp.success
    assert res.cost == pytest.approx(lp.fun, abs=1e-6)

"""Tests for the subgradient step rules (Eq. 15-16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optim.subgradient import (
    constant_step_rule,
    paper_step_rule,
    project_nonnegative,
    sqrt_step_rule,
    subgradient_step,
)


class TestStepRules:
    def test_paper_rule_matches_equation_16(self):
        rule = paper_step_rule(alpha=0.5)
        assert rule(1) == pytest.approx(1 / 1.5)
        assert rule(4) == pytest.approx(1 / 3.0)

    def test_paper_rule_decreasing(self):
        rule = paper_step_rule(alpha=0.1)
        steps = [rule(it) for it in range(1, 20)]
        assert all(b < a for a, b in zip(steps, steps[1:]))

    def test_constant_rule(self):
        rule = constant_step_rule(0.3)
        assert rule(1) == rule(100) == 0.3

    def test_sqrt_rule(self):
        rule = sqrt_step_rule(2.0)
        assert rule(4) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paper_step_rule(alpha=-1.0)
        with pytest.raises(ConfigurationError):
            constant_step_rule(0.0)
        with pytest.raises(ConfigurationError):
            sqrt_step_rule(-2.0)


class TestSteps:
    def test_projection(self):
        mu = np.array([-1.0, 0.5])
        np.testing.assert_allclose(project_nonnegative(mu), [0.0, 0.5])

    def test_subgradient_step(self):
        mu = np.array([1.0, 0.0])
        g = np.array([-3.0, 2.0])
        out = subgradient_step(mu, g, 0.5)
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError):
            subgradient_step(np.zeros(1), np.zeros(1), -0.1)

    def test_dual_ascent_on_simple_problem(self):
        """The rules drive a 1-D dual to its optimum: max_mu>=0 d(mu) with
        d(mu) = min_x (x^2 + mu(1 - x)) = mu - mu^2/4, optimum mu* = 2."""
        for rule in (paper_step_rule(0.05), sqrt_step_rule(1.0)):
            mu = np.array([0.0])
            for it in range(1, 400):
                x = mu / 2  # argmin of the Lagrangian
                grad = 1 - x  # subgradient of d at mu
                mu = subgradient_step(mu, grad, rule(it))
            assert mu[0] == pytest.approx(2.0, abs=0.05)

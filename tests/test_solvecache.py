"""Tests for the incremental re-solve layer (``repro.perf.solvecache``).

The layer's two load-bearing invariants (DESIGN.md, "Incremental
re-solve"):

- **digest-exact skips only** — a memo hit returns bitwise the answer the
  cold solve produced, so hit/miss patterns can never change a number;
- **warm-resume matches cold solve** — ``MinCostFlow.resume`` agrees with
  ``cold_solve`` to 1e-9 on the optimal cost for arbitrary price changes,
  including sign flips, either by settling or by deterministically bailing
  to the cold path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import RuntimeConfig, resolved_incremental
from repro.core.caching_lp import _build_flow_template, solve_caching
from repro.exceptions import ConfigurationError
from repro.network.topology import single_cell_network
from repro.optim.mincostflow import MinCostFlow
from repro.perf.solvecache import BACKOFF_CAP, SolveCache, p1_digest


def _network(rng, *, num_classes=4, num_items=6, cache_size=2):
    return single_cell_network(
        num_items=num_items,
        cache_size=cache_size,
        bandwidth=6.0,
        replacement_cost=5.0,
        omega_bs=rng.uniform(0.1, 1.0, num_classes),
    )


class TestP1Digest:
    def test_equal_inputs_equal_digest(self):
        c = np.arange(12, dtype=np.float64).reshape(3, 4)
        x0 = np.array([1.0, 0.0, 0.0, 1.0])
        assert p1_digest(c, 5.0, 2, x0) == p1_digest(c.copy(), 5.0, 2, x0.copy())

    def test_any_byte_change_changes_digest(self):
        c = np.arange(12, dtype=np.float64).reshape(3, 4)
        x0 = np.zeros(4)
        base = p1_digest(c, 5.0, 2, x0)
        c2 = c.copy()
        c2[1, 2] = np.nextafter(c2[1, 2], np.inf)
        assert p1_digest(c2, 5.0, 2, x0) != base
        assert p1_digest(c, np.nextafter(5.0, 6.0), 2, x0) != base
        assert p1_digest(c, 5.0, 3, x0) != base
        x1 = x0.copy()
        x1[0] = 1.0
        assert p1_digest(c, 5.0, 2, x1) != base

    def test_shape_is_part_of_the_key(self):
        flat = np.arange(12, dtype=np.float64)
        x0 = np.zeros(4)
        assert p1_digest(flat.reshape(3, 4), 5.0, 2, x0) != p1_digest(
            flat.reshape(4, 3), 5.0, 2, x0
        )


class TestSolveCacheMemo:
    def test_lookup_counts_and_round_trips_exactly(self):
        cache = SolveCache()
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cache.lookup(b"k") is None
        cache.store(b"k", x, -3.25)
        hit = cache.lookup(b"k")
        assert hit is not None
        got_x, got_obj = hit
        assert got_x.dtype == np.float64
        assert np.array_equal(got_x, x)
        assert got_obj == -3.25
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_respects_limit(self):
        cache = SolveCache(memo_limit=2)
        x = np.zeros((1, 1))
        cache.store(b"a", x, 0.0)
        cache.store(b"b", x, 1.0)
        assert cache.lookup(b"a") is not None  # refresh 'a'
        cache.store(b"c", x, 2.0)  # evicts 'b'
        assert cache.lookup(b"b") is None
        assert cache.lookup(b"a") is not None
        assert cache.lookup(b"c") is not None

    def test_stats_keys(self):
        stats = SolveCache().stats()
        assert set(stats) == {
            "p1_memo_hits",
            "p1_memo_misses",
            "p1_memo_hit_rate",
            "p1_quant_memo_hits",
            "flow_warm_resumes",
            "flow_warm_bailouts",
            "flow_warm_disabled_keys",
        }


class TestResumeBackoff:
    def test_bails_trigger_exponential_cooldown(self):
        cache = SolveCache()
        key = (0, 3, 4, 2)
        cache.flow_states[key] = "state"  # duck-typed: only identity matters
        assert cache.warm_state_for(key) == "state"
        cache.note_resume(key, bailed=True)
        # cooldown 2: two skipped attempts, then a re-probe
        assert cache.warm_state_for(key) is None
        assert cache.warm_state_for(key) is None
        assert cache.warm_state_for(key) == "state"
        cache.note_resume(key, bailed=True)  # second strike: cooldown 4
        skips = sum(cache.warm_state_for(key) is None for _ in range(4))
        assert skips == 4
        assert cache.warm_state_for(key) == "state"

    def test_success_clears_backoff(self):
        cache = SolveCache()
        key = (0, 3, 4, 2)
        cache.flow_states[key] = "state"
        for _ in range(5):
            cache.note_resume(key, bailed=True)
        assert cache.resume_backoff[key][1] == 32
        cache.note_resume(key, bailed=False)
        assert key not in cache.resume_backoff
        assert cache.warm_state_for(key) == "state"

    def test_exhausted_backoff_disables_key(self):
        cache = SolveCache()
        key = (0, 3, 4, 2)
        cache.flow_states[key] = "state"
        # Strikes 1..6 schedule cooldowns 2..BACKOFF_CAP; the next strike
        # would need double the cap and disables the key instead.
        strikes_to_disable = BACKOFF_CAP.bit_length()
        disabled = [
            cache.note_resume(key, bailed=True) for _ in range(strikes_to_disable)
        ]
        assert disabled == [False] * (strikes_to_disable - 1) + [True]
        assert cache.is_resume_disabled(key)
        assert cache.warm_state_for(key) is None
        assert key not in cache.flow_states  # state dropped, not retained
        assert key not in cache.resume_backoff
        assert cache.stats()["flow_warm_disabled_keys"] == 1
        # A disabled key stays disabled: further outcomes change nothing.
        assert cache.note_resume(key, bailed=False) is False
        assert cache.is_resume_disabled(key)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_memo_hits_return_exact_cold_solutions(seed: int):
    """Cached solve of a repeating mu sequence == uncached, bit for bit."""
    rng = np.random.default_rng(seed)
    net = _network(rng)
    T, M, K = 4, net.num_classes, net.num_items
    x_initial = np.zeros((net.num_sbs, K))
    x_initial[0, rng.integers(0, K)] = 1.0

    distinct = [rng.uniform(0.0, 8.0, size=(T, M, K)) for _ in range(3)]
    # A sequence with byte-identical repeats, as the stall re-anchor and
    # best-dual recovery produce.
    order = [0, 1, 0, 2, 1, 0]
    cache = SolveCache()
    for i, idx in enumerate(order):
        mu = distinct[idx]
        cached = solve_caching(net, mu, x_initial, cache=cache)
        cold = solve_caching(net, mu, x_initial, cache=None)
        assert np.array_equal(cached.x, cold.x)
        assert cached.objective == cold.objective
    # Every repeat is answered per-SBS from the memo.
    repeats = len(order) - len(set(order))
    assert cache.hits == repeats * net.num_sbs
    assert cache.misses == len(set(order)) * net.num_sbs


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_warm_resume_matches_cold_solve(seed: int):
    """resume() == cold_solve() on random perturbations incl. sign flips."""
    rng = np.random.default_rng(seed)
    T, K, cap = 5, 6, 2
    template = _build_flow_template(T, K, cap)
    g = template.graph
    beta = float(rng.uniform(0.0, 5.0))
    x0 = (rng.random(K) > 0.6).astype(np.float64)

    def apply_costs(c):
        fetch = np.full((T, K), beta)
        fetch[0, x0 > 0.5] = 0.0
        g.set_arc_costs(template.fetch_arcs, fetch)
        g.set_arc_costs(template.hold_arcs, -c)

    c = rng.uniform(0.0, 4.0, size=(T, K))
    apply_costs(c)
    g.reset()
    g.solve(template.src, template.snk, cap, dag=True)
    state = g.export_state()

    for _ in range(6):
        scale = float(rng.choice([0.01, 0.5, 3.0]))
        c = np.maximum(c + rng.normal(0.0, scale, size=(T, K)), 0.0)
        apply_costs(c)
        warm = g.resume(template.src, template.snk, cap, state, dag=True)
        state = g.export_state()
        cold = g.cold_solve(template.src, template.snk, cap, dag=True)
        assert warm.amount == cold.amount == cap
        assert warm.cost == pytest.approx(cold.cost, abs=1e-9, rel=1e-9)


class TestResumeUnit:
    def _solved_template(self):
        rng = np.random.default_rng(7)
        T, K, cap = 4, 5, 2
        template = _build_flow_template(T, K, cap)
        g = template.graph
        c = rng.uniform(0.0, 3.0, size=(T, K))
        fetch = np.full((T, K), 2.0)
        g.set_arc_costs(template.fetch_arcs, fetch)
        g.set_arc_costs(template.hold_arcs, -c)
        g.solve(template.src, template.snk, cap, dag=True)
        return template, g, cap

    def test_resume_rejects_mismatched_state(self):
        template, g, cap = self._solved_template()
        state = g.export_state()
        other = MinCostFlow(3)
        other.add_arc(0, 1, 1, 0.0)
        other.add_arc(1, 2, 1, 0.0)
        with pytest.raises(ConfigurationError):
            other.resume(0, 2, 1, state)

    def test_resume_with_unchanged_costs_is_a_noop_rerun(self):
        template, g, cap = self._solved_template()
        baseline = g.cold_solve(template.src, template.snk, cap, dag=True)
        state = g.export_state()
        warm = g.resume(template.src, template.snk, cap, state, dag=True)
        assert not g.last_resume_bailed
        assert warm.amount == baseline.amount
        assert warm.cost == pytest.approx(baseline.cost, abs=1e-12)
        assert np.array_equal(warm.arc_flow, baseline.arc_flow)

    def test_export_before_solve_raises(self):
        g = MinCostFlow(2)
        g.add_arc(0, 1, 1, 0.0)
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            g.export_state()


class TestIncrementalConfig:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
        assert resolved_incremental(None) is True

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert resolved_incremental(None) is False

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert resolved_incremental(RuntimeConfig(incremental=True)) is True
        monkeypatch.delenv("REPRO_INCREMENTAL")
        assert resolved_incremental(RuntimeConfig(incremental=False)) is False


class TestCacheAcrossExecutors:
    def test_counters_and_results_identical_serial_vs_thread(self):
        rng = np.random.default_rng(3)
        net = _network(rng, num_classes=3, num_items=5, cache_size=2)
        T = 4
        x_initial = np.zeros((net.num_sbs, net.num_items))
        mus = [rng.uniform(0.0, 6.0, size=(T, 3, 5)) for _ in range(3)]
        mus.append(mus[0])  # one repeat

        outcomes = {}
        for executor in ("serial", "thread:2"):
            cache = SolveCache()
            results = [
                solve_caching(net, mu, x_initial, cache=cache, executor=executor)
                for mu in mus
            ]
            outcomes[executor] = (
                [(r.x.tobytes(), r.objective) for r in results],
                cache.stats(),
            )
        assert outcomes["serial"] == outcomes["thread:2"]
        assert outcomes["serial"][1]["p1_memo_hits"] == 1

"""Unit tests for the network model: catalog, stations, users, topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network import ContentCatalog, MUClass, Network, SmallBaseStation
from repro.network.topology import single_cell_network


class TestContentCatalog:
    def test_basic_properties(self):
        cat = ContentCatalog(5)
        assert len(cat) == 5
        assert 0 in cat and 4 in cat
        assert 5 not in cat and -1 not in cat
        assert cat.name_of(2) == "content-2"
        assert list(cat.items) == [0, 1, 2, 3, 4]

    def test_custom_names(self):
        cat = ContentCatalog(2, names=("intro.mp4", "finale.mp4"))
        assert cat.name_of(1) == "finale.mp4"

    def test_rejects_empty_catalog(self):
        with pytest.raises(ConfigurationError):
            ContentCatalog(0)

    def test_rejects_negative_item_size(self):
        with pytest.raises(ConfigurationError):
            ContentCatalog(3, item_size=-1.0)

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ConfigurationError):
            ContentCatalog(3, names=("a",))

    def test_name_of_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ContentCatalog(3).name_of(7)


class TestSmallBaseStation:
    def test_valid_construction(self):
        sbs = SmallBaseStation(0, cache_size=5, bandwidth=30.0, replacement_cost=100.0)
        assert sbs.name == "SBS-0"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sbs_id=-1, cache_size=1, bandwidth=1.0, replacement_cost=1.0),
            dict(sbs_id=0, cache_size=-2, bandwidth=1.0, replacement_cost=1.0),
            dict(sbs_id=0, cache_size=1.5, bandwidth=1.0, replacement_cost=1.0),
            dict(sbs_id=0, cache_size=1, bandwidth=-1.0, replacement_cost=1.0),
            dict(sbs_id=0, cache_size=1, bandwidth=1.0, replacement_cost=-0.5),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            SmallBaseStation(**kwargs)


class TestMUClass:
    def test_valid_construction(self):
        mu = MUClass(3, 1, omega_bs=0.7, omega_sbs=0.007)
        assert mu.name == "MU-3@SBS-1"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(class_id=-1, sbs_id=0, omega_bs=0.5),
            dict(class_id=0, sbs_id=-1, omega_bs=0.5),
            dict(class_id=0, sbs_id=0, omega_bs=-0.1),
            dict(class_id=0, sbs_id=0, omega_bs=0.5, omega_sbs=-0.1),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            MUClass(**kwargs)


class TestNetwork:
    def test_single_cell_builder(self):
        net = single_cell_network(
            num_items=10,
            cache_size=3,
            bandwidth=5.0,
            replacement_cost=2.0,
            omega_bs=[0.1, 0.9],
        )
        assert net.num_sbs == 1
        assert net.num_classes == 2
        assert net.num_items == 10
        np.testing.assert_allclose(net.omega_bs, [0.1, 0.9])
        np.testing.assert_allclose(net.omega_sbs, [0.0, 0.0])
        assert net.cache_sizes.tolist() == [3]
        assert net.bandwidths.tolist() == [5.0]
        assert net.replacement_costs.tolist() == [2.0]

    def test_multi_sbs_class_mapping(self):
        cat = ContentCatalog(4)
        sbss = (
            SmallBaseStation(0, 2, 3.0, 1.0),
            SmallBaseStation(1, 1, 2.0, 4.0),
        )
        classes = (
            MUClass(0, 0, 0.5),
            MUClass(1, 1, 0.2),
            MUClass(2, 0, 0.9),
        )
        net = Network(cat, sbss, classes)
        assert net.class_sbs.tolist() == [0, 1, 0]
        assert net.classes_of_sbs[0].tolist() == [0, 2]
        assert net.classes_of_sbs[1].tolist() == [1]
        assert [c.class_id for c in net.classes_served_by(0)] == [0, 2]

    def test_rejects_out_of_order_ids(self):
        cat = ContentCatalog(4)
        with pytest.raises(ConfigurationError):
            Network(
                cat,
                (SmallBaseStation(1, 1, 1.0, 1.0),),
                (MUClass(0, 0, 0.5),),
            )

    def test_rejects_dangling_sbs_reference(self):
        cat = ContentCatalog(4)
        with pytest.raises(ConfigurationError):
            Network(
                cat,
                (SmallBaseStation(0, 1, 1.0, 1.0),),
                (MUClass(0, 3, 0.5),),
            )

    def test_rejects_cache_larger_than_catalog(self):
        with pytest.raises(ConfigurationError):
            single_cell_network(
                num_items=3,
                cache_size=4,
                bandwidth=1.0,
                replacement_cost=1.0,
                omega_bs=[0.5],
            )

    def test_with_bandwidths_scalar_and_vector(self):
        net = single_cell_network(
            num_items=5, cache_size=2, bandwidth=3.0, replacement_cost=1.0,
            omega_bs=[0.5, 0.7],
        )
        assert net.with_bandwidths(9.0).bandwidths.tolist() == [9.0]
        assert net.with_bandwidths([4.0]).bandwidths.tolist() == [4.0]
        with pytest.raises(ConfigurationError):
            net.with_bandwidths([1.0, 2.0])

    def test_with_replacement_costs_preserves_rest(self):
        net = single_cell_network(
            num_items=5, cache_size=2, bandwidth=3.0, replacement_cost=1.0,
            omega_bs=[0.5],
        )
        new = net.with_replacement_costs(7.5)
        assert new.replacement_costs.tolist() == [7.5]
        assert new.bandwidths.tolist() == [3.0]
        assert new.cache_sizes.tolist() == [2]

    def test_with_cache_sizes(self):
        net = single_cell_network(
            num_items=5, cache_size=2, bandwidth=3.0, replacement_cost=1.0,
            omega_bs=[0.5],
        )
        assert net.with_cache_sizes(4).cache_sizes.tolist() == [4]

    def test_builder_rejects_mismatched_weights(self):
        with pytest.raises(ConfigurationError):
            single_cell_network(
                num_items=5,
                cache_size=1,
                bandwidth=1.0,
                replacement_cost=1.0,
                omega_bs=[0.5, 0.6],
                omega_sbs=[0.1],
            )

"""Tests for the Belady-style baseline and the forecast evaluation module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BeladyVolume
from repro.exceptions import ConfigurationError
from repro.scenario import Scenario, validate_plan
from repro.sim.engine import evaluate_plan
from repro.network.topology import single_cell_network
from repro.workload.demand import DemandMatrix, paper_demand
from repro.workload.evaluation import ForecastProfile, profile_predictor
from repro.workload.predictor import PerfectPredictor, PerturbedPredictor


class TestBeladyVolume:
    def test_prefetches_before_surge(self):
        """Belady caches the future-heavy item before demand arrives."""
        net = single_cell_network(
            num_items=3, cache_size=1, bandwidth=10.0, replacement_cost=1.0,
            omega_bs=[1.0],
        )
        rates = np.zeros((4, 1, 3))
        rates[:2, 0, 0] = 1.0  # item 0 modest early demand
        rates[1:, 0, 2] = 5.0  # item 2 dominates from slot 1 on
        sc = Scenario(network=net, demand=DemandMatrix(rates))
        plan = BeladyVolume(discount=0.9).plan(sc)
        assert plan.x[1, 0, 2] == 1.0
        assert plan.x[3, 0, 2] == 1.0

    def test_lookahead_limits_vision(self):
        net = single_cell_network(
            num_items=2, cache_size=1, bandwidth=10.0, replacement_cost=1.0,
            omega_bs=[1.0],
        )
        rates = np.zeros((5, 1, 2))
        rates[:, 0, 0] = 1.0
        rates[4, 0, 1] = 100.0  # only visible with enough lookahead
        sc = Scenario(network=net, demand=DemandMatrix(rates))
        myopic = BeladyVolume(discount=1.0, lookahead=2).plan(sc)
        assert myopic.x[0, 0, 0] == 1.0  # cannot see slot 4 yet
        clairvoyant = BeladyVolume(discount=1.0).plan(sc)
        assert clairvoyant.x[0, 0, 1] == 1.0  # total future volume wins

    def test_plan_valid(self, small_scenario):
        plan = BeladyVolume().plan(small_scenario)
        validate_plan(small_scenario, plan)

    def test_loses_to_offline_optimum(self, small_scenario):
        """Hit-volume-optimal is not cost-optimal under weighted costs."""
        from repro.core.offline import OfflineOptimal

        belady = evaluate_plan(
            small_scenario, BeladyVolume().plan(small_scenario)
        ).cost.total
        offline = evaluate_plan(
            small_scenario, OfflineOptimal(max_iter=100).plan(small_scenario)
        ).cost.total
        assert offline <= belady + 1e-6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BeladyVolume(discount=0.0)
        with pytest.raises(ConfigurationError):
            BeladyVolume(discount=1.5)
        with pytest.raises(ConfigurationError):
            BeladyVolume(lookahead=0)


class TestForecastProfile:
    def test_perfect_predictor_zero_error(self, rng):
        demand = paper_demand(10, 2, 3, rng=rng, density_range=(1.0, 2.0))
        profile = profile_predictor(
            PerfectPredictor(demand), demand, window=4
        )
        np.testing.assert_allclose(profile.mape, 0.0, atol=1e-12)
        np.testing.assert_allclose(profile.bias, 0.0, atol=1e-12)
        assert not profile.is_degrading()

    def test_frozen_noise_flat_profile(self, rng):
        demand = paper_demand(30, 3, 4, rng=rng, density_range=(1.0, 2.0))
        predictor = PerturbedPredictor(demand, eta=0.3, mode="frozen", seed=1)
        profile = profile_predictor(predictor, demand, window=6)
        # All lookaheads share the same frozen factors: flat MAPE ~ eta/2.
        assert profile.mape.max() - profile.mape.min() < 0.05
        assert profile.mape.mean() == pytest.approx(0.15, abs=0.05)
        assert not profile.is_degrading()

    def test_degrading_noise_rises_with_lookahead(self, rng):
        demand = paper_demand(40, 3, 4, rng=rng, density_range=(1.0, 2.0))
        predictor = PerturbedPredictor(demand, eta=0.2, mode="degrading", seed=1)
        profile = profile_predictor(predictor, demand, window=9)
        assert profile.is_degrading()
        assert profile.mape[-1] > profile.mape[0]

    def test_window_validation(self, rng):
        demand = paper_demand(5, 2, 2, rng=rng)
        with pytest.raises(ConfigurationError):
            profile_predictor(PerfectPredictor(demand), demand, window=0)

    def test_profile_window_property(self):
        profile = ForecastProfile(mape=np.zeros(5), bias=np.zeros(5))
        assert profile.window == 5

"""RuntimeConfig precedence and the deprecated environment fallbacks."""

from __future__ import annotations

import warnings

import pytest

from repro.config import (
    BACKEND_ENV,
    BISECTION_ITERS_ENV,
    BATCHED_TIES_ENV,
    BW_CLOSED_FORM_ENV,
    DEFAULT_SERVE_ADMISSION,
    DEFAULT_SERVE_QUEUE_DEPTH,
    DEFAULT_SERVE_RPS,
    DEFAULT_SERVE_SLOT_SECONDS,
    EXECUTOR_ENV,
    FLOW_REUSE_ENV,
    OBS_SLO_ENV,
    SERVE_ADMISSION_ENV,
    SERVE_METRICS_PORT_ENV,
    SERVE_QUEUE_DEPTH_ENV,
    SERVE_RPS_ENV,
    SERVE_SLOT_SECONDS_ENV,
    WORKERS_ENV,
    RuntimeConfig,
    deprecated_env,
    reset_deprecation_warnings,
    resolved_backend_pin,
    resolved_batched_ties,
    resolved_bisection_iters,
    resolved_bw_closed_form,
    resolved_flow_reuse,
    resolved_obs_slo,
    resolved_serve_admission,
    resolved_serve_metrics_port,
    resolved_serve_queue_depth,
    resolved_serve_rps,
    resolved_serve_slot_seconds,
)
from repro.exceptions import ConfigurationError
from repro.perf.executor import get_executor


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Isolate each test from ambient env vars and the warn-once registry."""
    for name in (
        WORKERS_ENV,
        EXECUTOR_ENV,
        BACKEND_ENV,
        FLOW_REUSE_ENV,
        SERVE_RPS_ENV,
        SERVE_ADMISSION_ENV,
        SERVE_QUEUE_DEPTH_ENV,
        SERVE_SLOT_SECONDS_ENV,
        SERVE_METRICS_PORT_ENV,
        OBS_SLO_ENV,
        BW_CLOSED_FORM_ENV,
        BISECTION_ITERS_ENV,
    ):
        monkeypatch.delenv(name, raising=False)
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


class TestRuntimeConfig:
    def test_defaults_are_unspecified(self):
        config = RuntimeConfig()
        assert config.executor is None
        assert config.workers is None
        assert config.caching_backend is None
        assert config.flow_reuse is None

    def test_validates_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            RuntimeConfig(workers=0)

    def test_validates_backend(self):
        with pytest.raises(ConfigurationError, match="caching_backend"):
            RuntimeConfig(caching_backend="magic")

    def test_frozen(self):
        with pytest.raises(Exception):
            RuntimeConfig().workers = 2  # type: ignore[misc]


class TestExecutorPrecedence:
    def test_default_is_serial(self):
        assert get_executor().kind == "serial"

    def test_config_selects_executor(self):
        ex = get_executor(config=RuntimeConfig(executor="thread:3"))
        assert (ex.kind, ex.workers) == ("thread", 3)

    def test_config_workers_alone_selects_process(self):
        ex = get_executor(config=RuntimeConfig(workers=2))
        assert (ex.kind, ex.workers) == ("process", 2)

    def test_explicit_spec_beats_config(self):
        ex = get_executor("thread:2", config=RuntimeConfig(executor="process:5"))
        assert (ex.kind, ex.workers) == ("thread", 2)

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "process:5")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # config path must not touch env
            ex = get_executor(config=RuntimeConfig(executor="thread:2"))
        assert (ex.kind, ex.workers) == ("thread", 2)

    def test_env_fallback_still_works(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread:4")
        with pytest.warns(DeprecationWarning, match=EXECUTOR_ENV):
            ex = get_executor()
        assert (ex.kind, ex.workers) == ("thread", 4)


class TestBackendAndFlowReuse:
    def test_backend_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "lp")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolved_backend_pin(RuntimeConfig(caching_backend="flow")) == "flow"

    def test_backend_env_fallback(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "lp")
        with pytest.warns(DeprecationWarning, match=BACKEND_ENV):
            assert resolved_backend_pin(None) == "lp"

    def test_backend_env_validated(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "magic")
        with pytest.raises(ConfigurationError):
            with pytest.warns(DeprecationWarning):
                resolved_backend_pin(None)

    def test_flow_reuse_default_on(self):
        assert resolved_flow_reuse(None) is True

    def test_flow_reuse_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(FLOW_REUSE_ENV, "0")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolved_flow_reuse(RuntimeConfig(flow_reuse=True)) is True

    def test_flow_reuse_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(FLOW_REUSE_ENV, "0")
        with pytest.warns(DeprecationWarning, match=FLOW_REUSE_ENV):
            assert resolved_flow_reuse(None) is False


class TestServeKnobs:
    """arg > config > env > default for the four ``serve_*`` settings.

    The ``REPRO_SERVE_*`` variables are *supported* fallbacks (headless
    deployments), not deprecated ones — resolution never warns.
    """

    def test_defaults(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolved_serve_rps(None) == DEFAULT_SERVE_RPS
            assert resolved_serve_admission(None) == DEFAULT_SERVE_ADMISSION
            assert resolved_serve_queue_depth(None) == DEFAULT_SERVE_QUEUE_DEPTH
            assert resolved_serve_slot_seconds(None) == DEFAULT_SERVE_SLOT_SECONDS

    def test_arg_beats_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(SERVE_RPS_ENV, "50")
        config = RuntimeConfig(serve_rps=100.0)
        assert resolved_serve_rps(config, arg=400.0) == 400.0
        assert resolved_serve_rps(config) == 100.0
        assert resolved_serve_rps(None) == 50.0

    def test_admission_precedence(self, monkeypatch):
        monkeypatch.setenv(SERVE_ADMISSION_ENV, "shed")
        assert resolved_serve_admission(None) == "shed"
        assert resolved_serve_admission(RuntimeConfig(serve_admission="queue")) == "queue"
        assert resolved_serve_admission(None, arg="queue") == "queue"

    def test_queue_depth_precedence(self, monkeypatch):
        monkeypatch.setenv(SERVE_QUEUE_DEPTH_ENV, "8")
        assert resolved_serve_queue_depth(None) == 8
        assert resolved_serve_queue_depth(RuntimeConfig(serve_queue_depth=16)) == 16
        assert resolved_serve_queue_depth(None, arg=4) == 4

    def test_slot_seconds_precedence(self, monkeypatch):
        monkeypatch.setenv(SERVE_SLOT_SECONDS_ENV, "0.5")
        assert resolved_serve_slot_seconds(None) == 0.5
        assert (
            resolved_serve_slot_seconds(RuntimeConfig(serve_slot_seconds=1.0)) == 1.0
        )
        assert resolved_serve_slot_seconds(None, arg=0.125) == 0.125

    def test_config_validates_serve_fields(self):
        with pytest.raises(ConfigurationError, match="serve_rps"):
            RuntimeConfig(serve_rps=0.0)
        with pytest.raises(ConfigurationError, match="serve_admission"):
            RuntimeConfig(serve_admission="panic")
        with pytest.raises(ConfigurationError, match="serve_queue_depth"):
            RuntimeConfig(serve_queue_depth=0)
        with pytest.raises(ConfigurationError, match="serve_slot_seconds"):
            RuntimeConfig(serve_slot_seconds=-1.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ConfigurationError):
            resolved_serve_rps(None, arg=-5.0)
        with pytest.raises(ConfigurationError):
            resolved_serve_admission(None, arg="panic")
        with pytest.raises(ConfigurationError):
            resolved_serve_queue_depth(None, arg=0)
        with pytest.raises(ConfigurationError):
            resolved_serve_slot_seconds(None, arg=0.0)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(SERVE_RPS_ENV, "plenty")
        with pytest.raises(ConfigurationError):
            resolved_serve_rps(None)
        monkeypatch.setenv(SERVE_ADMISSION_ENV, "panic")
        with pytest.raises(ConfigurationError):
            resolved_serve_admission(None)
        monkeypatch.setenv(SERVE_QUEUE_DEPTH_ENV, "3.5")
        with pytest.raises(ConfigurationError):
            resolved_serve_queue_depth(None)


class TestTelemetrySettings:
    """arg > config > env > default for the live-telemetry knobs."""

    def test_defaults_off(self):
        assert resolved_serve_metrics_port(None) is None
        assert resolved_obs_slo(None) is None

    def test_metrics_port_precedence(self, monkeypatch):
        monkeypatch.setenv(SERVE_METRICS_PORT_ENV, "9100")
        assert resolved_serve_metrics_port(None) == 9100
        config = RuntimeConfig(serve_metrics_port=9200)
        assert resolved_serve_metrics_port(config) == 9200
        assert resolved_serve_metrics_port(config, arg=0) == 0

    def test_slo_precedence(self, monkeypatch):
        monkeypatch.setenv(OBS_SLO_ENV, "shed_ratio<0.5")
        assert resolved_obs_slo(None) == "shed_ratio<0.5"
        config = RuntimeConfig(obs_slo="p99_decision_us<200")
        assert resolved_obs_slo(config) == "p99_decision_us<200"
        assert resolved_obs_slo(config, arg="p50_decision_us<50") == (
            "p50_decision_us<50"
        )

    def test_empty_slo_env_means_disabled(self, monkeypatch):
        monkeypatch.setenv(OBS_SLO_ENV, "")
        assert resolved_obs_slo(None) is None

    def test_config_validates_telemetry_fields(self):
        with pytest.raises(ConfigurationError, match="serve_metrics_port"):
            RuntimeConfig(serve_metrics_port=-1)
        with pytest.raises(ConfigurationError, match="serve_metrics_port"):
            RuntimeConfig(serve_metrics_port=70000)
        with pytest.raises(ConfigurationError, match="unknown SLO"):
            RuntimeConfig(obs_slo="p42_decision_us<1")

    def test_invalid_sources_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolved_serve_metrics_port(None, arg=65536)
        monkeypatch.setenv(SERVE_METRICS_PORT_ENV, "not-a-port")
        with pytest.raises(ConfigurationError):
            resolved_serve_metrics_port(None)


class TestWarnOnce:
    def test_each_variable_warns_exactly_once(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            deprecated_env(WORKERS_ENV)
            deprecated_env(WORKERS_ENV)
            deprecated_env(WORKERS_ENV)
        ours = [w for w in caught if WORKERS_ENV in str(w.message)]
        assert len(ours) == 1
        assert "RuntimeConfig(workers=...)" in str(ours[0].message)

    def test_unset_variable_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert deprecated_env(WORKERS_ENV) is None

    def test_distinct_variables_warn_independently(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        monkeypatch.setenv(FLOW_REUSE_ENV, "1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            deprecated_env(WORKERS_ENV)
            deprecated_env(FLOW_REUSE_ENV)
        messages = sorted(str(w.message).split(" ")[0] for w in caught)
        assert messages == [FLOW_REUSE_ENV, WORKERS_ENV]


class TestWaterfillKnobs:
    """arg > config > env > default for the P2 kernel knobs."""

    def test_closed_form_default_on(self):
        assert resolved_bw_closed_form(None) is True

    def test_closed_form_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(BW_CLOSED_FORM_ENV, "0")
        assert resolved_bw_closed_form(None) is False
        monkeypatch.setenv(BW_CLOSED_FORM_ENV, "1")
        assert resolved_bw_closed_form(None) is True

    def test_closed_form_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(BW_CLOSED_FORM_ENV, "0")
        assert resolved_bw_closed_form(RuntimeConfig(bw_closed_form=True)) is True
        monkeypatch.setenv(BW_CLOSED_FORM_ENV, "1")
        assert (
            resolved_bw_closed_form(RuntimeConfig(bw_closed_form=False)) is False
        )

    def test_closed_form_arg_beats_config(self):
        cfg = RuntimeConfig(bw_closed_form=True)
        assert resolved_bw_closed_form(cfg, False) is False
        assert resolved_bw_closed_form(RuntimeConfig(bw_closed_form=False), True)

    def test_bisection_iters_default(self):
        assert resolved_bisection_iters(None) == 26

    def test_bisection_iters_env(self, monkeypatch):
        monkeypatch.setenv(BISECTION_ITERS_ENV, "40")
        assert resolved_bisection_iters(None) == 40

    def test_bisection_iters_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(BISECTION_ITERS_ENV, "40")
        assert resolved_bisection_iters(RuntimeConfig(bisection_iters=12)) == 12

    def test_bisection_iters_arg_beats_config(self):
        assert resolved_bisection_iters(RuntimeConfig(bisection_iters=12), 7) == 7

    def test_bisection_iters_validated(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolved_bisection_iters(None, 0)
        with pytest.raises(ConfigurationError):
            RuntimeConfig(bisection_iters=0)
        monkeypatch.setenv(BISECTION_ITERS_ENV, "zero")
        with pytest.raises(ConfigurationError):
            resolved_bisection_iters(None)
        monkeypatch.setenv(BISECTION_ITERS_ENV, "-3")
        with pytest.raises(ConfigurationError):
            resolved_bisection_iters(None)


class TestBatchedTiesKnob:
    """config > env > default for the tie-aware batched P1 acceptance.

    ``REPRO_BATCHED_TIES`` is a *supported* kill switch (the CI A/B leg
    sets it), not a deprecated fallback — resolution never warns.
    """

    def test_default_on(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolved_batched_ties(None) is True

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(BATCHED_TIES_ENV, "0")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolved_batched_ties(None) is False
        monkeypatch.setenv(BATCHED_TIES_ENV, "1")
        assert resolved_batched_ties(None) is True

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(BATCHED_TIES_ENV, "0")
        assert resolved_batched_ties(RuntimeConfig(batched_ties=True)) is True
        monkeypatch.setenv(BATCHED_TIES_ENV, "1")
        assert (
            resolved_batched_ties(RuntimeConfig(batched_ties=False)) is False
        )

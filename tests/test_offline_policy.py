"""Tests for the OfflineOptimal policy wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.offline import OfflineOptimal
from repro.scenario import validate_plan
from repro.sim.engine import evaluate_plan


class TestOfflineOptimal:
    def test_plan_is_feasible_and_integral(self, small_scenario):
        policy = OfflineOptimal(max_iter=60)
        plan = policy.plan(small_scenario)
        validate_plan(small_scenario, plan)
        assert set(np.unique(plan.x)) <= {0.0, 1.0}
        assert plan.solves > 0

    def test_solve_exposes_bounds(self, small_scenario):
        result = OfflineOptimal(max_iter=60).solve(small_scenario)
        assert result.lower_bound <= result.upper_bound + 1e-9
        assert result.gap >= 0

    def test_name(self):
        assert OfflineOptimal().name == "Offline"

    def test_more_iterations_never_worse(self, small_scenario):
        short = OfflineOptimal(max_iter=5, ub_patience=None).solve(small_scenario)
        long = OfflineOptimal(max_iter=80, ub_patience=None).solve(small_scenario)
        assert long.upper_bound <= short.upper_bound + 1e-9

    def test_lp_backend_equivalent(self, small_scenario):
        flow = OfflineOptimal(max_iter=60, caching_backend="flow").solve(
            small_scenario
        )
        lp = OfflineOptimal(max_iter=60, caching_backend="lp").solve(
            small_scenario
        )
        assert flow.upper_bound == pytest.approx(lp.upper_bound, rel=1e-2)

    def test_evaluation_matches_internal_cost(self, small_scenario):
        policy = OfflineOptimal(max_iter=60)
        result = policy.solve(small_scenario)
        realized = evaluate_plan(
            small_scenario,
            policy.plan(small_scenario),
            policy_name=policy.name,
        )
        # evaluate_plan re-solves y for the same caches on the same demand:
        # identical cost.
        assert realized.cost.total == pytest.approx(result.cost.total, rel=1e-9)

"""Tests for window/commitment bookkeeping (Section IV index arithmetic)."""

from __future__ import annotations

import pytest

from repro.core.horizon import HorizonSpec, committed_slots, fhc_solve_times
from repro.exceptions import ConfigurationError


class TestHorizonSpec:
    def test_valid(self):
        spec = HorizonSpec(window=10, commitment=5)
        assert spec.window == 10

    @pytest.mark.parametrize("w,r", [(0, 1), (5, 0), (5, 6), (-1, 1)])
    def test_invalid(self, w, r):
        with pytest.raises(ConfigurationError):
            HorizonSpec(window=w, commitment=r)


class TestFhcSolveTimes:
    def test_variant_zero_starts_at_zero(self):
        assert fhc_solve_times(0, 3, 10) == [0, 3, 6, 9]

    def test_nonzero_variant_anchors_before_zero(self):
        # Variant 1, r=3: solves at -2, 1, 4, 7 (all congruent to 1 mod 3).
        times = fhc_solve_times(1, 3, 9)
        assert times == [-2, 1, 4, 7]
        assert all(t % 3 == 1 for t in times)

    def test_every_slot_covered_exactly_once_per_variant(self):
        horizon, r = 17, 4
        for v in range(r):
            covered = []
            for tau in fhc_solve_times(v, r, horizon):
                covered.extend(committed_slots(tau, r, horizon))
            assert covered == list(range(horizon))

    def test_commitment_one_is_every_slot(self):
        assert fhc_solve_times(0, 1, 4) == [0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fhc_solve_times(3, 3, 10)
        with pytest.raises(ConfigurationError):
            fhc_solve_times(-1, 3, 10)
        with pytest.raises(ConfigurationError):
            fhc_solve_times(0, 3, 0)


class TestCommittedSlots:
    def test_clamps_to_horizon(self):
        assert list(committed_slots(-2, 3, 10)) == [0]
        assert list(committed_slots(8, 5, 10)) == [8, 9]
        assert list(committed_slots(2, 3, 10)) == [2, 3, 4]

"""Unit tests for :mod:`repro.obs`: events, recorder, exporters, traces."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.primal_dual import solve_primal_dual
from repro.exceptions import ConfigurationError
from repro.obs import (
    ConvergenceRecorder,
    ConvergenceTrace,
    Histogram,
    MetricRegistry,
    Recorder,
    TraceEvent,
    config_digest,
    current_recorder,
    emit,
    inc,
    label_scope,
    manifest_path_for,
    prometheus_snapshot,
    read_trace,
    record_into,
    render_trace_dashboard,
    run_manifest,
    set_gauge,
    slot_scope,
    slot_series_csv,
    trace_digest,
    validate_manifest,
    validate_trace,
    write_manifest,
    write_trace,
)
from repro.optim.fista import minimize_fista
from repro.optim.subgradient import DUAL_ASCENT_COLUMNS


class TestTraceEvent:
    def test_fields_sorted_regardless_of_kwarg_order(self):
        a = TraceEvent.make(0, "slot_start", 3, demand=1.0, policy="LRFU")
        b = TraceEvent.make(0, "slot_start", 3, policy="LRFU", demand=1.0)
        assert a == b
        assert a.to_json() == b.to_json()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            TraceEvent.make(0, "teleport", 0)

    def test_numpy_scalars_coerced(self):
        event = TraceEvent.make(
            0, "cache_insert", 1, count=np.int64(4), load=np.float64(2.5)
        )
        assert event.data == {"count": 4, "load": 2.5}
        assert all(
            type(v) in (int, float) for v in event.data.values()
        )

    def test_non_scalar_field_rejected(self):
        with pytest.raises(ConfigurationError, match="non-scalar"):
            TraceEvent.make(0, "slot_start", 0, demand=[1.0, 2.0])

    def test_non_finite_floats_become_strings(self):
        event = TraceEvent.make(
            0, "solve_done", None, gap=float("inf"), lb=float("-inf")
        )
        assert event.data == {"gap": "inf", "lb": "-inf"}
        # the JSONL line must be strict JSON (no Infinity literal)
        json.loads(event.to_json(), parse_constant=lambda c: pytest.fail(c))

    def test_json_round_trip(self):
        event = TraceEvent.make(7, "slot_end", 2, total=3.25, policy="RHC")
        assert TraceEvent.from_dict(json.loads(event.to_json())) == event

    def test_validate_trace_checks_numbering(self):
        events = [
            TraceEvent.make(0, "slot_start", 0),
            TraceEvent.make(2, "slot_end", 0),
        ]
        with pytest.raises(ConfigurationError, match="seq gap"):
            validate_trace(events)
        events[1] = TraceEvent.make(1, "slot_end", 0)
        assert validate_trace(events) == 2


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 2]
        assert hist.count == 3
        assert hist.total == pytest.approx(55.5)
        assert (hist.min, hist.max) == (0.5, 50.0)

    def test_merge_pools(self):
        a, b = Histogram(buckets=(1.0,)), Histogram(buckets=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert (a.count, a.counts) == (2, [1])
        with pytest.raises(ValueError, match="buckets"):
            a.merge(Histogram(buckets=(2.0,)))


class TestMetricRegistry:
    def test_counter_labels_order_insensitive(self):
        registry = MetricRegistry()
        registry.inc("solves", labels={"policy": "RHC", "seed": 1})
        registry.inc("solves", 2.0, labels={"seed": 1, "policy": "RHC"})
        assert registry.counter("solves", {"policy": "RHC", "seed": 1}) == 3.0
        assert registry.counter("solves") == 0.0

    def test_gauge_last_write_wins_and_merge(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.set_gauge("gap", 0.5)
        a.inc("n")
        b.set_gauge("gap", 0.25)
        b.inc("n", 2)
        b.observe("iters", 12.0)
        a.merge(b)
        assert a.gauge("gap") == 0.25
        assert a.counter("n") == 3.0
        assert a.histogram("iters").count == 1

    def test_to_dict_renders_label_keys(self):
        registry = MetricRegistry()
        registry.inc("solves", labels={"policy": "RHC"})
        payload = registry.to_dict()
        assert payload["counters"] == {"solves{policy=RHC}": 1.0}


class TestRecorder:
    def test_emit_numbers_consecutively(self):
        recorder = Recorder()
        recorder.emit("slot_start", slot=0)
        recorder.emit("slot_end", slot=0, total=1.0)
        assert [e.seq for e in recorder.events] == [0, 1]
        assert len(recorder) == 2

    def test_merge_renumbers_and_folds_metrics(self):
        parent, child = Recorder(), Recorder()
        parent.emit("slot_start", slot=0)
        child.emit("slot_end", slot=0, total=2.0)
        child.inc("windows")
        parent.merge(child)
        assert [e.seq for e in parent.events] == [0, 1]
        assert parent.events[1].kind == "slot_end"
        assert parent.metrics.counter("windows") == 1.0
        validate_trace(parent.events)

    def test_ambient_activation(self):
        assert current_recorder() is None
        emit("slot_start", slot=0)  # silently dropped
        inc("n")
        set_gauge("g", 1.0)
        recorder = Recorder()
        with record_into(recorder):
            assert current_recorder() is recorder
            emit("slot_start", slot=0)
            inc("n")
        assert current_recorder() is None
        assert len(recorder.events) == 1
        assert recorder.metrics.counter("n") == 1.0

    def test_slot_and_label_scopes(self):
        recorder = Recorder()
        with record_into(recorder), slot_scope(5), label_scope(policy="RHC"):
            emit("solve_done", iterations=3)
            emit("solve_done", slot=7, policy="LRFU")  # explicit wins
        first, second = recorder.events
        assert first.slot == 5 and first.data["policy"] == "RHC"
        assert second.slot == 7 and second.data["policy"] == "LRFU"

    def test_log_bridge_routes_repro_records(self):
        import logging

        # the bridge handler sits on the "repro" logger; the record must
        # clear the logger's effective level to reach it (the CLI sets
        # INFO for --verbose, tests do it explicitly)
        logger = logging.getLogger("repro")
        previous = logger.level
        logger.setLevel(logging.INFO)
        try:
            recorder = Recorder()
            with record_into(recorder):
                logging.getLogger("repro.sim.runner").info("hello %d", 7)
            outside = Recorder()  # not ambient: nothing routed
            logging.getLogger("repro.sim.runner").info("dropped")
        finally:
            logger.setLevel(previous)
        kinds = [e.kind for e in recorder.events]
        assert kinds == ["log"]
        data = recorder.events[0].data
        assert data["message"] == "hello 7"
        assert data["logger"] == "repro.sim.runner"
        assert data["level"] == "INFO"
        assert outside.events == []


class TestExporters:
    @staticmethod
    def _recorder() -> Recorder:
        recorder = Recorder()
        recorder.emit("slot_start", slot=0, policy="RHC", demand=2.0)
        recorder.emit("slot_end", slot=0, policy="RHC", total=5.0, bs=3.0)
        recorder.emit("slot_end", slot=1, policy="RHC", total=4.0, sbs=1.0)
        recorder.inc("window_solves", labels={"controller": "RHC"})
        recorder.observe("solve_iterations", 12.0)
        return recorder

    def test_trace_round_trip(self, tmp_path):
        recorder = self._recorder()
        path = write_trace(tmp_path / "run.jsonl", recorder)
        events = read_trace(path)
        assert events == recorder.events
        assert trace_digest(events) == trace_digest(recorder.events)

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = write_trace(tmp_path / "empty.jsonl", Recorder())
        assert path.read_text() == ""
        assert read_trace(path) == []

    def test_read_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq":0,"kind":"slot_start","slot":0,"data":{}}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            read_trace(path)

    def test_prometheus_snapshot_format(self):
        recorder = self._recorder()
        text = prometheus_snapshot(recorder.metrics)
        assert "# TYPE window_solves_total counter" in text
        assert 'window_solves_total{controller="RHC"} 1' in text
        assert "# TYPE solve_iterations histogram" in text
        assert 'solve_iterations_bucket{le="+Inf"} 1' in text
        assert "solve_iterations_sum 12" in text
        assert "solve_iterations_count 1" in text

    def test_slot_series_csv_unions_columns(self):
        text = slot_series_csv(self._recorder().events)
        lines = text.splitlines()
        assert lines[0] == "slot,bs,policy,sbs,total"
        assert lines[1] == "0,3.0,RHC,,5.0"
        assert lines[2] == "1,,RHC,1.0,4.0"

    def test_manifest_contents_and_validation(self, tmp_path):
        recorder = self._recorder()
        manifest = run_manifest(
            seed=7,
            config={"horizon": 4, "beta": 50.0},
            events=recorder.events,
            fault_schedule={"events": []},
        )
        validate_manifest(manifest)
        assert manifest["seed"] == 7
        assert manifest["config_hash"] == config_digest({"beta": 50.0, "horizon": 4})
        assert manifest["trace"]["events"] == 3
        assert manifest["trace"]["kinds"] == {"slot_end": 2, "slot_start": 1}
        assert manifest["trace"]["digest"] == trace_digest(recorder.events)
        assert manifest["fault_schedule_digest"] is not None
        for pkg in ("python", "numpy", "scipy", "repro"):
            assert pkg in manifest["packages"]
        # executor-invariance: nothing in the manifest names a backend
        assert "executor" not in json.dumps(manifest)

        path = write_manifest(manifest_path_for(tmp_path / "run.jsonl"), manifest)
        assert path.name == "run.manifest.json"
        validate_manifest(json.loads(path.read_text()))

    def test_validate_manifest_rejects_missing_fields(self):
        manifest = run_manifest(seed=1, config={})
        del manifest["packages"]
        with pytest.raises(ConfigurationError, match="missing fields"):
            validate_manifest(manifest)


class TestConvergenceRecorder:
    def test_columns_fixed_by_first_record(self):
        recorder = ConvergenceRecorder("demo")
        recorder.record(gap=1.0, step=0.5)
        with pytest.raises(ConfigurationError, match="differ"):
            recorder.record(gap=0.5)
        trace = recorder.freeze()
        assert trace.columns == ("gap", "step")
        assert trace.series("gap") == (1.0,)
        assert trace.final("step") == 0.5

    def test_unknown_column_rejected(self):
        trace = ConvergenceTrace("demo", ("gap",), ((1.0,),))
        with pytest.raises(ConfigurationError, match="no column"):
            trace.series("missing")

    def test_dict_round_trip(self):
        recorder = ConvergenceRecorder("demo")
        recorder.record(gap=1.0)
        recorder.record(gap=0.5)
        trace = recorder.freeze()
        assert ConvergenceTrace.from_dict(trace.to_dict()) == trace


class TestFistaTrace:
    def test_objective_monotone_non_increasing_on_convex_instance(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(12, 8))
        Q = A.T @ A + 0.1 * np.eye(8)
        b = rng.normal(size=8)

        recorder = ConvergenceRecorder("fista")
        result = minimize_fista(
            lambda x: 0.5 * float(x @ Q @ x) - float(b @ x),
            lambda x: Q @ x - b,
            lambda x: np.clip(x, 0.0, None),
            np.ones(8),
            tol=1e-10,
            recorder=recorder,
        )
        assert result.converged
        assert result.trace is not None
        assert result.trace.algorithm == "fista"
        # accepted iterates only: restart iterations are not recorded
        objectives = np.array(result.trace.series("objective"))
        assert 0 < len(objectives) <= result.iterations
        assert np.all(np.diff(objectives) <= 1e-12)
        assert result.trace.final("objective") == pytest.approx(result.objective)

    def test_trace_absent_without_recorder(self):
        result = minimize_fista(
            lambda x: float(x @ x),
            lambda x: 2 * x,
            lambda x: x,
            np.ones(3),
        )
        assert result.trace is None


class TestSubgradientTrace:
    def test_dual_gap_trace_shrinks_below_tolerance(self, rng):
        # slot-separable instance (no replacement cost): the duality gap of
        # the integral caching vanishes, so the recorded gap closes fully
        from repro.core.problem import JointProblem
        from repro.network.topology import single_cell_network
        from repro.workload.demand import paper_demand

        net = single_cell_network(
            num_items=4, cache_size=2, bandwidth=2.0, replacement_cost=0.0,
            omega_bs=rng.uniform(0.1, 1.0, 3),
        )
        demand = paper_demand(3, 3, 4, rng=rng, density_range=(0.5, 3.0))
        problem = JointProblem(net, demand.rates)
        result = solve_primal_dual(problem, max_iter=400, gap_tol=1e-2)
        assert result.converged
        trace = result.convergence
        assert trace is not None
        assert trace.algorithm == "subgradient"
        assert trace.columns == DUAL_ASCENT_COLUMNS
        gaps = trace.series("gap")
        assert len(gaps) == result.iterations
        assert gaps[-1] <= 1e-2
        assert gaps[-1] < gaps[0]
        # the certified lower bound never regresses (running max)
        lower = trace.series("lower_bound")
        finite = [v for v in lower if np.isfinite(v)]
        assert finite and finite == sorted(finite)
        assert result.lower_bound == pytest.approx(finite[-1])

    def test_solve_done_event_emitted_when_recording(self, tiny_problem):
        recorder = Recorder()
        with record_into(recorder):
            result = solve_primal_dual(tiny_problem, max_iter=50, gap_tol=1e-4)
        solve_events = [e for e in recorder.events if e.kind == "solve_done"]
        assert len(solve_events) == 1
        data = solve_events[0].data
        assert data["iterations"] == result.iterations
        assert data["converged"] == result.converged


class TestDashboard:
    def test_empty_trace_still_renders(self):
        text = render_trace_dashboard([])
        assert "no slot_end events" in text

    def test_dashboard_charts_per_policy_cost(self):
        recorder = Recorder()
        for policy in ("RHC", "LRFU"):
            for slot in range(4):
                recorder.emit(
                    "slot_end",
                    slot=slot,
                    policy=policy,
                    total=10.0 + slot + (5.0 if policy == "LRFU" else 0.0),
                )
        recorder.emit("fault_injected", slot=1)
        recorder.emit("fault_cleared", slot=2)
        text = render_trace_dashboard(recorder.events)
        assert "RHC" in text and "LRFU" in text
        assert "faults: injected@1, cleared@2" in text
        assert "slot_end" in text

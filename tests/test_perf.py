"""Tests for the shared parallel-execution layer (``repro.perf``)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.perf.executor import (
    EXECUTOR_ENV,
    WORKERS_ENV,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_workers,
    get_executor,
    map_recorded,
    parse_spec,
    resolve_executor,
)
from repro.perf.profiler import profile_bench, render_profile
from repro.perf.timers import StageTimers


def _square(x: int) -> int:
    return x * x


def _resolved_kind(_item: object) -> str:
    """What a nested get_executor() resolves to inside a worker."""
    return get_executor("process:4").kind


class TestParseSpec:
    def test_kind_only(self):
        assert parse_spec("serial") == ("serial", None)
        assert parse_spec("thread") == ("thread", None)
        assert parse_spec("Process") == ("process", None)

    def test_kind_and_count(self):
        assert parse_spec("process:4") == ("process", 4)
        assert parse_spec("thread:2") == ("thread", 2)

    @pytest.mark.parametrize("bad", ["fork", "process:zero", "thread:0", ""])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ConfigurationError):
            parse_spec(bad)


class TestExecutors:
    def test_serial_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_thread_map_preserves_order(self):
        with ThreadExecutor(2) as ex:
            assert ex.map(_square, list(range(20))) == [i * i for i in range(20)]

    def test_process_map_preserves_order(self):
        with ProcessExecutor(2) as ex:
            assert ex.map(_square, list(range(8))) == [i * i for i in range(8)]

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_rejects_nonpositive_workers(self, cls):
        with pytest.raises(ConfigurationError):
            cls(0)

    def test_thread_worker_resolves_serial(self):
        with ThreadExecutor(2) as ex:
            kinds = ex.map(_resolved_kind, [None, None])
        assert kinds == ["serial", "serial"]

    def test_process_worker_resolves_serial(self):
        with ProcessExecutor(2) as ex:
            kinds = ex.map(_resolved_kind, [None, None])
        assert kinds == ["serial", "serial"]


class TestSelection:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)

    def test_default_is_serial(self):
        assert get_executor().kind == "serial"

    def test_executor_instance_passes_through(self):
        ex = SerialExecutor()
        assert get_executor(ex) is ex
        assert resolve_executor(ex) is ex

    def test_spec_string(self):
        ex = get_executor("thread:3")
        assert ex.kind == "thread" and ex.workers == 3

    def test_spec_serial_short_circuits(self):
        assert get_executor("serial").kind == "serial"
        assert get_executor("process:1").kind == "serial"

    def test_workers_env_selects_process(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        ex = get_executor()
        assert ex.kind == "process" and ex.workers == 3

    def test_executor_env_spec(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread:2")
        ex = get_executor()
        assert ex.kind == "thread" and ex.workers == 2

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread:2")
        assert get_executor("serial").kind == "serial"

    def test_shared_pool_reused(self):
        assert get_executor("thread:3") is get_executor("thread:3")

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert default_workers() == 7
        monkeypatch.setenv(WORKERS_ENV, "x")
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_default_workers_without_env_positive(self):
        assert default_workers() >= 1

    def test_resolve_none_is_serial(self):
        ex = resolve_executor(None)
        assert isinstance(ex, Executor) and ex.kind == "serial"


class TestStageTimers:
    def test_add_and_read(self):
        t = StageTimers()
        t.add("p1", 0.5)
        t.add("p1", 0.25, calls=2)
        assert t.seconds("p1") == pytest.approx(0.75)
        assert t.calls("p1") == 3
        assert t.seconds("missing") == 0.0
        assert t.calls("missing") == 0

    def test_stage_context_accumulates(self):
        t = StageTimers()
        with t.stage("p2"):
            pass
        with t.stage("p2"):
            pass
        assert t.calls("p2") == 2
        assert t.seconds("p2") >= 0.0

    def test_merge(self):
        a, b = StageTimers(), StageTimers()
        a.add("p1", 1.0)
        b.add("p1", 2.0)
        b.add("repair", 0.5)
        a.merge(b)
        assert a.seconds("p1") == pytest.approx(3.0)
        assert a.seconds("repair") == pytest.approx(0.5)

    def test_merge_preserves_call_counts(self):
        a, b = StageTimers(), StageTimers()
        a.add("p1", 1.0, calls=3)
        b.add("p1", 2.0, calls=2)
        a.merge(b)
        assert a.calls("p1") == 5

    def test_merge_accepts_seconds_mapping(self):
        t = StageTimers()
        t.merge({"p1": 1.5, "repair": 0.5})
        assert t.seconds("p1") == pytest.approx(1.5)
        assert t.calls("p1") == 1

    def test_merge_accepts_pairs_mapping(self):
        t = StageTimers()
        t.merge({"p1": (1.5, 4), "repair": [0.5, 2]})
        assert t.seconds("p1") == pytest.approx(1.5)
        assert t.calls("p1") == 4
        assert t.calls("repair") == 2

    def test_as_pairs_round_trips_through_json(self):
        import json

        a = StageTimers()
        a.add("p1", 1.25, calls=3)
        a.add("repair", 0.5, calls=2)
        payload = json.loads(json.dumps(a.as_pairs()))
        b = StageTimers()
        b.merge(payload)
        assert b.as_pairs() == a.as_pairs()
        assert b.calls("p1") == 3 and b.calls("repair") == 2

    def test_as_dict_and_report(self):
        t = StageTimers()
        t.add("p1", 1.25)
        d = t.as_dict()
        assert d == {"p1": pytest.approx(1.25)}
        assert "p1" in t.report()


def _emit_square(x: int) -> int:
    """Task used by TestMapRecorded (module-level so process pools pickle it)."""
    from repro.obs.recorder import emit, inc

    emit("slot_start", slot=x, task=x)
    inc("tasks")
    return x * x


class TestMapRecorded:
    @pytest.mark.parametrize("spec", ["serial", "thread:2", "process:2"])
    def test_results_and_trace_in_input_order(self, spec):
        from repro.obs.recorder import Recorder

        recorder = Recorder()
        results = map_recorded(get_executor(spec), _emit_square, [3, 1, 2], recorder)
        assert results == [9, 1, 4]
        # events arrive renumbered in task-input order, not completion order
        assert [e.data["task"] for e in recorder.events] == [3, 1, 2]
        assert [e.seq for e in recorder.events] == [0, 1, 2]
        assert recorder.metrics.counter("tasks") == 3.0

    def test_parent_recorder_not_ambient_in_tasks(self):
        from repro.obs.recorder import Recorder, record_into

        parent = Recorder()
        with record_into(parent):
            recorder = Recorder()
            map_recorded(get_executor("serial"), _emit_square, [1], recorder)
        # task events land in the per-task recorders (merged into `recorder`),
        # never directly in the ambient parent
        assert parent.events == []
        assert [e.kind for e in recorder.events] == ["slot_start"]


class TestProfiler:
    """profile_bench with an injected runner, and table determinism."""

    def test_injected_runner_writes_table(self, tmp_path):
        calls = []

        def runner():
            calls.append(1)
            sorted(range(500), key=lambda v: -v)

        out = profile_bench("bench_fake.py", tmp_path, runner=runner, top=10)
        assert calls == [1]
        # Leg name is normalized and the artifact lands in results/.
        assert out == tmp_path / "results" / "PROFILE_fake.txt"
        table = out.read_text()
        assert "functions by cumulative time" in table
        assert f"{'ncalls':>12} {'tottime':>10} {'cumtime':>10}" in table

    def test_out_dir_override(self, tmp_path):
        target = tmp_path / "elsewhere"
        out = profile_bench(
            "fake", tmp_path, runner=lambda: None, out_dir=target
        )
        assert out == target / "PROFILE_fake.txt"
        assert out.is_file()

    def test_render_is_deterministic_and_relative(self, tmp_path):
        import cProfile
        import pstats

        def work():
            return [str(v) for v in range(200)]

        prof = cProfile.Profile()
        prof.enable()
        work()
        prof.disable()
        stats = pstats.Stats(prof)
        a = render_profile(stats, repo_root=tmp_path, top=5, header="h")
        b = render_profile(stats, repo_root=tmp_path, top=5, header="h")
        assert a == b  # stable sort: identical rows in identical order
        assert a.startswith("h\n")
        # Interpreter-install prefixes never leak into the table.
        assert "site-packages/" not in a

    def test_unknown_leg_lists_available(self, tmp_path):
        (tmp_path / "bench_one.py").write_text("")
        (tmp_path / "bench_two.py").write_text("")
        with pytest.raises(FileNotFoundError, match="one, two"):
            profile_bench("zzz", tmp_path)

    def test_failing_leg_raises(self, tmp_path):
        def runner():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            profile_bench("fake", tmp_path, runner=runner)
        # The profiler must not leave a stale artifact behind on failure.
        assert not (tmp_path / "results" / "PROFILE_fake.txt").exists()

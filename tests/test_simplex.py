"""Tests for the in-house bounded-variable simplex and the LP interface."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import (
    ConfigurationError,
    InfeasibleProblemError,
    UnboundedProblemError,
)
from repro.optim.linprog import solve_lp
from repro.optim.simplex import solve_simplex


class TestSolveSimplex:
    def test_textbook_problem(self):
        # min -x - 2y st x + y <= 3 (as equality with slack), 0<=x,y<=2.
        c = np.array([-1.0, -2.0, 0.0])
        A = np.array([[1.0, 1.0, 1.0]])
        b = np.array([3.0])
        lo = np.zeros(3)
        hi = np.array([2.0, 2.0, np.inf])
        res = solve_simplex(c, A, b, lo, hi)
        assert res.objective == pytest.approx(-5.0)
        np.testing.assert_allclose(res.x[:2], [1.0, 2.0], atol=1e-8)

    def test_bound_flip_only_problem(self):
        # No constraint pressure: optimum at bounds.
        c = np.array([1.0, -1.0])
        A = np.array([[1.0, 1.0]])
        b = np.array([1.5])
        res = solve_simplex(c, A, b, np.zeros(2), np.ones(2))
        assert res.objective == pytest.approx(0.5 - 1.0)

    def test_infeasible_detected(self):
        c = np.zeros(2)
        A = np.array([[1.0, 1.0]])
        b = np.array([5.0])
        with pytest.raises(InfeasibleProblemError):
            solve_simplex(c, A, b, np.zeros(2), np.ones(2))

    def test_unbounded_detected(self):
        # min -x st x - y = 0, x,y >= 0 unbounded.
        c = np.array([-1.0, 0.0])
        A = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        with pytest.raises(UnboundedProblemError):
            solve_simplex(c, A, b, np.zeros(2), np.full(2, np.inf))

    def test_redundant_rows_handled(self):
        c = np.array([1.0, 1.0])
        A = np.array([[1.0, 1.0], [2.0, 2.0]])
        b = np.array([1.0, 2.0])
        res = solve_simplex(c, A, b, np.zeros(2), np.ones(2))
        assert res.objective == pytest.approx(1.0)

    def test_degenerate_problem_terminates(self):
        # Two constraints bind x1 at the same degenerate vertex.
        c = np.array([-1.0, -1.0, 0.0, 0.0])
        A = np.array([[1.0, 0.0, 1.0, 0.0], [1.0, 0.0, 0.0, 1.0]])
        b = np.array([1.0, 1.0])
        hi = np.array([np.inf, 1.0, np.inf, np.inf])
        res = solve_simplex(c, A, b, np.zeros(4), hi)
        assert res.objective == pytest.approx(-2.0)

    def test_dimension_validation(self):
        with pytest.raises(ConfigurationError):
            solve_simplex(
                np.zeros(2), np.ones((1, 3)), np.ones(1), np.zeros(2), np.ones(2)
            )

    def test_requires_finite_lower_bounds(self):
        with pytest.raises(ConfigurationError):
            solve_simplex(
                np.zeros(1),
                np.ones((1, 1)),
                np.zeros(1),
                np.array([-np.inf]),
                np.array([np.inf]),
            )


class TestSolveLP:
    def test_box_only(self):
        res = solve_lp(np.array([1.0, -1.0]), lo=0.0, hi=1.0, backend="simplex")
        np.testing.assert_allclose(res.x, [0.0, 1.0])
        assert res.objective == pytest.approx(-1.0)

    def test_box_only_unbounded(self):
        with pytest.raises(UnboundedProblemError):
            solve_lp(np.array([-1.0]), lo=0.0, hi=np.inf, backend="simplex")

    def test_mixed_eq_and_ub(self):
        # min x1 + x2 st x1 + x2 >= 1 (as -x1 - x2 <= -1), x1 - x2 = 0.2.
        c = np.ones(2)
        res_own = solve_lp(
            c,
            A_ub=np.array([[-1.0, -1.0]]),
            b_ub=np.array([-1.0]),
            A_eq=np.array([[1.0, -1.0]]),
            b_eq=np.array([0.2]),
            lo=0.0,
            hi=1.0,
            backend="simplex",
        )
        res_sp = solve_lp(
            c,
            A_ub=np.array([[-1.0, -1.0]]),
            b_ub=np.array([-1.0]),
            A_eq=np.array([[1.0, -1.0]]),
            b_eq=np.array([0.2]),
            lo=0.0,
            hi=1.0,
            backend="scipy",
        )
        assert res_own.objective == pytest.approx(res_sp.objective, abs=1e-7)

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            solve_lp(np.zeros(1), backend="mystery")  # type: ignore[arg-type]

    def test_scipy_infeasible(self):
        with pytest.raises(InfeasibleProblemError):
            solve_lp(
                np.zeros(2),
                A_eq=np.array([[1.0, 1.0]]),
                b_eq=np.array([5.0]),
                lo=0.0,
                hi=1.0,
                backend="scipy",
            )


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_simplex_agrees_with_highs_on_random_feasible_lps(seed: int):
    """Property: the in-house simplex matches HiGHS on random bounded LPs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    m = int(rng.integers(1, 4))
    c = rng.normal(size=n)
    A = rng.normal(size=(m, n))
    interior = rng.uniform(0.1, 0.9, size=n)
    b = A @ interior + rng.uniform(0.05, 0.5, size=m)  # strictly feasible
    own = solve_lp(c, A_ub=A, b_ub=b, lo=0.0, hi=1.0, backend="simplex")
    ref = solve_lp(c, A_ub=A, b_ub=b, lo=0.0, hi=1.0, backend="scipy")
    assert own.objective == pytest.approx(ref.objective, abs=1e-6)
    # Feasibility of our solution.
    assert np.all(own.x >= -1e-8) and np.all(own.x <= 1 + 1e-8)
    assert np.all(A @ own.x <= b + 1e-7)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_simplex_equality_lps_match_highs(seed: int):
    """Property: equality-constrained problems also agree with HiGHS."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 7))
    c = rng.normal(size=n)
    A = rng.normal(size=(1, n))
    interior = rng.uniform(0.2, 0.8, size=n)
    b = A @ interior
    own = solve_lp(c, A_eq=A, b_eq=b, lo=0.0, hi=1.0, backend="simplex")
    ref = solve_lp(c, A_eq=A, b_eq=b, lo=0.0, hi=1.0, backend="scipy")
    assert own.objective == pytest.approx(ref.objective, abs=1e-6)

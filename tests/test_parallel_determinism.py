"""Parallel execution must be bit-identical to serial.

The executor layer's contract (see ``repro.perf.executor``) is that the
thread and process backends change wall-clock time only: every fan-out
site reduces in fixed SBS/point order, so ``x``, ``y`` and every cost
number match the serial run exactly — not approximately. These tests pin
that contract on the three fan-out sites: the offline solve (per-SBS
``P1`` fan-out inside Algorithm 1), the online RHC controller (executor
picked up from the environment), and the distributed per-SBS solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributed import solve_distributed
from repro.core.offline import OfflineOptimal
from repro.core.online.base import OnlineSolveSettings
from repro.core.online.rhc import RHC
from repro.core.primal_dual import solve_primal_dual
from repro.network import ContentCatalog, MUClass, Network, SmallBaseStation
from repro.perf.executor import EXECUTOR_ENV, WORKERS_ENV
from repro.scenario import Scenario
from repro.sim.runner import run_policy
from repro.workload.demand import paper_demand
from repro.workload.predictor import PerturbedPredictor

PARALLEL_SPECS = ("thread:2", "process:2")


@pytest.fixture(scope="module")
def two_sbs_scenario() -> Scenario:
    rng = np.random.default_rng(42)
    net = Network(
        ContentCatalog(6),
        (
            SmallBaseStation(0, 2, 4.0, 3.0),
            SmallBaseStation(1, 3, 6.0, 8.0),
        ),
        (
            MUClass(0, 0, 0.8),
            MUClass(1, 0, 0.3),
            MUClass(2, 1, 0.9),
            MUClass(3, 1, 0.5),
            MUClass(4, 1, 0.2),
        ),
    )
    demand = paper_demand(8, 5, 6, rng=rng, density_range=(0.0, 3.0))
    predictor = PerturbedPredictor(demand, eta=0.2, seed=7)
    return Scenario(network=net, demand=demand, predictor=predictor)


def _assert_same_run(a, b) -> None:
    """Exact (bitwise) equality of two RunResults, wall time excepted."""
    assert np.array_equal(a.x, b.x)
    assert np.array_equal(a.y, b.y)
    assert a.cost == b.cost
    assert np.array_equal(a.per_slot_total, b.per_slot_total)
    assert a.solves == b.solves


class TestOfflineDeterminism:
    @pytest.mark.parametrize("spec", PARALLEL_SPECS)
    def test_solve_primal_dual_matches_serial(self, two_sbs_scenario, spec):
        problem = two_sbs_scenario.problem()
        serial = solve_primal_dual(problem, max_iter=25, executor="serial")
        parallel = solve_primal_dual(problem, max_iter=25, executor=spec)
        assert np.array_equal(serial.x, parallel.x)
        assert np.array_equal(serial.y, parallel.y)
        assert serial.cost == parallel.cost
        assert serial.lower_bound == parallel.lower_bound
        assert serial.gap == parallel.gap
        assert serial.iterations == parallel.iterations

    def test_timings_recorded(self, two_sbs_scenario):
        result = solve_primal_dual(two_sbs_scenario.problem(), max_iter=5)
        assert {"p1", "p2", "total"} <= set(result.timings)
        assert result.timings["total"] > 0.0


class TestOnlineDeterminism:
    """RHC has no executor knob; the environment must reach its solves."""

    @pytest.mark.parametrize("spec", PARALLEL_SPECS)
    def test_rhc_matches_serial(self, two_sbs_scenario, spec, monkeypatch):
        policy = RHC(
            window=3, settings=OnlineSolveSettings(max_iter=15, ub_patience=5)
        )
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        serial = run_policy(two_sbs_scenario, policy)
        monkeypatch.setenv(EXECUTOR_ENV, spec)
        parallel = run_policy(two_sbs_scenario, policy)
        _assert_same_run(serial, parallel)

    def test_offline_policy_matches_serial(self, two_sbs_scenario, monkeypatch):
        policy = OfflineOptimal(max_iter=20)
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        serial = run_policy(two_sbs_scenario, policy)
        monkeypatch.setenv(WORKERS_ENV, "2")
        parallel = run_policy(two_sbs_scenario, policy)
        _assert_same_run(serial, parallel)


class TestDistributedDeterminism:
    @pytest.mark.parametrize("spec", PARALLEL_SPECS)
    def test_solve_distributed_matches_serial(self, two_sbs_scenario, spec):
        problem = two_sbs_scenario.problem()
        serial = solve_distributed(problem, max_iter=25, executor="serial")
        parallel = solve_distributed(problem, max_iter=25, executor=spec)
        assert np.array_equal(serial.x, parallel.x)
        assert np.array_equal(serial.y, parallel.y)
        assert serial.cost == parallel.cost
        assert serial.lower_bound == parallel.lower_bound

"""Equivalence properties of the batched solve core.

The batched kernels (DESIGN.md, "Batched solve core") promise that
``RuntimeConfig(batched=...)`` selects *granularity, not semantics*: the
stacked ``P1`` certificate pass and the all-SBS ``P2`` water-fill must
reproduce the per-SBS / per-slot loop paths bit-for-bit wherever the paths
are both exact, and within ``1e-9`` (with equal objectives) where the
reference itself is approximate. These tests pin that contract with
randomized multi-SBS instances — uneven class counts included, so the
zero-cap padding rows of the SBS-major stacking are exercised.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import RuntimeConfig
from repro.core.caching_lp import (
    _objective_single,
    _solve_batched_p1,
    _solve_single_sbs_flow,
    class_prices,
    solve_caching,
)
from repro.core.capped import capped_cancel_stack
from repro.core.load_balancing import (
    _project_blocks_capped,
    _solve_p2_fast,
    _solve_p2_fista,
    _waterfill_reference,
    solve_y_given_x,
)
from repro.core.polish import polish_caching
from repro.core.rounding import optimal_rounding_threshold, round_caching
from repro.core.problem import JointProblem
from repro.network import ContentCatalog, MUClass, Network, SmallBaseStation
from repro.obs import Recorder, record_into
from repro.optim.waterfill import waterfill_batch
from repro.perf.solvecache import SolveCache

BATCHED = RuntimeConfig(batched=True)
LOOPED = RuntimeConfig(batched=False)


def _multi_network(rng, *, N, K, C, beta=2.0, bandwidth=3.0, omega_hat=0.0):
    """N-SBS network with 1-3 classes per SBS (uneven on purpose)."""
    counts = rng.integers(1, 4, size=N)
    classes, cid = [], 0
    for n in range(N):
        for _ in range(counts[n]):
            classes.append(
                MUClass(cid, n, float(rng.uniform(0.1, 1.0)), omega_hat)
            )
            cid += 1
    return Network(
        ContentCatalog(K),
        tuple(SmallBaseStation(n, C, bandwidth, beta) for n in range(N)),
        tuple(classes),
    )


def _multi_problem(rng, *, N, K, T, C, sparsity=0.3, omega_hat=0.0):
    net = _multi_network(rng, N=N, K=K, C=C, omega_hat=omega_hat)
    demand = rng.uniform(0.0, 3.0, size=(T, net.num_classes, K))
    demand *= rng.random(demand.shape) > sparsity
    return JointProblem(network=net, demand=demand)


def _sparse_mu(rng, shape, scale=4.0, sparsity=0.4):
    mu = rng.uniform(0.0, scale, size=shape)
    mu *= rng.random(shape) > sparsity
    return mu


dims = st.tuples(
    st.integers(0, 2**32 - 1),  # numpy seed
    st.integers(2, 4),  # N
    st.integers(3, 8),  # K
    st.integers(1, 4),  # T
    st.integers(1, 3),  # C
)


class TestP2Batched:
    """The all-SBS stacked P2 equals the per-SBS loop, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(dims)
    def test_fast_path_bitwise(self, d):
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        prob = _multi_problem(rng, N=N, K=K, T=T, C=C)
        mu = _sparse_mu(rng, prob.y_shape)
        loop = _solve_p2_fast(prob, mu, batched=False)
        batched = _solve_p2_fast(prob, mu, batched=True)
        assert np.array_equal(loop.y, batched.y)
        assert loop.objective == batched.objective

    @settings(max_examples=15, deadline=None)
    @given(dims)
    def test_fixed_cache_oracle_bitwise(self, d):
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        prob = _multi_problem(rng, N=N, K=K, T=T, C=C)
        x = np.zeros(prob.x_shape)
        for t in range(T):
            for n in range(N):
                x[t, n, rng.choice(K, size=C, replace=False)] = 1.0
        loop = solve_y_given_x(prob, x, config=LOOPED)
        batched = solve_y_given_x(prob, x, config=BATCHED)
        assert np.array_equal(loop.y, batched.y)
        assert loop.objective == batched.objective

    @settings(max_examples=8, deadline=None)
    @given(dims)
    def test_fista_bitwise(self, d):
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        # omega_hat > 0 leaves the closed-form fast path: FISTA engages,
        # where "batched" only changes the projection stacking.
        prob = _multi_problem(rng, N=N, K=K, T=T, C=C, omega_hat=0.1)
        mu = _sparse_mu(rng, prob.y_shape, scale=1.0)
        loop = _solve_p2_fista(prob, mu, batched=False)
        batched = _solve_p2_fista(prob, mu, batched=True)
        assert np.array_equal(loop.y, batched.y)
        assert loop.objective == batched.objective


def _row_objective(alloc, lam, omega, mu, W, scale):
    """P2 row objective in allocation space (what the water-fill minimizes)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(alloc > 0, mu / np.where(lam > 0, lam, 1.0), 0.0)
    residual = W - float((omega * alloc).sum())
    return scale * residual * residual + float((slope * alloc).sum())


def _random_stack(rng, R, J):
    lam = rng.uniform(0.0, 3.0, size=(R, J)) * (rng.random((R, J)) > 0.3)
    frac = rng.uniform(0.0, 1.0, size=(R, J))
    caps = lam * frac  # routing caps never exceed demand volume
    omega = rng.uniform(0.05, 1.0, size=(R, J))
    mu = rng.uniform(0.0, 2.0, size=(R, J)) * (rng.random((R, J)) > 0.4)
    W = (omega * caps).sum(axis=1) * rng.uniform(1.0, 1.5, size=R)
    bandwidths = rng.uniform(0.5, 4.0, size=R)
    return lam, caps, omega, mu, W, bandwidths


class TestWaterfillKernel:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 6), st.integers(1, 9))
    def test_early_exit_bitwise(self, seed, R, J):
        """The bisection early-exit is a no-op on the returned numbers."""
        rng = np.random.default_rng(seed)
        lam, caps, omega, mu, W, bw = _random_stack(rng, R, J)
        full = waterfill_batch(lam, caps, omega, mu, W, bw, 1.0, early_exit=False)
        fast = waterfill_batch(lam, caps, omega, mu, W, bw, 1.0, early_exit=True)
        assert np.array_equal(full[0], fast[0])
        assert np.array_equal(full[1], fast[1])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 5), st.integers(1, 8))
    def test_matches_bisection_reference(self, seed, R, J):
        """Closed form is within 1e-9 of the historical bisection solver,
        and never worse (it is exact where the reference is approximate)."""
        rng = np.random.default_rng(seed)
        lam, caps, _, mu, W, bw = _random_stack(rng, R, J)
        # The reference solver takes one omega row shared by all rows
        # (its rows are the slots of a single SBS).
        omega_row = rng.uniform(0.05, 1.0, size=J)
        omega = np.tile(omega_row, (R, 1))
        scale = float(rng.uniform(0.2, 2.0))
        bw_scalar = float(bw[0])
        alloc, _ = waterfill_batch(
            lam, caps, omega, mu, W, np.full(R, bw_scalar), scale
        )
        ref_alloc, _ = _waterfill_reference(
            lam, caps, omega_row, mu, W, bw_scalar, scale
        )
        for r in range(R):
            got = _row_objective(alloc[r], lam[r], omega[r], mu[r], W[r], scale)
            ref = _row_objective(
                ref_alloc[r], lam[r], omega[r], mu[r], W[r], scale
            )
            tol = 1e-9 * max(1.0, abs(ref))
            assert got <= ref + tol

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 5), st.integers(2, 8))
    def test_zero_cap_columns_inert(self, seed, R, J):
        """Padding columns (zero caps everywhere) cannot change any bit —
        the compression recursion depends on it."""
        rng = np.random.default_rng(seed)
        lam, caps, omega, mu, W, bw = _random_stack(rng, R, J)
        dead = rng.choice(J, size=max(1, J // 2), replace=False)
        caps[:, dead] = 0.0
        alloc, u = waterfill_batch(lam, caps, omega, mu, W, bw, 1.0)
        keep = np.setdiff1d(np.arange(J), dead)
        alloc_c, u_c = waterfill_batch(
            np.ascontiguousarray(lam[:, keep]),
            np.ascontiguousarray(caps[:, keep]),
            np.ascontiguousarray(omega[:, keep]),
            np.ascontiguousarray(mu[:, keep]),
            W, bw, 1.0,
        )
        assert np.array_equal(alloc[:, keep], alloc_c)
        assert np.array_equal(alloc[:, dead], np.zeros((R, dead.size)))
        assert np.array_equal(u, u_c)


class TestProjectionEarlyExit:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 6), st.integers(1, 9))
    def test_bitwise(self, seed, R, J):
        rng = np.random.default_rng(seed)
        v = rng.uniform(-1.0, 2.0, size=(R, J))
        a = rng.uniform(0.0, 3.0, size=(R, J)) * (rng.random((R, J)) > 0.2)
        budgets = rng.uniform(0.5, 4.0, size=R)
        caps = rng.uniform(0.0, 1.0, size=(R, J)) * (rng.random((R, J)) > 0.2)
        full = _project_blocks_capped(v, a, budgets, caps, early_exit=False)
        fast = _project_blocks_capped(v, a, budgets, caps, early_exit=True)
        assert np.array_equal(full, fast)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 6), st.integers(1, 9))
    def test_exact_theta_beats_bisection(self, seed, R, J):
        """The event-sweep theta is feasible and never a worse projection
        (in Euclidean distance) than the bisection reference, beyond the
        1e-9 envelope."""
        rng = np.random.default_rng(seed)
        v = rng.uniform(-1.0, 2.0, size=(R, J))
        a = rng.uniform(0.0, 3.0, size=(R, J)) * (rng.random((R, J)) > 0.2)
        budgets = rng.uniform(0.2, 2.0, size=R)
        caps = rng.uniform(0.0, 1.0, size=(R, J)) * (rng.random((R, J)) > 0.2)
        exact = _project_blocks_capped(v, a, budgets, caps)
        ref = _project_blocks_capped(v, a, budgets, caps, closed_form=False)
        assert (exact >= -1e-12).all()
        assert (exact <= caps + 1e-9).all()
        usage = np.einsum("rj,rj->r", a, exact)
        assert (usage <= budgets * (1 + 1e-9) + 1e-9).all()
        d_exact = ((exact - v) ** 2).sum(axis=1)
        d_ref = ((ref - v) ** 2).sum(axis=1)
        assert (d_exact <= d_ref + 1e-9 * np.maximum(1.0, d_ref)).all()


class TestP1Batched:
    """The stacked certificate pass answers exactly like the flow backend."""

    @settings(max_examples=25, deadline=None)
    @given(dims)
    def test_accepted_solves_match_flow_exactly(self, d):
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        net = _multi_network(rng, N=N, K=K, C=C)
        mu = _sparse_mu(rng, (T, net.num_classes, K), sparsity=0.7)
        prices = class_prices(net, mu)
        x0 = np.zeros((N, K))
        for n in range(N):
            x0[n, rng.choice(K, size=rng.integers(0, C + 1), replace=False)] = 1.0
        accepted = _solve_batched_p1(net, prices, x0, list(range(N)))
        for n, (x_b, obj_b) in accepted.items():
            x_f, obj_f = _solve_single_sbs_flow(
                prices[:, n, :], float(net.sbss[n].replacement_cost),
                int(net.sbss[n].cache_size), x0[n],
            )
            assert np.array_equal(x_b, x_f), f"SBS {n} trajectory differs"
            assert obj_b == obj_f

    @settings(max_examples=15, deadline=None)
    @given(dims, st.booleans())
    def test_solve_caching_batched_vs_loop(self, d, with_cache):
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        net = _multi_network(rng, N=N, K=K, C=C)
        mu = _sparse_mu(rng, (T, net.num_classes, K), sparsity=0.6)
        x0 = np.zeros((N, K))
        loop = solve_caching(
            net, mu, x0, backend="flow", config=LOOPED,
            cache=SolveCache() if with_cache else None,
        )
        batched = solve_caching(
            net, mu, x0, backend="flow", config=BATCHED,
            cache=SolveCache() if with_cache else None,
        )
        assert np.array_equal(loop.x, batched.x)
        assert loop.objective == batched.objective

    @pytest.mark.parametrize("executor", ["serial", "thread:2", "process:2"])
    def test_executors_bitwise(self, rng, executor):
        net = _multi_network(rng, N=3, K=6, C=2)
        mu = _sparse_mu(rng, (3, net.num_classes, 6), sparsity=0.5)
        x0 = np.zeros((3, 6))
        base = solve_caching(net, mu, x0, backend="flow", config=BATCHED)
        other = solve_caching(
            net, mu, x0, backend="flow", executor=executor, config=BATCHED
        )
        assert np.array_equal(base.x, other.x)
        assert base.objective == other.objective

    def test_memo_hit_short_circuits_batch(self, rng):
        """A warm cache answers repeats before the batched pass sees them."""
        net = _multi_network(rng, N=3, K=6, C=2)
        mu = _sparse_mu(rng, (3, net.num_classes, 6))
        x0 = np.zeros((3, 6))
        cache = SolveCache()
        first = solve_caching(net, mu, x0, backend="flow", config=BATCHED, cache=cache)
        misses = cache.misses
        second = solve_caching(net, mu, x0, backend="flow", config=BATCHED, cache=cache)
        assert cache.misses == misses  # all hits the second time
        assert np.array_equal(first.x, second.x)
        assert first.objective == second.objective


class TestQuantizedMemo:
    def test_band_hit_reevaluates_objective(self, rng):
        """A cross-band hit reuses the trajectory but prices the actual
        objective — drift at float-noise level stays within 1e-9."""
        net = _multi_network(rng, N=2, K=6, C=2)
        mu = _sparse_mu(rng, (3, net.num_classes, 6))
        x0 = np.zeros((2, 6))
        cfg = RuntimeConfig(batched=True, quantized_memo=True)
        cache = SolveCache()
        first = solve_caching(net, mu, x0, backend="flow", config=cfg, cache=cache)
        drift = mu * (1.0 + rng.random(mu.shape) * 1e-14)
        second = solve_caching(net, drift, x0, backend="flow", config=cfg, cache=cache)
        assert cache.quant_hits >= 1
        assert np.array_equal(first.x, second.x)
        # The reported objective is exactly the reused trajectory priced
        # against the *drifted* mu, not the stale stored value...
        prices = class_prices(net, drift)
        expected = sum(
            _objective_single(
                prices[:, n, :], float(net.sbss[n].replacement_cost),
                second.x[:, n, :], x0[n],
            )
            for n in range(2)
        )
        assert second.objective == pytest.approx(expected, abs=1e-12)
        # ...and the trajectory is within the 1e-9 envelope of a cold solve.
        cold = solve_caching(net, drift, x0, backend="flow", config=BATCHED)
        assert second.objective <= cold.objective + 1e-9 * max(
            1.0, abs(cold.objective)
        )

    def test_exact_repeat_is_not_counted_banded(self, rng):
        net = _multi_network(rng, N=2, K=5, C=1)
        mu = _sparse_mu(rng, (2, net.num_classes, 5))
        x0 = np.zeros((2, 5))
        cfg = RuntimeConfig(batched=True, quantized_memo=True)
        cache = SolveCache()
        solve_caching(net, mu, x0, backend="flow", config=cfg, cache=cache)
        solve_caching(net, mu, x0, backend="flow", config=cfg, cache=cache)
        assert cache.quant_hits == 0  # same bytes, not cross-band reuse
        assert cache.hits == 2


class TestRoundingRepair:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 4), st.integers(2, 9))
    def test_stacked_repair_matches_loop(self, seed, N, K):
        """The vectorized capacity repair equals the per-(t, n) loop."""
        rng = np.random.default_rng(seed)
        T = int(rng.integers(1, 4))
        # Cluster values near the threshold so over-capacity rows (and
        # ties) actually occur.
        x_frac = rng.choice(
            [0.0, 0.3, 0.39, 0.4, 0.8, 1.0], size=(T, N, K)
        ) * np.ones((T, N, K))
        caps = rng.integers(1, max(2, K // 2), size=N)
        got = round_caching(x_frac, caps)
        expected = np.where(x_frac >= optimal_rounding_threshold(), 1.0, 0.0)
        for n in range(N):
            cap = int(caps[n])
            for t in range(T):
                sel = np.flatnonzero(expected[t, n] > 0.5)
                if sel.size > cap:
                    keep = sel[
                        np.argsort(-x_frac[t, n, sel], kind="stable")
                    ][:cap]
                    expected[t, n] = 0.0
                    expected[t, n, keep] = 1.0
        assert np.array_equal(got, expected)
        assert np.all((got > 0.5).sum(axis=2) <= caps[None, :])


class TestPolishBatched:
    @settings(max_examples=10, deadline=None)
    @given(dims)
    def test_batched_vs_loop_bitwise(self, d):
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        prob = _multi_problem(rng, N=N, K=K, T=T, C=C)
        x = np.zeros(prob.x_shape)
        for t in range(T):
            for n in range(N):
                x[t, n, rng.choice(K, size=C, replace=False)] = 1.0
        x_l, y_l, cost_l = polish_caching(prob, x, config=LOOPED)
        x_b, y_b, cost_b = polish_caching(prob, x, config=BATCHED)
        assert np.array_equal(x_l, x_b)
        assert np.array_equal(y_l, y_b)
        assert cost_l.total == cost_b.total


def _bound_stack(rng, R, J, G=2, bw_frac=0.4):
    """A row stack whose every surviving row is bandwidth-bound.

    Two-phase: solve once with effectively infinite bandwidth to learn each
    row's unconstrained fill, then starve every row to ``bw_frac`` of it —
    the adversarial regime where the closed-form parametric solve carries
    the whole batch. ``G`` distinct positive omegas per row (``G <= 2`` is
    the certified closed-form family; ``G >= 3`` must fall back, counted).
    """
    lam = rng.exponential(1.0, (R, J)) + 1e-3
    omvals = np.sort(rng.uniform(0.2, 2.0, (R, G)), axis=1)
    gi = rng.integers(0, G, (R, J))
    omega = np.take_along_axis(omvals, gi, axis=1)
    mu = rng.exponential(0.5, (R, J))
    mu[rng.random((R, J)) < 0.3] = 0.0
    caps = lam * rng.uniform(0.1, 1.0, (R, J))
    caps[rng.random((R, J)) < 0.15] = 0.0
    # Rows whose every positive-cap item has zero slope take the
    # single-pass greedy shortcut and are (by design) not counted as
    # bound rows — force one sloped, capped item per row so every
    # surviving row really enters the bound stage.
    anchor = np.arange(R)
    mu[anchor, 0] = np.maximum(mu[anchor, 0], 0.1)
    caps[anchor, 0] = np.maximum(caps[anchor, 0], 0.5 * lam[anchor, 0])
    W = (lam * omega).sum(axis=1) * rng.uniform(0.3, 1.2, R)
    unconstrained, _ = waterfill_batch(
        lam, caps, omega, mu, W, np.full(R, 1e18), 1.0
    )
    totals = unconstrained.sum(axis=1)
    keep = totals > 0
    bw = totals[keep] * bw_frac
    return lam[keep], caps[keep], omega[keep], mu[keep], W[keep], bw


_P2_COUNTERS = ("p2_bw_bound_rows", "p2_bw_closed_form", "p2_bisection_fallbacks")


def _counters(run):
    rec = Recorder()
    with record_into(rec):
        out = run()
    return out, {name: rec.metrics.counter(name) for name in _P2_COUNTERS}


class TestBwBoundClosedForm:
    """Exactness and accounting of the closed-form bandwidth-bound solve."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(2, 25),
        st.integers(2, 18),
        st.sampled_from([1, 2]),
        st.floats(0.05, 0.95),
    )
    def test_feasible_tight_and_never_worse(self, seed, R, J, G, bw_frac):
        """On an all-bound stack the closed form stays feasible, exhausts
        the budget (complementary slackness: the bound multiplier is
        positive, so the constraint is tight), and is never worse than a
        deep bisection beyond the 1e-9 relative envelope."""
        rng = np.random.default_rng(seed)
        lam, caps, omega, mu, W, bw = _bound_stack(rng, R, J, G, bw_frac)
        if lam.shape[0] == 0:
            return
        (out, counters) = _counters(
            lambda: waterfill_batch(lam, caps, omega, mu, W, bw, 1.0)
        )
        alloc, u = out
        rows = lam.shape[0]
        assert counters["p2_bw_bound_rows"] == rows
        # Accounting identity: certified closed-form solves plus counted
        # bisection fallbacks cover every bound row (degenerate rows may
        # legitimately fail the certificate and fall back).
        assert (
            counters["p2_bw_closed_form"] + counters["p2_bisection_fallbacks"]
            == rows
        )
        assert (alloc >= 0.0).all()
        assert (alloc <= caps * (1 + 1e-12) + 1e-12).all()
        sums = alloc.sum(axis=1)
        assert (sums <= bw * (1 + 1e-9) + 1e-12).all()
        # Complementary slackness: the unconstrained fill strictly exceeds
        # bw, so the budget multiplier is positive and the optimum sits on
        # the hyperplane. Closed-form rows are exact; when a fallback row
        # is present its bisection is tight only to its bracket width.
        if counters["p2_bisection_fallbacks"] == 0:
            assert (sums >= bw * (1 - 1e-9) - 1e-12).all()
        else:
            assert (sums >= bw * (1 - 1e-6) - 1e-9).all()
        deep, _ = waterfill_batch(
            lam, caps, omega, mu, W, bw, 1.0,
            closed_form=False, bisection_iters=60,
        )
        for r in range(rows):
            got = _row_objective(alloc[r], lam[r], omega[r], mu[r], W[r], 1.0)
            ref = _row_objective(deep[r], lam[r], omega[r], mu[r], W[r], 1.0)
            assert got <= ref + 1e-9 * max(1.0, abs(ref))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(2, 12), st.integers(3, 14))
    def test_three_group_rows_fall_back_counted(self, seed, R, J):
        """G = 3 is outside the certified family: every bound row must take
        the (column-compressed) bisection fallback, bit-identical to the
        closed_form=False path, and be counted."""
        rng = np.random.default_rng(seed)
        lam, caps, omega, mu, W, bw = _bound_stack(rng, R, J, G=3)
        if lam.shape[0] == 0:
            return
        # Rows where fewer than 3 omega groups survive the cap mask may
        # still be solved closed-form; only the accounting total is fixed.
        (out, counters) = _counters(
            lambda: waterfill_batch(lam, caps, omega, mu, W, bw, 1.0)
        )
        rows = lam.shape[0]
        assert counters["p2_bw_bound_rows"] == rows
        assert (
            counters["p2_bw_closed_form"] + counters["p2_bisection_fallbacks"]
            == rows
        )
        # Rows with more than two surviving omega groups must all have
        # fallen back (the certified families only cover G <= 2).
        g_counts = [
            np.unique(omega[r][(caps[r] > 0) & (omega[r] > 0)]).size
            for r in range(rows)
        ]
        assert counters["p2_bisection_fallbacks"] >= sum(g > 2 for g in g_counts)
        # Fallback rows reuse the bisection verbatim, so when everything
        # fell back the outputs must match the closed_form=False bits.
        ref = waterfill_batch(lam, caps, omega, mu, W, bw, 1.0, closed_form=False)
        if counters["p2_bw_closed_form"] == 0:
            assert np.array_equal(out[0], ref[0])
            assert np.array_equal(out[1], ref[1])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(2, 10), st.integers(2, 10))
    def test_padding_invariance_on_bound_stack(self, seed, R, J):
        """Order-preserving zero-cap padding cannot change any bit of the
        closed-form bound solve (the layout property the batched/loop
        equivalence rests on)."""
        rng = np.random.default_rng(seed)
        lam, caps, omega, mu, W, bw = _bound_stack(rng, R, J)
        if lam.shape[0] == 0:
            return
        rows = lam.shape[0]
        alloc, u = waterfill_batch(lam, caps, omega, mu, W, bw, 1.0)
        # Interleave dead columns at random positions, preserving order.
        width = J + int(rng.integers(1, J + 1))
        keep = np.sort(rng.choice(width, size=J, replace=False))
        lam_p = np.zeros((rows, width))
        caps_p = np.zeros((rows, width))
        om_p = np.zeros((rows, width))
        mu_p = np.zeros((rows, width))
        lam_p[:, keep], caps_p[:, keep] = lam, caps
        om_p[:, keep], mu_p[:, keep] = omega, mu
        alloc_p, u_p = waterfill_batch(lam_p, caps_p, om_p, mu_p, W, bw, 1.0)
        assert np.array_equal(alloc_p[:, keep], alloc)
        assert np.array_equal(u_p, u)
        assert not alloc_p[:, np.setdiff1d(np.arange(width), keep)].any()

    @settings(max_examples=12, deadline=None)
    @given(dims)
    def test_starved_batched_vs_loop_bitwise(self, d):
        """Batched vs loop bit-identity under bandwidth starvation — the
        regime where the closed form (not the slack scan) produces the
        returned rows."""
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        prob = _multi_problem(rng, N=N, K=K, T=T, C=C)
        starved = JointProblem(
            network=Network(
                prob.network.catalog,
                tuple(
                    SmallBaseStation(
                        s.sbs_id, s.cache_size, 0.4, s.replacement_cost
                    )
                    for s in prob.network.sbss
                ),
                prob.network.mu_classes,
            ),
            demand=prob.demand,
        )
        mu = _sparse_mu(rng, starved.y_shape)
        (loop, loop_c) = _counters(
            lambda: _solve_p2_fast(starved, mu, batched=False)
        )
        (batched, batched_c) = _counters(
            lambda: _solve_p2_fast(starved, mu, batched=True)
        )
        assert np.array_equal(loop.y, batched.y)
        assert loop.objective == batched.objective
        assert loop_c == batched_c
        assert (
            loop_c["p2_bw_closed_form"] + loop_c["p2_bisection_fallbacks"]
            == loop_c["p2_bw_bound_rows"]
        )

    @settings(max_examples=8, deadline=None)
    @given(dims, st.booleans())
    def test_starved_solve_caching_cache_and_executors(self, d, with_cache):
        """The end-to-end solve under starvation is invariant to the memo
        cache and the executor, bit for bit."""
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        net = _multi_network(rng, N=N, K=K, C=C, bandwidth=0.4)
        mu = _sparse_mu(rng, (T, net.num_classes, K), sparsity=0.6)
        x0 = np.zeros((N, K))
        base = solve_caching(net, mu, x0, backend="flow", config=BATCHED)
        cached = solve_caching(
            net, mu, x0, backend="flow", config=BATCHED,
            cache=SolveCache() if with_cache else None,
        )
        threaded = solve_caching(
            net, mu, x0, backend="flow", executor="thread:2", config=BATCHED
        )
        for other in (cached, threaded):
            assert np.array_equal(base.x, other.x)
            assert base.objective == other.objective

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(2, 12), st.integers(2, 12))
    def test_closed_form_off_counts_every_row_as_fallback(self, seed, R, J):
        """closed_form=False demotes every bound row to the bisection;
        the accounting identity must still hold with zero closed solves."""
        rng = np.random.default_rng(seed)
        lam, caps, omega, mu, W, bw = _bound_stack(rng, R, J)
        if lam.shape[0] == 0:
            return
        (out, counters) = _counters(
            lambda: waterfill_batch(
                lam, caps, omega, mu, W, bw, 1.0, closed_form=False
            )
        )
        assert counters["p2_bw_closed_form"] == 0
        assert counters["p2_bw_bound_rows"] == lam.shape[0]
        assert counters["p2_bisection_fallbacks"] == lam.shape[0]

    def test_closed_form_covers_the_bulk_deterministic(self):
        """On a pinned bound stack the certificate solves the vast
        majority of rows closed-form; the fallback is the exception, not
        the rule."""
        rng = np.random.default_rng(0)
        lam, caps, omega, mu, W, bw = _bound_stack(rng, 300, 24)
        rows = lam.shape[0]
        (_, counters) = _counters(
            lambda: waterfill_batch(lam, caps, omega, mu, W, bw, 1.0)
        )
        assert counters["p2_bw_bound_rows"] == rows
        assert (
            counters["p2_bw_closed_form"] + counters["p2_bisection_fallbacks"]
            == rows
        )
        assert counters["p2_bw_closed_form"] >= 0.9 * rows


class TestP1Ties:
    """Degenerate stacks — tied and cap-bound rows — are *accepted* cases.

    The paper's uniform-cost scenarios make (nearly) every P1 row either
    tie-degenerate or cap-bound; the canonical discipline plus the exact
    capped kernel must answer them in the batched pass, bitwise what the
    per-SBS flow backend returns, instead of falling back row by row.
    """

    def _assert_all_accepted_match_flow(self, net, prices, x0, N):
        accepted = _solve_batched_p1(net, prices, x0, list(range(N)))
        assert set(accepted) == set(range(N)), (
            f"degenerate rows fell back: accepted {sorted(accepted)} of {N}"
        )
        for n, (x_b, obj_b) in accepted.items():
            x_f, obj_f = _solve_single_sbs_flow(
                prices[:, n, :], float(net.sbss[n].replacement_cost),
                int(net.sbss[n].cache_size), x0[n],
            )
            assert np.array_equal(x_b, x_f), f"SBS {n} trajectory differs"
            assert obj_b == obj_f

    @settings(max_examples=25, deadline=None)
    @given(dims, st.floats(0.1, 3.0))
    def test_uniform_price_stacks_accepted(self, d, value):
        """Every item identically priced: maximal ties, cap-bound when the
        uniform value clears the swap cost."""
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        net = _multi_network(rng, N=N, K=K, C=C, beta=float(rng.uniform(0.0, 2.0)))
        prices = np.full((T, N, K), float(value))
        x0 = np.zeros((N, K))
        for n in range(N):
            x0[n, rng.choice(K, size=rng.integers(0, C + 1), replace=False)] = 1.0
        self._assert_all_accepted_match_flow(net, prices, x0, N)

    @settings(max_examples=25, deadline=None)
    @given(dims)
    def test_duplicated_item_stacks_accepted(self, d):
        """Item columns duplicated so distinct items carry identical price
        trajectories — the classic tied-argmax case."""
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        net = _multi_network(rng, N=N, K=K, C=C)
        base = rng.uniform(0.0, 2.0, size=(T, N, max(1, K // 2)))
        prices = np.empty((T, N, K))
        for k in range(K):
            prices[:, :, k] = base[:, :, k % base.shape[2]]
        x0 = np.zeros((N, K))
        self._assert_all_accepted_match_flow(net, prices, x0, N)

    @settings(max_examples=25, deadline=None)
    @given(dims)
    def test_zero_beta_stacks_accepted(self, d):
        """Free replacement (beta = 0) ties every fetch/evict margin."""
        seed, N, K, T, C = d
        rng = np.random.default_rng(seed)
        net = _multi_network(rng, N=N, K=K, C=C, beta=0.0)
        prices = rng.uniform(0.0, 1.5, size=(T, N, K))
        # Quantize to a coarse grid so exact cross-item ties are common.
        prices = np.round(prices * 4.0) / 4.0
        x0 = np.zeros((N, K))
        for n in range(N):
            x0[n, rng.choice(K, size=rng.integers(0, C + 1), replace=False)] = 1.0
        self._assert_all_accepted_match_flow(net, prices, x0, N)

    def test_ties_off_restores_the_fallback_storm(self, rng):
        """The kill switch really is an acceptance-rate A/B: with
        ``batched_ties=False`` the degenerate rows are punted to the
        per-SBS backends (counted as fallbacks), with the default they are
        answered in-batch — and the costs are identical either way."""
        net = _multi_network(rng, N=4, K=8, C=2, beta=0.5)
        # Uniform demand -> uniform prices -> every row cap-bound.
        mu = np.full((3, net.num_classes, 8), 1.0)
        x0 = np.zeros((4, 8))

        rec_on = Recorder()
        with record_into(rec_on):
            on = solve_caching(net, mu, x0, backend="flow", config=BATCHED)
        assert rec_on.metrics.counter("p1_batched_fallbacks") == 0
        assert rec_on.metrics.counter("p1_batched_capped") > 0

        rec_off = Recorder()
        with record_into(rec_off):
            off = solve_caching(
                net, mu, x0, backend="flow",
                config=RuntimeConfig(batched=True, batched_ties=False),
            )
        assert rec_off.metrics.counter("p1_batched_fallbacks") > 0
        assert rec_off.metrics.counter("p1_batched_capped") == 0

        # The A/B gates the *rate*; the answers must not move a bit.
        assert np.array_equal(on.x, off.x)
        assert on.objective == off.objective


class TestCappedKernel:
    """Exactness properties of the cap-constrained cancel kernel."""

    def _instance(self, rng, B, T, K):
        """Cap-bound-leaning stack: mostly-attractive items, small caps."""
        C = rng.uniform(-0.2, 1.0, size=(B, T, K))
        beta = rng.uniform(0.0, 0.8, size=B)
        caps = rng.integers(1, max(2, K // 2 + 1), size=B)
        x0 = np.zeros((B, K))
        for b in range(B):
            x0[b, rng.choice(K, size=rng.integers(0, caps[b] + 1), replace=False)] = 1.0
        return C, beta, x0, caps

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 5),
           st.integers(1, 6), st.integers(2, 8))
    def test_accepted_rows_are_flow_optimal(self, seed, B, T, K):
        rng = np.random.default_rng(seed)
        C, beta, x0, caps = self._instance(rng, B, T, K)
        x, ok = capped_cancel_stack(C, beta, x0, caps)
        assert ok.any(), "kernel certified nothing on a benign stack"
        for b in np.flatnonzero(ok):
            xb = x[b]
            # Feasible, binary, cap-respecting.
            assert set(np.unique(xb)) <= {0.0, 1.0}
            assert (xb.sum(axis=1) <= caps[b]).all()
            obj = _objective_single(C[b], float(beta[b]), xb, x0[b])
            _, obj_f = _solve_single_sbs_flow(
                C[b], float(beta[b]), int(caps[b]), x0[b], canonical=False,
            )
            scale = max(1.0, abs(obj_f))
            assert obj == pytest.approx(obj_f, abs=1e-9 * scale), (
                f"row {b}: capped {obj} vs flow {obj_f}"
            )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(2, 5),
           st.integers(1, 5), st.integers(2, 7))
    def test_stacked_equals_single_row(self, seed, B, T, K):
        """B-elementwise discipline: a row's answer must not depend on its
        batch-mates — stacked and B=1 runs agree bitwise."""
        rng = np.random.default_rng(seed)
        C, beta, x0, caps = self._instance(rng, B, T, K)
        x, ok = capped_cancel_stack(C, beta, x0, caps)
        for b in range(B):
            x1, ok1 = capped_cancel_stack(
                C[b : b + 1], beta[b : b + 1], x0[b : b + 1], caps[b : b + 1]
            )
            assert bool(ok1[0]) == bool(ok[b])
            if ok[b]:
                assert np.array_equal(x1[0], x[b])

    def test_zero_cap_keeps_cache_empty(self, rng):
        C = rng.uniform(0.0, 1.0, size=(2, 3, 4))
        x, ok = capped_cancel_stack(
            C, np.array([0.5, 0.0]), np.zeros((2, 4)), np.array([0, 0])
        )
        assert ok.all()
        assert not x.any()

    def test_full_cap_matches_flow(self, rng):
        """cap = K removes the binding constraint; the kernel must still
        answer exactly (the relaxed pass normally owns this regime)."""
        C = rng.uniform(-0.5, 1.0, size=(3, 4, 5))
        beta = np.array([0.0, 0.3, 1.0])
        caps = np.array([5, 5, 5])
        x0 = np.zeros((3, 5))
        x, ok = capped_cancel_stack(C, beta, x0, caps)
        for b in np.flatnonzero(ok):
            obj = _objective_single(C[b], float(beta[b]), x[b], x0[b])
            _, obj_f = _solve_single_sbs_flow(
                C[b], float(beta[b]), 5, x0[b], canonical=False
            )
            assert obj == pytest.approx(obj_f, abs=1e-12)

    def test_empty_stack_shapes(self):
        x, ok = capped_cancel_stack(
            np.zeros((0, 3, 4)), np.zeros(0), np.zeros((0, 4)), np.zeros(0, dtype=int)
        )
        assert x.shape == (0, 3, 4)
        assert ok.shape == (0,)

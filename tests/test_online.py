"""Tests for the online controllers: RHC, FHC variants, AFHC, CHC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.offline import OfflineOptimal
from repro.core.online import AFHC, CHC, RHC, OnlineSolveSettings
from repro.core.online.base import shift_mu
from repro.core.online.fhc import run_fhc_variant
from repro.exceptions import ConfigurationError
from repro.scenario import validate_plan
from repro.sim.engine import evaluate_plan
from repro.workload.predictor import PerfectPredictor

FAST = OnlineSolveSettings(max_iter=25, gap_tol=5e-3, ub_patience=6)


class TestShiftMu:
    def test_shift_by_one(self):
        mu = np.arange(12, dtype=float).reshape(3, 2, 2)
        out = shift_mu(mu, 1)
        np.testing.assert_allclose(out[0], mu[1])
        np.testing.assert_allclose(out[1], mu[2])
        np.testing.assert_allclose(out[2], mu[2])

    def test_shift_zero_copies(self):
        mu = np.ones((2, 1, 1))
        out = shift_mu(mu, 0)
        out[0] = 5.0
        assert mu[0, 0, 0] == 1.0

    def test_shift_past_horizon(self):
        mu = np.arange(4, dtype=float).reshape(2, 2, 1)
        out = shift_mu(mu, 10)
        np.testing.assert_allclose(out[0], mu[1])
        np.testing.assert_allclose(out[1], mu[1])


class TestRHC:
    def test_plan_shapes_and_feasibility(self, small_scenario):
        plan = RHC(window=4, settings=FAST).plan(small_scenario)
        validate_plan(small_scenario, plan)
        assert plan.solves == small_scenario.horizon
        assert set(np.unique(plan.x)) <= {0.0, 1.0}

    def test_perfect_predictions_near_offline(self, small_scenario):
        """With exact predictions and a long window RHC ~ offline optimal."""
        scenario = small_scenario.with_predictor(
            PerfectPredictor(small_scenario.demand)
        )
        rhc = RHC(
            window=scenario.horizon,
            settings=OnlineSolveSettings(max_iter=60, gap_tol=1e-4),
        )
        rhc_cost = evaluate_plan(scenario, rhc.plan(scenario)).cost.total
        off_cost = evaluate_plan(
            scenario, OfflineOptimal(max_iter=120).plan(scenario)
        ).cost.total
        assert rhc_cost <= off_cost * 1.15 + 1e-6

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            RHC(window=0)

    def test_name(self):
        assert RHC(window=7).name == "RHC(w=7)"


class TestFHC:
    def test_variant_covers_whole_horizon(self, small_scenario):
        traj = run_fhc_variant(
            small_scenario, variant=1, window=4, commitment=2, settings=FAST
        )
        assert traj.x.shape == (small_scenario.horizon, 1, 8)
        assert set(np.unique(traj.x)) <= {0.0, 1.0}
        # Capacity respected in every committed slot.
        assert np.all(traj.x.sum(axis=2) <= 3)

    def test_commitment_validation(self, small_scenario):
        with pytest.raises(ConfigurationError):
            run_fhc_variant(
                small_scenario, variant=0, window=3, commitment=5, settings=FAST
            )

    def test_solve_count(self, small_scenario):
        traj = run_fhc_variant(
            small_scenario, variant=0, window=4, commitment=3, settings=FAST
        )
        assert traj.solves == len(range(0, small_scenario.horizon, 3))


class TestCHC:
    def test_plan_feasible(self, small_scenario):
        plan = CHC(window=4, commitment=2, settings=FAST).plan(small_scenario)
        validate_plan(small_scenario, plan)
        assert set(np.unique(plan.x)) <= {0.0, 1.0}

    def test_y_respects_rounded_cache(self, small_scenario):
        plan = CHC(window=4, commitment=2, settings=FAST).plan(small_scenario)
        assert plan.y is not None
        mask = plan.x[:, small_scenario.network.class_sbs, :] == 0
        assert np.abs(plan.y[mask]).max(initial=0.0) == 0.0

    def test_commitment_one_equals_rhc_trajectory(self, small_scenario):
        """CHC with r=1 averages a single FHC variant solving every slot -
        exactly RHC (rounding a 0/1 average is the identity)."""
        settings = OnlineSolveSettings(max_iter=40, gap_tol=1e-4, ub_patience=None)
        chc = CHC(window=4, commitment=1, settings=settings).plan(small_scenario)
        rhc = RHC(window=4, settings=settings).plan(small_scenario)
        np.testing.assert_allclose(chc.x, rhc.x)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CHC(window=4, commitment=0)
        with pytest.raises(ConfigurationError):
            CHC(window=4, commitment=5)
        with pytest.raises(ConfigurationError):
            CHC(window=4, commitment=2, rho=1.5)

    def test_name(self):
        assert CHC(window=8, commitment=4).name == "CHC(w=8,r=4)"


class TestAFHC:
    def test_is_full_commitment_chc(self, small_scenario):
        afhc = AFHC(window=4, settings=FAST)
        assert afhc.commitment == afhc.window == 4
        assert afhc.name == "AFHC(w=4)"

    def test_matches_explicit_chc(self, small_scenario):
        settings = OnlineSolveSettings(max_iter=30, gap_tol=1e-3, ub_patience=None)
        a = AFHC(window=3, settings=settings).plan(small_scenario)
        c = CHC(window=3, commitment=3, settings=settings).plan(small_scenario)
        np.testing.assert_allclose(a.x, c.x)

    def test_plan_feasible(self, small_scenario):
        plan = AFHC(window=3, settings=FAST).plan(small_scenario)
        validate_plan(small_scenario, plan)


class TestOnlineVsBaselines:
    def test_online_beats_nocache(self, small_scenario):
        from repro.baselines import NoCache

        rhc_cost = evaluate_plan(
            small_scenario, RHC(window=4, settings=FAST).plan(small_scenario)
        ).cost.total
        nocache_cost = evaluate_plan(
            small_scenario, NoCache().plan(small_scenario)
        ).cost.total
        assert rhc_cost < nocache_cost

    def test_offline_lower_bounds_online(self, small_scenario):
        offline = evaluate_plan(
            small_scenario, OfflineOptimal(max_iter=100).plan(small_scenario)
        ).cost.total
        for policy in (RHC(window=4, settings=FAST), CHC(window=4, commitment=2, settings=FAST)):
            online = evaluate_plan(small_scenario, policy.plan(small_scenario)).cost.total
            assert online >= offline * 0.999  # offline is (near-)optimal

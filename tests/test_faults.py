"""Fault schedules, graceful degradation, and determinism under faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LRFU
from repro.core.online import RHC, OnlineSolveSettings
from repro.exceptions import ConfigurationError
from repro.faults import (
    BandwidthDegradation,
    DemandSurge,
    FaultSchedule,
    PredictorBlackout,
    SbsOutage,
    assert_feasible_under_faults,
    evict_to_fit,
    inject_faults,
    schedules_equal,
    single_outage_with_degradation,
)
from repro.sim.experiment import paper_scenario
from repro.sim.resilience import default_fault_schedule, run_resilience
from repro.sim.runner import run_policies, run_policy

SETTINGS = OnlineSolveSettings(max_iter=30)


def _tiny_scenario(horizon: int = 8, seed: int = 1):
    return paper_scenario(seed=seed, horizon=horizon)


def _acceptance_schedule(horizon: int = 8) -> FaultSchedule:
    return single_outage_with_degradation(
        sbs=0,
        outage_start=2,
        outage_duration=2,
        degradation_start=5,
        degradation_duration=2,
        bandwidth_factor=0.5,
    )


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.random(seed=7, horizon=50, num_sbs=3, num_classes=4)
        b = FaultSchedule.random(seed=7, horizon=50, num_sbs=3, num_classes=4)
        assert schedules_equal(a, b)

    def test_different_seed_differs(self):
        a = FaultSchedule.random(seed=7, horizon=50, num_sbs=3, num_classes=4)
        b = FaultSchedule.random(seed=8, horizon=50, num_sbs=3, num_classes=4)
        assert not schedules_equal(a, b)

    def test_dict_round_trip(self):
        schedule = FaultSchedule.random(
            seed=3, horizon=40, num_sbs=2, num_classes=3, surges=1, blackouts=1
        )
        assert schedules_equal(
            FaultSchedule.from_dict(schedule.to_dict()), schedule
        )

    def test_masks(self):
        schedule = _acceptance_schedule()
        active = schedule.active_mask(8)
        assert list(np.nonzero(active)[0]) == [2, 3, 5, 6]
        assert schedule.last_fault_end() == 7


class TestInjectFaults:
    def test_double_injection_rejected(self):
        scenario = inject_faults(_tiny_scenario(), _acceptance_schedule())
        with pytest.raises(ConfigurationError, match="already carries"):
            inject_faults(scenario, _acceptance_schedule())

    def test_surge_scales_true_demand_not_forecast(self):
        scenario = _tiny_scenario()
        schedule = FaultSchedule(
            (DemandSurge(start=2, duration=2, factor=2.0),)
        )
        faulted = inject_faults(scenario, schedule)
        ratio = faulted.demand.rates[2] / scenario.demand.rates[2]
        assert np.allclose(ratio[scenario.demand.rates[2] > 0], 2.0)
        # The predictor keeps forecasting the pre-surge trace.
        predicted = faulted.predictor.predict_window(2, 2, 1)
        base = scenario.predictor.predict_window(2, 2, 1)
        assert np.allclose(predicted, base)

    def test_blackout_walks_back_to_last_fresh_slot(self):
        scenario = _tiny_scenario()
        schedule = FaultSchedule((PredictorBlackout(start=3, duration=2),))
        faulted = inject_faults(scenario, schedule)
        # Deciding inside the blackout reuses the forecast made at the
        # last non-blackout slot (slot 2).
        stale = faulted.predictor.predict_window(4, 4, 2)
        fresh = scenario.predictor.predict_window(2, 4, 2)
        assert np.allclose(stale, fresh)

    def test_empty_schedule_changes_nothing(self):
        scenario = _tiny_scenario()
        faulted = inject_faults(scenario, FaultSchedule(()))
        assert (faulted.demand.rates == scenario.demand.rates).all()
        plain = run_policy(scenario, LRFU())
        empty = run_policy(faulted, LRFU())
        assert plain.cost.total == empty.cost.total
        assert (plain.x == empty.x).all()


class TestEvictToFit:
    def test_respects_capacity_and_keeps_best(self):
        x = np.ones((1, 4))
        values = np.array([[3.0, 1.0, 4.0, 2.0]])
        fitted = evict_to_fit(x, np.array([2]), values)
        assert fitted.sum() == 2
        assert fitted[0, 2] == 1 and fitted[0, 0] == 1

    def test_tie_breaks_by_ascending_index(self):
        x = np.ones((1, 3))
        values = np.zeros((1, 3))
        fitted = evict_to_fit(x, np.array([1]), values)
        assert list(fitted[0]) == [1, 0, 0]


class TestGracefulDegradation:
    @pytest.mark.parametrize("policy_name", ["RHC", "LRFU"])
    def test_acceptance_scenario_zero_violations(self, policy_name):
        scenario = inject_faults(_tiny_scenario(), _acceptance_schedule())
        policy = (
            RHC(window=3, settings=SETTINGS) if policy_name == "RHC" else LRFU()
        )
        result = run_policy(scenario, policy)
        slacks = assert_feasible_under_faults(scenario, result.x, result.y)
        assert all(v <= 1e-6 for v in slacks.values())
        # The down SBS serves nothing during the outage.
        served = (scenario.demand.rates * result.y).sum(axis=(1, 2))
        assert result.cost.total > 0
        assert served[2] == 0 and served[3] == 0

    def test_outage_violation_detected(self):
        scenario = inject_faults(_tiny_scenario(), _acceptance_schedule())
        result = run_policy(scenario, LRFU())
        y_bad = result.y.copy()
        y_bad[2] = np.minimum(result.x[2, scenario.network.class_sbs, :], 1.0)
        if y_bad[2].sum() == 0:  # ensure some service during the outage
            y_bad[2, 0, 0] = 1.0
        with pytest.raises(ConfigurationError):
            assert_feasible_under_faults(scenario, result.x, y_bad)

    def test_faulted_run_identical_across_executors(self):
        scenario = inject_faults(_tiny_scenario(), _acceptance_schedule())
        policies = [RHC(window=3, settings=SETTINGS), LRFU()]
        serial = run_policies(scenario, policies)
        threaded = run_policies(scenario, policies, executor="thread:2")
        procs = run_policies(scenario, policies, executor="process:2")
        for name, reference in serial.items():
            for alt in (threaded, procs):
                assert alt[name].cost.total == reference.cost.total
                assert (alt[name].x == reference.x).all()
                assert (alt[name].y == reference.y).all()


class TestResilienceExperiment:
    def test_report_shape_and_feasibility(self):
        report = run_resilience(horizon=8, window=3, seed=1)
        names = [row.policy for row in report.policies]
        assert any(n.startswith("RHC") for n in names)
        assert "LRFU" in names
        for row in report.policies:
            assert row.total_cost >= row.fault_free_cost * (1 - 1e-9)
            assert all(v <= 1e-6 for v in row.violations.values())
        payload = report.to_dict()
        assert payload["horizon"] == 8
        assert payload["schedule"]["events"]

    def test_rejects_pre_injected_scenario(self):
        scenario = inject_faults(_tiny_scenario(), _acceptance_schedule())
        with pytest.raises(ValueError, match="fault-free"):
            run_resilience(scenario)

    def test_default_schedule_scales(self):
        schedule = default_fault_schedule(40)
        kinds = {type(e) for e in schedule.events}
        assert kinds == {SbsOutage, BandwidthDegradation}
        assert schedule.last_fault_end() <= 40

"""Tests for the experiment sweeps and report rendering (small scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.experiment import (
    SweepPoint,
    SweepResult,
    beta_sweep,
    default_policies,
    headline_comparison,
    noise_sweep,
    paper_scenario,
    window_sweep,
)
from repro.sim.report import render_headline_table, render_sweep_table

#: Tiny scale so a sweep completes in seconds.
TINY = dict(
    horizon=6,
    num_items=6,
    num_classes=4,
    cache_size=2,
    bandwidth=3.0,
)


class TestPaperScenario:
    def test_defaults_match_section_vb(self):
        sc = paper_scenario(seed=3)
        assert sc.horizon == 100
        assert sc.network.num_items == 30
        assert sc.network.num_classes == 30
        assert sc.network.cache_sizes.tolist() == [5]
        assert sc.network.bandwidths.tolist() == [30.0]
        assert sc.network.replacement_costs.tolist() == [100.0]
        assert np.all(sc.network.omega_bs >= 0) and np.all(sc.network.omega_bs <= 1)
        assert np.all(sc.network.omega_sbs == 0)

    def test_seed_reproducible(self):
        a = paper_scenario(seed=9, horizon=5)
        b = paper_scenario(seed=9, horizon=5)
        np.testing.assert_allclose(a.demand.rates, b.demand.rates)
        np.testing.assert_allclose(a.network.omega_bs, b.network.omega_bs)

    def test_literal_density_range_available(self):
        sc = paper_scenario(seed=1, horizon=4, density_range=(0.0, 100.0))
        assert sc.demand.rates.max() > 4.0


class TestDefaultPolicies:
    def test_paper_comparison_set(self):
        policies = default_policies(window=10)
        names = [p.name for p in policies]
        assert names == [
            "Offline",
            "RHC(w=10)",
            "CHC(w=10,r=5)",
            "AFHC(w=10)",
            "LRFU",
        ]

    def test_exclusions(self):
        names = [
            p.name
            for p in default_policies(window=4, include_offline=False, include_lrfu=False)
        ]
        assert names == ["RHC(w=4)", "CHC(w=4,r=2)", "AFHC(w=4)"]

    def test_custom_commitment(self):
        names = [p.name for p in default_policies(window=6, commitment=3)]
        assert "CHC(w=6,r=3)" in names


class TestSweeps:
    @pytest.fixture(scope="class")
    def tiny_beta_sweep(self):
        return beta_sweep(
            (0.0, 5.0),
            seeds=(1,),
            window=3,
            **TINY,
        )

    def test_beta_sweep_structure(self, tiny_beta_sweep):
        assert tiny_beta_sweep.parameter == "beta"
        assert tiny_beta_sweep.values == [0.0, 5.0]
        assert "Offline" in tiny_beta_sweep.policies
        assert "LRFU" in tiny_beta_sweep.policies

    def test_offline_lower_bounds_everyone(self, tiny_beta_sweep):
        totals = tiny_beta_sweep.table("total")
        for name, series in totals.items():
            for off, val in zip(totals["Offline"], series):
                assert val >= off - max(1e-6, 0.01 * off)

    def test_replacement_cost_zero_at_beta_zero(self, tiny_beta_sweep):
        repl = tiny_beta_sweep.table("replacement")
        for series in repl.values():
            assert series[0] == pytest.approx(0.0)

    def test_unknown_metric_rejected(self, tiny_beta_sweep):
        with pytest.raises(ConfigurationError):
            tiny_beta_sweep.series("latency", "Offline")

    def test_window_sweep_caches_invariants(self):
        sweep = window_sweep((2, 3), seeds=(1,), **TINY)
        offline = sweep.table("total")["Offline"]
        assert offline[0] == pytest.approx(offline[1])
        lrfu = sweep.table("total")["LRFU"]
        assert lrfu[0] == pytest.approx(lrfu[1])

    def test_noise_sweep_offline_flat(self):
        sweep = noise_sweep((0.0, 0.5), seeds=(1,), window=3, **TINY)
        offline = sweep.table("total")["Offline"]
        assert offline[0] == pytest.approx(offline[1])

    def test_headline_single_point(self):
        sweep = headline_comparison(beta=5.0, seeds=(1,), window=3, **TINY)
        assert len(sweep.points) == 1


class TestReport:
    def _fake_sweep(self) -> SweepResult:
        metrics = {
            "Offline": {"total": 10.0, "bs_cost": 8.0, "sbs_cost": 0.0,
                        "replacement": 2.0, "replacements": 2.0, "solves": 5.0},
            "LRFU": {"total": 13.0, "bs_cost": 9.0, "sbs_cost": 0.0,
                     "replacement": 4.0, "replacements": 4.0, "solves": 0.0},
        }
        return SweepResult(
            parameter="beta",
            points=(SweepPoint(value=50.0, metrics=metrics),),
        )

    def test_render_sweep_table(self):
        text = render_sweep_table(self._fake_sweep(), "total")
        assert "total operating cost vs beta" in text
        assert "Offline" in text and "LRFU" in text
        assert "13.0" in text

    def test_render_headline(self):
        text = render_headline_table(self._fake_sweep())
        assert "headline comparison" in text
        assert "LRFU" in text
        # Offline saves (1 - 10/13) ~ 23.1% vs LRFU.
        assert "23.1%" in text

    def test_headline_requires_single_point(self):
        sweep = SweepResult(parameter="beta", points=())
        with pytest.raises(ValueError):
            render_headline_table(sweep)

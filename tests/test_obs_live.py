"""Live telemetry: SLO specs, burn-rate alerts, the HTTP exporter, and
the contract that enabling any of it never changes a seeded decision log.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.exceptions import ConfigurationError
from repro.obs import Recorder, record_into
from repro.obs.live import (
    MetricsServer,
    ServeTelemetry,
    SloTracker,
    parse_slo_specs,
    render_top_frame,
)


def tiny_scenario(horizon=5, seed=1):
    return api.build_scenario(seed=seed, horizon=horizon)


class TestSpecParsing:
    def test_parses_latency_and_ratio_objectives(self):
        specs = parse_slo_specs("p99_decision_us<200, shed_ratio<0.01")
        assert [s.name for s in specs] == ["p99_decision_us", "shed_ratio"]
        latency, shed = specs
        assert latency.kind == "latency"
        assert latency.threshold_seconds == pytest.approx(200e-6)
        assert latency.budget == pytest.approx(0.01)
        assert shed.kind == "shed"
        assert shed.budget == pytest.approx(0.01)
        assert latency.describe() == "p99_decision_us<200"

    def test_empty_or_none_means_no_objectives(self):
        assert parse_slo_specs(None) == ()
        assert parse_slo_specs("  ") == ()

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown SLO"):
            parse_slo_specs("p42_decision_us<1")

    def test_malformed_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="bad SLO spec"):
            parse_slo_specs("p99_decision_us=200")

    def test_threshold_domains_enforced(self):
        with pytest.raises(ConfigurationError, match="positive"):
            parse_slo_specs("p99_decision_us<0")
        with pytest.raises(ConfigurationError, match=r"\(0, 1\)"):
            parse_slo_specs("shed_ratio<1.5")


class TestSloTracker:
    def _tracker(self, spec="p99_decision_us<100"):
        return SloTracker(
            parse_slo_specs(spec), short_window=1.0, long_window=10.0
        )

    def test_alert_needs_both_windows_hot(self):
        tracker = self._tracker()
        # Sustained badness: every decision blows the 100us threshold.
        for i in range(100):
            tracker.observe_decision(i * 0.1, seconds=1.0)
        assert [e["name"] for e in tracker.evaluate(9.9)] == ["p99_decision_us"]

    def test_short_spike_does_not_alert_the_long_window(self):
        tracker = self._tracker()
        # Long window mostly healthy, one bad burst at the end: the long
        # burn stays below threshold, so the multi-window rule holds fire.
        for i in range(99):
            tracker.observe_decision(i * 0.1, seconds=1e-6)
            tracker.observe_decision(i * 0.1, seconds=1e-6)
        tracker.observe_decision(9.9, seconds=1.0)
        status = {e["name"]: e for e in tracker.status(9.9)}
        entry = status["p99_decision_us"]
        assert entry["burn_short"] >= 1.0
        assert entry["burn_long"] < 1.0
        assert not entry["alert"]

    def test_ratio_objective_tracks_shed_fraction(self):
        tracker = self._tracker("shed_ratio<0.1")
        for i in range(50):
            tracker.observe_request(i * 0.1, shed=(i % 2 == 0))
        (entry,) = tracker.status(4.9)
        assert entry["alert"]  # 50% shed vs a 10% budget

    def test_no_observations_no_alert(self):
        tracker = self._tracker()
        assert tracker.evaluate(5.0) == []

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            SloTracker((), short_window=5.0, long_window=1.0)
        with pytest.raises(ConfigurationError):
            SloTracker((), burn_threshold=0.0)


class TestMetricsServer:
    def _fetch(self, url):
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, response.read().decode("utf-8")

    def test_endpoints_serve_the_published_snapshot(self):
        recorder = Recorder()
        recorder.metrics.inc("serve_requests", 3)
        recorder.metrics.observe_quantile("serve_decision_seconds", 1e-4)
        telemetry = ServeTelemetry(recorder)
        telemetry.publish(slot=2, now=1.0, queue_depth=1, plan_lag=0)
        with MetricsServer(telemetry.snapshot, port=0) as server:
            status, text = self._fetch(server.url + "/metrics")
            assert status == 200
            assert "serve_requests_total 3" in text
            assert 'serve_decision_seconds{quantile="0.99"}' in text

            status, text = self._fetch(server.url + "/healthz")
            health = json.loads(text)
            assert status == 200
            assert health == {"alerts_total": 0, "slot": 2, "status": "ok"}

            status, text = self._fetch(server.url + "/slo")
            slo = json.loads(text)
            assert slo["slot"] == 2
            assert slo["queue_depth"] == 1
            assert slo["decision_latency_seconds"]["count"] == 1
            assert slo["decision_latency_seconds"]["p99"] is not None

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._fetch(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_ephemeral_port_binds_and_stops_cleanly(self):
        server = MetricsServer(lambda: {}, port=0)
        port = server.start()
        assert 0 < port <= 65535
        assert server.start() == port  # idempotent while running
        server.stop()
        server.stop()  # idempotent when stopped

    def test_render_top_frame_handles_empty_and_full_history(self):
        assert "waiting" in render_top_frame([])
        telemetry = ServeTelemetry(Recorder())
        telemetry.publish(slot=0, now=0.0, sbs_utilization={0: 0.6})
        frame = render_top_frame([telemetry.snapshot()["slo"]] * 3)
        assert "decision p99" in frame
        assert "sbs0" in frame


class TestServeIntegration:
    def _run(self, **kwargs):
        return api.run_serve(
            tiny_scenario(),
            rps=120.0,
            slot_seconds=0.05,
            seed=3,
            window=3,
            max_requests=60,
            **kwargs,
        )

    def test_telemetry_never_changes_the_decision_log(self):
        plain = self._run()
        live = self._run(metrics_port=0, slo="p99_decision_us<200")
        assert plain.digest == live.digest

    def test_telemetry_with_ambient_recorder_keeps_digest(self):
        recorder = Recorder()
        with record_into(recorder):
            traced = self._run(metrics_port=0, slo="p99_decision_us<200")
        assert traced.digest == self._run().digest
        # The ambient recorder collected the serve sketches and gauges.
        sketch = recorder.metrics.sketch("serve_decision_seconds")
        assert sketch is not None and sketch.count == traced.decided
        assert recorder.metrics.gauge("serve_queue_depth") is not None

    def test_impossible_slo_emits_alert_events_and_counts(self):
        recorder = Recorder()
        with record_into(recorder):
            report = self._run(slo="p99_decision_us<0.001")
        alerts = [e for e in recorder.events if e.kind == "slo_alert"]
        assert alerts, "sub-nanosecond latency SLO must burn"
        assert report.slo_alerts == len(alerts)
        assert all(e.data["slo"] == "p99_decision_us" for e in alerts)
        assert all(e.data["burn_short"] >= 1.0 for e in alerts)

    def test_report_slo_block_is_complete(self):
        report = self._run(slo="p99_decision_us<200000")
        block = report.to_dict()["slo"]
        assert set(block) == {
            "decision_p50_us",
            "decision_p95_us",
            "decision_p99_us",
            "shed_ratio",
            "swap_drop_ratio",
            "alerts",
            "sbs_utilization",
        }
        assert block["decision_p99_us"] >= block["decision_p50_us"] >= 0.0
        assert block["shed_ratio"] == 0.0  # queue admission never sheds
        assert len(block["sbs_utilization"]) == tiny_scenario().network.num_sbs

    def test_healthy_serve_trace_analyzes_clean(self):
        # Pins the CI `obs analyze --strict` gate on live serve traces:
        # patience-stopped window solves must not read as stalls.
        recorder = Recorder()
        with record_into(recorder):
            self._run(slo="p99_decision_us<200000,shed_ratio<0.01")
        diagnosis = api.analyze_trace(recorder.events)
        assert diagnosis.verdict == "clean", diagnosis.to_json()

    def test_plan_swaps_carry_lag_and_stage_timers(self):
        recorder = Recorder()
        with record_into(recorder):
            self._run()
        swaps = [e for e in recorder.events if e.kind == "plan_swap"]
        assert swaps
        for event in swaps:
            assert "lag" in event.data
            assert event.data["lag"] >= 0
        timed = [e for e in swaps if "solve_total_seconds" in e.data]
        assert timed, "at least one swap must carry solver stage timings"

"""Tests for persistence, the hysteresis baseline, and the ASCII charts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LRFU, HysteresisCache
from repro.exceptions import ConfigurationError
from repro.io import load_run_result, load_scenario, save_run_result, save_scenario
from repro.scenario import Scenario, validate_plan
from repro.sim.ascii_chart import render_ascii_chart
from repro.sim.engine import evaluate_plan
from repro.sim.experiment import SweepPoint, SweepResult
from repro.workload.predictor import PerturbedPredictor


class TestScenarioRoundtrip:
    def test_roundtrip_preserves_everything(self, small_scenario, tmp_path):
        path = tmp_path / "scenario.npz"
        save_scenario(small_scenario, path)
        loaded = load_scenario(path)
        np.testing.assert_allclose(
            loaded.demand.rates, small_scenario.demand.rates
        )
        np.testing.assert_allclose(
            loaded.network.omega_bs, small_scenario.network.omega_bs
        )
        assert loaded.network.cache_sizes.tolist() == (
            small_scenario.network.cache_sizes.tolist()
        )
        np.testing.assert_allclose(loaded.x_initial, small_scenario.x_initial)

    def test_perturbed_predictor_roundtrip(self, small_scenario, tmp_path):
        noisy = small_scenario.with_predictor(
            PerturbedPredictor(small_scenario.demand, eta=0.3, seed=9, mode="frozen")
        )
        path = tmp_path / "scenario.npz"
        save_scenario(noisy, path)
        loaded = load_scenario(path)
        # Same predictor settings -> identical forecasts.
        np.testing.assert_allclose(
            loaded.predictor.predict_window(0, 0, 4),
            noisy.predictor.predict_window(0, 0, 4),
        )

    def test_custom_predictor_rejected(self, small_scenario, tmp_path):
        class Weird:
            def predict_window(self, a, b, c):
                return np.zeros((c, 6, 8))

        sc = small_scenario.with_predictor(Weird())
        with pytest.raises(ConfigurationError):
            save_scenario(sc, tmp_path / "x.npz")


class TestRunResultRoundtrip:
    def test_roundtrip(self, small_scenario, tmp_path):
        result = evaluate_plan(
            small_scenario, LRFU().plan(small_scenario), policy_name="LRFU"
        )
        path = tmp_path / "result.npz"
        save_run_result(result, path)
        loaded = load_run_result(path)
        assert loaded.policy == "LRFU"
        assert loaded.cost.total == pytest.approx(result.cost.total)
        assert loaded.cost.replacements == result.cost.replacements
        np.testing.assert_allclose(loaded.x, result.x)
        np.testing.assert_allclose(loaded.y, result.y)
        np.testing.assert_allclose(loaded.per_slot_total, result.per_slot_total)


class TestHysteresis:
    def test_plan_valid(self, small_scenario):
        plan = HysteresisCache().plan(small_scenario)
        validate_plan(small_scenario, plan)
        assert set(np.unique(plan.x)) <= {0.0, 1.0}

    def test_inertia_reduces_churn_vs_lrfu(self, small_scenario):
        hyst = evaluate_plan(
            small_scenario, HysteresisCache().plan(small_scenario)
        )
        lrfu = evaluate_plan(small_scenario, LRFU().plan(small_scenario))
        assert hyst.cost.replacements <= lrfu.cost.replacements

    def test_higher_hysteresis_never_more_churn(self, small_scenario):
        low = evaluate_plan(
            small_scenario, HysteresisCache(hysteresis=0.5).plan(small_scenario)
        )
        high = evaluate_plan(
            small_scenario, HysteresisCache(hysteresis=5.0).plan(small_scenario)
        )
        assert high.cost.replacements <= low.cost.replacements

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HysteresisCache(hysteresis=0.0)

    def test_name(self):
        assert HysteresisCache().name == "Hysteresis"


class TestAsciiChart:
    def _sweep(self) -> SweepResult:
        def point(v, a, b):
            return SweepPoint(
                value=v,
                metrics={
                    "Offline": {"total": a, "bs_cost": 0, "sbs_cost": 0,
                                "replacement": 0, "replacements": 0, "solves": 0},
                    "LRFU": {"total": b, "bs_cost": 0, "sbs_cost": 0,
                             "replacement": 0, "replacements": 0, "solves": 0},
                },
            )
        return SweepResult(
            parameter="beta", points=(point(0, 10, 10), point(100, 12, 30))
        )

    def test_renders_markers_and_legend(self):
        text = render_ascii_chart(self._sweep(), "total")
        assert "total vs beta" in text
        assert "o Offline" in text
        assert "x LRFU" in text
        assert "30.0" in text and "10.0" in text

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            render_ascii_chart(self._sweep(), "total", width=5)


class TestSeriesChartHardening:
    """Degenerate live-telemetry inputs render placeholders, not tracebacks."""

    def test_empty_series_dict_renders_placeholder(self):
        from repro.sim.ascii_chart import render_series_chart

        text = render_series_chart([0.0, 1.0], {}, title="t")
        assert "no series" in text

    def test_empty_x_axis_renders_placeholder(self):
        from repro.sim.ascii_chart import render_series_chart

        text = render_series_chart([], {"a": []}, title="t")
        assert "no x values" in text

    def test_all_non_finite_points_render_placeholder(self):
        from repro.sim.ascii_chart import render_series_chart

        nan, inf = float("nan"), float("inf")
        text = render_series_chart([0.0, 1.0], {"a": [nan, inf]}, title="t")
        assert "no finite points" in text

    def test_mixed_non_finite_points_are_skipped(self):
        from repro.sim.ascii_chart import render_series_chart

        text = render_series_chart(
            [0.0, 1.0, 2.0], {"a": [1.0, float("nan"), 3.0]}, title="t"
        )
        assert "3.0" in text and "1.0" in text

    def test_geometry_still_validated(self):
        from repro.sim.ascii_chart import render_series_chart

        with pytest.raises(ConfigurationError):
            render_series_chart([0.0], {"a": [1.0]}, title="t", width=5)

    def test_dashboard_survives_non_finite_slot_costs(self):
        from repro.obs import TraceEvent
        from repro.obs.dashboard import render_trace_dashboard

        events = [
            TraceEvent.make(0, "slot_end", slot=0, policy="p", total=1.0),
            TraceEvent.make(
                1, "slot_end", slot=1, policy="p", total=float("inf")
            ),
            TraceEvent.make(
                2, "slot_end", slot=2, policy="p", total=float("nan")
            ),
        ]
        text = render_trace_dashboard(events)
        assert "per-slot cost" in text

"""Tests for the theoretical bounds module (Theorems 2-3 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.theory.bounds import (
    afhc_competitive_ratio,
    chc_competitive_ratio,
    chc_rounding_ratio,
    rhc_competitive_ratio,
)


class TestCompetitiveRatios:
    def test_rhc_shrinks_with_window(self):
        """The 1 + O(1/w) shape: ratio decreases toward 1 as w grows."""
        prev = np.inf
        for w in (1, 2, 5, 10, 50):
            ratio = rhc_competitive_ratio(w, beta=100.0, min_operating_cost=10.0)
            assert 1.0 < ratio < prev
            prev = ratio
        assert rhc_competitive_ratio(10**9, 100.0, 10.0) == pytest.approx(1.0, abs=1e-6)

    def test_afhc_tighter_than_rhc(self):
        rhc = rhc_competitive_ratio(10, 100.0, 10.0)
        afhc = afhc_competitive_ratio(10, 100.0, 10.0)
        assert afhc < rhc

    def test_chc_interpolates(self):
        full = chc_competitive_ratio(10, 10, 100.0, 10.0)
        partial = chc_competitive_ratio(10, 5, 100.0, 10.0)
        one = chc_competitive_ratio(10, 1, 100.0, 10.0)
        assert full <= partial <= one

    def test_zero_beta_is_one(self):
        assert rhc_competitive_ratio(5, 0.0, 1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rhc_competitive_ratio(0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            rhc_competitive_ratio(5, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            rhc_competitive_ratio(5, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            chc_competitive_ratio(5, 9, 1.0, 1.0)


class TestRoundingRatio:
    def test_paper_constant(self):
        assert chc_rounding_ratio() == pytest.approx(2.618, abs=1e-3)

    def test_custom_rho(self):
        assert chc_rounding_ratio(0.5) == pytest.approx(4.0)


class TestEmpiricalConsistency:
    def test_measured_rhc_within_theoretical_bound(self, small_scenario):
        """The measured RHC/offline ratio respects a (loose) theory bound."""
        from repro.core.offline import OfflineOptimal
        from repro.core.online import RHC, OnlineSolveSettings
        from repro.sim.engine import evaluate_plan
        from repro.workload.predictor import PerfectPredictor

        scenario = small_scenario.with_predictor(
            PerfectPredictor(small_scenario.demand)
        )
        settings = OnlineSolveSettings(max_iter=30, gap_tol=1e-3)
        rhc_cost = evaluate_plan(
            scenario, RHC(window=6, settings=settings).plan(scenario)
        ).cost.total
        off = evaluate_plan(
            scenario, OfflineOptimal(max_iter=100).plan(scenario)
        ).cost
        measured = rhc_cost / off.total
        # e0: the smallest per-slot operating cost along the offline run.
        per_slot = off.operating / scenario.horizon
        bound = rhc_competitive_ratio(
            6, float(scenario.network.replacement_costs[0]), max(per_slot, 1e-9)
        )
        assert measured <= bound + 1e-6

"""Tests for flow-graph reuse: pooled templates vs fresh builds.

The subgradient loop solves the same-*shaped* caching flow every iteration
with different hold/fetch costs; ``caching_lp`` therefore pools built
graphs and rewrites arc costs in place (``MinCostFlow.set_arc_costs`` +
``reset``). These tests pin the contract that a reused graph solves to the
exact same caches and objective as a freshly built one, over randomized
``(c, beta, x0)`` sequences, plus the low-level reset/cost-rewrite hooks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caching_lp import (
    FLOW_REUSE_ENV,
    _solve_single_sbs_flow,
    solve_caching,
)
from repro.exceptions import ConfigurationError
from repro.network.topology import single_cell_network
from repro.optim.mincostflow import MinCostFlow


class TestMinCostFlowReuseHooks:
    def _two_path_graph(self):
        g = MinCostFlow(4)
        arcs = [
            g.add_arc(0, 1, 2, 1.0),
            g.add_arc(0, 2, 2, 2.0),
            g.add_arc(1, 3, 2, 1.0),
            g.add_arc(2, 3, 2, 0.5),
        ]
        return g, arcs

    def test_reset_restores_capacities(self):
        g, _ = self._two_path_graph()
        first = g.solve(0, 3, 4)
        assert first.amount == 4
        # Without a reset the graph is saturated and routes nothing more.
        assert g.solve(0, 3, 4).amount == 0
        g.reset()
        again = g.solve(0, 3, 4)
        assert again.amount == first.amount
        assert again.cost == first.cost

    def test_set_arc_cost_changes_optimum(self):
        g, arcs = self._two_path_graph()
        base = g.solve(0, 3, 3)
        g.reset()
        # Make the previously cheap 0->1->3 path expensive.
        g.set_arc_cost(arcs[0], 10.0)
        rerouted = g.solve(0, 3, 3)
        assert rerouted.cost > base.cost
        # 1 unit forced over the now-expensive path: 2*(2+0.5) + (10+1).
        assert rerouted.cost == pytest.approx(16.0)

    def test_set_arc_costs_bulk(self):
        g, arcs = self._two_path_graph()
        g.set_arc_costs(np.array(arcs), np.array([0.5, 0.5, 0.5, 0.5]))
        res = g.solve(0, 3, 4)
        assert res.cost == pytest.approx(4 * 1.0)

    def test_set_arc_costs_rejects_bad_ids(self):
        g, arcs = self._two_path_graph()
        with pytest.raises(ConfigurationError):
            g.set_arc_costs(np.array([99]), np.array([1.0]))

    def test_reset_before_any_solve_is_noop(self):
        g, _ = self._two_path_graph()
        g.reset()
        assert g.solve(0, 3, 3).amount == 3


class TestSingleSbsFlowReuse:
    @pytest.mark.parametrize("shape", [(4, 5, 2), (7, 6, 3)])
    def test_randomized_sequences_match_fresh(self, rng, shape):
        """A pooled graph must replay fresh-build results exactly."""
        T, K, cap = shape
        for trial in range(12):
            c = rng.normal(scale=5.0, size=(T, K))
            beta = float(rng.uniform(0.0, 12.0))
            x0 = np.zeros(K)
            x0[rng.choice(K, size=rng.integers(0, cap + 1), replace=False)] = 1.0
            x_fresh, obj_fresh = _solve_single_sbs_flow(
                c, beta, cap, x0, reuse=False
            )
            x_reuse, obj_reuse = _solve_single_sbs_flow(
                c, beta, cap, x0, reuse=True
            )
            assert np.array_equal(x_fresh, x_reuse), trial
            assert obj_fresh == obj_reuse, trial

    def test_env_toggle_matches(self, rng, monkeypatch):
        net = single_cell_network(
            num_items=8,
            cache_size=3,
            bandwidth=10.0,
            replacement_cost=40.0,
            omega_bs=rng.uniform(0, 1, 4),
        )
        mu = rng.uniform(0, 2, size=(6, 4, 8))
        x0 = np.zeros((1, 8))
        monkeypatch.setenv(FLOW_REUSE_ENV, "0")
        fresh = solve_caching(net, mu, x0, backend="flow")
        monkeypatch.setenv(FLOW_REUSE_ENV, "1")
        reused = solve_caching(net, mu, x0, backend="flow")
        assert np.array_equal(fresh.x, reused.x)
        assert fresh.objective == reused.objective

    def test_zero_capacity_shortcut(self):
        x, obj = _solve_single_sbs_flow(np.ones((3, 4)), 1.0, 0, np.zeros(4))
        assert not x.any() and obj == 0.0

"""Tests for the local-search polish on caching trajectories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exhaustive import solve_exhaustive
from repro.core.load_balancing import solve_y_given_x
from repro.core.polish import polish_caching
from repro.core.problem import JointProblem
from repro.exceptions import ConfigurationError
from repro.network.topology import single_cell_network
from repro.workload.demand import paper_demand


class TestPolish:
    def test_never_worse(self, small_scenario, rng):
        prob = small_scenario.problem()
        x0 = np.zeros(prob.x_shape)
        for t in range(prob.horizon):
            x0[t, 0, rng.choice(8, 3, replace=False)] = 1.0
        before = prob.cost(x0, solve_y_given_x(prob, x0).y)
        x, y, after = polish_caching(prob, x0)
        assert after.total <= before.total + 1e-9
        prob.check_feasible(x, y)

    def test_fixes_obviously_bad_cache(self, rng):
        net = single_cell_network(
            num_items=4, cache_size=1, bandwidth=5.0, replacement_cost=0.5,
            omega_bs=[1.0],
        )
        demand = np.zeros((2, 1, 4))
        demand[:, 0, 0] = 3.0  # all demand on item 0
        prob = JointProblem(net, demand)
        x0 = np.zeros((2, 1, 4))
        x0[:, 0, 3] = 1.0  # caching a dead item
        x, _y, cost = polish_caching(prob, x0)
        np.testing.assert_allclose(x[:, 0, 0], 1.0)

    def test_reaches_exhaustive_optimum_on_tiny(self, rng):
        for _ in range(3):
            net = single_cell_network(
                num_items=3, cache_size=1, bandwidth=2.0,
                replacement_cost=float(rng.uniform(0, 2)),
                omega_bs=rng.uniform(0.2, 1.0, 2),
            )
            demand = paper_demand(3, 2, 3, rng=rng, density_range=(0.5, 3.0))
            prob = JointProblem(net, demand.rates)
            exact = solve_exhaustive(prob)
            # Polish from the empty trajectory with several passes.
            x, _y, cost = polish_caching(
                prob, np.zeros(prob.x_shape), max_passes=6
            )
            # Local search need not reach the global optimum, but on these
            # tiny instances with independent items it typically does; at
            # minimum it must stay feasible and not exceed the no-cache cost.
            empty_cost = prob.cost(
                np.zeros(prob.x_shape),
                solve_y_given_x(prob, np.zeros(prob.x_shape)).y,
            )
            assert cost.total <= empty_cost.total + 1e-9
            assert cost.total >= exact.cost.total - 1e-9

    def test_respects_capacity(self, small_scenario):
        prob = small_scenario.problem()
        x, _y, _cost = polish_caching(prob, np.zeros(prob.x_shape))
        assert np.all(x.sum(axis=2) <= prob.network.cache_sizes[None, :])

    def test_validation(self, small_scenario):
        prob = small_scenario.problem()
        with pytest.raises(ConfigurationError):
            polish_caching(prob, np.zeros(prob.x_shape), max_passes=0)
        with pytest.raises(ConfigurationError):
            polish_caching(prob, np.zeros((1, 1, 1)))

    def test_idempotent_at_local_optimum(self, small_scenario):
        prob = small_scenario.problem()
        x1, _, c1 = polish_caching(prob, np.zeros(prob.x_shape), max_passes=8)
        x2, _, c2 = polish_caching(prob, x1, max_passes=2)
        assert c2.total == pytest.approx(c1.total, abs=1e-9)
        np.testing.assert_allclose(x2, x1)


class TestSeededPrimalDual:
    def test_candidates_bound_the_result(self, small_scenario, rng):
        from repro.core.primal_dual import solve_primal_dual

        prob = small_scenario.problem()
        candidate = np.zeros(prob.x_shape)
        candidate[:, 0, :3] = 1.0
        cand_cost = prob.cost(
            candidate, solve_y_given_x(prob, candidate).y
        ).total
        result = solve_primal_dual(
            prob, max_iter=3, initial_candidates=(candidate,)
        )
        assert result.upper_bound <= cand_cost + 1e-9

    def test_bad_candidate_shape_rejected(self, small_scenario):
        from repro.core.primal_dual import solve_primal_dual

        prob = small_scenario.problem()
        with pytest.raises(ConfigurationError):
            solve_primal_dual(
                prob, max_iter=2, initial_candidates=(np.zeros((1, 1, 1)),)
            )

    def test_offline_never_loses_to_lrfu_or_static(self, rng):
        from repro.baselines import LRFU, StaticTopK
        from repro.core.offline import OfflineOptimal
        from repro.sim.runner import run_policies
        from repro.sim.experiment import paper_scenario

        scenario = paper_scenario(
            seed=8, horizon=10, num_items=8, num_classes=6,
            cache_size=2, bandwidth=6.0, beta=5.0,
        )
        results = run_policies(
            scenario, [OfflineOptimal(max_iter=40), LRFU(), StaticTopK()]
        )
        off = results["Offline"].cost.total
        assert off <= results["LRFU"].cost.total + 1e-9
        assert off <= results["StaticTopK"].cost.total + 1e-9

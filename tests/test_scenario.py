"""Tests for the scenario container and policy-plan validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.scenario import PolicyPlan, Scenario, validate_plan
from repro.workload.demand import paper_demand
from repro.workload.predictor import PerfectPredictor, PerturbedPredictor


class TestScenario:
    def test_defaults(self, small_network, small_demand):
        sc = Scenario(network=small_network, demand=small_demand)
        assert isinstance(sc.predictor, PerfectPredictor)
        assert sc.x_initial.shape == (1, 8)
        assert sc.x_initial.sum() == 0.0
        assert sc.horizon == 12

    def test_problem_roundtrip(self, small_scenario):
        prob = small_scenario.problem()
        assert prob.horizon == small_scenario.horizon
        np.testing.assert_allclose(prob.demand, small_scenario.demand.rates)

    def test_window_problem_uses_prediction(self, small_scenario):
        predicted = np.ones((3, 6, 8))
        prob = small_scenario.window_problem(predicted, small_scenario.x_initial)
        np.testing.assert_allclose(prob.demand, predicted)

    def test_class_count_mismatch_rejected(self, small_network, rng):
        demand = paper_demand(4, 3, 8, rng=rng)  # network has 6 classes
        with pytest.raises(DimensionMismatchError):
            Scenario(network=small_network, demand=demand)

    def test_item_count_mismatch_rejected(self, small_network, rng):
        demand = paper_demand(4, 6, 5, rng=rng)
        with pytest.raises(DimensionMismatchError):
            Scenario(network=small_network, demand=demand)

    def test_with_predictor(self, small_scenario):
        noisy = PerturbedPredictor(small_scenario.demand, eta=0.2)
        sc = small_scenario.with_predictor(noisy)
        assert sc.predictor is noisy
        assert sc.network is small_scenario.network


class TestValidatePlan:
    def test_accepts_valid(self, small_scenario):
        x = np.zeros((12, 1, 8))
        validate_plan(small_scenario, PolicyPlan(x=x))

    def test_rejects_wrong_shape(self, small_scenario):
        with pytest.raises(DimensionMismatchError):
            validate_plan(small_scenario, PolicyPlan(x=np.zeros((2, 1, 8))))

    def test_rejects_capacity_violation(self, small_scenario):
        x = np.ones((12, 1, 8))  # C = 3 < 8
        with pytest.raises(ConfigurationError):
            validate_plan(small_scenario, PolicyPlan(x=x))

    def test_rejects_out_of_range(self, small_scenario):
        x = np.zeros((12, 1, 8))
        x[0, 0, 0] = 2.0
        with pytest.raises(ConfigurationError):
            validate_plan(small_scenario, PolicyPlan(x=x))

    def test_rejects_bad_y_shape(self, small_scenario):
        x = np.zeros((12, 1, 8))
        with pytest.raises(DimensionMismatchError):
            validate_plan(
                small_scenario, PolicyPlan(x=x, y=np.zeros((12, 2, 8)))
            )

"""Tests for the extended edge metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError
from repro.network.topology import single_cell_network
from repro.sim.metrics import compute_edge_metrics, jain_index


def _net(M=2, K=3, B=4.0, C=2):
    return single_cell_network(
        num_items=K,
        cache_size=C,
        bandwidth=B,
        replacement_cost=1.0,
        omega_bs=[0.5] * M,
    )


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index(np.array([0.5, 0.5, 0.5])) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_index(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index(np.array([])) == 1.0
        assert jain_index(np.zeros(3)) == 1.0


class TestEdgeMetrics:
    def test_full_hit_full_offload(self):
        net = _net(B=100.0, C=3)
        demand = np.ones((2, 2, 3))
        x = np.ones((2, 1, 3))
        y = np.ones((2, 2, 3))
        m = compute_edge_metrics(net, demand, x, y)
        assert m.hit_ratio == pytest.approx(1.0)
        assert m.offload_ratio == pytest.approx(1.0)
        np.testing.assert_allclose(m.cache_occupancy, [1.0])
        assert m.offload_fairness == pytest.approx(1.0)

    def test_no_cache_no_hits(self):
        net = _net()
        demand = np.ones((2, 2, 3))
        x = np.zeros((2, 1, 3))
        y = np.zeros((2, 2, 3))
        m = compute_edge_metrics(net, demand, x, y)
        assert m.hit_ratio == 0.0
        assert m.offload_ratio == 0.0
        assert m.churn_per_slot == 0.0
        np.testing.assert_allclose(m.bandwidth_utilization, [0.0])

    def test_partial_hit_ratio(self):
        net = _net()
        demand = np.ones((1, 2, 3))  # 6 units total
        x = np.zeros((1, 1, 3))
        x[0, 0, 0] = 1.0  # one of three items cached -> 2 of 6 units
        y = np.zeros((1, 2, 3))
        m = compute_edge_metrics(net, demand, x, y)
        assert m.hit_ratio == pytest.approx(2 / 6)

    def test_bandwidth_utilization(self):
        net = _net(B=4.0)
        demand = np.full((1, 2, 3), 1.0)
        x = np.ones((1, 1, 3))
        y = np.full((1, 2, 3), 1 / 3)  # 2 units served of 4 budget
        m = compute_edge_metrics(net, demand, x, y)
        np.testing.assert_allclose(m.bandwidth_utilization, [0.5])

    def test_churn_counts_insertions(self):
        net = _net()
        demand = np.ones((2, 2, 3))
        x = np.zeros((2, 1, 3))
        x[0, 0, 0] = 1.0
        x[1, 0, 1] = 1.0  # evict 0, insert 1
        y = np.zeros((2, 2, 3))
        m = compute_edge_metrics(net, demand, x, y)
        assert m.churn_per_slot == pytest.approx(1.0)

    def test_initial_cache_respected(self):
        net = _net()
        demand = np.ones((1, 2, 3))
        x = np.zeros((1, 1, 3))
        x[0, 0, 0] = 1.0
        y = np.zeros((1, 2, 3))
        m = compute_edge_metrics(
            net, demand, x, y, x_initial=np.array([[1.0, 0.0, 0.0]])
        )
        assert m.churn_per_slot == 0.0

    def test_fairness_detects_skew(self):
        net = _net(M=2)
        demand = np.ones((1, 2, 3))
        x = np.ones((1, 1, 3))
        y = np.zeros((1, 2, 3))
        y[0, 0] = 1.0  # class 0 fully served, class 1 ignored
        m = compute_edge_metrics(net, demand, x, y)
        assert m.offload_fairness == pytest.approx(0.5)

    def test_shape_validation(self):
        net = _net()
        with pytest.raises(DimensionMismatchError):
            compute_edge_metrics(
                net, np.ones((1, 2, 3)), np.ones((2, 1, 3)), np.ones((1, 2, 3))
            )
        with pytest.raises(DimensionMismatchError):
            compute_edge_metrics(
                net, np.ones((1, 2, 3)), np.ones((1, 1, 3)), np.ones((1, 2, 2))
            )

    def test_summary_renders(self):
        net = _net()
        demand = np.ones((1, 2, 3))
        m = compute_edge_metrics(
            net, demand, np.zeros((1, 1, 3)), np.zeros((1, 2, 3))
        )
        text = m.summary()
        assert "hit=" in text and "fairness=" in text

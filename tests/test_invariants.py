"""Cross-cutting property tests: invariants every component must respect.

These tie modules together: any policy's realized run must satisfy the
model constraints; costs must respond to parameters in the directions the
model implies; solver outputs must be stable under re-runs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import LRFU, HysteresisCache, StaticTopK
from repro.core.load_balancing import solve_y_given_x
from repro.core.primal_dual import solve_primal_dual
from repro.core.problem import JointProblem
from repro.network.topology import single_cell_network
from repro.scenario import Scenario
from repro.sim.engine import evaluate_plan
from repro.workload.demand import paper_demand


def _random_scenario(seed: int, **overrides) -> Scenario:
    rng = np.random.default_rng(seed)
    params = dict(
        K=int(rng.integers(3, 8)),
        M=int(rng.integers(2, 5)),
        T=int(rng.integers(2, 6)),
        C=int(rng.integers(1, 3)),
        B=float(rng.uniform(1.0, 8.0)),
        beta=float(rng.uniform(0.0, 10.0)),
    )
    params.update(overrides)
    net = single_cell_network(
        num_items=params["K"],
        cache_size=min(params["C"], params["K"]),
        bandwidth=params["B"],
        replacement_cost=params["beta"],
        omega_bs=rng.uniform(0.0, 1.0, params["M"]),
    )
    demand = paper_demand(
        params["T"], params["M"], params["K"], rng=rng, density_range=(0.0, 4.0)
    )
    return Scenario(network=net, demand=demand)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_every_policy_run_is_model_feasible(seed: int):
    """Realized (x, y) of every baseline satisfies constraints (1)-(4)."""
    scenario = _random_scenario(seed)
    problem = scenario.problem()
    for policy in (LRFU(), StaticTopK(), HysteresisCache()):
        result = evaluate_plan(scenario, policy.plan(scenario), policy_name=policy.name)
        problem.check_feasible(result.x, result.y)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_offline_cost_monotone_in_beta(seed: int):
    """The optimal cost is non-decreasing in the replacement cost beta."""
    scenario = _random_scenario(seed, beta=1.0)
    lo = solve_primal_dual(scenario.problem(), max_iter=80, gap_tol=1e-4)
    hi_scenario = Scenario(
        network=scenario.network.with_replacement_costs(5.0),
        demand=scenario.demand,
    )
    hi = solve_primal_dual(hi_scenario.problem(), max_iter=80, gap_tol=1e-4)
    # Feasible sets are identical; costs only go up with beta.
    assert hi.upper_bound >= lo.lower_bound - 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_offline_cost_monotone_in_bandwidth(seed: int):
    """More SBS bandwidth never increases the optimal cost."""
    scenario = _random_scenario(seed, B=2.0)
    tight = solve_primal_dual(scenario.problem(), max_iter=80, gap_tol=1e-4)
    wide_scenario = Scenario(
        network=scenario.network.with_bandwidths(8.0),
        demand=scenario.demand,
    )
    # Seed the wide solve with the tight solution: tight.x stays feasible
    # when bandwidth grows, so the incumbent mechanism certifies
    # wide.upper_bound <= cost(tight.x) <= tight.upper_bound even when
    # neither solve converges within the iteration cap.
    wide = solve_primal_dual(
        wide_scenario.problem(),
        max_iter=80,
        gap_tol=1e-4,
        initial_candidates=(tight.x,),
    )
    assert wide.upper_bound <= tight.upper_bound + 1e-6 * max(1, tight.upper_bound)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_offline_cost_monotone_in_cache_size(seed: int):
    """A bigger cache never increases the optimal cost."""
    scenario = _random_scenario(seed, C=1, K=6)
    small = solve_primal_dual(scenario.problem(), max_iter=80, gap_tol=1e-4)
    big_scenario = Scenario(
        network=scenario.network.with_cache_sizes(4),
        demand=scenario.demand,
    )
    # small.x is feasible for the bigger cache, so seeding it as an
    # incumbent makes the monotonicity certified rather than dependent on
    # both heuristic searches converging within the iteration cap.
    big = solve_primal_dual(
        big_scenario.problem(),
        max_iter=80,
        gap_tol=1e-4,
        initial_candidates=(small.x,),
    )
    assert big.upper_bound <= small.upper_bound + 1e-6 * max(1, small.upper_bound)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_oracle_deterministic(seed: int):
    """The fixed-cache oracle is deterministic (same input, same output)."""
    scenario = _random_scenario(seed)
    problem = scenario.problem()
    rng = np.random.default_rng(seed)
    x = np.zeros(problem.x_shape)
    for t in range(problem.horizon):
        cap = int(problem.network.cache_sizes[0])
        x[t, 0, rng.choice(problem.network.num_items, cap, replace=False)] = 1.0
    a = solve_y_given_x(problem, x)
    b = solve_y_given_x(problem, x)
    np.testing.assert_array_equal(a.y, b.y)
    assert a.objective == b.objective


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_scaling_demand_scales_operating_cost_quadratically(seed: int):
    """With quadratic costs, doubling demand at fixed relative bandwidth
    quadruples the optimal operating cost of the no-cache trajectory."""
    scenario = _random_scenario(seed)
    problem = scenario.problem()
    x = np.zeros(problem.x_shape)
    y = np.zeros(problem.y_shape)
    base = problem.cost(x, y)
    doubled = JointProblem(
        network=scenario.network,
        demand=2.0 * problem.demand,
    )
    big = doubled.cost(x, y)
    assert big.operating == pytest.approx(4.0 * base.operating, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), scale=st.floats(0.5, 3.0))
def test_zero_demand_costs_nothing(seed: int, scale: float):
    """A slot with no demand contributes no operating cost."""
    scenario = _random_scenario(seed)
    net = scenario.network
    demand = np.zeros((2, net.num_classes, net.num_items))
    problem = JointProblem(net, demand)
    x = np.zeros(problem.x_shape)
    y = np.zeros(problem.y_shape)
    assert problem.cost(x, y).total == 0.0

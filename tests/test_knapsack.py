"""Tests for the fractional-knapsack primitive."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.optim.knapsack import fractional_knapsack_offload


class TestFractionalKnapsack:
    def test_fills_best_first(self):
        values = np.array([1.0, 3.0, 2.0])
        caps = np.array([2.0, 2.0, 2.0])
        z = fractional_knapsack_offload(values, caps, budget=3.0)
        np.testing.assert_allclose(z, [0.0, 2.0, 1.0])

    def test_skips_nonpositive_values(self):
        values = np.array([0.0, -1.0, 2.0])
        caps = np.array([5.0, 5.0, 1.0])
        z = fractional_knapsack_offload(values, caps, budget=10.0)
        np.testing.assert_allclose(z, [0.0, 0.0, 1.0])

    def test_budget_zero(self):
        z = fractional_knapsack_offload(np.array([1.0]), np.array([1.0]), 0.0)
        np.testing.assert_allclose(z, [0.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fractional_knapsack_offload(np.ones(2), np.ones(3), 1.0)
        with pytest.raises(ConfigurationError):
            fractional_knapsack_offload(np.ones(2), -np.ones(2), 1.0)
        with pytest.raises(ConfigurationError):
            fractional_knapsack_offload(np.ones(2), np.ones(2), -1.0)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), budget=st.floats(0.0, 10.0))
def test_knapsack_matches_lp(seed: int, budget: float):
    """Property: greedy fill equals the LP optimum of the same knapsack."""
    import scipy.optimize

    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 8))
    values = rng.uniform(-1.0, 2.0, n)
    caps = rng.uniform(0.0, 3.0, n)
    z = fractional_knapsack_offload(values, caps, budget)
    lp = scipy.optimize.linprog(
        c=-values,
        A_ub=np.ones((1, n)),
        b_ub=[budget],
        bounds=np.column_stack([np.zeros(n), caps]),
        method="highs",
    )
    assert lp.success
    assert values @ z == pytest.approx(-lp.fun, abs=1e-8)
    assert z.sum() <= budget + 1e-9
    assert np.all(z <= caps + 1e-12) and np.all(z >= 0)

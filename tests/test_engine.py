"""Tests for the realized-cost evaluation engine and the runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LRFU, NoCache, StaticTopK
from repro.core.load_balancing import solve_y_given_x
from repro.exceptions import ConfigurationError
from repro.network.topology import single_cell_network
from repro.scenario import PolicyPlan, Scenario
from repro.sim.engine import evaluate_plan
from repro.sim.runner import cost_ratios, run_policies, run_policy
from repro.workload.demand import DemandMatrix


def _simple_scenario(*, B=2.0, beta=1.0) -> Scenario:
    net = single_cell_network(
        num_items=3,
        cache_size=1,
        bandwidth=B,
        replacement_cost=beta,
        omega_bs=[1.0],
    )
    rates = np.zeros((2, 1, 3))
    rates[:, 0, 0] = 2.0
    rates[:, 0, 1] = 1.0
    return Scenario(network=net, demand=DemandMatrix(rates))


class TestEvaluatePlan:
    def test_reoptimize_uses_oracle(self):
        sc = _simple_scenario()
        x = np.zeros((2, 1, 3))
        x[:, 0, 0] = 1.0
        result = evaluate_plan(sc, PolicyPlan(x=x), policy_name="static0")
        oracle = solve_y_given_x(sc.problem(), x)
        np.testing.assert_allclose(result.y, oracle.y)
        assert result.policy == "static0"
        assert result.cost.replacements == 1

    def test_per_slot_series_sum_to_total(self):
        sc = _simple_scenario()
        x = np.zeros((2, 1, 3))
        x[0, 0, 0] = 1.0
        x[1, 0, 1] = 1.0
        result = evaluate_plan(sc, PolicyPlan(x=x))
        assert result.per_slot_total.sum() == pytest.approx(result.cost.total)
        assert result.per_slot_replacements.sum() == result.cost.replacements == 2

    def test_as_decided_masks_and_repairs(self):
        sc = _simple_scenario(B=1.0)
        x = np.zeros((2, 1, 3))
        x[:, 0, 0] = 1.0
        # The policy claims it can serve everything everywhere - infeasible.
        y_decided = np.ones((2, 1, 3))
        result = evaluate_plan(
            sc, PolicyPlan(x=x, y=y_decided), mode="as_decided"
        )
        # Masked to cached item and scaled to bandwidth 1 (demand 2).
        assert result.y[0, 0, 1] == 0.0
        load = float((sc.demand.rates[0] * result.y[0]).sum())
        assert load <= 1.0 + 1e-9

    def test_as_decided_without_y_falls_back(self):
        sc = _simple_scenario()
        x = np.zeros((2, 1, 3))
        result = evaluate_plan(sc, PolicyPlan(x=x), mode="as_decided")
        assert result.y.sum() == 0.0

    def test_unknown_mode_rejected(self):
        sc = _simple_scenario()
        with pytest.raises(ConfigurationError):
            evaluate_plan(
                sc, PolicyPlan(x=np.zeros((2, 1, 3))), mode="nope"  # type: ignore[arg-type]
            )

    def test_as_decided_never_beats_reoptimize(self, small_scenario):
        plan = StaticTopK().plan(small_scenario)
        y_bad = np.clip(
            plan.x[:, small_scenario.network.class_sbs, :] * 0.5, 0, 1
        )
        decided = PolicyPlan(x=plan.x, y=y_bad)
        re_cost = evaluate_plan(small_scenario, decided, mode="reoptimize").cost
        as_cost = evaluate_plan(small_scenario, decided, mode="as_decided").cost
        assert re_cost.total <= as_cost.total + 1e-6


class TestRunner:
    def test_run_policy(self, small_scenario):
        result = run_policy(small_scenario, LRFU())
        assert result.policy == "LRFU"

    def test_run_policies_keys(self, small_scenario):
        results = run_policies(small_scenario, [LRFU(), NoCache()])
        assert set(results) == {"LRFU", "NoCache"}

    def test_cost_ratios(self, small_scenario):
        results = run_policies(
            small_scenario, [StaticTopK(), NoCache(), LRFU()]
        )
        ratios = cost_ratios(results, reference="StaticTopK")
        assert ratios["StaticTopK"] == pytest.approx(1.0)
        assert ratios["NoCache"] > 1.0

    def test_cost_ratios_missing_reference(self, small_scenario):
        results = run_policies(small_scenario, [LRFU()])
        with pytest.raises(KeyError):
            cost_ratios(results, reference="Offline")

"""Tests for the exception hierarchy and shared type helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    InfeasibleProblemError,
    ReproError,
    SolverError,
    UnboundedProblemError,
)
from repro.types import as_float_array, is_binary


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            InfeasibleProblemError,
            UnboundedProblemError,
            SolverError,
            DimensionMismatchError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_dimension_mismatch_is_configuration_error(self):
        assert issubclass(DimensionMismatchError, ConfigurationError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise SolverError("boom")


class TestAsFloatArray:
    def test_converts_lists(self):
        arr = as_float_array([1, 2, 3])
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="demand"):
            as_float_array([1.0, float("nan")], name="demand")

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            as_float_array([float("inf")])


class TestIsBinary:
    def test_binary_matrices(self):
        assert is_binary(np.array([0.0, 1.0, 1.0]))
        assert is_binary(np.array([1e-9, 1 - 1e-9]))

    def test_fractional_rejected(self):
        assert not is_binary(np.array([0.5]))
        assert not is_binary(np.array([0.0, 0.1]))

    def test_custom_tolerance(self):
        assert is_binary(np.array([0.05]), atol=0.1)
        assert not is_binary(np.array([0.05]), atol=0.01)

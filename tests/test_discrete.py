"""Tests for the discrete request-level replay simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.network.topology import single_cell_network
from repro.sim.discrete import _largest_remainder_round, replay_trace
from repro.workload.trace import RequestTrace


def _net(M=2, K=3, B=10.0, C=2, omega=None):
    return single_cell_network(
        num_items=K,
        cache_size=C,
        bandwidth=B,
        replacement_cost=2.0,
        omega_bs=omega or [0.5] * M,
    )


def _trace(counts) -> RequestTrace:
    return RequestTrace(np.asarray(counts, dtype=np.int64))


class TestRounding:
    def test_preserves_total(self):
        targets = np.array([[0.5, 0.5], [1.2, 0.8]])
        rounded = _largest_remainder_round(targets)
        assert rounded.sum() == round(targets.sum())

    def test_integers_untouched(self):
        targets = np.array([[2.0, 3.0]])
        np.testing.assert_array_equal(_largest_remainder_round(targets), [[2, 3]])


class TestReplay:
    def test_uncached_requests_go_to_bs(self):
        net = _net()
        trace = _trace(np.full((2, 2, 3), 2))
        x = np.zeros((2, 1, 3))
        y = np.ones((2, 2, 3))
        report = replay_trace(net, trace, x, y)
        assert report.served_sbs.sum() == 0
        assert report.served_bs.sum() == report.total_requests
        assert report.hit_ratio == 0.0

    def test_full_service_when_cached_and_ample(self):
        net = _net(B=100.0, C=3)
        trace = _trace(np.full((2, 2, 3), 2))
        x = np.ones((2, 1, 3))
        y = np.ones((2, 2, 3))
        report = replay_trace(net, trace, x, y)
        assert report.offload_ratio == pytest.approx(1.0)
        assert report.hit_ratio == pytest.approx(1.0)
        assert report.served_bs.sum() == 0

    def test_bandwidth_budget_enforced(self):
        net = _net(B=3.0, C=3)
        trace = _trace(np.full((1, 2, 3), 5))  # 30 requests, budget 3
        x = np.ones((1, 1, 3))
        y = np.ones((1, 2, 3))
        report = replay_trace(net, trace, x, y)
        assert report.served_sbs.sum() == 3
        assert report.served_bs.sum() == 27

    def test_spill_prefers_keeping_high_omega(self):
        net = _net(M=2, B=4.0, C=3, omega=[0.1, 0.9])
        counts = np.zeros((1, 2, 3), dtype=np.int64)
        counts[0, 0, 0] = 4  # low-omega class
        counts[0, 1, 1] = 4  # high-omega class
        trace = _trace(counts)
        x = np.ones((1, 1, 3))
        y = np.ones((1, 2, 3))
        report = replay_trace(net, trace, x, y)
        # Budget 4: the high-omega class keeps its SBS service.
        assert report.served_sbs[0, 1, 1] == 4
        assert report.served_sbs[0, 0, 0] == 0

    def test_matches_fluid_cost_on_integral_instance(self):
        """When the trace equals the rates and y is integral & feasible, the
        replay cost equals the fluid cost exactly."""
        from repro.network.costs import total_cost

        net = _net(B=100.0, C=3)
        counts = np.full((2, 2, 3), 3, dtype=np.int64)
        trace = _trace(counts)
        x = np.ones((2, 1, 3))
        y = np.ones((2, 2, 3))
        report = replay_trace(net, trace, x, y)
        fluid = total_cost(net, counts.astype(float), x, y)
        assert report.cost.total == pytest.approx(fluid.total)
        assert report.cost.replacements == fluid.replacements

    def test_fractional_y_routes_expected_counts(self):
        net = _net(B=100.0, C=3)
        counts = np.zeros((1, 2, 3), dtype=np.int64)
        counts[0, 0, 0] = 10
        trace = _trace(counts)
        x = np.ones((1, 1, 3))
        y = np.zeros((1, 2, 3))
        y[0, 0, 0] = 0.3
        report = replay_trace(net, trace, x, y)
        assert report.served_sbs[0, 0, 0] == 3

    def test_stochastic_mode(self):
        net = _net(B=1000.0, C=3)
        counts = np.full((1, 2, 3), 100, dtype=np.int64)
        trace = _trace(counts)
        x = np.ones((1, 1, 3))
        y = np.full((1, 2, 3), 0.5)
        rng = np.random.default_rng(0)
        report = replay_trace(net, trace, x, y, stochastic=True, rng=rng)
        assert 200 < report.served_sbs.sum() < 400  # ~300 expected

    def test_stochastic_requires_rng(self):
        net = _net()
        trace = _trace(np.ones((1, 2, 3), dtype=np.int64))
        with pytest.raises(ConfigurationError):
            replay_trace(
                net, trace, np.ones((1, 1, 3)), np.ones((1, 2, 3)), stochastic=True
            )

    def test_shape_validation(self):
        net = _net()
        trace = _trace(np.ones((1, 2, 3), dtype=np.int64))
        with pytest.raises(DimensionMismatchError):
            replay_trace(net, trace, np.ones((2, 1, 3)), np.ones((1, 2, 3)))

    def test_replay_tracks_fluid_shape(self, rng):
        """On a realistic plan, discrete totals land near the fluid ones."""
        from repro.core.load_balancing import solve_y_given_x
        from repro.core.problem import JointProblem
        from repro.workload.demand import paper_demand
        from repro.workload.trace import sample_poisson_trace

        net = _net(M=4, K=6, B=20.0, C=3, omega=list(rng.uniform(0.2, 1, 4)))
        demand = paper_demand(6, 4, 6, rng=rng, density_range=(2.0, 8.0))
        prob = JointProblem(net, demand.rates)
        x = np.zeros((6, 1, 6))
        x[:, 0, :3] = 1.0
        y = solve_y_given_x(prob, x).y
        fluid = prob.cost(x, y).total
        trace = sample_poisson_trace(demand, rng=rng)
        report = replay_trace(net, trace, x, y)
        assert report.cost.total == pytest.approx(fluid, rel=0.35)

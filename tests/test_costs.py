"""Unit + property tests for the cost model (paper Eqs. 5-8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DimensionMismatchError
from repro.network.costs import (
    CostBreakdown,
    LinearOperatingCost,
    QuadraticOperatingCost,
    aggregate_bs_load,
    bs_operating_cost,
    replacement_cost,
    replacement_count,
    sbs_operating_cost,
    total_cost,
)
from repro.network.topology import single_cell_network


def _net(M=3, K=4, omega=None, omega_hat=0.0):
    omega = omega if omega is not None else [0.5] * M
    return single_cell_network(
        num_items=K,
        cache_size=2,
        bandwidth=10.0,
        replacement_cost=3.0,
        omega_bs=omega,
        omega_sbs=omega_hat,
    )


class TestOperatingCosts:
    def test_bs_cost_matches_equation_5(self):
        """f_t = (sum_m omega_m sum_k (1-y) lam)^2 for one SBS."""
        net = _net(M=2, K=2, omega=[0.5, 1.0])
        lam = np.array([[1.0, 2.0], [3.0, 0.0]])
        y = np.array([[0.5, 0.0], [1.0, 0.0]])
        inner = 0.5 * (0.5 * 1.0 + 1.0 * 2.0) + 1.0 * (0.0 * 3.0 + 1.0 * 0.0)
        assert bs_operating_cost(net, lam, y) == pytest.approx(inner**2)

    def test_sbs_cost_matches_equation_6(self):
        net = _net(M=2, K=2, omega=[0.5, 1.0], omega_hat=[0.01, 0.02])
        lam = np.array([[1.0, 2.0], [3.0, 0.0]])
        y = np.array([[0.5, 0.0], [1.0, 0.0]])
        inner = 0.01 * (0.5 * 1.0) + 0.02 * (1.0 * 3.0)
        assert sbs_operating_cost(net, lam, y) == pytest.approx(inner**2)

    def test_full_offload_zeroes_bs_cost(self):
        net = _net()
        lam = np.ones((3, 4))
        assert bs_operating_cost(net, lam, np.ones((3, 4))) == pytest.approx(0.0)

    def test_no_offload_zeroes_sbs_cost(self):
        net = _net(omega_hat=0.1)
        lam = np.ones((3, 4))
        assert sbs_operating_cost(net, lam, np.zeros((3, 4))) == pytest.approx(0.0)

    def test_bs_cost_decreases_with_offload(self):
        net = _net()
        lam = np.ones((3, 4))
        y_lo = np.full((3, 4), 0.2)
        y_hi = np.full((3, 4), 0.8)
        assert bs_operating_cost(net, lam, y_hi) < bs_operating_cost(net, lam, y_lo)

    def test_shape_validation(self):
        net = _net()
        with pytest.raises(DimensionMismatchError):
            bs_operating_cost(net, np.ones((2, 4)), np.ones((2, 4)))

    def test_linear_cost_shape(self):
        cost = LinearOperatingCost(scale=2.0)
        agg = np.array([1.0, 3.0])
        assert cost.evaluate(agg) == pytest.approx(8.0)
        np.testing.assert_allclose(cost.derivative(agg), [2.0, 2.0])

    def test_quadratic_derivative(self):
        cost = QuadraticOperatingCost(scale=1.5)
        agg = np.array([2.0])
        assert cost.evaluate(agg) == pytest.approx(6.0)
        np.testing.assert_allclose(cost.derivative(agg), [6.0])

    def test_multi_sbs_aggregation(self):
        from repro.network import ContentCatalog, MUClass, Network, SmallBaseStation

        net = Network(
            ContentCatalog(2),
            (SmallBaseStation(0, 1, 5.0, 1.0), SmallBaseStation(1, 1, 5.0, 1.0)),
            (MUClass(0, 0, 1.0), MUClass(1, 1, 2.0)),
        )
        lam = np.array([[1.0, 0.0], [0.0, 2.0]])
        y = np.zeros((2, 2))
        agg = aggregate_bs_load(net, lam, y)
        np.testing.assert_allclose(agg, [1.0, 4.0])
        # Squares are summed per SBS, not over the joint aggregate.
        assert bs_operating_cost(net, lam, y) == pytest.approx(1.0 + 16.0)


class TestReplacementCost:
    def test_counts_only_insertions(self):
        net = _net(K=4)
        prev = np.array([[1.0, 1.0, 0.0, 0.0]])
        new = np.array([[1.0, 0.0, 1.0, 1.0]])
        # Two insertions (items 2, 3), beta = 3.
        assert replacement_cost(net, new, prev) == pytest.approx(6.0)
        assert replacement_count(new, prev) == 2

    def test_eviction_is_free(self):
        net = _net(K=4)
        prev = np.array([[1.0, 1.0, 0.0, 0.0]])
        new = np.array([[0.0, 0.0, 0.0, 0.0]])
        assert replacement_cost(net, new, prev) == pytest.approx(0.0)
        assert replacement_count(new, prev) == 0

    def test_fractional_positive_part(self):
        net = _net(K=4)
        prev = np.array([[0.2, 0.0, 0.0, 0.0]])
        new = np.array([[0.7, 0.0, 0.0, 0.0]])
        assert replacement_cost(net, new, prev) == pytest.approx(3.0 * 0.5)


class TestCostBreakdown:
    def test_total_and_addition(self):
        a = CostBreakdown(1.0, 2.0, 3.0, 4)
        b = CostBreakdown(10.0, 20.0, 30.0, 40)
        s = a + b
        assert s.total == pytest.approx(66.0)
        assert s.operating == pytest.approx(33.0)
        assert s.replacements == 44
        assert CostBreakdown.zero().total == 0.0

    def test_total_cost_trajectory(self):
        net = _net(M=1, K=2, omega=[1.0])
        lam = np.ones((2, 1, 2))
        x = np.array([[[1.0, 0.0]], [[0.0, 1.0]]])
        y = np.zeros((2, 1, 2))
        out = total_cost(net, lam, x, y)
        # Two slots each with residual (1+1) -> f = 4; two insertions.
        assert out.bs_cost == pytest.approx(8.0)
        assert out.replacement == pytest.approx(6.0)
        assert out.replacements == 2

    def test_total_cost_respects_initial_cache(self):
        net = _net(M=1, K=2, omega=[1.0])
        lam = np.ones((1, 1, 2))
        x = np.array([[[1.0, 0.0]]])
        y = np.zeros((1, 1, 2))
        out = total_cost(net, lam, x, y, x_initial=np.array([[1.0, 0.0]]))
        assert out.replacement == pytest.approx(0.0)

    def test_horizon_mismatch_raises(self):
        net = _net(M=1, K=2, omega=[1.0])
        with pytest.raises(DimensionMismatchError):
            total_cost(net, np.ones((2, 1, 2)), np.zeros((1, 1, 2)), np.zeros((2, 1, 2)))


@settings(max_examples=50, deadline=None)
@given(
    y_seed=st.integers(0, 2**31 - 1),
    scale=st.floats(0.1, 5.0),
)
def test_bs_cost_nonnegative_and_monotone(y_seed: int, scale: float):
    """Property: f_t >= 0 and raising any y entry never increases f_t."""
    rng = np.random.default_rng(y_seed)
    net = _net(M=3, K=4, omega=list(rng.uniform(0, 1, 3)))
    lam = rng.uniform(0, 2, (3, 4))
    y = rng.uniform(0, 1, (3, 4))
    cost = QuadraticOperatingCost(scale=scale)
    base = bs_operating_cost(net, lam, y, cost)
    assert base >= 0
    bumped = y.copy()
    m, k = rng.integers(0, 3), rng.integers(0, 4)
    bumped[m, k] = min(1.0, bumped[m, k] + 0.3)
    assert bs_operating_cost(net, lam, bumped, cost) <= base + 1e-9


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_replacement_cost_triangle(seed: int):
    """Property: switching a->c costs at most switching a->b->c."""
    rng = np.random.default_rng(seed)
    net = _net(K=6)
    a, b, c = [(rng.random((1, 6)) > 0.5).astype(float) for _ in range(3)]
    direct = replacement_cost(net, c, a)
    detour = replacement_cost(net, b, a) + replacement_cost(net, c, b)
    assert direct <= detour + 1e-9

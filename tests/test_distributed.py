"""Tests for the distributed (per-SBS) solver: separability made executable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributed import (
    DistributedOfflineOptimal,
    solve_distributed,
    split_by_sbs,
)
from repro.core.primal_dual import solve_primal_dual
from repro.core.problem import JointProblem
from repro.network import ContentCatalog, MUClass, Network, SmallBaseStation
from repro.scenario import Scenario, validate_plan
from repro.sim.engine import evaluate_plan
from repro.workload.demand import DemandMatrix, paper_demand


@pytest.fixture
def two_cell_problem(rng) -> JointProblem:
    net = Network(
        ContentCatalog(6),
        (
            SmallBaseStation(0, 2, 4.0, 3.0),
            SmallBaseStation(1, 3, 6.0, 8.0),
        ),
        (
            MUClass(0, 0, 0.8),
            MUClass(1, 0, 0.3),
            MUClass(2, 1, 0.9),
            MUClass(3, 1, 0.5),
            MUClass(4, 1, 0.2),
        ),
    )
    demand = paper_demand(5, 5, 6, rng=rng, density_range=(0.0, 3.0))
    return JointProblem(net, demand.rates)


class TestSplit:
    def test_partition_classes(self, two_cell_problem):
        parts = split_by_sbs(two_cell_problem)
        assert len(parts) == 2
        sub0, classes0 = parts[0]
        sub1, classes1 = parts[1]
        assert classes0.tolist() == [0, 1]
        assert classes1.tolist() == [2, 3, 4]
        assert sub0.network.num_classes == 2
        assert sub1.network.num_classes == 3
        # Demand slices line up.
        np.testing.assert_allclose(
            sub1.demand, two_cell_problem.demand[:, [2, 3, 4], :]
        )

    def test_parameters_carried_over(self, two_cell_problem):
        parts = split_by_sbs(two_cell_problem)
        sub1, _ = parts[1]
        assert sub1.network.cache_sizes.tolist() == [3]
        assert sub1.network.bandwidths.tolist() == [6.0]
        assert sub1.network.replacement_costs.tolist() == [8.0]
        np.testing.assert_allclose(sub1.network.omega_bs, [0.9, 0.5, 0.2])


class TestSolveDistributed:
    def test_matches_joint_solve(self, two_cell_problem):
        joint = solve_primal_dual(
            two_cell_problem, max_iter=250, gap_tol=1e-5
        )
        dist = solve_distributed(
            two_cell_problem, max_iter=250, gap_tol=1e-5, ub_patience=None
        )
        # Separability: same optimal value (to solver tolerance).
        assert dist.cost.total == pytest.approx(joint.cost.total, rel=2e-3)
        assert dist.lower_bound <= dist.cost.total + 1e-9

    def test_solution_feasible_for_joint_problem(self, two_cell_problem):
        dist = solve_distributed(two_cell_problem, max_iter=100)
        two_cell_problem.check_feasible(dist.x, dist.y)

    def test_cost_is_sum_of_locals(self, two_cell_problem):
        dist = solve_distributed(two_cell_problem, max_iter=60)
        local_total = sum(r.cost.total for r in dist.per_sbs)
        assert dist.cost.total == pytest.approx(local_total)

    def test_single_sbs_identical_to_joint(self, small_scenario):
        prob = small_scenario.problem()
        joint = solve_primal_dual(prob, max_iter=120, gap_tol=1e-4)
        dist = solve_distributed(prob, max_iter=120, gap_tol=1e-4)
        assert dist.cost.total == pytest.approx(joint.cost.total, rel=1e-3)


class TestPolicy:
    def test_plan_validates(self, two_cell_problem, rng):
        scenario = Scenario(
            network=two_cell_problem.network,
            demand=DemandMatrix(two_cell_problem.demand),
        )
        policy = DistributedOfflineOptimal(max_iter=60)
        plan = policy.plan(scenario)
        validate_plan(scenario, plan)
        assert plan.solves == 2
        result = evaluate_plan(scenario, plan, policy_name=policy.name)
        assert result.cost.total > 0

"""Tests for Algorithm 1 (primal-dual decomposition) and the problem container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exhaustive import solve_exhaustive
from repro.core.primal_dual import solve_primal_dual
from repro.core.problem import JointProblem
from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.network.topology import single_cell_network
from repro.workload.demand import paper_demand


class TestJointProblem:
    def test_shapes(self, tiny_problem):
        assert tiny_problem.horizon == 3
        assert tiny_problem.x_shape == (3, 1, 4)
        assert tiny_problem.y_shape == (3, 3, 4)

    def test_default_initial_cache_empty(self, tiny_problem):
        assert tiny_problem.x_initial.sum() == 0.0

    def test_rejects_negative_demand(self, tiny_network):
        with pytest.raises(ConfigurationError):
            JointProblem(tiny_network, -np.ones((2, 3, 4)))

    def test_rejects_wrong_demand_shape(self, tiny_network):
        with pytest.raises(DimensionMismatchError):
            JointProblem(tiny_network, np.ones((2, 5, 4)))

    def test_rejects_fractional_initial_cache(self, tiny_network):
        with pytest.raises(ConfigurationError):
            JointProblem(
                tiny_network, np.ones((2, 3, 4)), x_initial=np.full((1, 4), 0.5)
            )

    def test_check_feasible_accepts_valid(self, tiny_problem):
        x = np.zeros(tiny_problem.x_shape)
        x[:, 0, 0] = 1.0
        y = np.zeros(tiny_problem.y_shape)
        y[:, :, 0] = 0.1
        tiny_problem.check_feasible(x, y)

    def test_check_feasible_rejects_coupling_violation(self, tiny_problem):
        x = np.zeros(tiny_problem.x_shape)
        y = np.zeros(tiny_problem.y_shape)
        y[0, 0, 0] = 0.5  # not cached
        with pytest.raises(ConfigurationError):
            tiny_problem.check_feasible(x, y)

    def test_check_feasible_rejects_capacity_violation(self, tiny_problem):
        x = np.ones(tiny_problem.x_shape)  # C=1 but all 4 cached
        y = np.zeros(tiny_problem.y_shape)
        with pytest.raises(ConfigurationError):
            tiny_problem.check_feasible(x, y)

    def test_check_feasible_rejects_bandwidth_violation(self, rng):
        net = single_cell_network(
            num_items=2, cache_size=2, bandwidth=0.5, replacement_cost=1.0,
            omega_bs=[0.5],
        )
        prob = JointProblem(net, np.full((1, 1, 2), 5.0))
        x = np.ones((1, 1, 2))
        y = np.ones((1, 1, 2))
        with pytest.raises(ConfigurationError):
            prob.check_feasible(x, y)

    def test_window_padding(self, tiny_problem):
        sub = tiny_problem.window(2, 4, tiny_problem.x_initial)
        assert sub.horizon == 4
        np.testing.assert_allclose(sub.demand[0], tiny_problem.demand[2])
        assert sub.demand[1:].sum() == 0.0

    def test_cost_is_sum_of_components(self, tiny_problem):
        x = np.zeros(tiny_problem.x_shape)
        y = np.zeros(tiny_problem.y_shape)
        breakdown = tiny_problem.cost(x, y)
        assert breakdown.total == pytest.approx(
            breakdown.bs_cost + breakdown.sbs_cost + breakdown.replacement
        )
        assert breakdown.replacement == 0.0


class TestPrimalDual:
    def test_matches_exhaustive_on_tiny_instances(self, rng):
        for trial in range(4):
            net = single_cell_network(
                num_items=4,
                cache_size=1,
                bandwidth=3.0,
                replacement_cost=float(rng.uniform(0, 5)),
                omega_bs=rng.uniform(0.1, 1.0, 3),
            )
            demand = paper_demand(3, 3, 4, rng=rng, density_range=(0.0, 6.0))
            prob = JointProblem(net, demand.rates)
            exact = solve_exhaustive(prob)
            result = solve_primal_dual(prob, max_iter=300, gap_tol=1e-5)
            assert result.upper_bound >= exact.cost.total - 1e-6
            assert result.lower_bound <= exact.cost.total + 1e-6
            assert result.upper_bound <= exact.cost.total * 1.02 + 1e-6

    def test_bounds_are_ordered_and_feasible(self, small_scenario):
        prob = small_scenario.problem()
        result = solve_primal_dual(prob, max_iter=60)
        assert result.lower_bound <= result.upper_bound + 1e-9
        prob.check_feasible(result.x, result.y)
        assert result.cost.total == pytest.approx(result.upper_bound)

    def test_history_monotone(self, small_scenario):
        result = solve_primal_dual(small_scenario.problem(), max_iter=40)
        lbs = [h[0] for h in result.history]
        ubs = [h[1] for h in result.history]
        assert all(b >= a - 1e-9 for a, b in zip(lbs, lbs[1:]))
        assert all(b <= a + 1e-9 for a, b in zip(ubs, ubs[1:]))

    def test_warm_start_converges_faster_or_equal(self, small_scenario):
        prob = small_scenario.problem()
        cold = solve_primal_dual(prob, max_iter=60, gap_tol=1e-4)
        warm = solve_primal_dual(prob, max_iter=60, gap_tol=1e-4, mu0=cold.mu)
        assert warm.upper_bound <= cold.upper_bound + 1e-6

    def test_paper_step_rule_also_converges(self, tiny_problem):
        result = solve_primal_dual(
            tiny_problem, max_iter=400, gap_tol=1e-3, step="paper", alpha=0.05
        )
        exact = solve_exhaustive(tiny_problem)
        assert result.upper_bound <= exact.cost.total * 1.05 + 1e-6

    def test_ub_patience_stops_early(self, small_scenario):
        result = solve_primal_dual(
            small_scenario.problem(), max_iter=200, gap_tol=0.0, ub_patience=3
        )
        assert result.iterations < 200

    def test_zero_beta_no_time_coupling(self, rng):
        """With beta = 0 the optimum is slot-separable; gap closes fast."""
        net = single_cell_network(
            num_items=4, cache_size=2, bandwidth=2.0, replacement_cost=0.0,
            omega_bs=rng.uniform(0.1, 1.0, 3),
        )
        demand = paper_demand(3, 3, 4, rng=rng, density_range=(0.5, 3.0))
        prob = JointProblem(net, demand.rates)
        result = solve_primal_dual(prob, max_iter=300, gap_tol=1e-5)
        exact = solve_exhaustive(prob)
        assert result.upper_bound == pytest.approx(exact.cost.total, rel=1e-3)

    def test_parameter_validation(self, tiny_problem):
        with pytest.raises(ConfigurationError):
            solve_primal_dual(tiny_problem, max_iter=0)
        with pytest.raises(ConfigurationError):
            solve_primal_dual(tiny_problem, polyak_relax=5.0)
        with pytest.raises(ConfigurationError):
            solve_primal_dual(tiny_problem, mu0=np.zeros((1, 1, 1)))

    def test_integral_caches_always(self, small_scenario):
        result = solve_primal_dual(small_scenario.problem(), max_iter=30)
        assert set(np.unique(result.x)) <= {0.0, 1.0}


class TestExhaustive:
    def test_refuses_oversized_instances(self, rng):
        net = single_cell_network(
            num_items=10, cache_size=5, bandwidth=3.0, replacement_cost=1.0,
            omega_bs=[0.5],
        )
        demand = paper_demand(10, 1, 10, rng=rng)
        with pytest.raises(ConfigurationError):
            solve_exhaustive(JointProblem(net, demand.rates))

    def test_trivial_instance(self, rng):
        net = single_cell_network(
            num_items=2, cache_size=1, bandwidth=10.0, replacement_cost=0.0,
            omega_bs=[1.0],
        )
        demand = np.zeros((1, 1, 2))
        demand[0, 0, 0] = 2.0
        result = solve_exhaustive(JointProblem(net, demand))
        # Cache item 0, serve everything locally: cost 0.
        assert result.cost.total == pytest.approx(0.0)
        assert result.x[0, 0, 0] == 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_primal_dual_never_beats_exhaustive(seed: int):
    """Property: UB >= exact optimum >= LB on random tiny instances."""
    rng = np.random.default_rng(seed)
    net = single_cell_network(
        num_items=3,
        cache_size=1,
        bandwidth=float(rng.uniform(0.5, 3.0)),
        replacement_cost=float(rng.uniform(0.0, 4.0)),
        omega_bs=rng.uniform(0.0, 1.0, 2),
    )
    demand = paper_demand(2, 2, 3, rng=rng, density_range=(0.0, 4.0))
    prob = JointProblem(net, demand.rates)
    exact = solve_exhaustive(prob)
    result = solve_primal_dual(prob, max_iter=200, gap_tol=1e-6)
    assert result.upper_bound >= exact.cost.total - 1e-7
    assert result.lower_bound <= exact.cost.total + 1e-7

"""End-to-end trace determinism and instrumentation coverage.

The acceptance contract of `repro.obs`: a seeded run writes **byte-identical**
JSONL traces and manifests no matter which executor backend ran it, and
recording changes nothing about the results themselves.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.obs import (
    Recorder,
    read_trace,
    record_into,
    run_manifest,
    trace_digest,
    validate_manifest,
    validate_trace,
    write_trace,
)

EXECUTORS = ("serial", "thread:2", "process:2")


def _record_run(executor: str, *, seed: int = 1, horizon: int = 6) -> Recorder:
    scenario = api.build_scenario(seed=seed, horizon=horizon)
    recorder = Recorder()
    with record_into(recorder):
        api.compare_policies(
            scenario, [api.LRFU(), api.NoCache()], executor=executor
        )
    return recorder


class TestCrossExecutorDeterminism:
    @pytest.fixture(scope="class")
    def recorders(self) -> dict[str, Recorder]:
        return {executor: _record_run(executor) for executor in EXECUTORS}

    def test_traces_byte_identical(self, recorders, tmp_path):
        contents = {}
        for executor, recorder in recorders.items():
            path = write_trace(tmp_path / f"{executor.replace(':', '-')}.jsonl", recorder)
            contents[executor] = path.read_bytes()
        assert len(set(contents.values())) == 1, sorted(contents)
        assert len(recorders["serial"].events) > 0

    def test_manifests_byte_identical(self, recorders):
        manifests = set()
        for recorder in recorders.values():
            manifest = run_manifest(
                seed=1, config={"horizon": 6}, events=recorder.events
            )
            manifests.add(json.dumps(manifest, sort_keys=True))
        assert len(manifests) == 1
        validate_manifest(json.loads(next(iter(manifests))))

    def test_metrics_identical(self, recorders):
        dicts = {
            executor: json.dumps(r.metrics.to_dict(), sort_keys=True)
            for executor, r in recorders.items()
        }
        assert len(set(dicts.values())) == 1

    def test_trace_schema_valid_and_round_trips(self, recorders, tmp_path):
        recorder = recorders["serial"]
        assert validate_trace(recorder.events) == len(recorder.events)
        path = write_trace(tmp_path / "trace.jsonl", recorder)
        assert read_trace(path) == recorder.events
        assert trace_digest(read_trace(path)) == trace_digest(recorder.events)


class TestRecordingIsPassive:
    def test_results_identical_with_and_without_recorder(self):
        scenario = api.build_scenario(seed=2, horizon=5)
        policies = [api.LRFU(), api.NoCache()]
        plain = api.compare_policies(scenario, policies)
        with record_into(Recorder()):
            recorded = api.compare_policies(scenario, policies)
        assert set(plain) == set(recorded)
        for name in plain:
            assert plain[name].cost.total == recorded[name].cost.total
            assert (plain[name].x == recorded[name].x).all()
            assert (plain[name].y == recorded[name].y).all()

    def test_no_recorder_means_no_events(self):
        scenario = api.build_scenario(seed=2, horizon=4)
        recorder = Recorder()
        api.compare_policies(scenario, [api.LRFU()])  # outside record_into
        assert recorder.events == []


class TestInstrumentationCoverage:
    def test_engine_emits_slot_and_cache_events(self):
        scenario = api.build_scenario(seed=1, horizon=5)
        recorder = Recorder()
        with record_into(recorder):
            api.compare_policies(scenario, [api.LRFU()])
        kinds = {e.kind for e in recorder.events}
        assert {"slot_start", "slot_end", "cache_insert"} <= kinds
        slot_starts = [e for e in recorder.events if e.kind == "slot_start"]
        assert [e.slot for e in slot_starts] == list(range(5))
        assert all(e.data["policy"] == "LRFU" for e in slot_starts)

    def test_faulted_run_emits_fault_and_reroute_events(self):
        scenario = api.build_scenario(seed=1, horizon=20)
        schedule = api.default_fault_schedule(scenario.horizon)
        faulted = api.inject_faults(scenario, schedule)
        recorder = Recorder()
        with record_into(recorder):
            api.compare_policies(faulted, [api.LRFU()])
        kinds = {e.kind for e in recorder.events}
        assert {"fault_injected", "fault_cleared", "reroute"} <= kinds
        injected = [e for e in recorder.events if e.kind == "fault_injected"]
        cleared = [e for e in recorder.events if e.kind == "fault_cleared"]
        # the outage and the degradation windows each rise and fall
        assert len(injected) == len(cleared) == 2
        reroutes = [e for e in recorder.events if e.kind == "reroute"]
        assert all(e.data["load"] >= 0 for e in reroutes)
        mask = schedule.active_mask(scenario.horizon)
        assert all(mask[e.slot] for e in injected)

    def test_controller_metrics_counted(self):
        scenario = api.build_scenario(seed=1, horizon=6)
        recorder = Recorder()
        with record_into(recorder):
            api.run_policy(scenario, api.RHC(window=3))
        metrics = recorder.metrics
        assert metrics.counter("window_solves") >= 1
        assert metrics.counter("controller_commits", {"controller": "RHC"}) >= 1
        solve_events = [e for e in recorder.events if e.kind == "solve_done"]
        assert solve_events, "window solves must emit solve_done"
        assert all(e.data["policy"] == "RHC(w=3)" for e in solve_events)

    def test_convergence_trace_surfaced_by_solver(self):
        scenario = api.build_scenario(seed=1, horizon=4)
        result = api.solve_primal_dual(scenario.problem(), max_iter=20)
        assert result.convergence is not None
        assert len(result.convergence) == result.iterations
        assert result.convergence.series("gap")  # column exists

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.topology import Network, single_cell_network
from repro.core.problem import JointProblem
from repro.scenario import Scenario
from repro.workload.demand import DemandMatrix, paper_demand


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_network(rng: np.random.Generator) -> Network:
    """A 1-SBS network small enough for exhaustive search: K=4, C=1."""
    return single_cell_network(
        num_items=4,
        cache_size=1,
        bandwidth=3.0,
        replacement_cost=2.0,
        omega_bs=rng.uniform(0.1, 1.0, 3),
    )


@pytest.fixture
def tiny_problem(tiny_network: Network, rng: np.random.Generator) -> JointProblem:
    demand = paper_demand(3, 3, 4, rng=rng, density_range=(0.0, 5.0))
    return JointProblem(tiny_network, demand.rates)


@pytest.fixture
def small_network(rng: np.random.Generator) -> Network:
    """A richer 1-SBS network: K=8, C=3."""
    return single_cell_network(
        num_items=8,
        cache_size=3,
        bandwidth=6.0,
        replacement_cost=5.0,
        omega_bs=rng.uniform(0.0, 1.0, 6),
    )


@pytest.fixture
def small_demand(rng: np.random.Generator) -> DemandMatrix:
    return paper_demand(12, 6, 8, rng=rng, density_range=(0.0, 4.0))


@pytest.fixture
def small_scenario(small_network: Network, small_demand: DemandMatrix) -> Scenario:
    return Scenario(network=small_network, demand=small_demand)

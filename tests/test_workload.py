"""Tests for the workload substrate: Zipf model, demand, predictors, traces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.workload.demand import (
    DemandMatrix,
    constant_demand,
    diurnal_demand,
    flash_crowd_demand,
    paper_demand,
    shifting_popularity_demand,
)
from repro.workload.predictor import (
    PerfectPredictor,
    PerturbedPredictor,
    window_view,
)
from repro.workload.trace import RequestTrace, empirical_rates, sample_poisson_trace
from repro.workload.zipf import zipf_mandelbrot_pmf, zipf_mandelbrot_weights


class TestZipf:
    def test_weights_match_equation_49(self):
        w = zipf_mandelbrot_weights(30, alpha=0.8, shift=30.0)
        assert w[0] == pytest.approx(30 / (1 + 30) ** 0.8)
        assert w[29] == pytest.approx(30 / (30 + 30) ** 0.8)

    def test_pmf_normalized_and_decreasing(self):
        p = zipf_mandelbrot_pmf(50)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) <= 0)

    def test_alpha_zero_is_uniform(self):
        p = zipf_mandelbrot_pmf(10, alpha=0.0)
        np.testing.assert_allclose(p, 0.1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            zipf_mandelbrot_weights(0)
        with pytest.raises(ConfigurationError):
            zipf_mandelbrot_weights(5, alpha=-1.0)
        with pytest.raises(ConfigurationError):
            zipf_mandelbrot_weights(5, shift=-2.0)


class TestDemandMatrix:
    def test_shape_and_padding(self, rng):
        dm = paper_demand(5, 3, 4, rng=rng)
        assert dm.horizon == 5
        assert dm.num_classes == 3
        assert dm.num_items == 4
        assert dm.slot(-1).sum() == 0.0
        assert dm.slot(5).sum() == 0.0
        assert dm.slot(2).shape == (3, 4)

    def test_window_zero_pads(self, rng):
        dm = paper_demand(5, 2, 3, rng=rng)
        w = dm.window(3, 4)
        assert w.shape == (4, 2, 3)
        np.testing.assert_allclose(w[:2], dm.rates[3:5])
        assert w[2:].sum() == 0.0
        w_neg = dm.window(-2, 3)
        assert w_neg[:2].sum() == 0.0
        np.testing.assert_allclose(w_neg[2], dm.rates[0])

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            DemandMatrix(-np.ones((2, 2, 2)))

    def test_rejects_bad_shape(self):
        with pytest.raises(DimensionMismatchError):
            DemandMatrix(np.ones((2, 2)))

    def test_popularity_sums_to_one(self, rng):
        dm = paper_demand(5, 3, 4, rng=rng)
        assert dm.popularity().sum() == pytest.approx(1.0)

    def test_popularity_of_zero_demand_is_uniform(self):
        dm = DemandMatrix(np.zeros((2, 2, 4)))
        np.testing.assert_allclose(dm.popularity(), 0.25)


class TestGenerators:
    def test_paper_demand_static_mode_is_stationary(self, rng):
        dm = paper_demand(6, 4, 5, rng=rng, density_mode="static", density_jitter=0.0)
        for t in range(1, 6):
            np.testing.assert_allclose(dm.rates[t], dm.rates[0])

    def test_paper_demand_per_slot_varies(self, rng):
        dm = paper_demand(6, 4, 5, rng=rng, density_mode="per_slot")
        assert not np.allclose(dm.rates[0], dm.rates[1])

    def test_shared_preference_ranks_identically(self, rng):
        dm = paper_demand(
            3, 4, 6, rng=rng, per_class_preference=False, density_mode="static"
        )
        orders = np.argsort(-dm.rates[0], axis=1)
        for m in range(1, 4):
            np.testing.assert_array_equal(orders[m], orders[0])

    def test_per_class_preference_diversifies(self, rng):
        dm = paper_demand(
            3, 8, 12, rng=rng, per_class_preference=True, density_mode="static"
        )
        orders = {tuple(np.argsort(-dm.rates[0, m])) for m in range(8)}
        assert len(orders) > 1

    def test_constant_demand(self):
        per_slot = np.array([[1.0, 2.0]])
        dm = constant_demand(4, per_slot)
        assert dm.horizon == 4
        np.testing.assert_allclose(dm.rates[3], per_slot)

    def test_diurnal_mean_close_to_base(self, rng):
        dm = diurnal_demand(48, 3, 4, rng=rng, period=24, peak_to_trough=3.0)
        per_slot = dm.rates.sum(axis=(1, 2))
        assert per_slot.max() / max(per_slot.min(), 1e-9) > 1.5

    def test_shifting_popularity_changes_ranking(self, rng):
        dm = shifting_popularity_demand(40, 3, 10, rng=rng, shift_every=10)
        first = np.argsort(-dm.rates[0].sum(axis=0))
        later = np.argsort(-dm.rates[35].sum(axis=0))
        assert not np.array_equal(first, later)

    def test_flash_crowd_spike(self, rng):
        dm = flash_crowd_demand(
            30, 3, 5, rng=rng, crowd_item=2, start=10, duration=5, magnitude=10.0
        )
        inside = dm.rates[12, :, 2].sum()
        outside = dm.rates[2, :, 2].sum()
        assert inside > outside

    def test_generator_validation(self, rng):
        with pytest.raises(ConfigurationError):
            paper_demand(0, 2, 2, rng=rng)
        with pytest.raises(ConfigurationError):
            paper_demand(2, 2, 2, rng=rng, density_range=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            paper_demand(2, 2, 2, rng=rng, density_mode="weird")
        with pytest.raises(ConfigurationError):
            flash_crowd_demand(10, 2, 3, rng=rng, crowd_item=9)


class TestPredictors:
    def test_perfect_predictor_returns_truth(self, rng):
        dm = paper_demand(6, 2, 3, rng=rng)
        pred = PerfectPredictor(dm)
        np.testing.assert_allclose(
            pred.predict_window(0, 2, 3), dm.window(2, 3)
        )

    def test_zero_eta_is_exact(self, rng):
        dm = paper_demand(6, 2, 3, rng=rng)
        pred = PerturbedPredictor(dm, eta=0.0)
        np.testing.assert_allclose(pred.predict_window(1, 1, 4), dm.window(1, 4))

    def test_frozen_mode_consistent_across_decision_times(self, rng):
        dm = paper_demand(6, 2, 3, rng=rng)
        pred = PerturbedPredictor(dm, eta=0.3, mode="frozen", seed=7)
        a = pred.predict_window(0, 2, 2)
        b = pred.predict_window(2, 2, 2)
        np.testing.assert_allclose(a, b)

    def test_frozen_mode_within_bounds(self, rng):
        dm = paper_demand(6, 2, 3, rng=rng)
        eta = 0.25
        pred = PerturbedPredictor(dm, eta=eta, mode="frozen")
        w = pred.predict_window(0, 0, 6)
        true = dm.rates
        mask = true > 0
        ratio = w[mask] / true[mask]
        assert np.all(ratio >= 1 - eta - 1e-9)
        assert np.all(ratio <= 1 + eta + 1e-9)

    def test_degrading_noise_grows_with_distance(self, rng):
        dm = DemandMatrix(np.ones((40, 2, 3)))
        pred = PerturbedPredictor(dm, eta=0.2, mode="degrading", seed=3)
        near_err, far_err = [], []
        for tau in range(30):
            w = pred.predict_window(tau, tau, 10)
            near_err.append(np.abs(w[0] - 1.0).mean())
            far_err.append(np.abs(w[9] - 1.0).mean())
        assert np.mean(far_err) > 2.0 * np.mean(near_err)

    def test_degrading_resamples_per_decision_time(self, rng):
        dm = DemandMatrix(np.ones((10, 2, 3)))
        pred = PerturbedPredictor(dm, eta=0.2, mode="degrading")
        a = pred.predict_window(0, 5, 2)
        b = pred.predict_window(3, 5, 2)
        assert not np.allclose(a, b)

    def test_degrading_deterministic(self, rng):
        dm = DemandMatrix(np.ones((10, 2, 3)))
        p1 = PerturbedPredictor(dm, eta=0.2, mode="degrading", seed=5)
        p2 = PerturbedPredictor(dm, eta=0.2, mode="degrading", seed=5)
        np.testing.assert_allclose(
            p1.predict_window(2, 2, 4), p2.predict_window(2, 2, 4)
        )

    def test_negative_decision_time_supported(self, rng):
        dm = DemandMatrix(np.ones((10, 2, 3)))
        pred = PerturbedPredictor(dm, eta=0.2, mode="degrading")
        w = pred.predict_window(-3, -3, 5)
        assert w.shape == (5, 2, 3)
        assert w[:3].sum() == 0.0  # pre-horizon slots are zero

    def test_predictions_never_negative(self, rng):
        dm = paper_demand(8, 3, 4, rng=rng)
        pred = PerturbedPredictor(dm, eta=1.0, mode="degrading")
        for tau in range(8):
            assert np.all(pred.predict_window(tau, tau, 8) >= 0)

    def test_rejects_bad_eta_and_mode(self, rng):
        dm = paper_demand(4, 2, 2, rng=rng)
        with pytest.raises(ConfigurationError):
            PerturbedPredictor(dm, eta=1.5)
        with pytest.raises(ConfigurationError):
            PerturbedPredictor(dm, eta=0.1, mode="bogus")

    def test_window_view(self, rng):
        dm = paper_demand(6, 2, 3, rng=rng)
        pred = PerfectPredictor(dm)
        np.testing.assert_allclose(window_view(pred, 1, 3), dm.window(1, 3))
        with pytest.raises(ConfigurationError):
            window_view(pred, 0, 0)


class TestTraces:
    def test_poisson_trace_shape_and_mean(self, rng):
        dm = DemandMatrix(np.full((200, 2, 3), 4.0))
        trace = sample_poisson_trace(dm, rng=rng)
        assert trace.horizon == 200
        assert trace.counts.mean() == pytest.approx(4.0, rel=0.1)

    def test_per_item_counts(self, rng):
        counts = np.zeros((2, 2, 3), dtype=np.int64)
        counts[0, 0, 1] = 5
        counts[0, 1, 1] = 2
        trace = RequestTrace(counts)
        np.testing.assert_array_equal(trace.per_item_counts(0), [0, 7, 0])

    def test_to_demand_roundtrip(self):
        counts = np.arange(12, dtype=np.int64).reshape(2, 2, 3)
        dm = RequestTrace(counts).to_demand()
        np.testing.assert_allclose(dm.rates, counts)

    def test_empirical_rates_smoothing(self):
        trace = RequestTrace(np.zeros((1, 1, 2), dtype=np.int64))
        np.testing.assert_allclose(
            empirical_rates(trace, smoothing=0.5), np.full((1, 1, 2), 0.5)
        )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    eta=st.floats(0.0, 1.0),
)
def test_perturbed_prediction_bounded_by_eta_frozen(seed: int, eta: float):
    """Property: frozen-mode forecasts stay within the eta band."""
    rng = np.random.default_rng(seed)
    dm = paper_demand(5, 2, 3, rng=rng, density_range=(0.5, 2.0))
    pred = PerturbedPredictor(dm, eta=eta, seed=seed, mode="frozen")
    w = pred.predict_window(0, 0, 5)
    mask = dm.rates > 0
    ratio = w[mask] / dm.rates[mask]
    assert np.all(ratio >= 1 - eta - 1e-9)
    assert np.all(ratio <= 1 + eta + 1e-9)

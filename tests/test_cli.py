"""Tests for the command-line interface (tiny scales)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--horizon", "6", "--window", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "headline comparison" in out
        assert "Offline" in out

    def test_fig3_small(self, capsys):
        code = main(
            ["fig3", "--windows", "2", "3", "--horizon", "5", "--seeds", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total operating cost vs window" in out
        assert "# cache replacements vs window" in out

    def test_fig5_small(self, capsys):
        code = main(
            ["fig5", "--etas", "0", "0.4", "--horizon", "5", "--window", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total operating cost vs eta" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_headline(self, capsys):
        code = main(
            ["headline", "--beta", "10", "--horizon", "5", "--window", "2"]
        )
        assert code == 0
        assert "vs Offline" in capsys.readouterr().out


class TestRedesignedCli:
    def test_run(self, capsys):
        code = main(["run", "--beta", "10", "--horizon", "5", "--window", "2"])
        assert code == 0
        assert "vs Offline" in capsys.readouterr().out

    def test_sweep_axis_noise(self, capsys):
        code = main(
            [
                "sweep", "--axis", "noise", "--values", "0", "0.4",
                "--horizon", "5", "--window", "2",
            ]
        )
        assert code == 0
        assert "total operating cost vs eta" in capsys.readouterr().out

    def test_sweep_axis_window_casts_int(self, capsys):
        code = main(
            ["sweep", "--axis", "window", "--values", "2", "3", "--horizon", "5"]
        )
        assert code == 0
        assert "vs window" in capsys.readouterr().out

    def test_sweep_requires_axis(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--horizon", "5"])

    def test_resilience(self, capsys, tmp_path):
        out = tmp_path / "resilience.json"
        code = main(
            [
                "resilience", "--horizon", "8", "--window", "3",
                "--json", str(out),
            ]
        )
        assert code == 0
        assert "recover" in capsys.readouterr().out
        import json

        payload = json.loads(out.read_text())
        assert payload["schedule"]["events"]
        assert all("violations" in p for p in payload["policies"])

    def test_json_output_for_sweep(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                "fig5", "--etas", "0", "--horizon", "4", "--window", "2",
                "--json", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        import json

        assert json.loads(out.read_text())["points"]

    def test_legacy_aliases_hidden_from_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "resilience" in out
        assert "fig2" not in out

    def test_workers_flag_builds_runtime_config(self, capsys):
        # --workers routes through RuntimeConfig, not the deprecated env.
        code = main(
            [
                "run", "--beta", "10", "--horizon", "4", "--window", "2",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "vs Offline" in capsys.readouterr().out


class TestServeCli:
    def test_serve_smoke_with_artifacts(self, tmp_path, capsys):
        import json

        from repro.obs import manifest_path_for
        from repro.serve import read_decision_log

        out = tmp_path / "serve.json"
        log = tmp_path / "decisions.jsonl"
        trace = tmp_path / "serve.jsonl"
        code = main(
            [
                "serve", "--horizon", "6", "--window", "3", "--rps", "120",
                "--max-requests", "60", "--seeds", "3",
                "--json", str(out), "--decision-log", str(log),
                "--trace", str(trace),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "strategy=optimal-y" in stdout
        assert "plans" in stdout

        payload = json.loads(out.read_text())
        assert payload["requests_total"] == 60
        assert payload["decided"] + payload["shed"] == 60
        assert payload["decision_digest"]

        decisions = read_decision_log(log)
        assert len(decisions) == 60

        manifest = json.loads(manifest_path_for(trace).read_text())
        assert manifest["config"]["command"] == "serve"
        assert manifest["config"]["rps"] == 120.0

    def test_serve_same_seed_is_reproducible(self, tmp_path, capsys):
        import json

        digests = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert main(
                [
                    "serve", "--horizon", "5", "--window", "2", "--rps", "80",
                    "--seeds", "7", "--json", str(out),
                ]
            ) == 0
            digests.append(json.loads(out.read_text())["decision_digest"])
        capsys.readouterr()
        assert digests[0] == digests[1]

    def test_serve_rejects_bad_admission(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--admission", "panic"])
        capsys.readouterr()


class TestTraceCli:
    def test_run_with_trace_writes_jsonl_and_manifest(self, tmp_path, capsys):
        import json

        from repro.obs import manifest_path_for, read_trace, validate_manifest

        trace = tmp_path / "run.jsonl"
        code = main(
            [
                "run", "--beta", "10", "--horizon", "5", "--window", "2",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        events = read_trace(trace)
        assert events, "trace must contain events"
        kinds = {e.kind for e in events}
        assert {"slot_start", "slot_end", "solve_done"} <= kinds

        manifest = json.loads(manifest_path_for(trace).read_text())
        validate_manifest(manifest)
        assert manifest["seed"] == 1
        assert manifest["config"]["command"] == "run"
        assert manifest["config"]["horizon"] == 5
        assert manifest["trace"]["events"] == len(events)
        # the manifest never names an executor backend
        assert "executor" not in json.dumps(manifest)

    def test_resilience_trace_digests_fault_schedule(self, tmp_path, capsys):
        import json

        from repro.obs import manifest_path_for

        trace = tmp_path / "res.jsonl"
        code = main(
            ["resilience", "--horizon", "8", "--window", "3", "--trace", str(trace)]
        )
        assert code == 0
        capsys.readouterr()
        manifest = json.loads(manifest_path_for(trace).read_text())
        assert manifest["fault_schedule_digest"] is not None

    def test_obs_report_renders_dashboard(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(
            [
                "run", "--beta", "10", "--horizon", "5", "--window", "2",
                "--trace", str(trace),
            ]
        ) == 0
        capsys.readouterr()
        before = trace.read_bytes()
        code = main(["obs", "report", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "per-slot cost" in out
        assert "manifest: seed=1" in out
        # reporting must never rewrite the artifact it reads
        assert trace.read_bytes() == before

    def test_verbose_prints_progress_via_logging(self, capsys):
        code = main(
            ["run", "--beta", "10", "--horizon", "4", "--window", "2", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[beta=10 seed=1]" in out

    def test_verbose_trace_captures_log_events(self, tmp_path, capsys):
        from repro.obs import read_trace

        trace = tmp_path / "run.jsonl"
        code = main(
            [
                "run", "--beta", "10", "--horizon", "4", "--window", "2",
                "--verbose", "--trace", str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        logs = [e for e in read_trace(trace) if e.kind == "log"]
        assert logs
        assert all(e.data["logger"].startswith("repro.") for e in logs)

    def test_repeated_verbose_calls_do_not_stack_handlers(self, capsys):
        import logging

        baseline = len(logging.getLogger("repro").handlers)
        for _ in range(2):
            assert main(
                ["run", "--beta", "10", "--horizon", "4", "--window", "2",
                 "--verbose"]
            ) == 0
        capsys.readouterr()
        assert len(logging.getLogger("repro").handlers) == baseline


class TestBenchDiff:
    """``repro bench diff`` and its ``repro.perf.benchdiff`` backend."""

    @staticmethod
    def _record(serial=10.0, parallel=8.0, scale="quick", total=100.0, **extra):
        record = {
            "bench": "headline",
            "scale": scale,
            "beta": 50.0,
            "serial_seconds": serial,
            "parallel_seconds": parallel,
            "speedup": serial / parallel,
            "workers": 4,
            "executor": "process:4",
            "cpu_count": 4,
            "costs_identical": True,
            "sweep": {
                "parameter": "beta",
                "values": [50.0],
                "policies": ["Offline"],
                "points": [
                    {"value": 50.0, "metrics": {"Offline": {"total": total}}}
                ],
            },
        }
        record.update(extra)
        return record

    def _write(self, tmp_path, name, record):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(record))
        return str(path)

    def test_identical_records_pass(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", self._record())
        new = self._write(tmp_path, "new.json", self._record())
        assert main(["bench", "diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "config: identical" in out
        assert "OK: no wall-time regression" in out

    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", self._record(serial=10.0))
        new = self._write(tmp_path, "new.json", self._record(serial=11.5))
        with pytest.raises(SystemExit) as exc:
            main(["bench", "diff", old, new])
        assert exc.value.code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "serial_seconds" in out

    def test_threshold_flag_loosens_gate(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", self._record(serial=10.0))
        new = self._write(tmp_path, "new.json", self._record(serial=11.5))
        assert main(["bench", "diff", old, new, "--threshold", "0.2"]) == 0
        capsys.readouterr()

    def test_differing_configs_never_gate(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", self._record(scale="quick"))
        new = self._write(
            tmp_path, "new.json", self._record(scale="full", serial=99.0)
        )
        assert main(["bench", "diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "config: DIFFERS" in out
        assert "wall-time gate disabled" in out

    def test_strategy_fields_do_not_break_comparability(self, tmp_path, capsys):
        """incremental on/off A/B runs of the same problem stay gated."""
        old = self._write(
            tmp_path, "old.json", self._record(serial=10.0, incremental=False)
        )
        new = self._write(
            tmp_path,
            "new.json",
            self._record(
                serial=6.0,
                incremental=True,
                solve_counters={"p1_memo_hits": 9.0},
            ),
        )
        assert main(["bench", "diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "config: identical" in out
        assert "p1_memo_hits" in out

    def test_cost_drift_reported(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", self._record(total=100.0))
        new = self._write(tmp_path, "new.json", self._record(total=95.0))
        assert main(["bench", "diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "cost drift (1 entries)" in out
        assert "Offline/total" in out

    def test_rejects_non_bench_json(self, tmp_path):
        import json

        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            main(["bench", "diff", str(path), str(path)])


class TestBenchProfile:
    """``repro bench profile`` — the cProfile artifact entry point."""

    def test_unknown_leg_exits_2(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "bench_fake.py").write_text("def test_ok():\n    pass\n")
        with pytest.raises(SystemExit) as exc:
            main(["bench", "profile", "nosuch", "--path", str(tmp_path)])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "nosuch" in err
        assert "fake" in err  # the available legs are listed

    def test_missing_bench_dir_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                ["bench", "profile", "headline", "--path", str(tmp_path / "nope")]
            )
        assert exc.value.code == 2
        assert "benchmark suite not found" in capsys.readouterr().err

    def test_profiles_a_leg_end_to_end(self, tmp_path, capsys, monkeypatch):
        """A stub leg profiled through the real pytest runner lands as the
        deterministic table next to the leg's results."""
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        (tmp_path / "bench_fake.py").write_text(
            "def test_spin():\n    assert sum(range(1000)) == 499500\n"
        )
        out_dir = tmp_path / "artifacts"
        code = main(
            [
                "bench", "profile", "fake",
                "--path", str(tmp_path),
                "--out", str(out_dir),
                "--top", "5",
            ]
        )
        assert code in (0, None)
        table = (out_dir / "PROFILE_fake.txt").read_text()
        assert table.startswith("profile: bench leg 'fake' at scale 'quick'")
        assert "ncalls" in table
        assert "[saved to" in capsys.readouterr().out

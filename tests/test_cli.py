"""Tests for the command-line interface (tiny scales)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--horizon", "6", "--window", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "headline comparison" in out
        assert "Offline" in out

    def test_fig3_small(self, capsys):
        code = main(
            ["fig3", "--windows", "2", "3", "--horizon", "5", "--seeds", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total operating cost vs window" in out
        assert "# cache replacements vs window" in out

    def test_fig5_small(self, capsys):
        code = main(
            ["fig5", "--etas", "0", "0.4", "--horizon", "5", "--window", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total operating cost vs eta" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_headline(self, capsys):
        code = main(
            ["headline", "--beta", "10", "--horizon", "5", "--window", "2"]
        )
        assert code == 0
        assert "vs Offline" in capsys.readouterr().out

"""Tests for the command-line interface (tiny scales)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--horizon", "6", "--window", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "headline comparison" in out
        assert "Offline" in out

    def test_fig3_small(self, capsys):
        code = main(
            ["fig3", "--windows", "2", "3", "--horizon", "5", "--seeds", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total operating cost vs window" in out
        assert "# cache replacements vs window" in out

    def test_fig5_small(self, capsys):
        code = main(
            ["fig5", "--etas", "0", "0.4", "--horizon", "5", "--window", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total operating cost vs eta" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_headline(self, capsys):
        code = main(
            ["headline", "--beta", "10", "--horizon", "5", "--window", "2"]
        )
        assert code == 0
        assert "vs Offline" in capsys.readouterr().out


class TestRedesignedCli:
    def test_run(self, capsys):
        code = main(["run", "--beta", "10", "--horizon", "5", "--window", "2"])
        assert code == 0
        assert "vs Offline" in capsys.readouterr().out

    def test_sweep_axis_noise(self, capsys):
        code = main(
            [
                "sweep", "--axis", "noise", "--values", "0", "0.4",
                "--horizon", "5", "--window", "2",
            ]
        )
        assert code == 0
        assert "total operating cost vs eta" in capsys.readouterr().out

    def test_sweep_axis_window_casts_int(self, capsys):
        code = main(
            ["sweep", "--axis", "window", "--values", "2", "3", "--horizon", "5"]
        )
        assert code == 0
        assert "vs window" in capsys.readouterr().out

    def test_sweep_requires_axis(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--horizon", "5"])

    def test_resilience(self, capsys, tmp_path):
        out = tmp_path / "resilience.json"
        code = main(
            [
                "resilience", "--horizon", "8", "--window", "3",
                "--json", str(out),
            ]
        )
        assert code == 0
        assert "recover" in capsys.readouterr().out
        import json

        payload = json.loads(out.read_text())
        assert payload["schedule"]["events"]
        assert all("violations" in p for p in payload["policies"])

    def test_json_output_for_sweep(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            [
                "fig5", "--etas", "0", "--horizon", "4", "--window", "2",
                "--json", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        import json

        assert json.loads(out.read_text())["points"]

    def test_legacy_aliases_hidden_from_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "resilience" in out
        assert "fig2" not in out

    def test_workers_flag_builds_runtime_config(self, capsys):
        # --workers routes through RuntimeConfig, not the deprecated env.
        code = main(
            [
                "run", "--beta", "10", "--horizon", "4", "--window", "2",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "vs Offline" in capsys.readouterr().out

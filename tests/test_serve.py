"""The serve runtime: streams, strategies, admission, and the swap contract."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro import api
from repro.config import RuntimeConfig
from repro.exceptions import ConfigurationError
from repro.obs import Recorder, record_into, validate_trace
from repro.serve import (
    AdmissionQueue,
    Decision,
    HealthScoreStrategy,
    LeastConnectionsStrategy,
    OptimalYStrategy,
    PlanManager,
    Request,
    RoundRobinStrategy,
    RouteContext,
    ServerView,
    decision_digest,
    open_loop_requests,
    read_decision_log,
    render_serve_report,
    requests_from_trace,
    run_serve,
    serve_requests,
    strategy_by_name,
    validate_stream,
    write_decision_log,
)


def tiny_scenario(horizon=5, seed=1):
    return api.build_scenario(seed=seed, horizon=horizon)


def fast_solve(scenario):
    """A trivial injected solver: cache item 0 everywhere, split 50/50."""
    net = scenario.network

    def solve(slot, x_prev):
        x = np.zeros((net.num_sbs, net.num_items))
        x[:, 0] = 1.0
        y = np.full((net.num_classes, net.num_items), 0.5)
        return x, y

    return solve


def slow_solve(scenario, delay):
    inner = fast_solve(scenario)

    def solve(slot, x_prev):
        time.sleep(delay)
        return inner(slot, x_prev)

    return solve


class TestStrategies:
    def _ctx(self, y=0.5):
        return RouteContext(
            slot=0, mu_class=0, item=0, cached=True, sbs_up=True, y_fraction=y
        )

    def test_round_robin_cycles(self):
        strat = RoundRobinStrategy()
        sbs, bs = ServerView(sid="sbs:0"), ServerView(sid="bs")
        picks = [strat.select_server([sbs, bs], self._ctx()).sid for _ in range(4)]
        assert picks == ["sbs:0", "bs", "sbs:0", "bs"]

    def test_least_connections_picks_min(self):
        strat = LeastConnectionsStrategy()
        sbs = ServerView(sid="sbs:0", connections=3)
        bs = ServerView(sid="bs", connections=1)
        assert strat.select_server([sbs, bs], self._ctx()) is bs

    def test_health_score_penalizes_failures(self):
        sbs = ServerView(sid="sbs:0", connections=0, failures=4)
        bs = ServerView(sid="bs", connections=1, failures=0)
        assert HealthScoreStrategy.score(sbs) == pytest.approx(0.2)
        assert HealthScoreStrategy.score(bs) == pytest.approx(0.5)
        assert HealthScoreStrategy().select_server([sbs, bs], self._ctx()) is bs

    def test_optimal_y_converges_to_fraction(self):
        strat = OptimalYStrategy()
        sbs, bs = ServerView(sid="sbs:0"), ServerView(sid="bs")
        n = 1000
        hits = sum(
            strat.select_server([sbs, bs], self._ctx(y=0.3)) is sbs
            for _ in range(n)
        )
        assert hits == 300

    def test_optimal_y_without_eligible_sbs_uses_bs(self):
        strat = OptimalYStrategy()
        bs = ServerView(sid="bs")
        assert strat.select_server([bs], self._ctx(y=1.0)) is bs

    def test_strategy_by_name_unknown(self):
        with pytest.raises(ConfigurationError, match="routing strategy"):
            strategy_by_name("random")

    def test_reset_clears_state(self):
        strat = OptimalYStrategy()
        sbs, bs = ServerView(sid="sbs:0"), ServerView(sid="bs")
        strat.select_server([sbs, bs], self._ctx(y=0.9))
        strat.reset()
        assert strat._acc == {}


class TestStreams:
    def test_open_loop_is_deterministic(self):
        scenario = tiny_scenario()
        a = open_loop_requests(scenario, rps=100.0, slot_seconds=0.1, seed=4)
        b = open_loop_requests(scenario, rps=100.0, slot_seconds=0.1, seed=4)
        assert a == b
        assert len(a) == 50  # ceil(5 * 0.1 * 100)
        validate_stream(a)
        assert all(0 <= r.slot < scenario.horizon for r in a)

    def test_open_loop_seed_changes_stream(self):
        scenario = tiny_scenario()
        a = open_loop_requests(scenario, rps=100.0, slot_seconds=0.1, seed=4)
        b = open_loop_requests(scenario, rps=100.0, slot_seconds=0.1, seed=5)
        assert a != b

    def test_open_loop_max_requests_truncates(self):
        scenario = tiny_scenario()
        a = open_loop_requests(
            scenario, rps=100.0, slot_seconds=0.1, seed=4, max_requests=7
        )
        assert len(a) == 7

    def test_requests_from_trace_expands_counts(self):
        scenario = tiny_scenario(horizon=3)
        trace = api.sample_poisson_trace(
            scenario.demand, rng=np.random.default_rng(0)
        )
        stream = requests_from_trace(trace, slot_seconds=0.5)
        assert len(stream) == int(trace.counts.sum())
        validate_stream(stream)
        assert stream == requests_from_trace(trace, slot_seconds=0.5)

    def test_decision_log_round_trip(self, tmp_path):
        decisions = (
            Decision(1, 0, 0, 2, "bs", False, False, 0),
            Decision(0, 0, 1, 3, "sbs", True, False, 0),
        )
        path = tmp_path / "log.jsonl"
        assert write_decision_log(path, decisions) == 2
        back = read_decision_log(path)
        assert [d.seq for d in back] == [0, 1]  # canonical order
        assert decision_digest(back) == decision_digest(decisions)


class TestAdmissionQueue:
    def test_shed_mode_drops_overflow(self):
        async def scenario():
            queue = AdmissionQueue("shed", 2)
            reqs = [Request(i, 0, 0, 0, 0.0) for i in range(3)]
            assert await queue.offer(reqs[0])
            assert await queue.offer(reqs[1])
            assert not await queue.offer(reqs[2])
            assert queue.stats.shed == 1
            assert queue.stats.admitted == 2

        asyncio.run(scenario())

    def test_queue_mode_backpressures(self):
        async def scenario():
            queue = AdmissionQueue("queue", 1)
            assert await queue.offer(Request(0, 0, 0, 0, 0.0))
            blocked = asyncio.ensure_future(queue.offer(Request(1, 0, 0, 0, 0.0)))
            await asyncio.sleep(0)
            assert not blocked.done()  # producer is blocked, nothing dropped
            assert (await queue.get()).seq == 0
            assert await blocked
            assert queue.stats.shed == 0

        asyncio.run(scenario())

    def test_close_terminates_stream(self):
        async def scenario():
            queue = AdmissionQueue("queue", 4)
            await queue.offer(Request(0, 0, 0, 0, 0.0))
            await queue.close()
            assert (await queue.get()).seq == 0
            assert await queue.get() is None

        asyncio.run(scenario())

    def test_rejects_bad_mode_and_depth(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue("panic", 4)
        with pytest.raises(ConfigurationError):
            AdmissionQueue("queue", 0)


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        scenario = tiny_scenario()
        reports = [
            run_serve(
                scenario, rps=100.0, slot_seconds=0.1, seed=2, window=2
            )
            for _ in range(2)
        ]
        a, b = reports
        assert a.digest == b.digest
        assert a.decisions == b.decisions
        lines_a = [d.to_json() for d in a.decisions]
        lines_b = [d.to_json() for d in b.decisions]
        assert lines_a == lines_b
        assert a.cost.total == pytest.approx(b.cost.total)

    def test_queue_admission_decisions_use_own_slot_plan(self):
        scenario = tiny_scenario()
        report = run_serve(
            scenario, rps=100.0, slot_seconds=0.1, seed=2, window=2
        )
        assert report.plan_swaps_dropped == 0
        assert all(d.plan_slot == d.slot for d in report.decisions)
        assert report.decided == report.requests_total
        assert report.solves == scenario.horizon

    def test_report_accounting_is_consistent(self):
        scenario = tiny_scenario()
        report = run_serve(
            scenario, rps=100.0, slot_seconds=0.1, seed=2, window=2
        )
        assert report.decided == report.sbs_served + report.bs_served
        assert report.hit_rate == report.hits / report.decided
        assert report.slots_served == scenario.horizon
        payload = report.to_dict()
        assert payload["decision_digest"] == report.digest
        assert "decisions" not in payload
        assert "digest" in render_serve_report(report)


class TestPlanSwapContract:
    def test_atomic_swaps_under_slow_solver(self):
        scenario = tiny_scenario()
        report = run_serve(
            scenario,
            rps=100.0,
            slot_seconds=0.1,
            seed=2,
            window=2,
            solve_fn=slow_solve(scenario, 0.03),
        )
        # queue admission: the boundary waits, so every decision is made
        # from its own slot's plan even though the solver lags the stream.
        assert report.plan_swaps_dropped == 0
        assert all(d.plan_slot == d.slot for d in report.decisions)
        assert report.plan_swaps == scenario.horizon
        assert report.plan_swaps_late > 0

    def test_shed_mode_overload_sheds_and_staleness_is_counted(self):
        # Paced replay with a solver slower than the slot clock: admission
        # sheds while the consumer bootstraps, and later slots must serve
        # from a stale (dropped-swap) plan instead of blocking.
        scenario = tiny_scenario()
        report = run_serve(
            scenario,
            rps=100.0,
            slot_seconds=0.1,
            seed=2,
            window=2,
            admission="shed",
            queue_depth=4,
            pace=True,
            solve_fn=slow_solve(scenario, 0.15),
        )
        assert report.shed > 0
        assert report.decided + report.shed == report.requests_total
        assert report.plan_swaps_dropped > 0  # solver behind, stale plan used
        shed = [d for d in report.decisions if d.route == "shed"]
        assert len(shed) == report.shed
        assert all(d.plan_slot == -1 for d in shed)
        served = [d for d in report.decisions if d.route != "shed"]
        assert all(d.plan_slot <= d.slot for d in served)

    def test_solver_failure_propagates(self):
        scenario = tiny_scenario()

        def broken(slot, x_prev):
            raise RuntimeError("solver exploded")

        with pytest.raises(RuntimeError, match="solver exploded"):
            run_serve(
                scenario, rps=50.0, slot_seconds=0.1, seed=2, solve_fn=broken
            )

    def test_stream_past_horizon_rejected(self):
        scenario = tiny_scenario(horizon=2)
        bad = (Request(seq=0, slot=5, mu_class=0, item=0, arrival=0.0),)
        with pytest.raises(ConfigurationError, match="horizon"):
            asyncio.run(serve_requests(scenario, bad, solve_fn=fast_solve(scenario)))

    def test_empty_stream_reports_zeroes(self):
        scenario = tiny_scenario(horizon=2)
        report = asyncio.run(
            serve_requests(scenario, (), solve_fn=fast_solve(scenario))
        )
        assert report.requests_total == 0
        assert report.decided == 0
        assert report.solves == 0


class TestPlanManager:
    def test_commits_binarized_injected_plans(self):
        scenario = tiny_scenario(horizon=3)
        planner = PlanManager(scenario, solve_fn=fast_solve(scenario))
        asyncio.run(planner.run(3))
        assert planner.solves == 3
        for t in range(3):
            plan = planner.plans[t]
            assert plan.slot == t
            assert set(np.unique(plan.x)) <= {0.0, 1.0}
        assert planner.latest_at(10) is planner.plans[2]

    def test_wait_for_raises_after_failure(self):
        scenario = tiny_scenario(horizon=2)

        def broken(slot, x_prev):
            raise ValueError("no plan for you")

        async def scenario_run():
            planner = PlanManager(scenario, solve_fn=broken)
            task = asyncio.ensure_future(planner.run(2))
            with pytest.raises(ValueError, match="no plan"):
                await planner.wait_for(0)
            with pytest.raises(ValueError):
                await task

        asyncio.run(scenario_run())

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ConfigurationError, match="window"):
            PlanManager(tiny_scenario(horizon=2), window=0)


class TestStrategyComparison:
    def test_heuristics_run_on_identical_streams(self):
        scenario = tiny_scenario()
        stream = open_loop_requests(
            scenario, rps=100.0, slot_seconds=0.1, seed=2
        )
        reports = {
            name: asyncio.run(
                serve_requests(
                    scenario,
                    stream,
                    strategy=name,
                    window=2,
                    slot_seconds=0.1,
                )
            )
            for name in ("optimal-y", "round-robin", "least-connections",
                         "health-score")
        }
        assert {r.requests_total for r in reports.values()} == {len(stream)}
        for name, report in reports.items():
            assert report.strategy == name
            assert report.decided == len(stream)
            assert report.cost.total > 0


class TestConfigIntegration:
    def test_runtime_config_supplies_serve_knobs(self):
        scenario = tiny_scenario(horizon=2)
        config = RuntimeConfig(
            serve_rps=40.0,
            serve_admission="shed",
            serve_queue_depth=8,
            serve_slot_seconds=0.1,
        )
        report = run_serve(
            scenario, config=config, solve_fn=fast_solve(scenario)
        )
        assert report.admission == "shed"
        assert report.queue_depth == 8
        assert report.slot_seconds == 0.1
        assert report.requests_total == 8  # ceil(2 * 0.1 * 40)

    def test_args_beat_config(self):
        scenario = tiny_scenario(horizon=2)
        config = RuntimeConfig(serve_admission="shed")
        report = run_serve(
            scenario,
            config=config,
            admission="queue",
            rps=40.0,
            slot_seconds=0.1,
            solve_fn=fast_solve(scenario),
        )
        assert report.admission == "queue"


class TestObsIntegration:
    def test_serve_emits_swaps_and_counters(self):
        scenario = tiny_scenario()
        recorder = Recorder()
        with record_into(recorder):
            report = run_serve(
                scenario, rps=100.0, slot_seconds=0.1, seed=2, window=2
            )
        assert validate_trace(recorder.events) == len(recorder.events)
        kinds = {e.kind for e in recorder.events}
        assert {"plan_swap", "slot_end", "solve_done"} <= kinds
        swaps = [e for e in recorder.events if e.kind == "plan_swap"]
        assert len(swaps) == report.plan_swaps
        assert all(e.data["plan_slot"] == e.slot for e in swaps)
        counters = recorder.metrics.to_dict()["counters"]
        assert counters["serve_requests"] == report.decided
        assert counters["serve_plan_swaps"] == report.plan_swaps

    def test_shed_emits_request_shed_events(self):
        scenario = tiny_scenario()
        recorder = Recorder()
        with record_into(recorder):
            report = run_serve(
                scenario,
                rps=100.0,
                slot_seconds=0.1,
                seed=2,
                admission="shed",
                queue_depth=4,
                solve_fn=slow_solve(scenario, 0.05),
            )
        shed_events = [e for e in recorder.events if e.kind == "request_shed"]
        assert len(shed_events) == report.shed > 0

    def test_faulted_scenario_serves_from_installed_caches(self):
        scenario = tiny_scenario(horizon=8)
        schedule = api.default_fault_schedule(8)
        faulted = api.inject_faults(scenario, schedule)
        recorder = Recorder()
        with record_into(recorder):
            report = run_serve(
                faulted, rps=60.0, slot_seconds=0.1, seed=2, window=3
            )
        assert report.decided == report.requests_total
        kinds = {e.kind for e in recorder.events}
        assert "fault_injected" in kinds
        # determinism holds under faults too
        again = run_serve(faulted, rps=60.0, slot_seconds=0.1, seed=2, window=3)
        assert again.digest == report.digest

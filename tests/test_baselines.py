"""Tests for the baseline caching policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FIFO, LFU, LRFU, LRU, NoCache, StaticTopK
from repro.network.topology import single_cell_network
from repro.scenario import Scenario, validate_plan
from repro.sim.engine import evaluate_plan
from repro.workload.demand import DemandMatrix, paper_demand


def _scenario(rates: np.ndarray, *, C=2, B=10.0, beta=1.0) -> Scenario:
    T, M, K = rates.shape
    net = single_cell_network(
        num_items=K,
        cache_size=C,
        bandwidth=B,
        replacement_cost=beta,
        omega_bs=[0.5] * M,
    )
    return Scenario(network=net, demand=DemandMatrix(rates))


class TestLRFU:
    def test_caches_top_by_volume(self):
        rates = np.zeros((2, 1, 4))
        rates[0, 0] = [5.0, 1.0, 3.0, 0.5]
        rates[1, 0] = [0.5, 5.0, 3.0, 1.0]
        plan = LRFU().plan(_scenario(rates))
        np.testing.assert_allclose(plan.x[0, 0], [1, 0, 1, 0])
        np.testing.assert_allclose(plan.x[1, 0], [0, 1, 1, 0])

    def test_skips_zero_demand_items(self):
        rates = np.zeros((1, 1, 4))
        rates[0, 0, 0] = 1.0
        plan = LRFU().plan(_scenario(rates))
        assert plan.x[0, 0].sum() == 1.0

    def test_stationary_pattern_constant_cache(self, rng):
        dm = paper_demand(
            5, 3, 6, rng=rng, density_mode="static", density_jitter=0.0
        )
        sc = _scenario(dm.rates)
        plan = LRFU().plan(sc)
        for t in range(1, 5):
            np.testing.assert_allclose(plan.x[t], plan.x[0])
        # Only the initial fills count as replacements.
        result = evaluate_plan(sc, plan, policy_name="LRFU")
        assert result.cost.replacements == 2

    def test_plan_valid(self, small_scenario):
        plan = LRFU().plan(small_scenario)
        validate_plan(small_scenario, plan)


class TestClassics:
    def test_lfu_converges_to_cumulative_top(self):
        rates = np.zeros((10, 1, 3))
        rates[:, 0, 0] = 3.0  # persistent favourite
        rates[:, 0, 1] = 2.0
        rates[0, 0, 2] = 10.0  # one-slot burst
        plan = LFU().plan(_scenario(rates, C=2))
        # After enough slots the burst item is evicted by cumulative counts.
        np.testing.assert_allclose(plan.x[9, 0], [1, 1, 0])

    def test_lru_tracks_recency(self):
        rates = np.zeros((3, 1, 3))
        rates[0, 0, 0] = 1.0
        rates[1, 0, 1] = 1.0
        rates[2, 0, 2] = 1.0
        plan = LRU().plan(_scenario(rates, C=2))
        # After slot 2, items 1 and 2 are the two most recent.
        np.testing.assert_allclose(plan.x[2, 0], [0, 1, 1])

    def test_fifo_eviction_order(self):
        rates = np.zeros((3, 1, 3))
        rates[0, 0, 0] = 5.0
        rates[1, 0, 1] = 1.0
        rates[2, 0, 2] = 9.0  # strong newcomer evicts the oldest (item 0)
        plan = FIFO().plan(_scenario(rates, C=2))
        np.testing.assert_allclose(plan.x[2, 0], [0, 1, 1])

    @pytest.mark.parametrize("policy_cls", [LFU, LRU, FIFO])
    def test_plans_valid(self, policy_cls, small_scenario):
        plan = policy_cls().plan(small_scenario)
        validate_plan(small_scenario, plan)
        assert set(np.unique(plan.x)) <= {0.0, 1.0}

    @pytest.mark.parametrize("policy_cls", [LFU, LRU, FIFO])
    def test_zero_capacity(self, policy_cls):
        rates = np.ones((2, 1, 3))
        plan = policy_cls().plan(_scenario(rates, C=0))
        assert plan.x.sum() == 0.0


class TestStatic:
    def test_static_topk_single_fill(self, small_scenario):
        plan = StaticTopK().plan(small_scenario)
        validate_plan(small_scenario, plan)
        result = evaluate_plan(small_scenario, plan, policy_name="StaticTopK")
        assert result.cost.replacements == int(plan.x[0].sum())
        for t in range(1, small_scenario.horizon):
            np.testing.assert_allclose(plan.x[t], plan.x[0])

    def test_nocache_empty(self, small_scenario):
        plan = NoCache().plan(small_scenario)
        assert plan.x.sum() == 0.0
        result = evaluate_plan(small_scenario, plan, policy_name="NoCache")
        assert result.cost.replacement == 0.0
        assert result.cost.sbs_cost == 0.0

    def test_static_beats_nocache(self, small_scenario):
        static = evaluate_plan(
            small_scenario, StaticTopK().plan(small_scenario)
        ).cost.total
        nothing = evaluate_plan(
            small_scenario, NoCache().plan(small_scenario)
        ).cost.total
        assert static < nothing

    def test_names(self):
        assert LRFU().name == "LRFU"
        assert LFU().name == "LFU"
        assert LRU().name == "LRU"
        assert FIFO().name == "FIFO"
        assert StaticTopK().name == "StaticTopK"
        assert NoCache().name == "NoCache"

"""Accuracy, merge, and windowing contracts of :mod:`repro.obs.sketch`.

The headline property: against ``numpy.quantile(method="inverted_cdf")``
on adversarial streams, every estimate stays within the sketch's
documented relative value error (one bucket width), with a tiny float
slack for values landing exactly on a bucket edge. Merging contiguous
shards must serialize byte-identically to serial observation — the
``map_recorded`` ordered-reduce contract that keeps recorded metric
registries equal across executors.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import QuantileSketch, WindowedCounter

#: Absorbs log/ceil rounding when a value sits exactly on a bucket edge.
EDGE_SLACK = 1e-9

in_range_values = st.lists(
    st.floats(min_value=1e-6, max_value=1e2, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestQuantileAccuracy:
    @given(values=in_range_values, q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_within_documented_relative_error_of_numpy(self, values, q):
        sketch = QuantileSketch()
        for v in values:
            sketch.observe(v)
        exact = float(np.quantile(np.array(values), q, method="inverted_cdf"))
        est = sketch.quantile(q)
        assert est is not None
        assert est >= exact * (1.0 - EDGE_SLACK)
        assert est <= exact * (1.0 + sketch.relative_error) * (1.0 + EDGE_SLACK)

    @given(values=in_range_values)
    @settings(max_examples=100, deadline=None)
    def test_exact_aggregates(self, values):
        sketch = QuantileSketch()
        for v in values:
            sketch.observe(v)
        assert sketch.count == len(values)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.total == pytest.approx(sum(values))

    def test_empty_sketch_has_no_quantiles(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) is None
        summary = sketch.summary()
        assert summary["count"] == 0
        assert summary["p99"] is None and summary["mean"] is None

    def test_quantile_bounds_validated(self):
        sketch = QuantileSketch()
        sketch.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            sketch.quantile(1.5)

    def test_config_validated(self):
        with pytest.raises(ValueError, match="lo"):
            QuantileSketch(lo=0.0)
        with pytest.raises(ValueError, match="lo"):
            QuantileSketch(lo=2.0, hi=1.0)
        with pytest.raises(ValueError, match="buckets_per_decade"):
            QuantileSketch(buckets_per_decade=0)


class TestClampingAndSpecials:
    def test_below_range_clamps_but_extrema_stay_exact(self):
        sketch = QuantileSketch()
        sketch.observe(1e-12)
        # The estimate clamps to the exact observed max, so a single tiny
        # value is recovered exactly despite living in the first bucket.
        assert sketch.quantile(0.5) == 1e-12
        assert sketch.min == sketch.max == 1e-12

    def test_above_range_clamps_to_hi_bucket(self):
        sketch = QuantileSketch()
        sketch.observe(1e9)
        # Binned into the last bucket, but the exact-extrema clamp still
        # recovers the observed value for a singleton stream.
        assert sketch.counts == {sketch._nbuckets - 1: 1}
        assert sketch.quantile(1.0) == 1e9
        assert sketch.max == 1e9

    def test_nan_skipped_inf_counted_but_not_summed(self):
        sketch = QuantileSketch()
        sketch.observe(float("nan"))
        assert sketch.count == 0
        sketch.observe(1.0)
        sketch.observe(float("inf"))
        assert sketch.count == 2
        assert sketch.total == 1.0
        assert sketch.max == 1.0

    def test_zero_and_negative_land_in_first_bucket(self):
        sketch = QuantileSketch()
        sketch.observe(0.0)
        sketch.observe(-3.0)
        assert sketch.counts == {0: 2}
        assert sketch.min == -3.0


class TestMerge:
    # Integer-valued floats: sums are exact in float64, so serial vs
    # sharded observation must agree to the byte, not just approximately.
    int_streams = st.lists(
        st.integers(min_value=1, max_value=10**6), min_size=1, max_size=120
    )

    @given(values=int_streams, cut=st.integers(min_value=0, max_value=120))
    @settings(max_examples=100, deadline=None)
    def test_sharded_merge_serializes_byte_identically(self, values, cut):
        cut = min(cut, len(values))
        serial = QuantileSketch()
        for v in values:
            serial.observe(float(v))
        left, right = QuantileSketch(), QuantileSketch()
        for v in values[:cut]:
            left.observe(float(v))
        for v in values[cut:]:
            right.observe(float(v))
        left.merge(right)
        a = json.dumps(serial.to_dict(), sort_keys=True)
        b = json.dumps(left.to_dict(), sort_keys=True)
        assert a == b

    @given(values=int_streams)
    @settings(max_examples=50, deadline=None)
    def test_merge_associativity(self, values):
        thirds = np.array_split(np.array(values, dtype=float), 3)
        def sketch_of(chunk):
            s = QuantileSketch()
            for v in chunk:
                s.observe(float(v))
            return s

        left = sketch_of(thirds[0])
        left.merge(sketch_of(thirds[1]))
        left.merge(sketch_of(thirds[2]))

        tail = sketch_of(thirds[1])
        tail.merge(sketch_of(thirds[2]))
        right = sketch_of(thirds[0])
        right.merge(tail)
        assert json.dumps(left.to_dict(), sort_keys=True) == json.dumps(
            right.to_dict(), sort_keys=True
        )

    def test_mismatched_configs_refuse_to_merge(self):
        with pytest.raises(ValueError, match="configurations"):
            QuantileSketch().merge(QuantileSketch(buckets_per_decade=32))

    def test_dict_round_trip(self):
        sketch = QuantileSketch()
        for v in (1e-5, 3e-4, 0.2, 7.0, 7.0, 250.0):
            sketch.observe(v)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.95) == sketch.quantile(0.95)


class TestWindowedCounter:
    def test_totals_inside_window(self):
        counter = WindowedCounter(window=10.0, bucket_count=10)
        for t in range(10):
            counter.add(float(t))
        assert counter.total(9.0) == 10.0
        assert counter.rate(9.0) == pytest.approx(1.0)

    def test_old_buckets_expire(self):
        counter = WindowedCounter(window=10.0, bucket_count=10)
        counter.add(0.0, 5.0)
        assert counter.total(5.0) == 5.0
        # A full window later, the old bucket is outside the span.
        assert counter.total(11.0) == 0.0

    def test_ring_reuse_overwrites_expired_epochs(self):
        counter = WindowedCounter(window=4.0, bucket_count=4)
        counter.add(0.5, 1.0)
        counter.add(4.5, 2.0)  # same ring slot, newer epoch
        assert counter.total(4.5) == 2.0

    def test_stale_out_of_order_add_is_dropped(self):
        counter = WindowedCounter(window=4.0, bucket_count=4)
        counter.add(8.5, 2.0)
        counter.add(0.5, 1.0)  # epoch older than the slot's current one
        assert counter.total(8.5) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            WindowedCounter(0.0)
        with pytest.raises(ValueError, match="bucket_count"):
            WindowedCounter(1.0, bucket_count=0)

    @given(
        adds=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_never_exceeds_sum_of_adds(self, adds):
        counter = WindowedCounter(window=30.0)
        for t, v in sorted(adds):
            counter.add(t, v)
        now = max((t for t, _ in adds), default=0.0)
        assert counter.total(now) <= sum(v for _, v in adds) + 1e-9

"""End-to-end integration tests crossing module boundaries.

Each test exercises a full pipeline — scenario construction, policy
planning, realized-cost evaluation, metrics — on instances small enough to
finish quickly but large enough to be non-trivial.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AFHC,
    CHC,
    LRFU,
    RHC,
    BeladyVolume,
    NoCache,
    OfflineOptimal,
    OnlineSolveSettings,
    Scenario,
    StaticTopK,
    paper_scenario,
    run_policies,
)
from repro.core.distributed import DistributedOfflineOptimal
from repro.network import ContentCatalog, MUClass, Network, SmallBaseStation
from repro.sim.discrete import replay_trace
from repro.sim.metrics import compute_edge_metrics
from repro.sim.runner import cost_ratios
from repro.workload.demand import (
    flash_crowd_demand,
    shifting_popularity_demand,
)
from repro.workload.predictor import PerturbedPredictor
from repro.workload.trace import sample_poisson_trace

FAST = OnlineSolveSettings(max_iter=20, gap_tol=5e-3, ub_patience=5)


@pytest.fixture(scope="module")
def mini_paper():
    """A scaled-down paper scenario shared by the expensive tests."""
    return paper_scenario(
        seed=5,
        horizon=12,
        num_items=10,
        num_classes=8,
        cache_size=3,
        bandwidth=8.0,
        beta=20.0,
    )


class TestFullComparison:
    @pytest.fixture(scope="class")
    def results(self):
        scenario = paper_scenario(
            seed=2,
            horizon=12,
            num_items=10,
            num_classes=8,
            cache_size=3,
            bandwidth=8.0,
            beta=20.0,
        )
        policies = [
            OfflineOptimal(max_iter=80),
            RHC(window=4, settings=FAST),
            CHC(window=4, commitment=2, settings=FAST),
            AFHC(window=4, settings=FAST),
            LRFU(),
            StaticTopK(),
            BeladyVolume(),
            NoCache(),
        ]
        return run_policies(scenario, policies)

    def test_offline_is_best(self, results):
        offline = results["Offline"].cost.total
        for name, r in results.items():
            assert r.cost.total >= offline - 0.01 * offline, name

    def test_optimizing_policies_beat_nocache(self, results):
        """Offline and the cost-aware policies beat caching nothing.

        Myopic baselines (LRFU, Belady) may legitimately lose to NoCache
        when their churn outweighs the offloading benefit, so they are
        deliberately excluded here.
        """
        nocache = results["NoCache"].cost.total
        for name in ("Offline", "StaticTopK", "RHC(w=4)", "CHC(w=4,r=2)"):
            assert results[name].cost.total <= nocache + 1e-9, name

    def test_everyone_feasible(self, results):
        for name, r in results.items():
            assert set(np.unique(r.x)) <= {0.0, 1.0}, name
            assert np.all(r.y >= -1e-9) and np.all(r.y <= 1 + 1e-9), name

    def test_ratios_well_formed(self, results):
        ratios = cost_ratios(results)
        assert ratios["Offline"] == pytest.approx(1.0)
        assert all(v >= 0.99 for v in ratios.values())


class TestMultiCellPipeline:
    @pytest.fixture(scope="class")
    def scenario(self):
        rng = np.random.default_rng(17)
        net = Network(
            ContentCatalog(8),
            (
                SmallBaseStation(0, 3, 6.0, 5.0),
                SmallBaseStation(1, 2, 4.0, 15.0),
            ),
            tuple(
                MUClass(i, i % 2, float(rng.uniform(0.2, 1.0)))
                for i in range(6)
            ),
        )
        demand = shifting_popularity_demand(
            10, 6, 8, rng=rng, shift_every=5, density_range=(0.5, 3.0)
        )
        predictor = PerturbedPredictor(demand, eta=0.1, seed=3)
        return Scenario(network=net, demand=demand, predictor=predictor)

    def test_online_on_multi_cell(self, scenario):
        results = run_policies(
            scenario, [RHC(window=3, settings=FAST), LRFU()]
        )
        assert results["RHC(w=3)"].cost.total > 0
        scenario.problem().check_feasible(
            results["RHC(w=3)"].x, results["RHC(w=3)"].y
        )

    def test_distributed_equals_joint_through_policies(self, scenario):
        joint = run_policies(scenario, [OfflineOptimal(max_iter=120)])
        dist = run_policies(scenario, [DistributedOfflineOptimal(max_iter=120)])
        a = joint["Offline"].cost.total
        b = dist["DistributedOffline"].cost.total
        assert b == pytest.approx(a, rel=5e-3)

    def test_metrics_pipeline(self, scenario):
        result = run_policies(scenario, [LRFU()])["LRFU"]
        metrics = compute_edge_metrics(
            scenario.network, scenario.demand.rates, result.x, result.y
        )
        assert 0 <= metrics.hit_ratio <= 1
        assert 0 <= metrics.offload_ratio <= metrics.hit_ratio + 1e-9
        assert metrics.bandwidth_utilization.shape == (2,)


class TestDiscreteConsistency:
    def test_replay_of_planned_policy(self, mini_paper):
        rng = np.random.default_rng(3)
        result = run_policies(mini_paper, [StaticTopK()])["StaticTopK"]
        trace = sample_poisson_trace(mini_paper.demand, rng=rng)
        report = replay_trace(
            mini_paper.network, trace, result.x, result.y
        )
        # Bandwidth budget respected every slot.
        budget = int(np.floor(mini_paper.network.bandwidths[0]))
        per_slot = report.served_sbs.sum(axis=(1, 2))
        assert np.all(per_slot <= budget)
        # Conservation: every request is served somewhere.
        np.testing.assert_array_equal(
            report.served_sbs + report.served_bs, trace.counts
        )


class TestFlashCrowdPipeline:
    def test_rhc_reacts_to_surge(self):
        rng = np.random.default_rng(23)
        net_rng = np.random.default_rng(24)
        from repro.network.topology import single_cell_network

        net = single_cell_network(
            num_items=8,
            cache_size=2,
            bandwidth=8.0,
            replacement_cost=10.0,
            omega_bs=net_rng.uniform(0.3, 1.0, 5),
        )
        demand = flash_crowd_demand(
            15, 5, 8, rng=rng, crowd_item=3, start=6, duration=5,
            magnitude=10.0, density_range=(0.2, 1.5),
        )
        scenario = Scenario(network=net, demand=demand)
        plan = RHC(window=5, settings=FAST).plan(scenario)
        # During the surge, the viral item is cached most of the time.
        surge_cached = plan.x[6:11, 0, 3].mean()
        assert surge_cached >= 0.6

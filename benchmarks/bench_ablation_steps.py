"""Ablation — subgradient step rules in Algorithm 1.

Compares the paper's diminishing rule (Eq. 16, unit-scaled) against the
Polyak step on the offline problem: iterations to reach a 1% duality gap
and the final feasible cost. The paper notes "other sub-gradient descent
methods can also be adopted"; this bench quantifies the library's default
choice.
"""

from __future__ import annotations

from repro.api import paper_scenario, solve_primal_dual


def test_ablation_step_rules(benchmark, bench_scale, save_report, save_json):
    scenario = paper_scenario(seed=1, horizon=min(bench_scale.horizon, 40))
    problem = scenario.problem()

    def run():
        out = {}
        for step in ("polyak", "paper"):
            result = solve_primal_dual(
                problem, max_iter=80, gap_tol=0.01, step=step
            )
            out[step] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Algorithm 1 step-rule ablation (gap target 1%)"]
    for step, res in results.items():
        lines.append(
            f"  {step:<8} iterations={res.iterations:<4d} gap={res.gap:8.4f} "
            f"feasible cost={res.upper_bound:12.1f}"
        )
    save_report(f"ablation_steps_{bench_scale.name}", "\n".join(lines))
    save_json(
        "ablation_steps",
        {
            step: {
                "iterations": res.iterations,
                "gap": float(res.gap),
                "feasible_cost": float(res.upper_bound),
                "timings": dict(res.timings),
            }
            for step, res in results.items()
        },
    )

    polyak = results["polyak"]
    paper = results["paper"]
    # Both step rules certify valid bounds...
    for res in results.values():
        assert res.lower_bound <= res.upper_bound + 1e-9
    # ...and land on feasible costs within a few percent of each other.
    assert polyak.upper_bound <= paper.upper_bound * 1.05
    assert paper.upper_bound <= polyak.upper_bound * 1.05

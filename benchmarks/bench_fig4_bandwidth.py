"""Fig. 4 — impact of the SBS bandwidth capacity ``B``.

Panels: (a) total operating cost, (b) number of cache replacements.
Expected shape: every policy's cost falls as bandwidth grows (more requests
can be served from the edge); the online algorithms' replacement counts
rise with bandwidth (more offloading value to chase) until the SBS can
serve everything, while LRFU's stays flat (its ranking ignores bandwidth).

``test_fig4_bw_bound_stress`` is the bandwidth-*starved* counterpart: a
row stack where every row is bandwidth-bound (the regime Fig. 4's lowest
``B`` points probe), timing the closed-form parametric solve against the
bisection reference and asserting the exactness envelope plus the counter
accounting identity at 100% bound coverage.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import bandwidth_sweep, render_sweep_table, sweep_to_dict
from repro.obs import Recorder, record_into
from repro.optim.waterfill import waterfill_batch


def test_fig4_bandwidth_sweep(benchmark, bench_scale, save_report, save_json):
    started = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: bandwidth_sweep(
            bench_scale.bandwidths,
            seeds=bench_scale.seeds,
            horizon=bench_scale.horizon,
        ),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - started

    text = "\n\n".join(
        (
            render_sweep_table(sweep, "total", title="Fig 4a - total cost vs bandwidth"),
            render_sweep_table(
                sweep, "replacements", title="Fig 4b - # replacements vs bandwidth"
            ),
        )
    )
    save_report(f"fig4_bandwidth_{bench_scale.name}", text)
    save_json(
        "fig4_bandwidth",
        {"elapsed_seconds": elapsed, "sweep": sweep_to_dict(sweep)},
    )

    totals = sweep.table("total")
    offline = np.array(totals["Offline"])
    for name, series in totals.items():
        arr = np.array(series)
        assert np.all(arr >= offline - 0.01 * offline), name
        # Cost non-increasing in bandwidth. CHC/AFHC carry extra
        # averaging+rounding noise, so their slack is wider.
        slack = 0.05 if name.startswith(("CHC", "AFHC")) else 0.02
        assert np.all(np.diff(arr) <= slack * arr[:-1]), name

    # LRFU's replacement count ignores bandwidth entirely.
    lrfu_repl = sweep.table("replacements")["LRFU"]
    assert max(lrfu_repl) - min(lrfu_repl) < 1e-9

    # The paper's mechanism — more bandwidth, more offloading value to
    # chase, more replacements — is asserted on RHC, the un-rounded
    # controller. CHC/AFHC inherit it only up to their averaging+rounding
    # noise, which can locally invert the trend.
    repl = sweep.table("replacements")
    for name in repl:
        if name.startswith("RHC"):
            assert repl[name][-1] >= repl[name][0] - 1e-9, name


_STRESS_ROWS = 400
_STRESS_COLS = 2_000
_STRESS_BW_FRAC = 0.35  # bandwidth as a fraction of the unconstrained fill
_P2_COUNTERS = ("p2_bw_bound_rows", "p2_bw_closed_form", "p2_bisection_fallbacks")


def _bound_stack(rng, rows, cols):
    """A row stack whose every row is bandwidth-bound.

    Two-phase construction: solve once with effectively infinite bandwidth
    to learn each row's unconstrained fill, then starve every row to a
    fraction of it. Two omega groups per row (the paper's two-class SBS),
    a sparse price field, and a spread of zero-capacity columns exercise
    the same structure the P2 stack has.
    """
    lam = rng.exponential(1.0, (rows, cols)) + 1e-3
    omvals = np.sort(rng.uniform(0.2, 2.0, (rows, 2)), axis=1)
    gi = rng.integers(0, 2, (rows, cols))
    omega = np.take_along_axis(omvals, gi, axis=1)
    mu = rng.exponential(0.05, (rows, cols))
    mu[rng.random((rows, cols)) < 0.2] = 0.0
    caps = lam * rng.uniform(0.1, 1.0, (rows, cols))
    caps[rng.random((rows, cols)) < 0.15] = 0.0
    W = (lam * omega).sum(axis=1) * rng.uniform(0.3, 1.2, rows)
    unconstrained, _ = waterfill_batch(
        lam, caps, omega, mu, W, np.full(rows, 1e18), 1.0
    )
    totals = unconstrained.sum(axis=1)
    keep = totals > 0
    bw = totals[keep] * _STRESS_BW_FRAC
    return lam[keep], caps[keep], omega[keep], mu[keep], W[keep], bw


def _row_objectives(alloc, lam, omega, mu, W, scale):
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(lam > 0, mu / lam, 0.0)
    u = np.einsum("rj,rj->r", alloc, omega)
    return scale * (W - u) ** 2 + np.einsum("rj,rj->r", slope, alloc)


def test_fig4_bw_bound_stress(save_json):
    rng = np.random.default_rng(4)
    lam, caps, omega, mu, W, bw = _bound_stack(rng, _STRESS_ROWS, _STRESS_COLS)
    rows = lam.shape[0]

    recorder = Recorder()
    started = time.perf_counter()
    with record_into(recorder):
        closed_a, _ = waterfill_batch(lam, caps, omega, mu, W, bw, 1.0)
    closed_seconds = time.perf_counter() - started
    counters = {
        name: recorder.metrics.counter(name) for name in _P2_COUNTERS
    }
    # Every single row is bandwidth-bound by construction, and every bound
    # row is accounted for by the closed form or a counted fallback.
    assert counters["p2_bw_bound_rows"] == rows
    assert (
        counters["p2_bw_closed_form"] + counters["p2_bisection_fallbacks"]
        == rows
    )

    started = time.perf_counter()
    bisect_a, _ = waterfill_batch(
        lam, caps, omega, mu, W, bw, 1.0, closed_form=False
    )
    bisect_seconds = time.perf_counter() - started

    started = time.perf_counter()
    legacy_a, _ = waterfill_batch(
        lam, caps, omega, mu, W, bw, 1.0, closed_form=False, early_exit=False
    )
    legacy_seconds = time.perf_counter() - started

    # Feasibility and exactness: within bounds, under budget, never worse
    # than either bisection beyond the 1e-9 relative envelope.
    assert (closed_a >= 0.0).all() and (closed_a <= caps + 1e-12).all()
    assert (closed_a.sum(axis=1) <= bw * (1 + 1e-12) + 1e-12).all()
    ob_closed = _row_objectives(closed_a, lam, omega, mu, W, 1.0)
    for reference in (bisect_a, legacy_a):
        ob_ref = _row_objectives(reference, lam, omega, mu, W, 1.0)
        envelope = 1e-9 * np.maximum(1.0, np.abs(ob_ref))
        assert not (ob_closed > ob_ref + envelope).any()

    save_json(
        "fig4_bw_stress",
        {
            "bw_closed_form": True,
            "rows": int(rows),
            "columns": _STRESS_COLS,
            "bw_fraction": _STRESS_BW_FRAC,
            "closed_seconds": closed_seconds,
            "bisect_seconds": bisect_seconds,
            "legacy_seconds": legacy_seconds,
            "speedup_vs_legacy": legacy_seconds / max(closed_seconds, 1e-9),
            "solve_counters": counters,
        },
    )

"""Fig. 4 — impact of the SBS bandwidth capacity ``B``.

Panels: (a) total operating cost, (b) number of cache replacements.
Expected shape: every policy's cost falls as bandwidth grows (more requests
can be served from the edge); the online algorithms' replacement counts
rise with bandwidth (more offloading value to chase) until the SBS can
serve everything, while LRFU's stays flat (its ranking ignores bandwidth).
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import bandwidth_sweep, render_sweep_table, sweep_to_dict


def test_fig4_bandwidth_sweep(benchmark, bench_scale, save_report, save_json):
    started = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: bandwidth_sweep(
            bench_scale.bandwidths,
            seeds=bench_scale.seeds,
            horizon=bench_scale.horizon,
        ),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - started

    text = "\n\n".join(
        (
            render_sweep_table(sweep, "total", title="Fig 4a - total cost vs bandwidth"),
            render_sweep_table(
                sweep, "replacements", title="Fig 4b - # replacements vs bandwidth"
            ),
        )
    )
    save_report(f"fig4_bandwidth_{bench_scale.name}", text)
    save_json(
        "fig4_bandwidth",
        {"elapsed_seconds": elapsed, "sweep": sweep_to_dict(sweep)},
    )

    totals = sweep.table("total")
    offline = np.array(totals["Offline"])
    for name, series in totals.items():
        arr = np.array(series)
        assert np.all(arr >= offline - 0.01 * offline), name
        # Cost non-increasing in bandwidth. CHC/AFHC carry extra
        # averaging+rounding noise, so their slack is wider.
        slack = 0.05 if name.startswith(("CHC", "AFHC")) else 0.02
        assert np.all(np.diff(arr) <= slack * arr[:-1]), name

    # LRFU's replacement count ignores bandwidth entirely.
    lrfu_repl = sweep.table("replacements")["LRFU"]
    assert max(lrfu_repl) - min(lrfu_repl) < 1e-9

    # The paper's mechanism — more bandwidth, more offloading value to
    # chase, more replacements — is asserted on RHC, the un-rounded
    # controller. CHC/AFHC inherit it only up to their averaging+rounding
    # noise, which can locally invert the trend.
    repl = sweep.table("replacements")
    for name in repl:
        if name.startswith("RHC"):
            assert repl[name][-1] >= repl[name][0] - 1e-9, name

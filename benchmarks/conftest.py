"""Shared configuration for the figure-regeneration benchmarks.

Each benchmark regenerates one of the paper's evaluation artefacts (a
figure panel series or the Section V-C(1) headline comparison), prints the
series, and writes it under ``benchmarks/results/`` so the numbers can be
diffed against EXPERIMENTS.md.

Two scales are provided, selected by the ``REPRO_BENCH_SCALE`` environment
variable:

- ``quick`` (default): horizon 40, coarser sweep grids, single seed —
  every figure regenerates in minutes and the qualitative shapes hold.
- ``full``: horizon 60 with the paper's full sweep grids — the scale used
  to produce the numbers recorded in EXPERIMENTS.md.
- ``paper``: the paper's horizon 100, full grids, two seeds (slowest).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    name: str
    horizon: int
    seeds: tuple[int, ...]
    betas: tuple[float, ...]
    windows: tuple[int, ...]
    bandwidths: tuple[float, ...]
    etas: tuple[float, ...]


SCALES = {
    "quick": BenchScale(
        name="quick",
        horizon=40,
        seeds=(1,),
        betas=(0.0, 50.0, 100.0, 200.0),
        windows=(2, 6, 10),
        bandwidths=(5.0, 15.0, 30.0),
        etas=(0.0, 0.25, 0.5),
    ),
    "full": BenchScale(
        name="full",
        horizon=60,
        seeds=(1,),
        betas=(0.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0),
        windows=(2, 4, 6, 8, 10, 12),
        bandwidths=(5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
        etas=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    ),
    "paper": BenchScale(
        name="paper",
        horizon=100,
        seeds=(1, 2),
        betas=(0.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0),
        windows=(2, 4, 6, 8, 10, 12),
        bandwidths=(5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
        etas=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    ),
}


@pytest.fixture(scope="session")
def bench_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


@pytest.fixture(scope="session")
def save_report():
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture(scope="session")
def save_json(bench_scale):
    """Persist a machine-readable benchmark record as ``BENCH_<name>.json``.

    Every benchmark writes one of these next to its ``.txt`` report so
    regression-tracking tooling can diff numbers without parsing tables.
    The bench name and scale are stamped into the payload, and a run
    manifest (seed, config hash, package versions — see
    :func:`repro.obs.run_manifest`) lands next to it as
    ``BENCH_<name>.manifest.json``.
    """
    from repro.obs import run_manifest, write_manifest

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, payload: dict) -> Path:
        record = {"bench": name, "scale": bench_scale.name, **payload}
        path = RESULTS_DIR / f"BENCH_{name}.json"
        with path.open("w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=False)
            fh.write("\n")
        manifest = run_manifest(
            seed=bench_scale.seeds[0],
            config={
                "bench": name,
                "scale": bench_scale.name,
                "horizon": bench_scale.horizon,
                "seeds": list(bench_scale.seeds),
            },
            fault_schedule=payload.get("schedule"),
        )
        write_manifest(RESULTS_DIR / f"BENCH_{name}.manifest.json", manifest)
        print(f"[saved to {path}]")
        return path

    return _save

"""Serving-runtime bench: sustained RPS, decision latency, plan-swap health.

Three legs, all on the headline scenario at the selected scale:

1. **Paced open-loop replay** at 200 RPS (shed admission): the acceptance
   leg. The background solver must keep ahead of the slot clock — zero
   dropped plan swaps, zero shed requests — while the request path holds
   its decision-latency percentiles.
2. **Determinism**: two unpaced queue-mode replays of the same seeded
   stream must produce byte-identical decision logs (equal digests).
3. **Strategy comparison**: each routing strategy replays one shared
   stream; realized costs and hit rates land in the record so heuristics
   stay measurable against the paper's optimal-y split.

Results land in ``BENCH_serve.json``; the ``*_seconds`` fields are gated
by ``repro bench diff`` like every other benchmark record.
"""

from __future__ import annotations

import time

from repro.api import build_scenario, run_serve
from repro.serve import STRATEGIES, open_loop_requests, serve_requests

#: The acceptance arrival rate and slot period of the paced leg.
TARGET_RPS = 200.0
SLOT_PERIOD = 0.25

#: Paced-leg bound (slots), so the wall-clock leg stays ~10s at any scale.
MAX_PACED_SLOTS = 40
#: Unpaced determinism/strategy legs replay this many requests.
DETERMINISM_REQUESTS = 1000
STRATEGY_REQUESTS = 500


def _serve_summary(report) -> dict:
    return {
        "requests": report.requests_total,
        "decided": report.decided,
        "shed": report.shed,
        "hit_rate": report.hit_rate,
        "offload_ratio": report.offload_ratio,
        "sustained_rps": report.sustained_rps,
        "offered_rps": report.offered_rps,
        "plan_swaps": report.plan_swaps,
        "plan_swaps_late": report.plan_swaps_late,
        "plan_swaps_dropped": report.plan_swaps_dropped,
        "solves": report.solves,
        "cost_total": report.cost.total,
        "decision_digest": report.digest,
    }


def test_serve_throughput_and_determinism(bench_scale, save_json):
    seed = bench_scale.seeds[0]
    scenario = build_scenario(seed=seed, horizon=bench_scale.horizon)
    paced_slots = min(bench_scale.horizon, MAX_PACED_SLOTS)
    paced_requests = int(paced_slots * SLOT_PERIOD * TARGET_RPS)

    # Warm-up at a tiny horizon: imports, solver caches.
    run_serve(
        build_scenario(seed=seed, horizon=4),
        rps=50.0,
        slot_seconds=0.1,
        seed=seed,
        window=4,
    )

    # Leg 1 — paced 200 RPS replay; the solver must beat the slot clock.
    # SLO tracking runs live (generous thresholds: the bench measures the
    # tracker's cost, not the host's latency) and its ratios/quantiles
    # land in the record for `repro bench diff`.
    paced = run_serve(
        scenario,
        rps=TARGET_RPS,
        slot_seconds=SLOT_PERIOD,
        seed=seed,
        window=10,
        admission="shed",
        pace=True,
        max_requests=paced_requests,
        slo="p99_decision_us<100000,shed_ratio<0.5",
    )
    assert paced.plan_swaps_dropped == 0, "solver fell behind the slot clock"
    assert paced.shed == 0, "admission shed requests at the target rate"
    assert paced.decided == paced_requests
    assert paced.sustained_rps >= 0.90 * paced.offered_rps

    # Leg 2 — unpaced determinism: byte-identical logs across two runs.
    replay_walls: list[float] = []
    digests: list[str] = []
    replayed = None
    for _ in range(2):
        started = time.perf_counter()
        replayed = run_serve(
            scenario,
            rps=TARGET_RPS,
            slot_seconds=SLOT_PERIOD,
            seed=seed,
            window=10,
            max_requests=DETERMINISM_REQUESTS,
        )
        replay_walls.append(time.perf_counter() - started)
        digests.append(replayed.digest)
    deterministic = digests[0] == digests[1]
    assert deterministic, f"same-seed digests differ: {digests}"
    assert replayed.plan_swaps_dropped == 0
    assert all(d.plan_slot == d.slot for d in replayed.decisions)

    # Leg 3 — strategy comparison on one shared stream.
    import asyncio

    stream = open_loop_requests(
        scenario,
        rps=TARGET_RPS,
        slot_seconds=SLOT_PERIOD,
        seed=seed,
        max_requests=STRATEGY_REQUESTS,
    )
    strategies = {}
    for name in sorted(STRATEGIES):
        report = asyncio.run(
            serve_requests(
                scenario,
                stream,
                strategy=name,
                window=10,
                slot_seconds=SLOT_PERIOD,
            )
        )
        strategies[name] = {
            "hit_rate": report.hit_rate,
            "offload_ratio": report.offload_ratio,
            "spills": report.spills,
            "cost_total": report.cost.total,
        }
    assert strategies["optimal-y"]["cost_total"] <= min(
        s["cost_total"] for s in strategies.values()
    ) * 1.001, "optimal-y must not lose to a heuristic on its own stream"

    save_json(
        "serve",
        {
            "horizon": bench_scale.horizon,
            "seed": seed,
            "rps": TARGET_RPS,
            "slot_period": SLOT_PERIOD,
            "window": 10,
            "paced_slots": paced_slots,
            # gated wall-times
            "serve_seconds": paced.wall_seconds,
            "replay_seconds": min(replay_walls),
            "decision_p50_seconds": paced.decision_p50_seconds,
            "decision_p99_seconds": paced.decision_p99_seconds,
            "plan_swap_p99_seconds": paced.swap_wait_p99_seconds,
            # results
            "paced": _serve_summary(paced),
            "replay": _serve_summary(replayed),
            "deterministic": deterministic,
            "strategies": strategies,
            # live-SLO block of the paced leg (reported by `repro bench
            # diff` as informational, never gated: wall-clock quantiles)
            "slo": paced.to_dict()["slo"],
        },
    )

"""Fig. 2 — impact of the cache replacement cost ``beta``.

Regenerates all four panels: (a) total operating cost, (b) cache
replacement cost, (c) number of cache replacements, (d) BS operating cost,
for Offline / RHC / CHC / AFHC / LRFU over the beta grid.

Shape expectations from the paper (asserted loosely):
- every policy's total cost is non-decreasing in beta;
- the offline optimum lower-bounds every policy at every beta;
- LRFU's replacement *count* is flat in beta (it ignores beta) while the
  online algorithms replace less as beta grows;
- LRFU's total-cost growth rate in beta is the largest.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import beta_sweep, render_sweep_table, sweep_to_dict

_PANELS = ("total", "replacement", "replacements", "bs_cost")


def test_fig2_beta_sweep(benchmark, bench_scale, save_report, save_json):
    started = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: beta_sweep(
            bench_scale.betas,
            seeds=bench_scale.seeds,
            horizon=bench_scale.horizon,
        ),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - started

    text = "\n\n".join(
        render_sweep_table(sweep, metric, title=f"Fig 2{panel} - {metric} vs beta")
        for panel, metric in zip("abcd", _PANELS)
    )
    save_report(f"fig2_beta_{bench_scale.name}", text)
    save_json("fig2_beta", {"elapsed_seconds": elapsed, "sweep": sweep_to_dict(sweep)})

    totals = sweep.table("total")
    offline = np.array(totals["Offline"])
    for name, series in totals.items():
        arr = np.array(series)
        # (1) offline lower-bounds everyone (small numerical slack).
        assert np.all(arr >= offline - 0.01 * offline), name
        # (2) total cost non-decreasing in beta (5% slack for seed noise).
        assert np.all(np.diff(arr) >= -0.05 * arr[:-1]), name

    # (3) LRFU ignores beta: its replacement count is exactly flat.
    lrfu_repl = sweep.table("replacements")["LRFU"]
    assert max(lrfu_repl) - min(lrfu_repl) < 1e-9

    # (4) online algorithms replace less as beta rises (endpoints compare).
    for name in ("RHC", "CHC", "AFHC"):
        key = next(k for k in totals if k.startswith(name))
        repl = sweep.table("replacements")[key]
        assert repl[-1] <= repl[0] + 1e-9, key

    # (5) LRFU's cost growth from smallest to largest beta is the steepest.
    growth = {
        name: series[-1] - series[0] for name, series in totals.items()
    }
    assert growth["LRFU"] >= max(g for n, g in growth.items() if n != "LRFU") - 1e-9

"""Resilience under the acceptance fault scenario.

One SBS outage plus a 50% bandwidth-degradation window (the issue's
acceptance schedule, scaled to the bench horizon) is injected into the
paper scenario and run through RHC, CHC, AFHC and LRFU. The bench asserts
the graceful-degradation contract:

- every faulted trajectory satisfies the *effective* (degraded)
  constraints exactly — zero violations beyond float tolerance
  (:func:`repro.api.assert_feasible_under_faults` raises otherwise);
- faulted cost is never below the fault-free cost of the same policy
  (faults cannot help) and stays within a sane inflation bound;
- the degraded run is bit-identical across serial / thread / process
  executors — fault handling must not break the determinism contract.

The machine-readable record (``BENCH_resilience.json``) carries, per
policy: total faulted/fault-free cost, cost over the fault-active slots,
time-to-recover after the last fault ends, the measured worst-case
constraint slacks, and wall time.
"""

from __future__ import annotations

from repro.api import (
    default_fault_schedule,
    render_resilience_table,
    run_resilience,
)


def _cost_vector(report):
    """Per-policy faulted cost numbers (the determinism fingerprint)."""
    return {
        row.policy: (
            row.total_cost,
            row.cost_under_faults,
            tuple(report.faulted[row.policy].per_slot_total),
        )
        for row in report.policies
    }


def test_resilience_under_faults(benchmark, bench_scale, save_report, save_json):
    horizon = bench_scale.horizon
    window = min(5, max(2, horizon // 8))
    schedule = default_fault_schedule(horizon, bandwidth_factor=0.5)
    kwargs = dict(
        horizon=horizon,
        seed=bench_scale.seeds[0],
        schedule=schedule,
        window=window,
    )

    report = benchmark.pedantic(
        lambda: run_resilience(**kwargs), rounds=1, iterations=1
    )

    # Executor invariance: the same faulted run through thread and process
    # pools must reproduce every per-slot cost bit-for-bit.
    serial_costs = _cost_vector(report)
    for executor in ("thread:4", "process:4"):
        alt = run_resilience(executor=executor, **kwargs)
        assert _cost_vector(alt) == serial_costs, f"{executor} diverged"

    for row in report.policies:
        # run_resilience already audited feasibility (raises on violation);
        # double-check the recorded slacks are within float tolerance.
        assert all(v <= 1e-6 for v in row.violations.values()), row
        # Faults cannot reduce cost, and graceful degradation keeps the
        # inflation bounded (an SBS down ~T/10 slots plus a bandwidth dip
        # must not double the bill).
        assert row.total_cost >= row.fault_free_cost * (1 - 1e-9), row
        assert row.cost_inflation <= 2.0, row
        assert row.cost_under_faults >= row.fault_free_cost_under_faults * (1 - 1e-9)

    save_report(
        f"resilience_{bench_scale.name}", render_resilience_table(report)
    )
    save_json(
        "resilience",
        {
            "window": window,
            "seed": bench_scale.seeds[0],
            "executors_identical": True,
            **report.to_dict(),
        },
    )

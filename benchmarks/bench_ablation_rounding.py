"""Ablation — CHC rounding threshold ``rho`` and commitment level ``r``.

DESIGN.md calls out two CHC design choices to ablate:

- the rounding threshold: Theorem 3 derives ``rho* = (3 - sqrt(5))/2``;
  the bench sweeps rho and checks the measured cost at ``rho*`` is within
  a small factor of the best swept threshold (the theory optimizes a
  worst-case bound, so it need not be the empirical argmin, but it should
  never be far off);
- the commitment level: CHC interpolates between RHC-like (r=1) and AFHC
  (r=w).
"""

from __future__ import annotations

import numpy as np

from repro.api import CHC, OnlineSolveSettings, evaluate_plan, paper_scenario
# Internal by design: this bench ablates the Theorem-3 rounding threshold
# itself, which is not part of the stable public surface.
from repro.core.rounding import optimal_rounding_threshold

_SETTINGS = OnlineSolveSettings(max_iter=30, gap_tol=2e-3, ub_patience=6)


def _scenario(bench_scale):
    return paper_scenario(seed=1, horizon=bench_scale.horizon, beta=50.0)


def test_ablation_rho(benchmark, bench_scale, save_report, save_json):
    scenario = _scenario(bench_scale)
    rho_star = optimal_rounding_threshold()
    rhos = (0.2, rho_star, 0.5, 0.7, 0.9)

    def run():
        totals = {}
        for rho in rhos:
            policy = CHC(window=10, commitment=5, rho=rho, settings=_SETTINGS)
            totals[rho] = evaluate_plan(
                scenario, policy.plan(scenario), policy_name=policy.name
            ).cost.total
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["CHC rounding-threshold ablation (total cost)"]
    for rho, total in totals.items():
        marker = "  <- rho* (Theorem 3)" if abs(rho - rho_star) < 1e-9 else ""
        lines.append(f"  rho={rho:.3f}  total={total:12.1f}{marker}")
    save_report(f"ablation_rho_{bench_scale.name}", "\n".join(lines))
    save_json(
        "ablation_rho",
        {
            "rho_star": float(rho_star),
            "totals": {f"{rho:.6f}": float(t) for rho, t in totals.items()},
        },
    )

    best = min(totals.values())
    assert totals[rho_star] <= best * 1.05


def test_ablation_commitment(benchmark, bench_scale, save_report, save_json):
    scenario = _scenario(bench_scale)
    levels = (1, 2, 5, 10)

    def run():
        totals = {}
        for r in levels:
            policy = CHC(window=10, commitment=r, settings=_SETTINGS)
            totals[r] = evaluate_plan(
                scenario, policy.plan(scenario), policy_name=policy.name
            ).cost.total
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["CHC commitment-level ablation (total cost, w=10)"]
    for r, total in totals.items():
        note = " (RHC-like)" if r == 1 else " (AFHC)" if r == 10 else ""
        lines.append(f"  r={r:<3d} total={total:12.1f}{note}")
    save_report(f"ablation_commitment_{bench_scale.name}", "\n".join(lines))
    save_json(
        "ablation_commitment",
        {"totals": {str(r): float(t) for r, t in totals.items()}},
    )

    values = np.array(list(totals.values()))
    # All commitment levels stay within a modest band of each other.
    assert values.max() <= values.min() * 1.25

"""Ablation — solver backends (micro-benchmarks).

Times the interchangeable backends on paper-scale subproblems:

- ``P1`` (caching): min-cost flow vs sparse HiGHS LP vs the in-house
  simplex (small instances only for the latter);
- ``P1`` flow-graph reuse: pooled graph templates with in-place cost
  rewrites vs rebuilding the graph per solve (``REPRO_FLOW_REUSE``);
- ``P2`` (load balancing): the exact water-filling solver vs FISTA;
- raw LP: in-house bounded-variable simplex vs HiGHS.

These are real repeated-timing benchmarks (pytest-benchmark statistics),
unlike the figure benches which run once.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import JointProblem, paper_demand, single_cell_network
# Internal by design: this bench ablates the P1/P2 solver backends against
# each other, below the stable public surface.
from repro.core.caching_lp import FLOW_REUSE_ENV, solve_caching
from repro.core.load_balancing import _solve_p2_fista, solve_p2
from repro.optim.linprog import solve_lp


@pytest.fixture(scope="module")
def p1_instance():
    rng = np.random.default_rng(0)
    net = single_cell_network(
        num_items=30, cache_size=5, bandwidth=30.0, replacement_cost=100.0,
        omega_bs=rng.uniform(0, 1, 30),
    )
    mu = rng.uniform(0, 2, size=(10, 30, 30))
    x0 = np.zeros((1, 30))
    return net, mu, x0


@pytest.mark.parametrize("backend", ["flow", "lp"])
def test_p1_backend_speed(benchmark, p1_instance, backend):
    net, mu, x0 = p1_instance
    result = benchmark(lambda: solve_caching(net, mu, x0, backend=backend))
    assert set(np.unique(result.x)) <= {0.0, 1.0}


def test_p1_flow_reuse_ablation(p1_instance, save_json, monkeypatch):
    """Graph reuse vs per-solve rebuild: identical caches, measured gain.

    Uses a horizon-40 instance (the offline/quick-bench scale) rather than
    the horizon-10 micro-instance: the graph build amortizes better as the
    horizon grows, which is exactly the regime the subgradient loop hits.
    """
    net, _, x0 = p1_instance
    rng = np.random.default_rng(7)
    mu = rng.uniform(0, 2, size=(40, 30, 30))
    rounds = 10

    def timed(reuse_flag: str):
        monkeypatch.setenv(FLOW_REUSE_ENV, reuse_flag)
        result = solve_caching(net, mu, x0, backend="flow")  # warm-up
        started = time.perf_counter()
        for _ in range(rounds):
            result = solve_caching(net, mu, x0, backend="flow")
        return time.perf_counter() - started, result

    fresh_seconds, fresh = timed("0")
    reuse_seconds, reused = timed("1")

    # Reuse only rewrites arc costs on a pooled graph; the solve itself is
    # unchanged, so the caches must match exactly.
    assert np.array_equal(fresh.x, reused.x)
    assert fresh.objective == reused.objective

    speedup = fresh_seconds / max(reuse_seconds, 1e-9)
    save_json(
        "ablation_flow_reuse",
        {
            "rounds": rounds,
            "fresh_seconds": fresh_seconds,
            "reuse_seconds": reuse_seconds,
            "speedup": speedup,
            "caches_identical": True,
        },
    )
    print(
        f"\nflow reuse: fresh {fresh_seconds:.3f}s, reused "
        f"{reuse_seconds:.3f}s -> {speedup:.2f}x over {rounds} rounds"
    )
    # The pooled path must never regress past noise level.
    assert reuse_seconds <= fresh_seconds * 1.10


@pytest.fixture(scope="module")
def p2_instance():
    rng = np.random.default_rng(1)
    net = single_cell_network(
        num_items=30, cache_size=5, bandwidth=30.0, replacement_cost=100.0,
        omega_bs=rng.uniform(0, 1, 30),
    )
    demand = paper_demand(10, 30, 30, rng=rng, density_range=(0.0, 4.0))
    problem = JointProblem(net, demand.rates)
    mu = rng.uniform(0, 3, problem.y_shape)
    return problem, mu


def test_p2_waterfill_speed(benchmark, p2_instance):
    problem, mu = p2_instance
    result = benchmark(lambda: solve_p2(problem, mu))
    assert np.all(result.y >= 0) and np.all(result.y <= 1)


def test_p2_fista_speed(benchmark, p2_instance):
    problem, mu = p2_instance
    result = benchmark.pedantic(
        lambda: _solve_p2_fista(problem, mu, tol=1e-6, max_iter=2000),
        rounds=3,
        iterations=1,
    )
    # FISTA should land within a small factor of the exact solver.
    exact = solve_p2(problem, mu)
    assert result.objective <= exact.objective * 1.01 + 1e-6


@pytest.fixture(scope="module")
def lp_instance():
    rng = np.random.default_rng(2)
    n, m = 40, 12
    c = rng.normal(size=n)
    A = rng.normal(size=(m, n))
    b = A @ rng.uniform(0.2, 0.8, n) + 0.5
    return c, A, b


@pytest.mark.parametrize("backend", ["simplex", "scipy"])
def test_lp_backend_speed(benchmark, lp_instance, backend):
    c, A, b = lp_instance
    result = benchmark(
        lambda: solve_lp(c, A_ub=A, b_ub=b, lo=0.0, hi=1.0, backend=backend)
    )
    assert np.all(result.x >= -1e-8)

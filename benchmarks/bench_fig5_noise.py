"""Fig. 5 — impact of the prediction perturbation ``eta``.

Expected shape: the online algorithms' total cost rises with eta while
LRFU's (which uses accurate request data) and the offline optimum's stay
exactly flat; at high eta the worst online algorithm approaches LRFU.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import noise_sweep, render_sweep_table, sweep_to_dict


def test_fig5_noise_sweep(benchmark, bench_scale, save_report, save_json):
    started = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: noise_sweep(
            bench_scale.etas,
            seeds=bench_scale.seeds,
            horizon=bench_scale.horizon,
        ),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - started

    text = render_sweep_table(sweep, "total", title="Fig 5 - total cost vs eta")
    save_report(f"fig5_noise_{bench_scale.name}", text)
    save_json(
        "fig5_noise", {"elapsed_seconds": elapsed, "sweep": sweep_to_dict(sweep)}
    )

    totals = sweep.table("total")
    # LRFU and Offline see noise-free information: exactly flat curves.
    for flat in ("LRFU", "Offline"):
        series = totals[flat]
        assert max(series) - min(series) < 1e-9, flat

    offline = np.array(totals["Offline"])
    for name, series in totals.items():
        arr = np.array(series)
        assert np.all(arr >= offline - 0.01 * offline), name

    # Online cost at the highest noise exceeds its noise-free cost.
    for name in totals:
        if name.startswith(("RHC", "CHC", "AFHC")):
            assert totals[name][-1] >= totals[name][0] - 1e-9, name

"""Scale=large benchmark: the workload the batched core unlocks.

``N = 500`` SBSs, ``K = 10,000`` contents, ``M = 1,000`` MU classes with a
multiplicity of ~1,000 users per class (~1e6 users total; a class's demand
density is the aggregate of its users' request rates, which is exactly how
the paper's demand model composes). This instance is out of reach for the
per-SBS loop paths: one min-cost-flow ``P1`` solve at ``K = 10,000`` costs
seconds, and Algorithm 1 needs 500 of them per subgradient iteration. The
batched certificate kernel answers all 500 in one vectorized pass, and the
stacked ``P2`` water-fill replaces 500 per-SBS solves with one.

Three legs, each timed into ``BENCH_large.json``:

- ``p2_kernel``: one stacked ``P2`` solve (R = N*T rows, J = 20,000
  columns) under generic positive prices — the overloaded paper regime,
  so rows are bandwidth-bound. A kernel-level A/B on the same row stack
  times the closed-form parametric solve against the legacy 26-iteration
  bisection (``closed_form=False, early_exit=False``) and gates a >= 3x
  speedup plus a >= 5x peak-memory reduction versus the seed kernel's two
  ``(R, J)`` bracket-state arrays (tracemalloc, measured beyond the
  output arrays).
- ``p1_batched``: one ``solve_caching`` over all 500 SBSs with sparse
  hot-set prices, plus the loop path on a small subsample to measure the
  per-SBS cost it replaces (the full loop run is the infeasible case —
  its projected time is reported, not measured).
- ``mini_alg1``: two full subgradient iterations of Algorithm 1 on the
  true demand — every stage (P1, P2, rounding, the fixed-cache oracle)
  at scale.

Opt-in: the whole module skips unless ``REPRO_BENCH_LARGE=1`` (the
scheduled CI job sets it; the quick-scale benches stay the default). The
record carries the batched solve counters and their accounting identity.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.config import RuntimeConfig, resolved_batched_ties
from repro.core.caching_lp import solve_caching
from repro.core.load_balancing import solve_p2
from repro.core.primal_dual import solve_primal_dual
from repro.core.problem import JointProblem
from repro.network import ContentCatalog, MUClass, Network, SmallBaseStation
from repro.obs import Recorder, record_into, run_manifest, write_manifest
from repro.optim.waterfill import waterfill_batch
from repro.perf.solvecache import SolveCache

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="scale=large is opt-in: set REPRO_BENCH_LARGE=1",
)

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 7
NUM_SBS = 500
CLASSES_PER_SBS = 2
NUM_ITEMS = 10_000
USERS_PER_CLASS = 1_000  # class multiplicity -> ~1e6 users
HORIZON = 2
CACHE_SIZE = 12
BETA = 4.0
BANDWIDTH = 2.0  # ~half the mean offered load: the paper's overload regime
HOT_ITEMS = 5
LOOP_SAMPLE = 4  # SBSs measured on the loop path (the full 500 is the
# infeasible case this bench exists to document)

_COUNTERS = (
    "p1_memo_misses",
    "p1_batched_solves",
    "p1_batched_capped",
    "p1_batched_fallbacks",
)
_P2_COUNTERS = ("p2_bw_bound_rows", "p2_bw_closed_form", "p2_bisection_fallbacks")


def _p2_row_stack(problem):
    """The exact SBS-major row stack ``solve_p2`` feeds the kernel.

    Mirrors ``_solve_p2_fast_batched``'s assembly (uncapped: ``caps = lam``)
    so the A/B leg below times the kernel on the true workload rows rather
    than a synthetic stand-in. Every SBS here has the same class count, so
    the stack has no padding columns.
    """
    net = problem.network
    T = problem.horizon
    K = net.num_items
    N = net.num_sbs
    J = CLASSES_PER_SBS * K
    R = N * T
    lam_b = np.zeros((R, J))
    om_b = np.zeros((R, J))
    W_b = np.zeros(R)
    bw_b = np.zeros(R)
    group = np.repeat(np.arange(N, dtype=np.intp), T)
    for n in range(N):
        classes = net.classes_of_sbs[n]
        rows = slice(n * T, (n + 1) * T)
        lam = problem.demand[:, classes, :].reshape(T, -1)
        omega = np.repeat(net.omega_bs[classes], K)
        lam_b[rows] = lam
        om_b[rows] = omega
        W_b[rows] = lam @ omega
        bw_b[rows] = float(net.bandwidths[n])
    return lam_b, om_b, W_b, bw_b, group


def _row_objectives(alloc, lam, omega, mu, W, scale):
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(lam > 0, mu / lam, 0.0)
    u = np.einsum("rj,rj->r", alloc, omega)
    return scale * (W - u) ** 2 + np.einsum("rj,rj->r", slope, alloc)


def _build_workload():
    """Network + demand; densities aggregate ~1e3 users per class."""
    rng = np.random.default_rng(SEED)
    num_classes = NUM_SBS * CLASSES_PER_SBS
    network = Network(
        ContentCatalog(NUM_ITEMS),
        tuple(
            SmallBaseStation(n, CACHE_SIZE, BANDWIDTH, BETA)
            for n in range(NUM_SBS)
        ),
        tuple(
            MUClass(m, m // CLASSES_PER_SBS, float(rng.uniform(0.5, 1.5)))
            for m in range(num_classes)
        ),
    )
    # Zipf(0.8, shift 30) catalog popularity, independently permuted per
    # class; per-class density ~ U[0, 4] is the aggregate of ~1e3 users'
    # individual rates (scaling users and rates jointly leaves the
    # optimization instance unchanged — multiplicity, not magnitude).
    zipf = (np.arange(1, NUM_ITEMS + 1) + 30.0) ** -0.8
    zipf /= zipf.sum()
    pref = np.stack([rng.permutation(zipf) for _ in range(num_classes)])
    density = rng.uniform(0.0, 4.0, size=(HORIZON, num_classes))
    demand = density[:, :, None] * pref[None, :, :]
    return network, JointProblem(network=network, demand=demand), rng


def _counters(recorder: Recorder) -> dict[str, float]:
    return {name: recorder.metrics.counter(name) for name in _COUNTERS}


def test_large_scale(save_report):
    build_started = time.perf_counter()
    network, problem, rng = _build_workload()
    build_seconds = time.perf_counter() - build_started

    # ---- leg 1: one stacked P2 solve under generic positive prices.
    mu_generic = rng.exponential(0.05, size=problem.y_shape)
    p2_recorder = Recorder()
    started = time.perf_counter()
    with record_into(p2_recorder):
        p2 = solve_p2(problem, mu_generic)
    p2_seconds = time.perf_counter() - started
    assert np.isfinite(p2.objective)
    p2_counters = {
        name: p2_recorder.metrics.counter(name) for name in _P2_COUNTERS
    }
    # The overload regime (bandwidth ~ half the offered load) must actually
    # bind, and every bound row must be accounted for: closed-form solve or
    # counted bisection fallback.
    assert p2_counters["p2_bw_bound_rows"] > 0
    assert (
        p2_counters["p2_bw_closed_form"] + p2_counters["p2_bisection_fallbacks"]
        == p2_counters["p2_bw_bound_rows"]
    )

    # ---- leg 1b: kernel-level A/B on the same bandwidth-bound row stack —
    # closed-form parametric solve vs the early-exit bisection reference vs
    # the legacy fixed-depth 26-iteration bisection this PR replaces.
    lam_b, om_b, W_b, bw_b, group = _p2_row_stack(problem)
    # Prices in the same SBS-major layout as the stack.
    mu_b = np.zeros_like(lam_b)
    for n in range(NUM_SBS):
        classes = network.classes_of_sbs[n]
        mu_b[n * HORIZON : (n + 1) * HORIZON] = mu_generic[:, classes, :].reshape(
            HORIZON, -1
        )
    scale = problem.bs_cost.scale
    R, J = lam_b.shape

    ab_recorder = Recorder()
    started = time.perf_counter()
    with record_into(ab_recorder):
        closed_a, closed_u = waterfill_batch(
            lam_b, lam_b, om_b, mu_b, W_b, bw_b, scale, group_ids=group
        )
    closed_seconds = time.perf_counter() - started
    ab_counters = {
        name: ab_recorder.metrics.counter(name) for name in _P2_COUNTERS
    }
    bound_rows = ab_counters["p2_bw_bound_rows"]
    assert bound_rows > 0
    assert (
        ab_counters["p2_bw_closed_form"] + ab_counters["p2_bisection_fallbacks"]
        == bound_rows
    )

    # Peak working set of the closed-form pass, beyond the two output
    # arrays, measured against the seed kernel's floor of two full (R, J)
    # bracket-state arrays: the >= 5x reduction is gated here.
    tracemalloc.start()
    mem_a, mem_u = waterfill_batch(
        lam_b, lam_b, om_b, mu_b, W_b, bw_b, scale, group_ids=group
    )
    _, mem_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    state_bytes = mem_peak - (mem_a.nbytes + mem_u.nbytes)
    seed_floor_bytes = 2 * R * J * 8
    assert state_bytes * 5 <= seed_floor_bytes, (
        f"P2 closed-form state {state_bytes / 1e6:.0f} MB is not >= 5x below "
        f"the seed bracket-array floor {seed_floor_bytes / 1e6:.0f} MB"
    )
    del mem_a, mem_u

    started = time.perf_counter()
    bisect_a, _ = waterfill_batch(
        lam_b, lam_b, om_b, mu_b, W_b, bw_b, scale,
        group_ids=group, closed_form=False,
    )
    bisect_seconds = time.perf_counter() - started

    started = time.perf_counter()
    legacy_a, _ = waterfill_batch(
        lam_b, lam_b, om_b, mu_b, W_b, bw_b, scale,
        group_ids=group, closed_form=False, early_exit=False,
    )
    legacy_seconds = time.perf_counter() - started
    speedup_vs_legacy = legacy_seconds / max(closed_seconds, 1e-9)
    assert speedup_vs_legacy >= 3.0, (
        f"closed form {closed_seconds:.1f}s vs legacy bisection "
        f"{legacy_seconds:.1f}s: {speedup_vs_legacy:.2f}x < 3x"
    )

    # Exactness: the closed form is never worse than either bisection,
    # beyond the 1e-9 relative envelope.
    ob_closed = _row_objectives(closed_a, lam_b, om_b, mu_b, W_b, scale)
    ob_legacy = _row_objectives(legacy_a, lam_b, om_b, mu_b, W_b, scale)
    envelope = 1e-9 * np.maximum(1.0, np.abs(ob_legacy))
    assert not (ob_closed > ob_legacy + envelope).any()
    del bisect_a, legacy_a, closed_a, closed_u

    # ---- leg 2: all-SBS P1 through the batched certificate pass, with
    # sparse hot-set prices (a handful of clearly-priced items per class,
    # the post-warmup shape of the subgradient iterates).
    mu_p1 = np.zeros(problem.y_shape)
    for m in range(network.num_classes):
        hot = rng.choice(NUM_ITEMS, size=HOT_ITEMS, replace=False)
        mu_p1[:, m, hot] = (
            rng.uniform(1.5, 2.5, size=(HORIZON, HOT_ITEMS)) * BETA / HORIZON
        )
    x0 = np.zeros((NUM_SBS, NUM_ITEMS))
    p1_recorder = Recorder()
    started = time.perf_counter()
    with record_into(p1_recorder):
        p1 = solve_caching(
            network, mu_p1, x0, backend="flow", cache=SolveCache()
        )
    p1_seconds = time.perf_counter() - started
    assert np.isfinite(p1.objective)
    p1_counters = _counters(p1_recorder)
    assert p1_counters["p1_batched_solves"] > 0
    assert (
        p1_counters["p1_batched_solves"] + p1_counters["p1_batched_fallbacks"]
        == p1_counters["p1_memo_misses"]
        == NUM_SBS
    )
    # With the tie-aware acceptance on (the default), the relaxed pass plus
    # the exact capped kernel must answer (essentially) the whole stack —
    # the per-SBS flow loop at K = 10,000 is exactly what this scale cannot
    # afford to fall back to.
    if resolved_batched_ties(None):
        assert p1_counters["p1_batched_fallbacks"] <= 0.05 * NUM_SBS, (
            f"{p1_counters['p1_batched_fallbacks']:.0f} of {NUM_SBS} SBSs "
            "fell back to the per-SBS backends with batched_ties on"
        )

    # The loop path on a subsample, to price what the batch replaced. The
    # subnetwork is a prefix slice, so SBS/class ids keep their positions.
    sub = Network(
        network.catalog,
        network.sbss[:LOOP_SAMPLE],
        network.mu_classes[: LOOP_SAMPLE * CLASSES_PER_SBS],
    )
    started = time.perf_counter()
    loop = solve_caching(
        sub,
        mu_p1[:, : LOOP_SAMPLE * CLASSES_PER_SBS, :],
        x0[:LOOP_SAMPLE],
        backend="flow",
        config=RuntimeConfig(batched=False),
    )
    loop_sample_seconds = time.perf_counter() - started
    loop_projected_seconds = loop_sample_seconds / LOOP_SAMPLE * NUM_SBS
    # Same answer, both granularities (the subsample is exactly the first
    # LOOP_SAMPLE coordinates of the batched solve).
    assert np.array_equal(loop.x, p1.x[:, :LOOP_SAMPLE, :])

    # ---- leg 3: two full subgradient iterations of Algorithm 1.
    alg1_recorder = Recorder()
    started = time.perf_counter()
    with record_into(alg1_recorder):
        result = solve_primal_dual(
            problem,
            max_iter=2,
            caching_backend="flow",
            solve_cache=SolveCache(),
            max_seconds=1800.0,  # safety net, not the expected stop
        )
    alg1_seconds = time.perf_counter() - started
    alg1_counters = _counters(alg1_recorder)
    assert alg1_counters["p1_batched_solves"] > 0
    assert (
        alg1_counters["p1_batched_solves"]
        + alg1_counters["p1_batched_fallbacks"]
        == alg1_counters["p1_memo_misses"]
    )
    assert np.isfinite(result.cost.total)
    assert result.lower_bound <= result.cost.total + 1e-6

    payload = {
        "bench": "large",
        "scale": "large",
        "batched": True,
        "batched_ties": resolved_batched_ties(None),
        "bw_closed_form": True,
        "workload": {
            "num_sbs": NUM_SBS,
            "num_items": NUM_ITEMS,
            "num_classes": network.num_classes,
            "users_per_class": USERS_PER_CLASS,
            "users_total": USERS_PER_CLASS * network.num_classes,
            "horizon": HORIZON,
            "cache_size": CACHE_SIZE,
            "bandwidth": BANDWIDTH,
            "beta": BETA,
            "seed": SEED,
        },
        "build_seconds": build_seconds,
        # Top-level *_seconds so `repro bench diff` gates them directly.
        "p2_closed_seconds": closed_seconds,
        "p2_bisect_seconds": bisect_seconds,
        "p2_legacy_seconds": legacy_seconds,
        "solve_counters": {**p1_counters, **ab_counters},
        "p2_kernel": {
            "seconds": p2_seconds,
            "objective": p2.objective,
            "rows": NUM_SBS * HORIZON,
            "columns": CLASSES_PER_SBS * NUM_ITEMS,
            "counters": p2_counters,
        },
        "p2_bw_ab": {
            "rows": R,
            "columns": J,
            "bound_rows": bound_rows,
            "closed_seconds": closed_seconds,
            "bisect_seconds": bisect_seconds,
            "legacy_seconds": legacy_seconds,
            "speedup_vs_legacy": speedup_vs_legacy,
            "speedup_vs_bisect": bisect_seconds / max(closed_seconds, 1e-9),
            "counters": ab_counters,
            "peak_bytes": mem_peak,
            "state_bytes": state_bytes,
            "seed_floor_bytes": seed_floor_bytes,
            "memory_reduction": seed_floor_bytes / max(state_bytes, 1),
        },
        "p1_batched": {
            "seconds": p1_seconds,
            "objective": p1.objective,
            "counters": p1_counters,
            "loop_sample_sbss": LOOP_SAMPLE,
            "loop_sample_seconds": loop_sample_seconds,
            "loop_projected_seconds": loop_projected_seconds,
            "batched_speedup_projected": loop_projected_seconds
            / max(p1_seconds, 1e-9),
        },
        "mini_alg1": {
            "seconds": alg1_seconds,
            "iterations": 2,
            "feasible_cost": result.cost.total,
            "lower_bound": result.lower_bound,
            "counters": alg1_counters,
            "stopped_by_budget": result.stopped_by_budget,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_large.json"
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    manifest = run_manifest(seed=SEED, config=payload["workload"])
    write_manifest(RESULTS_DIR / "BENCH_large.manifest.json", manifest)

    lines = [
        f"scale=large: N={NUM_SBS} SBSs, K={NUM_ITEMS} items, "
        f"~{USERS_PER_CLASS * network.num_classes:,} users",
        f"  build               {build_seconds:8.1f}s",
        f"  P2 stacked kernel   {p2_seconds:8.1f}s   (one solve, "
        f"{NUM_SBS * HORIZON} x {CLASSES_PER_SBS * NUM_ITEMS})",
        f"  P2 bw-bound A/B     {closed_seconds:8.1f}s   closed vs "
        f"{bisect_seconds:.1f}s early-exit, {legacy_seconds:.1f}s legacy "
        f"({speedup_vs_legacy:.1f}x); state {state_bytes / 1e6:.0f} MB vs "
        f"seed floor {seed_floor_bytes / 1e6:.0f} MB "
        f"({seed_floor_bytes / max(state_bytes, 1):.1f}x)",
        f"  P1 batched (500)    {p1_seconds:8.1f}s   vs projected loop "
        f"{loop_projected_seconds:.0f}s "
        f"({loop_projected_seconds / max(p1_seconds, 1e-9):.0f}x)",
        f"  Alg.1, 2 iterations {alg1_seconds:8.1f}s   "
        f"cost={result.cost.total:.1f} lb={result.lower_bound:.1f}",
    ]
    save_report("large_scale", "\n".join(lines))
    print(f"\n[saved to {path}]")

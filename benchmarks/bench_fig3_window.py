"""Fig. 3 — impact of the prediction window ``w`` on the online algorithms.

Panels: (a) total operating cost, (b) number of cache replacements, as the
window grows. Expected shape: the online algorithms move toward the offline
optimum as ``w`` grows (paper: "when the system has more prediction
information ... the online algorithms perform better").
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import render_sweep_table, sweep_to_dict, window_sweep


def test_fig3_window_sweep(benchmark, bench_scale, save_report, save_json):
    started = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: window_sweep(
            bench_scale.windows,
            seeds=bench_scale.seeds,
            horizon=bench_scale.horizon,
        ),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - started

    text = "\n\n".join(
        (
            render_sweep_table(sweep, "total", title="Fig 3a - total cost vs window"),
            render_sweep_table(
                sweep, "replacements", title="Fig 3b - # replacements vs window"
            ),
        )
    )
    save_report(f"fig3_window_{bench_scale.name}", text)
    save_json(
        "fig3_window", {"elapsed_seconds": elapsed, "sweep": sweep_to_dict(sweep)}
    )

    totals = sweep.table("total")
    offline = np.array(totals["Offline"])
    # Offline ignores w: flat series (cached invariant).
    assert offline.max() - offline.min() < 1e-6 * offline.mean()

    for name in ("RHC", "CHC", "AFHC"):
        series = np.array(totals[name])
        # Above offline at every w...
        assert np.all(series >= offline - 0.01 * offline), name
        # ...and the largest window is at least as good as the smallest
        # (the paper's trend, with slack for seed noise).
        assert series[-1] <= series[0] * 1.02, name

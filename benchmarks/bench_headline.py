"""Section V-C(1) — the headline comparison at ``beta = 50``.

The paper reports RHC/CHC/AFHC reducing total cost by 27%/20%/17% versus
LRFU, with cost ratios to offline of 1.02/1.08/1.11 (LRFU: 1.30). The
asserted reproduction target is the *ordering and sidedness* (see
EXPERIMENTS.md for the measured factors): offline <= RHC <= CHC/AFHC <=
LRFU, online savings strictly positive.

This bench also doubles as the parallel-runtime regression check: it runs
the comparison serially and again through a 4-worker process pool, asserts
the cost metrics are bit-identical, and records both wall times (plus the
speedup and host core count) in ``BENCH_headline.json``. The >= 2x speedup
assertion only fires on hosts with at least 4 cores — on smaller machines
the parallel run is still checked for correctness and its timing recorded.
"""

from __future__ import annotations

import os
import time

from repro.api import headline_comparison, render_headline_table, sweep_to_dict

PARALLEL_WORKERS = 4


def _cost_metrics(sweep):
    """All recorded metrics except the timing measurement."""
    return {
        name: {m: v for m, v in vals.items() if m != "wall_time"}
        for name, vals in sweep.points[0].metrics.items()
    }


def test_headline_beta50(benchmark, bench_scale, save_report, save_json):
    kwargs = dict(
        beta=50.0, seeds=bench_scale.seeds, horizon=bench_scale.horizon
    )

    serial_started = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: headline_comparison(**kwargs), rounds=1, iterations=1
    )
    serial_seconds = time.perf_counter() - serial_started

    parallel_started = time.perf_counter()
    parallel = headline_comparison(
        executor=f"process:{PARALLEL_WORKERS}", **kwargs
    )
    parallel_seconds = time.perf_counter() - parallel_started

    # Determinism contract: the executor must not change a single number.
    assert _cost_metrics(parallel) == _cost_metrics(sweep)

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    cpu_count = os.cpu_count() or 1
    save_report(
        f"headline_beta50_{bench_scale.name}", render_headline_table(sweep)
    )
    save_json(
        "headline",
        {
            "beta": 50.0,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "workers": PARALLEL_WORKERS,
            "executor": f"process:{PARALLEL_WORKERS}",
            "cpu_count": cpu_count,
            "costs_identical": True,
            "sweep": sweep_to_dict(sweep),
        },
    )
    print(
        f"\nserial {serial_seconds:.1f}s, process:{PARALLEL_WORKERS} "
        f"{parallel_seconds:.1f}s -> {speedup:.2f}x on {cpu_count} cores"
    )
    if cpu_count >= PARALLEL_WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x with {PARALLEL_WORKERS} workers on "
            f"{cpu_count} cores, got {speedup:.2f}x"
        )

    metrics = sweep.points[0].metrics
    totals = {name: vals["total"] for name, vals in metrics.items()}
    offline = totals["Offline"]
    lrfu = totals["LRFU"]
    rhc = next(v for k, v in totals.items() if k.startswith("RHC"))
    chc = next(v for k, v in totals.items() if k.startswith("CHC"))
    afhc = next(v for k, v in totals.items() if k.startswith("AFHC"))

    # Offline is the lower bound; LRFU the worst of the comparison set
    # (up to a small seed-noise slack for the online/LRFU comparison).
    for v in (rhc, chc, afhc, lrfu):
        assert v >= offline - 0.01 * offline
    assert lrfu >= max(rhc, chc, afhc) - 0.02 * lrfu

    # The best online algorithm saves versus LRFU.
    assert min(rhc, chc, afhc) < lrfu

    # RHC is (near-)closest to offline among the online algorithms.
    assert rhc <= min(chc, afhc) * 1.05

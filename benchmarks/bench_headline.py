"""Section V-C(1) — the headline comparison at ``beta = 50``.

The paper reports RHC/CHC/AFHC reducing total cost by 27%/20%/17% versus
LRFU, with cost ratios to offline of 1.02/1.08/1.11 (LRFU: 1.30). The
asserted reproduction target is the *ordering and sidedness* (see
EXPERIMENTS.md for the measured factors): offline <= RHC <= CHC/AFHC <=
LRFU, online savings strictly positive.

This bench also doubles as the parallel-runtime regression check: it runs
the comparison serially — recording the incremental re-solve counters into
``solve_counters`` — and again through a worker pool, asserting the cost
metrics are bit-identical. Worker count is clamped to the host's cores; on
a single-core host the process pool would only measure IPC overhead, so
the identity check runs on a 2-thread pool instead and the record carries
a ``parallel_skipped`` explanation. Timings, counters, and the speedup
land in ``BENCH_headline.json`` — diffable via ``repro bench diff``. The
>= 2x speedup assertion only fires on hosts with at least 4 cores.
"""

from __future__ import annotations

import os
import time

from repro.api import (
    Recorder,
    headline_comparison,
    record_into,
    render_headline_table,
    sweep_to_dict,
)
from repro.config import (
    resolved_batched,
    resolved_batched_ties,
    resolved_bw_closed_form,
    resolved_incremental,
)

PARALLEL_WORKERS = 4

#: Counters snapshotted into the bench record (unlabeled totals).
_SOLVE_COUNTERS = (
    "p1_memo_hits",
    "p1_memo_misses",
    "p1_batched_solves",
    "p1_batched_capped",
    "p1_batched_fallbacks",
    "p1_quant_memo_hits",
    "flow_warm_resumes",
    "flow_warm_bailouts",
    "flow_warm_disabled_keys",
    "p2_bw_bound_rows",
    "p2_bw_closed_form",
    "p2_bisection_fallbacks",
)


def _cost_metrics(sweep):
    """All recorded metrics except the timing measurement."""
    return {
        name: {m: v for m, v in vals.items() if m != "wall_time"}
        for name, vals in sweep.points[0].metrics.items()
    }


def _solve_counters(recorder: Recorder) -> dict[str, float]:
    counters = {
        name: recorder.metrics.counter(name) for name in _SOLVE_COUNTERS
    }
    lookups = counters["p1_memo_hits"] + counters["p1_memo_misses"]
    counters["p1_memo_hit_rate"] = (
        counters["p1_memo_hits"] / lookups if lookups else 0.0
    )
    return counters


def test_headline_beta50(benchmark, bench_scale, save_report, save_json):
    kwargs = dict(
        beta=50.0, seeds=bench_scale.seeds, horizon=bench_scale.horizon
    )
    cpu_count = os.cpu_count() or 1
    # A pool wider than the host only adds oversubscription noise; on a
    # single-core host even a 2-process pool measures nothing but IPC, so
    # the determinism check falls back to threads.
    workers = max(2, min(PARALLEL_WORKERS, cpu_count))
    executor = f"process:{workers}" if cpu_count > 1 else "thread:2"

    recorder = Recorder()

    def serial_leg():
        with record_into(recorder):
            return headline_comparison(**kwargs)

    serial_started = time.perf_counter()
    sweep = benchmark.pedantic(serial_leg, rounds=1, iterations=1)
    serial_seconds = time.perf_counter() - serial_started

    parallel_started = time.perf_counter()
    parallel = headline_comparison(executor=executor, **kwargs)
    parallel_seconds = time.perf_counter() - parallel_started

    # Determinism contract: the executor must not change a single number.
    assert _cost_metrics(parallel) == _cost_metrics(sweep)

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    save_report(
        f"headline_beta50_{bench_scale.name}", render_headline_table(sweep)
    )
    payload = {
        "beta": 50.0,
        # ``batched`` lives at the top level on purpose: it enters the
        # config digest, so ``repro bench diff`` tells a batched-strategy
        # change apart from a workload change instead of gating wall-times
        # across them.
        "batched": resolved_batched(None),
        # ``bw_closed_form`` is a runtime *strategy* like ``incremental``:
        # it is excluded from the diff config digest, so a closed-form
        # off/on pair diffs as the same workload and ``--gate-costs``
        # checks the solutions really are bit-identical across kernels.
        "bw_closed_form": resolved_bw_closed_form(None),
        # ``batched_ties`` follows the same strategy-field pattern: the
        # ties off/on pair shares a digest, so CI's A/B gates both the
        # costs (bit-identical by the canonical tie discipline) and the
        # wall time.
        "batched_ties": resolved_batched_ties(None),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "workers": workers,
        "executor": executor,
        "cpu_count": cpu_count,
        "incremental": resolved_incremental(None),
        "solve_counters": _solve_counters(recorder),
        "costs_identical": True,
        "sweep": sweep_to_dict(sweep),
    }
    if cpu_count == 1:
        payload["parallel_skipped"] = (
            "single-core host: a process pool would only measure IPC "
            "overhead, so the identity leg ran on thread:2 and its timing "
            "is not a parallelism measurement"
        )
    save_json("headline", payload)
    print(
        f"\nserial {serial_seconds:.1f}s, {executor} "
        f"{parallel_seconds:.1f}s -> {speedup:.2f}x on {cpu_count} cores"
    )
    if cpu_count >= PARALLEL_WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x with {workers} workers on "
            f"{cpu_count} cores, got {speedup:.2f}x"
        )

    metrics = sweep.points[0].metrics
    totals = {name: vals["total"] for name, vals in metrics.items()}
    offline = totals["Offline"]
    lrfu = totals["LRFU"]
    rhc = next(v for k, v in totals.items() if k.startswith("RHC"))
    chc = next(v for k, v in totals.items() if k.startswith("CHC"))
    afhc = next(v for k, v in totals.items() if k.startswith("AFHC"))

    # Offline is the lower bound; LRFU the worst of the comparison set
    # (up to a small seed-noise slack for the online/LRFU comparison).
    for v in (rhc, chc, afhc, lrfu):
        assert v >= offline - 0.01 * offline
    assert lrfu >= max(rhc, chc, afhc) - 0.02 * lrfu

    # The best online algorithm saves versus LRFU.
    assert min(rhc, chc, afhc) < lrfu

    # RHC is (near-)closest to offline among the online algorithms.
    assert rhc <= min(chc, afhc) * 1.05

    # With the incremental layer on, the memo must actually be exercised
    # (the best-dual recovery and stall re-anchor guarantee hits on the
    # online legs).
    if payload["incremental"]:
        assert payload["solve_counters"]["p1_memo_hits"] > 0

    # With the batched core on, every memo miss must be accounted for by
    # the relaxation pass: either answered there or counted as a fallback
    # to the per-SBS backends. (Misses are only counted when the memo is
    # active, so the identity needs the incremental layer too.)
    if payload["batched"] and payload["incremental"]:
        counters = payload["solve_counters"]
        assert (
            counters["p1_batched_solves"] + counters["p1_batched_fallbacks"]
            == counters["p1_memo_misses"]
        )
        # Tie-aware acceptance closes the fallback storm: the paper's
        # uniform-cost scenarios are tie-degenerate by construction, and
        # with the canonical discipline those rows are accepted, not
        # punted to the per-SBS loop. Gate the rate on the quick scale
        # (the scale CI runs and the one the threshold was measured on).
        if payload["batched_ties"] and bench_scale.name == "quick":
            misses = counters["p1_memo_misses"]
            rate = counters["p1_batched_fallbacks"] / misses if misses else 0.0
            assert rate <= 0.05, (
                f"batched P1 fallback rate {rate:.3f} > 0.05 "
                f"({counters['p1_batched_fallbacks']:.0f} of {misses:.0f} "
                "misses fell back to the per-SBS backends)"
            )

    # Every bandwidth-bound P2 row is accounted for: answered by the
    # closed-form parametric solve or counted as a bisection fallback.
    counters = payload["solve_counters"]
    assert (
        counters["p2_bw_closed_form"] + counters["p2_bisection_fallbacks"]
        == counters["p2_bw_bound_rows"]
    )

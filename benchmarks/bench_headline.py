"""Section V-C(1) — the headline comparison at ``beta = 50``.

The paper reports RHC/CHC/AFHC reducing total cost by 27%/20%/17% versus
LRFU, with cost ratios to offline of 1.02/1.08/1.11 (LRFU: 1.30). The
asserted reproduction target is the *ordering and sidedness* (see
EXPERIMENTS.md for the measured factors): offline <= RHC <= CHC/AFHC <=
LRFU, online savings strictly positive.
"""

from __future__ import annotations

from repro.sim.experiment import headline_comparison
from repro.sim.report import render_headline_table


def test_headline_beta50(benchmark, bench_scale, save_report):
    sweep = benchmark.pedantic(
        lambda: headline_comparison(
            beta=50.0,
            seeds=bench_scale.seeds,
            horizon=bench_scale.horizon,
        ),
        rounds=1,
        iterations=1,
    )
    save_report(
        f"headline_beta50_{bench_scale.name}", render_headline_table(sweep)
    )

    metrics = sweep.points[0].metrics
    totals = {name: vals["total"] for name, vals in metrics.items()}
    offline = totals["Offline"]
    lrfu = totals["LRFU"]
    rhc = next(v for k, v in totals.items() if k.startswith("RHC"))
    chc = next(v for k, v in totals.items() if k.startswith("CHC"))
    afhc = next(v for k, v in totals.items() if k.startswith("AFHC"))

    # Offline is the lower bound; LRFU the worst of the comparison set
    # (up to a small seed-noise slack for the online/LRFU comparison).
    for v in (rhc, chc, afhc, lrfu):
        assert v >= offline - 0.01 * offline
    assert lrfu >= max(rhc, chc, afhc) - 0.02 * lrfu

    # The best online algorithm saves versus LRFU.
    assert min(rhc, chc, afhc) < lrfu

    # RHC is (near-)closest to offline among the online algorithms.
    assert rhc <= min(chc, afhc) * 1.05

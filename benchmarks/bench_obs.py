"""Telemetry guard bench: recording overhead and cross-executor determinism.

Two contracts of `repro.obs`, asserted at benchmark scale:

1. **Overhead.** Recording a full trace of the headline comparison costs
   < 5% wall time over the unrecorded run (plus a small absolute slack so
   sub-second runs don't flake on scheduler noise). Disabled, the
   instrumentation is a ContextVar read per hook — unmeasurable here, but
   the unrecorded run below *is* the instrumented-but-disabled path, so
   the baseline itself certifies it.
2. **Determinism.** The same seeded run records byte-identical JSONL
   traces (equal sha256 digests) on the serial, thread, and process
   executors.

Results land in ``BENCH_obs.json`` for regression tracking.
"""

from __future__ import annotations

import time

from repro.api import LRFU, RHC, Recorder, build_scenario, record_into, run_policies
from repro.obs import trace_digest, validate_trace

#: Allowed enabled-telemetry overhead: 5% relative plus absolute jitter slack.
MAX_OVERHEAD_REL = 0.05
ABS_SLACK_SECONDS = 0.25

EXECUTORS = ("serial", "thread:2", "process:2")


def _policies():
    return [RHC(window=5), LRFU()]


def _run(scenario, recorder=None, executor=None):
    started = time.perf_counter()
    with record_into(recorder) if recorder is not None else _null():
        results = run_policies(scenario, _policies(), executor=executor)
    return results, time.perf_counter() - started


def _null():
    from contextlib import nullcontext

    return nullcontext()


def test_obs_overhead_and_determinism(bench_scale, save_json):
    scenario = build_scenario(seed=bench_scale.seeds[0], horizon=bench_scale.horizon)

    # Warm-up: populate solver caches / imports outside the timed region.
    _run(build_scenario(seed=bench_scale.seeds[0], horizon=4))

    # Interleave baseline/recorded reps and compare the minima: host load
    # drifts more between reps than telemetry costs, so paired sampling is
    # the only way the 5% bound measures the instrumentation, not the VM.
    baseline_times: list[float] = []
    recorded_times: list[float] = []
    baseline_results = recorded_results = None
    recorder = Recorder()
    for _ in range(3):
        baseline_results, seconds = _run(scenario)
        baseline_times.append(seconds)
        recorder = Recorder()
        recorded_results, seconds = _run(scenario, recorder=recorder)
        recorded_times.append(seconds)
    baseline_seconds = min(baseline_times)
    recorded_seconds = min(recorded_times)
    events = recorder.events
    assert validate_trace(events) > 0

    # The solver stack now streams quantile sketches (solve gap/iterations)
    # through the same recorder; they must be populated, and the overhead
    # budget below covers the sketch path since these reps recorded them.
    gap_sketch = recorder.metrics.sketch("solve_gap")
    assert gap_sketch is not None and gap_sketch.count > 0
    sketch_names = {key[0] for key in recorder.metrics.items()["sketches"]}
    assert {"solve_gap", "solve_iterations"} <= sketch_names

    # Recording must not perturb the results.
    assert set(recorded_results) == set(baseline_results)
    for name in baseline_results:
        assert (
            recorded_results[name].cost.total == baseline_results[name].cost.total
        )

    budget = baseline_seconds * (1.0 + MAX_OVERHEAD_REL) + ABS_SLACK_SECONDS
    assert recorded_seconds <= budget, (
        f"telemetry overhead too high: {recorded_seconds:.2f}s recorded vs "
        f"{baseline_seconds:.2f}s baseline (budget {budget:.2f}s)"
    )

    # Cross-executor byte-identity of the recorded trace.
    digests = {}
    for executor in EXECUTORS:
        ex_recorder = Recorder()
        with record_into(ex_recorder):
            run_policies(scenario, _policies(), executor=executor)
        digests[executor] = trace_digest(ex_recorder.events)
    assert len(set(digests.values())) == 1, digests

    overhead = recorded_seconds / max(baseline_seconds, 1e-9) - 1.0
    save_json(
        "obs",
        {
            "horizon": bench_scale.horizon,
            "seed": bench_scale.seeds[0],
            "baseline_seconds": baseline_seconds,
            "recorded_seconds": recorded_seconds,
            "overhead_fraction": overhead,
            "max_overhead_rel": MAX_OVERHEAD_REL,
            "abs_slack_seconds": ABS_SLACK_SECONDS,
            "events": len(events),
            "sketches": sorted(sketch_names),
            "trace_digest": digests["serial"],
            "executors_checked": list(EXECUTORS),
        },
    )

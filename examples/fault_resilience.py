"""Fault injection: how gracefully do the controllers degrade?

Injects the acceptance fault scenario — one SBS outage followed by a 50%
bandwidth-degradation window — into a small paper-style scenario and
compares the online controllers and LRFU with and without the faults:
total cost inflation, cost during the fault windows, and how many slots
each policy needs after the last fault ends to re-join its fault-free
cost trace.

Run:
    python examples/fault_resilience.py
"""

from __future__ import annotations

from repro.api import (
    FaultSchedule,
    assert_feasible_under_faults,
    build_scenario,
    default_fault_schedule,
    inject_faults,
    render_resilience_table,
    run_resilience,
)

HORIZON = 24


def main() -> None:
    schedule = default_fault_schedule(HORIZON)
    print("fault schedule:")
    for event in schedule.events:
        print(f"  {event}")

    report = run_resilience(
        build_scenario(seed=1, horizon=HORIZON), schedule, window=5
    )
    print()
    print(render_resilience_table(report))

    # Every faulted trajectory satisfies the *effective* (degraded)
    # constraints exactly; the audit raises on any violation.
    faulted = inject_faults(build_scenario(seed=1, horizon=HORIZON), schedule)
    for name, result in report.faulted.items():
        slacks = assert_feasible_under_faults(faulted, result.x, result.y)
        worst = max(slacks.values())
        print(f"{name}: zero violations (worst slack {worst:.2e})")

    # Schedules are plain data: seedable, composable, JSON round-trippable.
    randomized = FaultSchedule.random(
        seed=7, horizon=HORIZON, num_sbs=1, surges=1
    )
    print(f"\na seeded random schedule has {len(randomized.events)} events;")
    print("same seed -> same schedule, so every faulted run is reproducible.")


if __name__ == "__main__":
    main()

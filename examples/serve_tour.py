"""A tour of the live serving runtime (`repro.serve`).

Four stops:

1. serve a deterministic open-loop stream with the controller re-solving
   live in the background (queue admission: atomic plan swaps);
2. prove determinism — a second same-seed run reproduces the decision
   log byte for byte;
3. race the routing strategies on one shared stream and compare their
   realized cost against the paper's optimal fractional split;
4. overload a deliberately slow solver under shed admission and watch
   admission control drop requests instead of queueing them forever.

Run:
    python examples/serve_tour.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import (
    build_scenario,
    open_loop_requests,
    render_serve_report,
    run_serve,
)

RPS = 120.0
SLOT_SECONDS = 0.1


def main() -> None:
    scenario = build_scenario(seed=7, horizon=10)

    # --- 1. live serving with background re-solves --------------------
    report = run_serve(
        scenario, rps=RPS, slot_seconds=SLOT_SECONDS, seed=7, window=4
    )
    print(render_serve_report(report))
    assert all(d.plan_slot == d.slot for d in report.decisions)
    print("queue admission: every decision used its own slot's plan\n")

    # --- 2. determinism: same seed, same bytes ------------------------
    again = run_serve(
        scenario, rps=RPS, slot_seconds=SLOT_SECONDS, seed=7, window=4
    )
    assert again.digest == report.digest
    print(f"re-run digest matches: {report.digest[:16]}... (byte-identical log)\n")

    # --- 3. strategy race on one shared stream ------------------------
    stream = open_loop_requests(
        scenario, rps=RPS, slot_seconds=SLOT_SECONDS, seed=7
    )
    print(f"{'strategy':<18} {'hit rate':>8} {'offload':>8} {'cost':>10}")
    for name in ("optimal-y", "round-robin", "least-connections", "health-score"):
        r = run_serve(
            scenario,
            strategy=name,
            slot_seconds=SLOT_SECONDS,
            window=4,
            requests=stream,
        )
        print(
            f"{name:<18} {r.hit_rate:>8.1%} {r.offload_ratio:>8.1%} "
            f"{r.cost.total:>10.1f}"
        )
    print("optimal-y paces requests to the paper's fractional split y\n")

    # --- 4. overload under shed admission -----------------------------
    net = scenario.network

    def slow_solver(slot: int, x_prev: np.ndarray):
        time.sleep(3 * SLOT_SECONDS)  # slower than the slot clock
        x = np.zeros((net.num_sbs, net.num_items))
        x[:, 0] = 1.0
        return x, np.full((net.num_classes, net.num_items), 0.5)

    overloaded = run_serve(
        scenario,
        rps=RPS,
        slot_seconds=SLOT_SECONDS,
        seed=7,
        admission="shed",
        queue_depth=8,
        pace=True,
        solve_fn=slow_solver,
    )
    print(
        f"shed admission under a too-slow solver: {overloaded.shed} shed, "
        f"{overloaded.decided} decided, "
        f"{overloaded.plan_swaps_dropped} stale plan swaps"
    )
    print("the request path stays latency-bounded; the log records the loss")


if __name__ == "__main__":
    main()

"""Telemetry tour: record a faulted run, export it, render the dashboard.

Walks the full `repro.obs` loop on a small faulted scenario:

1. attach a :class:`repro.api.Recorder` with ``record_into`` and run the
   online controllers through an SBS outage + bandwidth degradation;
2. write the JSONL event trace and the reproducibility manifest (seed,
   config hash, package versions, fault-schedule digest);
3. export the metric registry as a Prometheus text snapshot and the
   per-slot costs as CSV;
4. render the ASCII dashboard — the same view as
   ``repro obs report <trace>``.

Run:
    python examples/telemetry_tour.py
"""

from __future__ import annotations

from pathlib import Path

from repro.api import (
    LRFU,
    RHC,
    Recorder,
    build_scenario,
    compare_policies,
    default_fault_schedule,
    inject_faults,
    read_trace,
    record_into,
    render_trace_dashboard,
    run_manifest,
    write_manifest,
    write_trace,
)
from repro.obs import manifest_path_for, prometheus_snapshot, slot_series_csv

HORIZON = 24
SEED = 1
OUT_DIR = Path(__file__).parent / "out"


def main() -> None:
    schedule = default_fault_schedule(HORIZON)
    scenario = inject_faults(build_scenario(seed=SEED, horizon=HORIZON), schedule)

    # 1. Record: everything inside the block lands in the recorder —
    #    per-slot engine events, window solves, fault edges, reroutes.
    recorder = Recorder()
    with record_into(recorder):
        results = compare_policies(scenario, [RHC(window=5), LRFU()])

    for name, result in sorted(results.items()):
        print(f"{name:<10} total={result.cost.total:10.1f}")
    print(f"\nrecorded {len(recorder.events)} events")

    # 2. Export: JSONL trace + manifest. The manifest digests the config
    #    and the fault schedule, so a replayed run can prove it matches.
    trace_path = write_trace(OUT_DIR / "faulted.jsonl", recorder)
    manifest = run_manifest(
        seed=SEED,
        config={"horizon": HORIZON, "window": 5, "policies": ["RHC", "LRFU"]},
        events=recorder.events,
        fault_schedule=schedule.to_dict(),
    )
    write_manifest(manifest_path_for(trace_path), manifest)
    print(f"trace:    {trace_path}")
    print(f"manifest: {manifest_path_for(trace_path)}")
    print(f"digest:   {manifest['trace']['digest'][:16]}...")

    # 3. Metrics: counters/histograms in Prometheus text form, slot costs
    #    as CSV for spreadsheets/pandas.
    (OUT_DIR / "metrics.prom").write_text(prometheus_snapshot(recorder.metrics))
    (OUT_DIR / "slots.csv").write_text(slot_series_csv(recorder.events))
    print(f"metrics:  {OUT_DIR / 'metrics.prom'}")
    print(f"csv:      {OUT_DIR / 'slots.csv'}")

    # 4. Dashboard: per-slot cost per policy plus fault/solve summary —
    #    read back from disk to prove the round trip.
    print()
    print(render_trace_dashboard(read_trace(trace_path)))


if __name__ == "__main__":
    main()

"""Plugging in a different operating-cost model.

The paper's representative cost is quadratic in the aggregate weighted load
(Eqs. 5-6) but only requires a non-decreasing convex function; it cites the
linear base-station energy model of Arnold et al. [23] as the alternative.
This example runs the same scenario under both cost shapes and shows how
the *shape* changes the optimal behaviour: under a linear cost only the
total offloaded weight matters, so caching pressure is uniform; under the
quadratic cost, shaving peaks is disproportionately valuable.

Run:
    python examples/custom_cost.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    LinearOperatingCost,
    OfflineOptimal,
    QuadraticOperatingCost,
    Scenario,
    diurnal_demand,
    evaluate_plan,
    single_cell_network,
)


def main() -> None:
    rng = np.random.default_rng(21)
    network = single_cell_network(
        num_items=10,
        cache_size=3,
        bandwidth=6.0,
        replacement_cost=15.0,
        omega_bs=rng.uniform(0.2, 1.0, 8),
    )
    demand = diurnal_demand(
        24, 8, 10, rng=rng, period=24, peak_to_trough=4.0, density_range=(0.0, 2.5)
    )

    for label, cost in (
        ("quadratic (paper Eq. 5)", QuadraticOperatingCost()),
        ("linear (Arnold et al. [23])", LinearOperatingCost(scale=50.0)),
    ):
        scenario = Scenario(network=network, demand=demand, bs_cost=cost)
        result = evaluate_plan(
            scenario, OfflineOptimal(max_iter=100).plan(scenario), policy_name=label
        )
        per_slot = result.per_slot_total
        peak_share = float(per_slot.max() / max(per_slot.sum(), 1e-9))
        print(f"{label}")
        print(
            f"   total={result.cost.total:9.1f}  replacements="
            f"{result.cost.replacements:3d}  peak-slot share={peak_share:.1%}"
        )
        bars = (per_slot / per_slot.max() * 30).astype(int)
        for t in (6, 12, 18):
            print(f"   slot {t:2d} cost {'*' * bars[t]}")
    print(
        "\nUnder the quadratic cost the optimizer works hardest at the"
        "\ndiurnal peak; under the linear cost every offloaded unit is"
        "\nworth the same wherever it lands."
    )


if __name__ == "__main__":
    main()

"""A tour of the live SLO telemetry layer (`repro.obs`).

Five stops:

1. streaming quantile sketches — bounded relative error, exact extrema,
   and sharded merges that serialize byte-identically to a serial run;
2. an instrumented serve run — the report's SLO block, the
   decision-latency sketch, and plan-swap lag + solver stage timers;
3. the live HTTP surface — poll /metrics and /slo while a paced serve
   is in flight, and render one `repro obs top` dashboard frame;
4. the determinism contract — telemetry on vs off, same decision digest;
5. burn an impossible SLO, then diagnose the recorded trace post mortem
   the way `repro obs analyze` does.

Run:
    python examples/live_telemetry_tour.py
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from repro.api import (
    QuantileSketch,
    Recorder,
    analyze_trace,
    build_scenario,
    record_into,
    render_diagnosis,
    render_top_frame,
    run_serve,
)

METRICS_PORT = 19109
SLOT_SECONDS = 0.25


def main() -> None:
    scenario = build_scenario(seed=7, horizon=8)

    # --- 1. streaming quantile sketches -------------------------------
    # Integer-valued floats: sums are exact, so sharded merges are
    # byte-identical regardless of observation order.
    values = [float(1 + (i * 37) % 100) for i in range(5000)]
    serial = QuantileSketch()
    for v in values:
        serial.observe(v)
    exact_p99 = sorted(values)[int(0.99 * len(values)) - 1]
    est_p99 = serial.quantile(0.99)
    assert exact_p99 <= est_p99 <= exact_p99 * (1 + serial.relative_error)
    print(
        f"sketch p99 {est_p99:.2f} vs exact {exact_p99:.2f} "
        f"(guaranteed within {serial.relative_error:.2%})"
    )

    shards = [QuantileSketch() for _ in range(4)]
    for i, v in enumerate(values):
        shards[i % 4].observe(v)
    merged = QuantileSketch()
    for shard in shards:
        merged.merge(shard)
    assert json.dumps(merged.to_dict()) == json.dumps(serial.to_dict())
    print("4-way sharded merge serializes byte-identically to serial\n")

    # --- 2. an instrumented serve run ---------------------------------
    recorder = Recorder()
    with record_into(recorder):
        report = run_serve(
            scenario,
            rps=150.0,
            slot_seconds=0.05,
            seed=7,
            window=3,
            max_requests=120,
            slo="p99_decision_us<200000,shed_ratio<0.01",
        )
    slo = report.to_dict()["slo"]
    print(
        f"decision latency p50/p95/p99: {slo['decision_p50_us']:.0f}/"
        f"{slo['decision_p95_us']:.0f}/{slo['decision_p99_us']:.0f} us, "
        f"shed ratio {slo['shed_ratio']:.1%}, alerts {slo['alerts']}"
    )
    sketch = recorder.metrics.sketch("serve_decision_seconds")
    assert sketch is not None and sketch.count == report.decided
    swaps = [e for e in recorder.events if e.kind == "plan_swap"]
    timed = [e for e in swaps if "solve_total_seconds" in e.data]
    print(
        f"the ambient recorder saw every decision ({sketch.count}) plus "
        f"{len(swaps)} plan swaps ({len(timed)} with solver stage timers)\n"
    )

    # --- 3. the live HTTP surface -------------------------------------
    def serve_live() -> None:
        run_serve(
            scenario,
            rps=150.0,
            slot_seconds=SLOT_SECONDS,
            seed=7,
            window=3,
            pace=True,
            metrics_port=METRICS_PORT,
            slo="p99_decision_us<200000,shed_ratio<0.01",
        )

    worker = threading.Thread(target=serve_live)
    worker.start()
    time.sleep(4 * SLOT_SECONDS)  # let a few slots publish snapshots
    base = f"http://127.0.0.1:{METRICS_PORT}"
    with urllib.request.urlopen(base + "/metrics", timeout=5.0) as resp:
        text = resp.read().decode("utf-8")
    assert "serve_requests_total" in text
    with urllib.request.urlopen(base + "/slo", timeout=5.0) as resp:
        payload = json.loads(resp.read().decode("utf-8"))
    print(f"/metrics exposes {len(text.splitlines())} Prometheus lines; "
          f"/slo at slot {payload['slot']}:")
    print(render_top_frame([payload]))
    worker.join()
    print()

    # --- 4. telemetry never changes the decision log ------------------
    def run_once(**kwargs):
        return run_serve(
            scenario,
            rps=150.0,
            slot_seconds=0.05,
            seed=7,
            window=3,
            max_requests=120,
            **kwargs,
        )

    plain = run_once()
    live = run_once(metrics_port=0, slo="p99_decision_us<200000")
    assert plain.digest == live.digest
    print(f"digest parity, telemetry on vs off: {plain.digest[:16]}...\n")

    # --- 5. burn an SLO, then diagnose the trace ----------------------
    burned = Recorder()
    with record_into(burned):
        report = run_once(slo="p99_decision_us<0.001")  # sub-nanosecond p99
    assert report.slo_alerts > 0
    diagnosis = analyze_trace(burned.events)
    print(render_diagnosis(diagnosis))
    kinds = {f.kind for f in diagnosis.findings}
    assert "slo_burn" in kinds
    print("\nthe post-mortem pinpoints the burn windows deterministically")


if __name__ == "__main__":
    main()

"""Fluid plan, discrete reality: replaying Poisson request traces.

The optimization model treats demand as a fluid rate. This example samples
an integer Poisson request trace from the same rates, replays the offline
optimal and LRFU plans against it request by request (integer bandwidth,
cache-miss spills), and compares fluid predictions with realized discrete
metrics — hit ratio, offload ratio, and cost.

Run:
    python examples/trace_replay.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    LRFU,
    OfflineOptimal,
    Scenario,
    compute_edge_metrics,
    evaluate_plan,
    paper_demand,
    replay_plan,
    sample_poisson_trace,
    single_cell_network,
)


def main() -> None:
    rng = np.random.default_rng(13)
    network = single_cell_network(
        num_items=12,
        cache_size=4,
        bandwidth=15.0,
        replacement_cost=20.0,
        omega_bs=rng.uniform(0.2, 1.0, 8),
    )
    demand = paper_demand(25, 8, 12, rng=rng, density_range=(1.0, 5.0))
    scenario = Scenario(network=network, demand=demand)
    trace = sample_poisson_trace(demand, rng=rng)
    print(f"sampled {trace.counts.sum()} requests over {trace.horizon} slots\n")

    for name, policy in (("Offline", OfflineOptimal(max_iter=100)), ("LRFU", LRFU())):
        result = evaluate_plan(scenario, policy.plan(scenario), policy_name=name)
        fluid_metrics = compute_edge_metrics(
            network, demand.rates, result.x, result.y
        )
        report = replay_plan(network, trace, result.x, result.y)
        print(f"{name}")
        print(f"   fluid:    cost={result.cost.total:9.1f}  {fluid_metrics.summary()}")
        print(
            f"   discrete: cost={report.cost.total:9.1f}  "
            f"hit={report.hit_ratio:.1%} offload={report.offload_ratio:.1%} "
            f"({report.served_sbs.sum()} of {report.total_requests} requests at the edge)"
        )
        gap = report.cost.total / max(result.cost.total, 1e-9) - 1
        print(f"   fluid->discrete cost gap: {gap:+.1%}\n")
    print("The discrete replay tracks the fluid model closely - the paper's")
    print("fluid conclusions survive integer request granularity.")


if __name__ == "__main__":
    main()

"""Prediction quality study: how window size and noise shape online cost.

Sweeps the prediction window ``w`` (the paper's Fig. 3) and the noise level
``eta`` (Fig. 5) on a small scenario, printing the two trade-off curves:
more lookahead helps, and noisier forecasts erase the advantage over the
prediction-free LRFU baseline.

Run:
    python examples/prediction_quality.py
"""

from __future__ import annotations

from repro.api import render_sweep_table, sweep

SCALE = dict(
    horizon=24,
    num_items=12,
    num_classes=10,
    cache_size=3,
    bandwidth=8.0,
    beta=40.0,
)


def main() -> None:
    print("sweeping prediction window w (paper Fig. 3a)...")
    by_window = sweep("window", (2, 4, 6, 8), seeds=(1,), **SCALE)
    print(render_sweep_table(by_window, "total"))
    print()
    print(render_sweep_table(by_window, "replacements"))

    print("\nsweeping prediction noise eta (paper Fig. 5)...")
    by_noise = sweep("noise", (0.0, 0.2, 0.4), seeds=(1,), window=6, **SCALE)
    print(render_sweep_table(by_noise, "total"))

    print(
        "\nReading the curves: online totals fall toward Offline as w grows"
        "\nand rise toward LRFU as eta grows - the paper's Figs. 3 and 5."
    )


if __name__ == "__main__":
    main()

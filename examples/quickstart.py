"""Quickstart: compare all policies on a small paper-style scenario.

Builds a scaled-down version of the paper's Section V-B setting (one SBS,
Zipf-Mandelbrot demand, noisy predictions), runs the offline optimum, the
three online controllers, and the LRFU baseline, and prints the comparison
the paper's Section V-C(1) reports.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import build_scenario, cost_ratios, default_policies, run_policies


def main() -> None:
    # A 30-slot scenario solves in well under a minute; bump horizon=100
    # for the paper's full setting.
    scenario = build_scenario(seed=1, horizon=30, beta=50.0)
    print(
        f"scenario: K={scenario.network.num_items} contents, "
        f"C={scenario.network.cache_sizes[0]} cache slots, "
        f"B={scenario.network.bandwidths[0]:g} bandwidth, "
        f"T={scenario.horizon} slots"
    )

    policies = default_policies(window=10)
    results = run_policies(scenario, policies, verbose=True)

    ratios = cost_ratios(results, reference="Offline")
    lrfu_total = results["LRFU"].cost.total
    print(f"\n{'policy':<16}{'total':>12}{'repl #':>8}{'vs offline':>12}{'vs LRFU':>10}")
    for name, result in results.items():
        saving = (1.0 - result.cost.total / lrfu_total) * 100.0
        print(
            f"{name:<16}{result.cost.total:>12.1f}{result.cost.replacements:>8d}"
            f"{ratios[name]:>12.3f}{saving:>9.1f}%"
        )
    print(
        "\nExpected shape (paper Sec. V-C): Offline <= RHC <= CHC/AFHC <= LRFU,"
        "\nwith the online controllers close to offline."
    )


if __name__ == "__main__":
    main()

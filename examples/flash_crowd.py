"""Flash crowd: a video goes viral and the edge cache must react.

Demonstrates why joint, switching-cost-aware optimization beats rule-based
caching: a surge of demand for one item arrives mid-trace. RHC (with a
10-slot forecast) prefetches the item just before the surge and keeps it
exactly as long as profitable; LRFU reacts only after the surge begins and
keeps churning the rest of its cache throughout.

Run:
    python examples/flash_crowd.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    LRFU,
    RHC,
    OfflineOptimal,
    OnlineSolveSettings,
    PerturbedPredictor,
    Scenario,
    evaluate_plan,
    flash_crowd_demand,
    single_cell_network,
)

CROWD_ITEM = 0
SURGE_START = 12
SURGE_LEN = 8


def main() -> None:
    rng = np.random.default_rng(7)
    network = single_cell_network(
        num_items=12,
        cache_size=3,
        bandwidth=12.0,
        replacement_cost=30.0,
        omega_bs=rng.uniform(0.2, 1.0, 10),
    )
    demand = flash_crowd_demand(
        36,
        10,
        12,
        rng=rng,
        crowd_item=CROWD_ITEM,
        start=SURGE_START,
        duration=SURGE_LEN,
        magnitude=8.0,
        density_range=(0.0, 2.0),
    )
    scenario = Scenario(
        network=network,
        demand=demand,
        predictor=PerturbedPredictor(demand, eta=0.1, seed=3),
    )

    policies = {
        "Offline": OfflineOptimal(max_iter=120),
        "RHC": RHC(window=10, settings=OnlineSolveSettings(max_iter=30)),
        "LRFU": LRFU(),
    }
    print(f"surge: item {CROWD_ITEM} x8 demand during slots "
          f"{SURGE_START}..{SURGE_START + SURGE_LEN - 1}\n")
    for name, policy in policies.items():
        result = evaluate_plan(scenario, policy.plan(scenario), policy_name=name)
        cached = "".join(
            "#" if result.x[t, 0, CROWD_ITEM] > 0.5 else "." for t in range(36)
        )
        print(f"{name:<8} viral item cached: {cached}")
        print(
            f"{'':<8} total={result.cost.total:9.1f}  "
            f"replacements={result.cost.replacements}"
        )
    print("\n'#' marks slots where the viral item sits in the SBS cache;")
    print("the surge spans slots "
          f"{SURGE_START}..{SURGE_START + SURGE_LEN - 1}.")


if __name__ == "__main__":
    main()

"""Multi-cell deployment: three heterogeneous SBSs under one macro BS.

The paper evaluates a single SBS and notes that "when considering multiple
SBSs, the final results are the sum of each SBS" - the model is natively
multi-cell, and this library implements it that way. This example builds a
downtown/residential/highway trio with different cache sizes, bandwidths,
and replacement costs, and shows the per-SBS cache occupancy the offline
optimum chooses.

Run:
    python examples/multi_cell.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    LRFU,
    RHC,
    ContentCatalog,
    MUClass,
    Network,
    OfflineOptimal,
    OnlineSolveSettings,
    PerturbedPredictor,
    Scenario,
    SmallBaseStation,
    evaluate_plan,
    paper_demand,
)


def build_network(rng: np.random.Generator) -> Network:
    catalog = ContentCatalog(15)
    sbss = (
        # Downtown: big cache, big pipe, cheap refreshes (fiber backhaul).
        SmallBaseStation(0, cache_size=5, bandwidth=10.0, replacement_cost=10.0),
        # Residential: modest everything.
        SmallBaseStation(1, cache_size=3, bandwidth=6.0, replacement_cost=25.0),
        # Highway microcell: tiny cache, wireless backhaul makes updates dear.
        SmallBaseStation(2, cache_size=2, bandwidth=4.0, replacement_cost=60.0),
    )
    classes = []
    class_id = 0
    for sbs_id, count in ((0, 4), (1, 3), (2, 2)):
        for _ in range(count):
            classes.append(
                MUClass(class_id, sbs_id, omega_bs=float(rng.uniform(0.2, 1.0)))
            )
            class_id += 1
    return Network(catalog, sbss, tuple(classes))


def main() -> None:
    rng = np.random.default_rng(11)
    network = build_network(rng)
    demand = paper_demand(
        30, network.num_classes, network.num_items, rng=rng, density_range=(0.0, 3.0)
    )
    scenario = Scenario(
        network=network,
        demand=demand,
        predictor=PerturbedPredictor(demand, eta=0.1, seed=5),
    )

    for name, policy in (
        ("Offline", OfflineOptimal(max_iter=120)),
        ("RHC", RHC(window=8, settings=OnlineSolveSettings(max_iter=30))),
        ("LRFU", LRFU()),
    ):
        result = evaluate_plan(scenario, policy.plan(scenario), policy_name=name)
        print(f"{name}: total={result.cost.total:.1f} "
              f"(BS={result.cost.bs_cost:.1f}, "
              f"replacement={result.cost.replacement:.1f}, "
              f"{result.cost.replacements} insertions)")
        for sbs in network.sbss:
            occupancy = result.x[:, sbs.sbs_id, :].sum(axis=1).mean()
            swaps = int(
                np.clip(
                    np.diff(result.x[:, sbs.sbs_id, :], axis=0), 0, None
                ).sum()
            )
            print(
                f"   {sbs.name}: avg occupancy {occupancy:.1f}/{sbs.cache_size}, "
                f"{swaps} swaps (beta={sbs.replacement_cost:g})"
            )
    print("\nNote how the optimum swaps freely at the fiber-backhauled SBS-0")
    print("but keeps the expensive highway cell (SBS-2) nearly static.")


if __name__ == "__main__":
    main()

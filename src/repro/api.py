"""The stable public API of the library.

Everything a user of the library needs — building scenarios, running and
comparing policies, sweeping parameters, injecting faults, configuring the
runtime — is importable from this one module, and only the names exported
here (``repro.api.__all__``) are covered by the public-API stability test
(``tests/test_api.py``). Internal module layout may change between
releases; this facade does not.

Quickstart
----------
>>> from repro import api
>>> scenario = api.build_scenario(seed=1, horizon=20)
>>> results = api.compare_policies(scenario, api.default_policies(window=5))
>>> sorted(results)  # doctest: +NORMALIZE_WHITESPACE
['AFHC(w=5)', 'CHC(w=5,r=2)', 'LRFU', 'Offline', 'RHC(w=5)']

Fault injection::

    schedule = api.FaultSchedule.random(seed=7, horizon=100, num_sbs=1)
    faulted = api.inject_faults(scenario, schedule)
    results = api.compare_policies(faulted)
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from repro.baselines import BeladyVolume, FIFO, LFU, LRFU, LRU, NoCache, StaticTopK
from repro.config import RuntimeConfig
from repro.core.distributed import DistributedOfflineOptimal
from repro.core.offline import OfflineOptimal
from repro.core.online import AFHC, CHC, RHC, OnlineSolveSettings
from repro.core.primal_dual import PrimalDualResult, solve_primal_dual
from repro.core.problem import JointProblem
from repro.exceptions import ConfigurationError
from repro.faults import (
    BandwidthDegradation,
    CacheDegradation,
    DemandSurge,
    FaultSchedule,
    PredictorBlackout,
    SbsOutage,
    assert_feasible_under_faults,
    inject_faults,
    single_outage_with_degradation,
)
from repro.network import (
    BaseStation,
    ContentCatalog,
    CostBreakdown,
    MUClass,
    Network,
    SmallBaseStation,
)
from repro.network.costs import LinearOperatingCost, QuadraticOperatingCost
from repro.network.topology import single_cell_network
from repro.obs import (
    ConvergenceTrace,
    Diagnosis,
    Finding,
    MetricsServer,
    QuantileSketch,
    Recorder,
    SloSpec,
    SloTracker,
    TraceEvent,
    WindowedCounter,
    analyze_trace,
    current_recorder,
    parse_slo_specs,
    read_trace,
    record_into,
    render_diagnosis,
    render_top_frame,
    render_trace_dashboard,
    run_manifest,
    write_manifest,
    write_trace,
)
from repro.optim import SolveBudget
from repro.perf.solvecache import SolveCache
from repro.perf.timers import StageTimers
from repro.scenario import CachingPolicy, PolicyPlan, Scenario
from repro.serve import (
    Decision,
    HealthScoreStrategy,
    LeastConnectionsStrategy,
    OptimalYStrategy,
    Request,
    RoundRobinStrategy,
    RoutingStrategy,
    ServeReport,
    decision_digest,
    open_loop_requests,
    read_decision_log,
    render_serve_report,
    requests_from_trace,
    run_serve,
    serve_requests,
    strategy_by_name,
    write_decision_log,
)
from repro.sim.discrete import ReplayReport
from repro.sim.discrete import replay_trace as _replay_trace
from repro.sim.engine import EvaluationMode, RunResult, evaluate_plan
from repro.sim.experiment import (
    SweepResult,
    bandwidth_sweep,
    beta_sweep,
    default_policies,
    headline_comparison,
    noise_sweep,
    paper_scenario,
    window_sweep,
)
from repro.sim.metrics import EdgeMetrics, compute_edge_metrics
from repro.sim.report import (
    render_headline_table,
    render_sweep_table,
    sweep_to_dict,
)
from repro.sim.resilience import (
    PolicyResilience,
    ResilienceReport,
    default_fault_schedule,
    render_resilience_table,
    run_resilience,
)
from repro.sim.runner import cost_ratios, run_policies, run_policy
from repro.workload import (
    DemandMatrix,
    PerfectPredictor,
    PerturbedPredictor,
    paper_demand,
)
from repro.workload.demand import diurnal_demand, flash_crowd_demand
from repro.workload.trace import sample_poisson_trace

#: Sweepable axes of :func:`sweep`, mapped to the figure functions.
SWEEP_AXES = ("beta", "window", "bandwidth", "noise")

#: Names slated for removal and the release that drops them; each warns
#: once per process when first called. Current window: deprecated names
#: survive two further releases after the deprecating one.
DEPRECATED_API = {"replay_trace": "v1.2"}

_DEPRECATION_WARNED: set[str] = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"repro.api.{name} is deprecated and will be removed in "
        f"{DEPRECATED_API[name]}; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_api_deprecations() -> None:
    """Forget which deprecated names have warned (test isolation helper)."""
    _DEPRECATION_WARNED.clear()


def replay_plan(*args: object, **kwargs: object) -> ReplayReport:
    """Batch-replay an integer request trace against a committed plan.

    The supported name for what used to leak through the facade as
    ``replay_trace`` — the serve layer (:func:`run_serve`) is the live
    counterpart; this is the offline one-shot. Accepts the same arguments
    as :func:`repro.sim.discrete.replay_trace` (network, trace, x, y,
    plus ``x_initial`` / ``stochastic`` / cost-shape keywords).
    """
    return _replay_trace(*args, **kwargs)  # type: ignore[arg-type]


def replay_trace(*args: object, **kwargs: object) -> ReplayReport:
    """Deprecated alias of :func:`replay_plan` (removal: see DEPRECATED_API).

    The serve layer supersedes this entry point's "replay a stream"
    role: use :func:`replay_plan` for one-shot batch replay or
    :func:`run_serve` / :func:`serve_requests` for live request-path
    replay with plan re-solves.
    """
    _warn_deprecated("replay_trace", "repro.api.replay_plan or repro.api.run_serve")
    return _replay_trace(*args, **kwargs)  # type: ignore[arg-type]


def build_scenario(**kwargs: object) -> Scenario:
    """Build the paper's Section V-B evaluation scenario.

    A stable alias for :func:`repro.sim.experiment.paper_scenario`; accepts
    the same keyword arguments (``seed``, ``horizon``, ``num_items``,
    ``beta``, ``bandwidth``, ``eta``, ...).
    """
    return paper_scenario(**kwargs)  # type: ignore[arg-type]


def compare_policies(
    scenario: Scenario,
    policies: Iterable[CachingPolicy] | None = None,
    *,
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
    executor: object = None,
    config: RuntimeConfig | None = None,
) -> dict[str, RunResult]:
    """Run a set of policies on one scenario, keyed by policy name.

    ``policies`` defaults to the paper's comparison set
    (:func:`default_policies`: Offline, RHC, CHC, AFHC, LRFU). Duplicate
    policy names are de-duplicated (``LRFU``, ``LRFU#2``), never dropped.
    """
    if policies is None:
        policies = default_policies()
    return run_policies(
        scenario,
        policies,
        mode=mode,
        verbose=verbose,
        executor=executor,  # type: ignore[arg-type]
        config=config,
    )


def sweep(
    axis: str,
    values: Sequence[float] | None = None,
    **kwargs: object,
) -> SweepResult:
    """Run one of the paper's parameter sweeps by axis name.

    ``axis`` is one of :data:`SWEEP_AXES`: ``"beta"`` (Fig. 2),
    ``"window"`` (Fig. 3), ``"bandwidth"`` (Fig. 4) or ``"noise"``
    (Fig. 5). ``values`` overrides the figure's default grid; remaining
    keyword arguments go to the underlying sweep function (``seeds``,
    ``mode``, ``executor``, ``config``, scenario parameters, ...).
    """
    sweeps = {
        "beta": beta_sweep,
        "window": window_sweep,
        "bandwidth": bandwidth_sweep,
        "noise": noise_sweep,
    }
    fn = sweeps.get(axis)
    if fn is None:
        raise ConfigurationError(
            f"unknown sweep axis {axis!r}; pick from {SWEEP_AXES}"
        )
    if values is None:
        return fn(**kwargs)  # type: ignore[arg-type]
    if axis == "window":
        values = [int(v) for v in values]
    return fn(values, **kwargs)  # type: ignore[arg-type]


__all__ = [
    # configuration
    "RuntimeConfig",
    "SolveBudget",
    "SolveCache",
    # scenario building blocks
    "BaseStation",
    "ContentCatalog",
    "DemandMatrix",
    "MUClass",
    "Network",
    "Scenario",
    "SmallBaseStation",
    "single_cell_network",
    "build_scenario",
    "paper_scenario",
    # demand and prediction
    "PerfectPredictor",
    "PerturbedPredictor",
    "diurnal_demand",
    "flash_crowd_demand",
    "paper_demand",
    "sample_poisson_trace",
    # costs
    "CostBreakdown",
    "LinearOperatingCost",
    "QuadraticOperatingCost",
    # policies
    "AFHC",
    "BeladyVolume",
    "CHC",
    "CachingPolicy",
    "DistributedOfflineOptimal",
    "FIFO",
    "LFU",
    "LRFU",
    "LRU",
    "NoCache",
    "OfflineOptimal",
    "OnlineSolveSettings",
    "PolicyPlan",
    "RHC",
    "StaticTopK",
    "default_policies",
    # solving and evaluation
    "JointProblem",
    "PrimalDualResult",
    "ReplayReport",
    "RunResult",
    "evaluate_plan",
    "run_policies",
    "run_policy",
    "compare_policies",
    "cost_ratios",
    "solve_primal_dual",
    "replay_plan",
    "replay_trace",  # deprecated alias of replay_plan (DEPRECATED_API)
    # serving runtime
    "Decision",
    "HealthScoreStrategy",
    "LeastConnectionsStrategy",
    "OptimalYStrategy",
    "Request",
    "RoundRobinStrategy",
    "RoutingStrategy",
    "ServeReport",
    "decision_digest",
    "open_loop_requests",
    "read_decision_log",
    "render_serve_report",
    "requests_from_trace",
    "run_serve",
    "serve_requests",
    "strategy_by_name",
    "write_decision_log",
    "DEPRECATED_API",
    # sweeps and reports
    "SWEEP_AXES",
    "SweepResult",
    "bandwidth_sweep",
    "beta_sweep",
    "headline_comparison",
    "noise_sweep",
    "sweep",
    "window_sweep",
    "render_headline_table",
    "render_sweep_table",
    "sweep_to_dict",
    # metrics
    "EdgeMetrics",
    "compute_edge_metrics",
    # faults and resilience
    "BandwidthDegradation",
    "CacheDegradation",
    "DemandSurge",
    "FaultSchedule",
    "PredictorBlackout",
    "SbsOutage",
    "assert_feasible_under_faults",
    "inject_faults",
    "single_outage_with_degradation",
    "PolicyResilience",
    "ResilienceReport",
    "default_fault_schedule",
    "render_resilience_table",
    "run_resilience",
    # observability
    "ConvergenceTrace",
    "Diagnosis",
    "Finding",
    "MetricsServer",
    "QuantileSketch",
    "Recorder",
    "SloSpec",
    "SloTracker",
    "StageTimers",
    "TraceEvent",
    "WindowedCounter",
    "analyze_trace",
    "current_recorder",
    "parse_slo_specs",
    "read_trace",
    "record_into",
    "render_diagnosis",
    "render_top_frame",
    "render_trace_dashboard",
    "run_manifest",
    "write_manifest",
    "write_trace",
]

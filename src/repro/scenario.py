"""Scenario description and the policy interface.

A :class:`Scenario` is one complete evaluation setting: the network, the
ground-truth demand trace, the predictor the online controllers are allowed
to consult, and the initial cache state. A *policy* maps a scenario to a
:class:`PolicyPlan` — a caching trajectory plus (optionally) the
load-balancing decisions it computed along the way. Realized costs are
assigned by the simulation engine (:mod:`repro.sim.engine`), which scores
every policy with the same fixed-cache oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.core.problem import JointProblem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> scenario)
    from repro.faults.schedule import FaultSchedule
from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.network.costs import OperatingCost, QuadraticOperatingCost
from repro.network.topology import Network
from repro.types import FloatArray
from repro.workload.demand import DemandMatrix
from repro.workload.predictor import DemandPredictor, PerfectPredictor


@dataclass(frozen=True)
class Scenario:
    """One evaluation setting shared by all policies under comparison.

    Parameters
    ----------
    network:
        The 5G network.
    demand:
        Ground-truth demand trace (what realized costs are computed on).
    predictor:
        What online controllers see; defaults to a perfect predictor.
    x_initial:
        Cache state before slot 0 (defaults to empty, the paper's
        convention ``x^t = 0`` for ``t <= 0``).
    bs_cost, sbs_cost:
        Operating-cost shapes (paper defaults: quadratics).
    faults:
        Optional fault schedule (SBS outages, capacity/bandwidth
        degradation windows, …) the engine and controllers consult for the
        per-slot *effective* network state. Attach one with
        :func:`repro.api.inject_faults` — it also applies demand surges
        and wraps the predictor — rather than setting the field directly.
    """

    network: Network
    demand: DemandMatrix
    predictor: DemandPredictor | None = None
    x_initial: FloatArray | None = None
    bs_cost: OperatingCost = field(default_factory=QuadraticOperatingCost)
    sbs_cost: OperatingCost = field(default_factory=QuadraticOperatingCost)
    faults: "FaultSchedule | None" = None

    def __post_init__(self) -> None:
        if self.demand.num_classes != self.network.num_classes:
            raise DimensionMismatchError(
                f"demand has {self.demand.num_classes} classes, network has "
                f"{self.network.num_classes}"
            )
        if self.demand.num_items != self.network.num_items:
            raise DimensionMismatchError(
                f"demand has {self.demand.num_items} items, catalog has "
                f"{self.network.num_items}"
            )
        if self.predictor is None:
            object.__setattr__(self, "predictor", PerfectPredictor(self.demand))
        if self.x_initial is None:
            x0 = np.zeros((self.network.num_sbs, self.network.num_items))
            object.__setattr__(self, "x_initial", x0)

    @property
    def horizon(self) -> int:
        return self.demand.horizon

    def problem(self) -> JointProblem:
        """The full-horizon joint problem on the *true* demand."""
        return JointProblem(
            network=self.network,
            demand=self.demand.rates,
            x_initial=self.x_initial,
            bs_cost=self.bs_cost,
            sbs_cost=self.sbs_cost,
        )

    def window_problem(
        self,
        predicted_demand: FloatArray,
        x_initial: FloatArray,
        *,
        network: Network | None = None,
    ) -> JointProblem:
        """A window sub-problem on *predicted* demand (for controllers).

        ``network`` overrides the scenario's network — the degradation
        path plans windows against the currently observed effective
        capacities/bandwidths instead of the nominal ones.
        """
        return JointProblem(
            network=network if network is not None else self.network,
            demand=predicted_demand,
            x_initial=x_initial,
            bs_cost=self.bs_cost,
            sbs_cost=self.sbs_cost,
        )

    def with_predictor(self, predictor: DemandPredictor) -> "Scenario":
        return replace(self, predictor=predictor)


@dataclass(frozen=True)
class PolicyPlan:
    """What a policy decided for a scenario.

    Attributes
    ----------
    x:
        Integral caching trajectory, shape ``(T, N, K)``.
    y:
        The policy's own load-balancing decisions (possibly based on
        predicted demand), or ``None`` when the policy only decides caches.
    solves:
        Number of optimization solves the policy performed (for reports).
    """

    x: FloatArray
    y: FloatArray | None = None
    solves: int = 0


@runtime_checkable
class CachingPolicy(Protocol):
    """A policy maps a scenario to a plan; ``name`` labels reports."""

    @property
    def name(self) -> str: ...

    def plan(self, scenario: Scenario) -> PolicyPlan: ...


def validate_plan(scenario: Scenario, plan: PolicyPlan) -> None:
    """Sanity-check a plan's shapes and cache feasibility."""
    T = scenario.horizon
    net = scenario.network
    expected_x = (T, net.num_sbs, net.num_items)
    if plan.x.shape != expected_x:
        raise DimensionMismatchError(
            f"plan.x has shape {plan.x.shape}, expected {expected_x}"
        )
    if np.any((plan.x < -1e-9) | (plan.x > 1 + 1e-9)):
        raise ConfigurationError("plan.x outside [0, 1]")
    used = plan.x.sum(axis=2)
    if np.any(used > net.cache_sizes[None, :] + 1e-9):
        raise ConfigurationError("plan.x exceeds cache capacity")
    if plan.y is not None and plan.y.shape != (T, net.num_classes, net.num_items):
        raise DimensionMismatchError(
            f"plan.y has shape {plan.y.shape}, expected (T, M, K)"
        )

"""repro — joint online edge caching and load balancing for 5G offloading.

A complete implementation of Zeng, Huang, Liu & Yang, *"Joint Online Edge
Caching and Load Balancing for Mobile Data Offloading in 5G Networks"*
(ICDCS 2019): the network/cost model (Section II), the offline primal-dual
algorithm with exact integral caching (Section III), the integer-safe
online controllers RHC / AFHC / CHC with the Theorem-3 rounding policy
(Section IV), the LRFU baseline, and the full evaluation harness for the
paper's figures (Section V).

The supported, stability-tested entry point is :mod:`repro.api` — prefer
``from repro import api`` in new code; this top-level namespace re-exports
the most common names for convenience.

Quickstart
----------
>>> from repro import api
>>> scenario = api.build_scenario(seed=1, horizon=20)
>>> results = api.compare_policies(scenario, api.default_policies(window=5))
>>> sorted(results)  # doctest: +NORMALIZE_WHITESPACE
['AFHC(w=5)', 'CHC(w=5,r=2)', 'LRFU', 'Offline', 'RHC(w=5)']
"""

import logging as _logging

from repro import api
from repro.baselines import BeladyVolume, FIFO, LFU, LRFU, LRU, NoCache, StaticTopK
from repro.config import RuntimeConfig
from repro.faults import FaultSchedule, inject_faults
from repro.core.distributed import DistributedOfflineOptimal
from repro.core.offline import OfflineOptimal
from repro.core.online import AFHC, CHC, RHC, OnlineSolveSettings
from repro.core.primal_dual import PrimalDualResult, solve_primal_dual
from repro.core.problem import JointProblem
from repro.network import (
    BaseStation,
    ContentCatalog,
    CostBreakdown,
    MUClass,
    Network,
    SmallBaseStation,
)
from repro.network.topology import single_cell_network
from repro.scenario import CachingPolicy, PolicyPlan, Scenario
from repro.sim import (
    RunResult,
    SweepResult,
    bandwidth_sweep,
    beta_sweep,
    default_policies,
    evaluate_plan,
    headline_comparison,
    noise_sweep,
    paper_scenario,
    run_policies,
    run_policy,
    window_sweep,
)
from repro.workload import (
    DemandMatrix,
    PerfectPredictor,
    PerturbedPredictor,
    paper_demand,
)

__version__ = "1.0.0"

# Library logging policy: no output unless the application configures a
# handler (the CLI installs a console handler for --verbose). The recorder
# bridge routes repro.* records into an ambient obs Recorder when one is
# attached; it is a strict no-op otherwise.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.obs.recorder import install_log_bridge as _install_log_bridge  # noqa: E402

_install_log_bridge()

__all__ = [
    "AFHC",
    "BaseStation",
    "BeladyVolume",
    "CHC",
    "CachingPolicy",
    "ContentCatalog",
    "CostBreakdown",
    "DemandMatrix",
    "DistributedOfflineOptimal",
    "FIFO",
    "FaultSchedule",
    "JointProblem",
    "LFU",
    "LRFU",
    "LRU",
    "MUClass",
    "Network",
    "NoCache",
    "OfflineOptimal",
    "OnlineSolveSettings",
    "PerfectPredictor",
    "PerturbedPredictor",
    "PolicyPlan",
    "PrimalDualResult",
    "RHC",
    "RunResult",
    "RuntimeConfig",
    "Scenario",
    "SmallBaseStation",
    "StaticTopK",
    "SweepResult",
    "api",
    "bandwidth_sweep",
    "beta_sweep",
    "default_policies",
    "evaluate_plan",
    "headline_comparison",
    "inject_faults",
    "noise_sweep",
    "paper_demand",
    "paper_scenario",
    "run_policies",
    "run_policy",
    "single_cell_network",
    "solve_primal_dual",
    "window_sweep",
    "__version__",
]

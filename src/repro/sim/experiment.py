"""The paper's evaluation scenarios and parameter sweeps (Section V).

:func:`paper_scenario` builds the Section V-B setting: one SBS, ``K = 30``
contents, cache size 5, bandwidth 30, 30 MU classes with ``omega ~ U[0,1]``
and ``omega-hat = 0``, Zipf-Mandelbrot demand (``alpha = 0.8``, ``q = 30``)
with per-class density ``U[0, 100]``, ``T = 100`` slots, ``beta = 100``,
prediction window ``w = 10``, noise ``eta = 0.1``.

The sweep functions regenerate the paper's figures:

=========================  =========================================
Figure                     Function
=========================  =========================================
Fig. 2 (a-d), beta sweep   :func:`beta_sweep`
Fig. 3 (a-b), window       :func:`window_sweep`
Fig. 4 (a-b), bandwidth    :func:`bandwidth_sweep`
Fig. 5, prediction noise   :func:`noise_sweep`
Sec. V-C(1) headline       :func:`headline_comparison`
=========================  =========================================

Each returns a :class:`SweepResult` holding, per sweep value and policy,
the aggregated metrics (mean over the requested seeds).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.baselines.lrfu import LRFU
from repro.config import RuntimeConfig
from repro.core.offline import OfflineOptimal
from repro.core.online.base import OnlineSolveSettings
from repro.core.online.chc import AFHC, CHC
from repro.core.online.rhc import RHC
from repro.exceptions import ConfigurationError
from repro.network.topology import single_cell_network
from repro.obs.recorder import current_recorder
from repro.perf.executor import Executor, map_recorded, resolve_executor
from repro.scenario import CachingPolicy, Scenario
from repro.sim.engine import EvaluationMode, RunResult
from repro.sim.runner import _run_policy_task, _stable_names
from repro.workload.demand import paper_demand
from repro.workload.predictor import PerturbedPredictor

logger = logging.getLogger("repro.sim.experiment")

#: Metrics recorded per (sweep value, policy); keys of the metric dicts.
METRICS = (
    "total",
    "bs_cost",
    "sbs_cost",
    "replacement",
    "replacements",
    "solves",
    "wall_time",
)


def paper_scenario(
    *,
    seed: int = 1,
    horizon: int = 100,
    num_items: int = 30,
    num_classes: int = 30,
    cache_size: int = 5,
    bandwidth: float = 30.0,
    beta: float = 100.0,
    eta: float = 0.1,
    zipf_alpha: float = 0.8,
    zipf_shift: float = 30.0,
    density_range: tuple[float, float] = (0.0, 4.0),
    per_class_preference: bool = True,
    density_mode: str = "random_walk",
    density_jitter: float = 0.3,
    density_step: float = 0.08,
    noise_mode: str = "frozen",
) -> Scenario:
    """The Section V-B evaluation scenario (single SBS).

    All parameters default to the paper's values except the per-class
    request density, which is calibrated to ``U[0, 4]`` instead of the
    stated ``U[0, 100]``: with ``U[0, 100]`` the offered load is ~50x the
    SBS bandwidth, making the replacement cost a ~1e-4 fraction of the
    operating cost — a regime in which none of the paper's Figure 2-5
    dynamics can materialize. ``U[0, 4]`` puts the mean offered load at
    ~2x the bandwidth, the moderately overloaded regime the figures imply
    (see DESIGN.md, "Substitutions"). Pass ``density_range=(0, 100)`` to
    run the literal setting.
    """
    rng = np.random.default_rng(seed)
    omega = rng.uniform(0.0, 1.0, size=num_classes)
    network = single_cell_network(
        num_items=num_items,
        cache_size=cache_size,
        bandwidth=bandwidth,
        replacement_cost=beta,
        omega_bs=omega,
        omega_sbs=0.0,
    )
    demand = paper_demand(
        horizon,
        num_classes,
        num_items,
        rng=rng,
        alpha=zipf_alpha,
        shift=zipf_shift,
        density_range=density_range,
        per_class_preference=per_class_preference,
        density_mode=density_mode,
        density_jitter=density_jitter,
        density_step=density_step,
    )
    predictor = PerturbedPredictor(
        demand, eta=eta, seed=seed + 10_000, mode=noise_mode  # type: ignore[arg-type]
    )
    return Scenario(network=network, demand=demand, predictor=predictor)


def default_policies(
    *,
    window: int = 10,
    commitment: int | None = None,
    include_offline: bool = True,
    include_lrfu: bool = True,
    offline_max_iter: int = 200,
    settings: OnlineSolveSettings | None = None,
) -> list[CachingPolicy]:
    """The paper's comparison set: Offline, RHC, CHC, AFHC, LRFU.

    ``commitment`` defaults to ``w/2`` (rounded up) for CHC.
    """
    settings = settings or OnlineSolveSettings()
    r = commitment if commitment is not None else max(1, window // 2)
    policies: list[CachingPolicy] = []
    if include_offline:
        policies.append(OfflineOptimal(max_iter=offline_max_iter))
    policies.append(RHC(window=window, settings=settings))
    policies.append(CHC(window=window, commitment=r, settings=settings))
    policies.append(AFHC(window=window, settings=settings))
    if include_lrfu:
        policies.append(LRFU())
    return policies


# --------------------------------------------------------------------- sweep

@dataclass(frozen=True)
class SweepPoint:
    """Aggregated metrics at one sweep value.

    ``metrics[policy_name][metric]`` is the mean over seeds; metric keys
    are listed in :data:`METRICS`.
    """

    value: float
    metrics: Mapping[str, Mapping[str, float]]


@dataclass(frozen=True)
class SweepResult:
    """A full parameter sweep: one :class:`SweepPoint` per value."""

    parameter: str
    points: tuple[SweepPoint, ...]

    @property
    def values(self) -> list[float]:
        return [p.value for p in self.points]

    @property
    def policies(self) -> list[str]:
        return list(self.points[0].metrics.keys()) if self.points else []

    def series(self, metric: str, policy: str) -> list[float]:
        """The metric's curve over the sweep for one policy."""
        if metric not in METRICS:
            raise ConfigurationError(f"unknown metric {metric!r}; pick from {METRICS}")
        return [float(p.metrics[policy][metric]) for p in self.points]

    def table(self, metric: str) -> dict[str, list[float]]:
        """All policies' curves for one metric."""
        return {policy: self.series(metric, policy) for policy in self.policies}


def _metrics_of(result: RunResult) -> dict[str, float]:
    return {
        "total": result.cost.total,
        "bs_cost": result.cost.bs_cost,
        "sbs_cost": result.cost.sbs_cost,
        "replacement": result.cost.replacement,
        "replacements": float(result.cost.replacements),
        "solves": float(result.solves),
        "wall_time": result.wall_time,
    }


def _aggregate(per_seed: list[dict[str, dict[str, float]]]) -> dict[str, dict[str, float]]:
    policies = per_seed[0].keys()
    return {
        name: {
            metric: float(np.mean([seed_run[name][metric] for seed_run in per_seed]))
            for metric in METRICS
        }
        for name in policies
    }


def _run_sweep(
    parameter: str,
    values: Sequence[float],
    scenario_for: Callable[[float, int], Scenario],
    policies_for: Callable[[float], Iterable[CachingPolicy]],
    *,
    seeds: Sequence[int],
    mode: EvaluationMode,
    verbose: bool,
    invariant: frozenset[str] = frozenset(),
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
) -> SweepResult:
    """Shared sweep loop.

    ``invariant`` names policies whose outcome does not depend on the swept
    parameter (e.g. Offline and LRFU ignore the prediction window and the
    noise level); they are evaluated once per seed and reused.

    The ``(value, seed, policy)`` grid is flattened into independent tasks
    and run through the executor layer, with scenarios built up-front in
    the parent process so process pools only ship picklable data. The
    reduction follows grid order, so the aggregated metrics are identical
    to a serial run regardless of the executor (``wall_time`` excepted —
    it is a measurement, not a model output).
    """
    # Per value, per seed: the point's (policy name, task index) layout.
    layouts: list[list[list[tuple[str, int]]]] = []
    tasks: list[tuple[Scenario, CachingPolicy, EvaluationMode]] = []
    labels: list[str] = []
    invariant_task: dict[tuple[int, str], int] = {}
    for value in values:
        seed_layout: list[list[tuple[str, int]]] = []
        for seed in seeds:
            scenario = scenario_for(value, seed)
            entry: list[tuple[str, int]] = []
            for policy in policies_for(value):
                key = (seed, policy.name)
                idx = invariant_task.get(key) if policy.name in invariant else None
                if idx is None:
                    idx = len(tasks)
                    tasks.append((scenario, policy, mode))
                    labels.append(f"{parameter}={value:g} seed={seed}")
                    if policy.name in invariant:
                        invariant_task[key] = idx
                entry.append((policy.name, idx))
            seed_layout.append(entry)
        layouts.append(seed_layout)

    ex = resolve_executor(executor, config=config)
    recorder = current_recorder()
    if recorder is not None:
        # Recorded sweeps use the recorded fan-out on every backend so the
        # trace is executor-invariant (see repro.perf.executor.map_recorded).
        outcomes = map_recorded(ex, _run_policy_task, tasks, recorder)
    elif ex.workers > 1 and len(tasks) > 1:
        outcomes = ex.map(_run_policy_task, tasks)
    else:
        outcomes = [_run_policy_task(task) for task in tasks]
    if verbose:
        for label, result in zip(labels, outcomes):
            logger.info(
                "[%s] %-16s total=%12.1f  (%.2fs)",
                label,
                result.policy,
                result.cost.total,
                result.wall_time,
            )

    points = []
    for value, seed_layout in zip(values, layouts):
        per_seed = [
            {name: _metrics_of(outcomes[idx]) for name, idx in entry}
            for entry in seed_layout
        ]
        points.append(SweepPoint(value=float(value), metrics=_aggregate(per_seed)))
    return SweepResult(parameter=parameter, points=tuple(points))


# ----------------------------------------------------------- paper's figures

def beta_sweep(
    betas: Sequence[float] = (0.0, 25.0, 50.0, 75.0, 100.0, 150.0, 200.0),
    *,
    seeds: Sequence[int] = (1,),
    window: int = 10,
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
    **scenario_kwargs: object,
) -> SweepResult:
    """Fig. 2: impact of the cache replacement cost ``beta``.

    Panels (a)-(d) are the ``total`` / ``replacement`` / ``replacements`` /
    ``bs_cost`` metrics of the returned sweep.
    """
    def scenario_for(beta: float, seed: int) -> Scenario:
        return paper_scenario(seed=seed, beta=beta, **scenario_kwargs)  # type: ignore[arg-type]

    return _run_sweep(
        "beta",
        betas,
        scenario_for,
        lambda _v: default_policies(window=window),
        seeds=seeds,
        mode=mode,
        verbose=verbose,
        executor=executor,
        config=config,
    )


def window_sweep(
    windows: Sequence[int] = (2, 4, 6, 8, 10, 12),
    *,
    seeds: Sequence[int] = (1,),
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
    **scenario_kwargs: object,
) -> SweepResult:
    """Fig. 3: impact of the prediction window ``w`` on the online algorithms."""
    def scenario_for(_w: float, seed: int) -> Scenario:
        return paper_scenario(seed=seed, **scenario_kwargs)  # type: ignore[arg-type]

    return _run_sweep(
        "window",
        [float(w) for w in windows],
        scenario_for,
        lambda w: _stable_names(default_policies(window=int(w))),
        seeds=seeds,
        mode=mode,
        verbose=verbose,
        invariant=frozenset({"Offline", "LRFU"}),
        executor=executor,
        config=config,
    )


def bandwidth_sweep(
    bandwidths: Sequence[float] = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
    *,
    seeds: Sequence[int] = (1,),
    window: int = 10,
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
    **scenario_kwargs: object,
) -> SweepResult:
    """Fig. 4: impact of the SBS bandwidth capacity ``B``."""
    def scenario_for(bandwidth: float, seed: int) -> Scenario:
        return paper_scenario(seed=seed, bandwidth=bandwidth, **scenario_kwargs)  # type: ignore[arg-type]

    return _run_sweep(
        "bandwidth",
        bandwidths,
        scenario_for,
        lambda _v: default_policies(window=window),
        seeds=seeds,
        mode=mode,
        verbose=verbose,
        executor=executor,
        config=config,
    )


def noise_sweep(
    etas: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    *,
    seeds: Sequence[int] = (1,),
    window: int = 10,
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
    **scenario_kwargs: object,
) -> SweepResult:
    """Fig. 5: impact of the prediction perturbation ``eta``.

    LRFU and the offline optimum see noise-free information (Section V-B),
    so only the online algorithms' curves move.
    """
    def scenario_for(eta: float, seed: int) -> Scenario:
        return paper_scenario(seed=seed, eta=eta, **scenario_kwargs)  # type: ignore[arg-type]

    return _run_sweep(
        "eta",
        etas,
        scenario_for,
        lambda _v: default_policies(window=window),
        seeds=seeds,
        mode=mode,
        verbose=verbose,
        invariant=frozenset({"Offline", "LRFU"}),
        executor=executor,
        config=config,
    )


def headline_comparison(
    *,
    beta: float = 50.0,
    seeds: Sequence[int] = (1,),
    window: int = 10,
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
    **scenario_kwargs: object,
) -> SweepResult:
    """Section V-C(1): the single-point comparison at ``beta = 50``.

    The paper reports RHC/CHC/AFHC saving 27%/20%/17% versus LRFU and cost
    ratios to offline of 1.02/1.08/1.11/1.30.
    """
    return beta_sweep(
        (beta,),
        seeds=seeds,
        window=window,
        mode=mode,
        verbose=verbose,
        executor=executor,
        config=config,
        **scenario_kwargs,
    )

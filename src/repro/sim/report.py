"""Plain-text rendering of sweep results as the paper's figure data.

The harness is figure-free by design (numbers, not pixels): each function
prints the series a figure panel plots, so results can be diffed against
the paper's curves and recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Mapping

from repro.sim.experiment import SweepResult

#: Human-readable labels for the recorded metrics.
METRIC_LABELS: Mapping[str, str] = {
    "total": "total operating cost",
    "bs_cost": "BS operating cost",
    "sbs_cost": "SBS operating cost",
    "replacement": "cache replacement cost",
    "replacements": "# cache replacements",
    "solves": "# optimization solves",
    "wall_time": "wall-clock seconds",
}


def sweep_to_dict(sweep: SweepResult) -> dict:
    """A sweep as a JSON-serializable dict (for ``BENCH_*.json`` artifacts).

    Layout: ``{"parameter", "values", "policies", "points": [{"value",
    "metrics": {policy: {metric: float}}}]}`` — everything a plotting or
    regression-tracking script needs, with plain floats throughout.
    """
    return {
        "parameter": sweep.parameter,
        "values": [float(v) for v in sweep.values],
        "policies": sweep.policies,
        "points": [
            {
                "value": float(point.value),
                "metrics": {
                    policy: {k: float(v) for k, v in metrics.items()}
                    for policy, metrics in point.metrics.items()
                },
            }
            for point in sweep.points
        ],
    }


def render_sweep_table(sweep: SweepResult, metric: str, *, title: str = "") -> str:
    """One metric of a sweep as an aligned text table (policies x values)."""
    label = METRIC_LABELS.get(metric, metric)
    header_title = title or f"{label} vs {sweep.parameter}"
    values = sweep.values
    name_width = max([len(p) for p in sweep.policies] + [len(sweep.parameter)])
    col_width = max(12, max(len(f"{v:g}") for v in values) + 2)

    lines = [header_title, "-" * len(header_title)]
    header = sweep.parameter.ljust(name_width) + "".join(
        f"{v:>{col_width}g}" for v in values
    )
    lines.append(header)
    for policy in sweep.policies:
        row = policy.ljust(name_width)
        for v in sweep.series(metric, policy):
            row += f"{v:>{col_width}.1f}"
        lines.append(row)
    return "\n".join(lines)


def render_headline_table(sweep: SweepResult, *, reference: str = "LRFU") -> str:
    """Section V-C(1)-style summary: savings vs LRFU and ratios to offline."""
    if len(sweep.points) != 1:
        raise ValueError("headline table expects a single-point sweep")
    metrics = sweep.points[0].metrics
    lines = [
        f"headline comparison at {sweep.parameter} = {sweep.points[0].value:g}",
        f"{'policy':<16}{'total cost':>14}{'vs ' + reference:>12}{'vs Offline':>12}",
    ]
    ref_total = metrics[reference]["total"] if reference in metrics else float("nan")
    off_total = metrics.get("Offline", {}).get("total", float("nan"))
    for policy, vals in metrics.items():
        total = vals["total"]
        saving = (1.0 - total / ref_total) * 100.0 if ref_total else float("nan")
        ratio = total / off_total if off_total else float("nan")
        lines.append(f"{policy:<16}{total:>14.1f}{saving:>11.1f}%{ratio:>12.3f}")
    return "\n".join(lines)

"""Realized-cost evaluation of policy plans.

All policies — offline, online, baselines — are scored here against the
*true* demand trace, with the same machinery, so comparisons are apples to
apples. Two evaluation modes:

- ``"reoptimize"`` (default): given the plan's caches, the load balancing
  is re-solved exactly on the true demand (the fixed-cache oracle). This
  scores the *caching* decisions: every policy gets the best feasible
  ``y`` for its caches, which is also how the replacement-count and
  BS-cost figures of the paper are comparable across policies.
- ``"as_decided"``: the plan's own ``y`` (computed from predictions) is
  used after a feasibility repair — masked by the installed caches and
  scaled down proportionally wherever the realized bandwidth usage would
  exceed ``B_n``. This scores caching *and* load-balancing decisions.

When the scenario carries a fault schedule (see :mod:`repro.faults`), the
engine scores plans against the *effective* per-slot network state: planned
caches are rolled forward with the outage-freeze/evict-to-fit repair
(:func:`repro.faults.realize_caching`) so the realized trajectory never
violates a shrunken capacity, and the load balancing is re-solved per
maximal run of slots with identical effective bandwidths — a down SBS
therefore serves nothing, and its traffic falls back to the BS. Both
evaluation modes honor this; the realized ``(x, y)`` in the returned
:class:`RunResult` always satisfies the effective constraints
(:func:`repro.faults.assert_feasible_under_faults` audits exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.load_balancing import solve_y_given_x
from repro.core.problem import JointProblem
from repro.exceptions import ConfigurationError
from repro.faults.degrade import realize_caching, scenario_states
from repro.network.costs import (
    CostBreakdown,
    bs_operating_cost,
    replacement_cost,
    replacement_count,
    sbs_operating_cost,
)
from repro.obs.recorder import current_recorder, emit
from repro.scenario import PolicyPlan, Scenario, validate_plan
from repro.types import FloatArray

EvaluationMode = Literal["reoptimize", "as_decided"]


@dataclass(frozen=True)
class RunResult:
    """Realized outcome of one policy on one scenario.

    Attributes
    ----------
    policy:
        Display name of the policy.
    cost:
        Itemized total cost over the horizon.
    per_slot_total:
        Realized total cost per slot, shape ``(T,)`` (for time-series plots).
    per_slot_replacements:
        Cache insertions per slot, shape ``(T,)``.
    x, y:
        The realized trajectories.
    solves:
        Number of optimization solves the policy performed.
    wall_time:
        Wall-clock seconds spent planning + scoring this policy (set by
        :func:`repro.sim.runner.run_policy`; 0 when not measured).
    """

    policy: str
    cost: CostBreakdown
    per_slot_total: FloatArray
    per_slot_replacements: FloatArray
    x: FloatArray
    y: FloatArray
    solves: int
    wall_time: float = 0.0


def evaluate_plan(
    scenario: Scenario,
    plan: PolicyPlan,
    *,
    policy_name: str = "policy",
    mode: EvaluationMode = "reoptimize",
) -> RunResult:
    """Score a plan against the scenario's true demand."""
    if mode not in ("reoptimize", "as_decided"):
        raise ConfigurationError(f"unknown evaluation mode {mode!r}")
    validate_plan(scenario, plan)
    faulted = scenario.faults is not None and not scenario.faults.is_empty
    if faulted:
        states = scenario_states(scenario)
        x = realize_caching(
            plan.x, scenario.x_initial, states, scenario.demand.rates, scenario.network
        )
    else:
        states = None
        x = np.where(plan.x > 0.5, 1.0, 0.0)

    if mode == "as_decided" and plan.y is not None:
        bw = states.bandwidths if states is not None else None
        y = _repair_decided_y(scenario, x, plan.y, bandwidths=bw)
    elif faulted:
        y = _solve_y_under_faults(scenario, x, states)
    else:
        y = solve_y_given_x(scenario.problem(), x).y

    net = scenario.network
    T = scenario.horizon
    per_slot_total = np.zeros(T)
    per_slot_repl = np.zeros(T)
    totals = CostBreakdown.zero()
    prev = scenario.x_initial
    # Telemetry is gated once, not per emit: the per-slot event fields
    # (churn counts, reroute detection) cost numpy work we skip entirely
    # when no recorder is ambient.
    recording = current_recorder() is not None
    fault_mask = (
        scenario.faults.active_mask(T)
        if recording and faulted
        else None
    )
    for t in range(T):
        if recording:
            emit(
                "slot_start",
                slot=t,
                policy=policy_name,
                demand=float(scenario.demand.rates[t].sum()),
            )
            if fault_mask is not None:
                if fault_mask[t] and (t == 0 or not fault_mask[t - 1]):
                    emit("fault_injected", slot=t, policy=policy_name)
                if not fault_mask[t] and t > 0 and fault_mask[t - 1]:
                    emit("fault_cleared", slot=t, policy=policy_name)
            inserted = int(np.sum((x[t] > 0.5) & (prev <= 0.5)))
            evicted = int(np.sum((x[t] <= 0.5) & (prev > 0.5)))
            if inserted:
                emit("cache_insert", slot=t, policy=policy_name, count=inserted)
            if evicted:
                emit("cache_evict", slot=t, policy=policy_name, count=evicted)
            if states is not None:
                down = (states.bandwidths[t] <= 0.0) & (net.bandwidths > 0.0)
                for n in np.flatnonzero(down):
                    rerouted = float(
                        scenario.demand.rates[t][net.class_sbs == n].sum()
                    )
                    emit(
                        "reroute",
                        slot=t,
                        policy=policy_name,
                        sbs=int(n),
                        load=rerouted,
                    )
        slot = CostBreakdown(
            bs_operating_cost(net, scenario.demand.rates[t], y[t], scenario.bs_cost),
            sbs_operating_cost(net, scenario.demand.rates[t], y[t], scenario.sbs_cost),
            replacement_cost(net, x[t], prev),
            replacement_count(x[t], prev),
        )
        per_slot_total[t] = slot.total
        per_slot_repl[t] = slot.replacements
        totals = totals + slot
        prev = x[t]
        if recording:
            emit(
                "slot_end",
                slot=t,
                policy=policy_name,
                total=float(slot.total),
                bs=float(slot.bs_cost),
                sbs=float(slot.sbs_cost),
                replacement=float(slot.replacement),
                replacements=int(slot.replacements),
            )

    return RunResult(
        policy=policy_name,
        cost=totals,
        per_slot_total=per_slot_total,
        per_slot_replacements=per_slot_repl,
        x=x,
        y=y,
        solves=plan.solves,
    )


def _solve_y_under_faults(scenario: Scenario, x: FloatArray, states) -> FloatArray:
    """Fixed-cache oracle under per-slot effective bandwidths.

    The solvers assume one bandwidth vector per problem, so the horizon is
    split into maximal runs of slots with identical effective state (a
    handful for window-shaped fault schedules) and each run is solved on a
    correspondingly degraded network. A down SBS has effective bandwidth 0,
    which forces ``y = 0`` for its classes — the re-route to the BS.
    """
    net = scenario.network
    rates = scenario.demand.rates
    y = np.zeros((scenario.horizon, net.num_classes, net.num_items))
    for lo, hi in states.segments():
        seg_net = net.with_bandwidths([float(b) for b in states.bandwidths[lo]])
        seg_problem = JointProblem(
            network=seg_net,
            demand=rates[lo:hi],
            x_initial=None,
            bs_cost=scenario.bs_cost,
            sbs_cost=scenario.sbs_cost,
        )
        y[lo:hi] = solve_y_given_x(seg_problem, x[lo:hi]).y
    return y


def _repair_decided_y(
    scenario: Scenario,
    x: FloatArray,
    y_decided: FloatArray,
    *,
    bandwidths: FloatArray | None = None,
) -> FloatArray:
    """Make predicted-demand ``y`` feasible under the true demand.

    Masks by installed caches, clips to the unit box, then scales each
    (slot, SBS) block down proportionally if its realized bandwidth usage
    exceeds ``B_n``. Proportional scaling is the minimal projection along
    the ray and never increases the objective relative to any feasible
    scaling, so it does not flatter the online policies.

    ``bandwidths`` overrides the nominal budgets with per-slot effective
    values, shape ``(T, N)`` — the degradation path: a slot whose SBS is
    down has budget 0 there, so its whole block scales to zero.
    """
    net = scenario.network
    budgets = (
        np.broadcast_to(net.bandwidths[None, :], (scenario.horizon, net.num_sbs))
        if bandwidths is None
        else bandwidths
    )
    y = np.clip(y_decided, 0.0, 1.0) * x[:, net.class_sbs, :]
    load = (scenario.demand.rates * y).sum(axis=2)  # (T, M)
    per_sbs = np.zeros((scenario.horizon, net.num_sbs))
    np.add.at(per_sbs, (slice(None), net.class_sbs), load)
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = np.where(per_sbs > budgets, budgets / per_sbs, 1.0)
    return y * scale[:, net.class_sbs, None]

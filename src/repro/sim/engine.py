"""Realized-cost evaluation of policy plans.

All policies — offline, online, baselines — are scored here against the
*true* demand trace, with the same machinery, so comparisons are apples to
apples. Two evaluation modes:

- ``"reoptimize"`` (default): given the plan's caches, the load balancing
  is re-solved exactly on the true demand (the fixed-cache oracle). This
  scores the *caching* decisions: every policy gets the best feasible
  ``y`` for its caches, which is also how the replacement-count and
  BS-cost figures of the paper are comparable across policies.
- ``"as_decided"``: the plan's own ``y`` (computed from predictions) is
  used after a feasibility repair — masked by the installed caches and
  scaled down proportionally wherever the realized bandwidth usage would
  exceed ``B_n``. This scores caching *and* load-balancing decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.load_balancing import solve_y_given_x
from repro.exceptions import ConfigurationError
from repro.network.costs import (
    CostBreakdown,
    bs_operating_cost,
    replacement_cost,
    replacement_count,
    sbs_operating_cost,
)
from repro.scenario import PolicyPlan, Scenario, validate_plan
from repro.types import FloatArray

EvaluationMode = Literal["reoptimize", "as_decided"]


@dataclass(frozen=True)
class RunResult:
    """Realized outcome of one policy on one scenario.

    Attributes
    ----------
    policy:
        Display name of the policy.
    cost:
        Itemized total cost over the horizon.
    per_slot_total:
        Realized total cost per slot, shape ``(T,)`` (for time-series plots).
    per_slot_replacements:
        Cache insertions per slot, shape ``(T,)``.
    x, y:
        The realized trajectories.
    solves:
        Number of optimization solves the policy performed.
    wall_time:
        Wall-clock seconds spent planning + scoring this policy (set by
        :func:`repro.sim.runner.run_policy`; 0 when not measured).
    """

    policy: str
    cost: CostBreakdown
    per_slot_total: FloatArray
    per_slot_replacements: FloatArray
    x: FloatArray
    y: FloatArray
    solves: int
    wall_time: float = 0.0


def evaluate_plan(
    scenario: Scenario,
    plan: PolicyPlan,
    *,
    policy_name: str = "policy",
    mode: EvaluationMode = "reoptimize",
) -> RunResult:
    """Score a plan against the scenario's true demand."""
    validate_plan(scenario, plan)
    problem = scenario.problem()
    x = np.where(plan.x > 0.5, 1.0, 0.0)

    if mode == "reoptimize":
        y = solve_y_given_x(problem, x).y
    elif mode == "as_decided":
        if plan.y is None:
            y = solve_y_given_x(problem, x).y
        else:
            y = _repair_decided_y(scenario, x, plan.y)
    else:
        raise ConfigurationError(f"unknown evaluation mode {mode!r}")

    net = scenario.network
    T = scenario.horizon
    per_slot_total = np.zeros(T)
    per_slot_repl = np.zeros(T)
    totals = CostBreakdown.zero()
    prev = scenario.x_initial
    for t in range(T):
        slot = CostBreakdown(
            bs_operating_cost(net, scenario.demand.rates[t], y[t], scenario.bs_cost),
            sbs_operating_cost(net, scenario.demand.rates[t], y[t], scenario.sbs_cost),
            replacement_cost(net, x[t], prev),
            replacement_count(x[t], prev),
        )
        per_slot_total[t] = slot.total
        per_slot_repl[t] = slot.replacements
        totals = totals + slot
        prev = x[t]

    return RunResult(
        policy=policy_name,
        cost=totals,
        per_slot_total=per_slot_total,
        per_slot_replacements=per_slot_repl,
        x=x,
        y=y,
        solves=plan.solves,
    )


def _repair_decided_y(
    scenario: Scenario, x: FloatArray, y_decided: FloatArray
) -> FloatArray:
    """Make predicted-demand ``y`` feasible under the true demand.

    Masks by installed caches, clips to the unit box, then scales each
    (slot, SBS) block down proportionally if its realized bandwidth usage
    exceeds ``B_n``. Proportional scaling is the minimal projection along
    the ray and never increases the objective relative to any feasible
    scaling, so it does not flatter the online policies.
    """
    net = scenario.network
    y = np.clip(y_decided, 0.0, 1.0) * x[:, net.class_sbs, :]
    load = (scenario.demand.rates * y).sum(axis=2)  # (T, M)
    per_sbs = np.zeros((scenario.horizon, net.num_sbs))
    np.add.at(per_sbs, (slice(None), net.class_sbs), load)
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = np.where(
            per_sbs > net.bandwidths[None, :],
            net.bandwidths[None, :] / per_sbs,
            1.0,
        )
    return y * scale[:, net.class_sbs, None]

"""Extended metrics derived from realized trajectories.

Beyond the four cost quantities the paper plots, operators of an edge
caching system watch a handful of standard efficiency indicators. These
are computed from a finished :class:`~repro.sim.engine.RunResult` (or raw
trajectories) and used by the examples and the discrete-event validation
layer:

- **cache hit ratio** — fraction of demand volume whose content was cached
  at its SBS when requested (regardless of bandwidth);
- **offload ratio** — fraction of demand volume actually served by SBSs
  (``y``-weighted, so bandwidth-limited);
- **bandwidth utilization** — per-SBS mean utilization of ``B_n``;
- **cache occupancy** — mean fraction of cache slots in use;
- **churn rate** — cache insertions per slot per SBS;
- **fairness** — Jain's index over per-class offload ratios (do a few
  lucky classes get all the edge service?).

The resilience benchmark adds two fault-centric indicators
(:func:`cost_under_faults`, :func:`time_to_recover`) comparing a faulted
run's per-slot cost trace against the same policy's fault-free trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.network.topology import Network
from repro.types import FloatArray


@dataclass(frozen=True)
class EdgeMetrics:
    """Operational indicators of one realized run.

    All ratios lie in ``[0, 1]``; ``churn_per_slot`` is insertions per slot
    summed over SBSs.
    """

    hit_ratio: float
    offload_ratio: float
    bandwidth_utilization: FloatArray  # per SBS, shape (N,)
    cache_occupancy: FloatArray  # per SBS, shape (N,)
    churn_per_slot: float
    offload_fairness: float

    def summary(self) -> str:
        """One-line human-readable rendering for reports."""
        util = ", ".join(f"{u:.0%}" for u in self.bandwidth_utilization)
        occ = ", ".join(f"{o:.0%}" for o in self.cache_occupancy)
        return (
            f"hit={self.hit_ratio:.1%} offload={self.offload_ratio:.1%} "
            f"bw-util=[{util}] occupancy=[{occ}] "
            f"churn={self.churn_per_slot:.2f}/slot "
            f"fairness={self.offload_fairness:.2f}"
        )


def cost_under_faults(per_slot_total: FloatArray, active_mask: np.ndarray) -> float:
    """Realized cost summed over the slots during which any fault is active."""
    per_slot_total = np.asarray(per_slot_total, dtype=np.float64)
    active = np.asarray(active_mask, dtype=bool)
    if per_slot_total.shape != active.shape:
        raise DimensionMismatchError(
            f"per-slot costs {per_slot_total.shape} vs mask {active.shape}"
        )
    return float(per_slot_total[active].sum())


def time_to_recover(
    per_slot_total: FloatArray,
    baseline_per_slot: FloatArray,
    recover_from: int,
    *,
    rel_tol: float = 0.05,
) -> int | None:
    """Slots after ``recover_from`` until the faulted cost trace re-joins baseline.

    The faulted run has "recovered" at the first slot ``t >= recover_from``
    whose realized cost is within ``rel_tol`` (relative) of the fault-free
    baseline at the same slot; the returned value is ``t - recover_from``
    (0 = recovered immediately when the faults ended). ``None`` means the
    trace never re-joins the baseline within the horizon — e.g. a
    fault-time eviction that keeps costing re-fetches to the end.
    """
    per_slot_total = np.asarray(per_slot_total, dtype=np.float64)
    baseline = np.asarray(baseline_per_slot, dtype=np.float64)
    if per_slot_total.shape != baseline.shape:
        raise DimensionMismatchError(
            f"per-slot costs {per_slot_total.shape} vs baseline {baseline.shape}"
        )
    T = per_slot_total.shape[0]
    start = max(int(recover_from), 0)
    if start >= T:
        return 0
    tail = per_slot_total[start:]
    base_tail = baseline[start:]
    ok = tail <= base_tail + rel_tol * np.maximum(np.abs(base_tail), 1.0)
    hits = np.nonzero(ok)[0]
    if hits.size == 0:
        return None
    return int(hits[0])


def jain_index(values: FloatArray) -> float:
    """Jain's fairness index ``(sum v)^2 / (n * sum v^2)``; 1 = perfectly fair.

    Entries that are all zero yield 1.0 (vacuously fair).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 1.0
    total_sq = float(values.sum()) ** 2
    denom = values.size * float(np.square(values).sum())
    if denom == 0.0:
        return 1.0
    return total_sq / denom


def compute_edge_metrics(
    network: Network,
    demand: FloatArray,
    x: FloatArray,
    y: FloatArray,
    *,
    x_initial: FloatArray | None = None,
) -> EdgeMetrics:
    """Compute :class:`EdgeMetrics` from realized trajectories.

    Parameters
    ----------
    demand:
        True demand, shape ``(T, M, K)``.
    x:
        Caching trajectory, shape ``(T, N, K)``.
    y:
        Realized load balancing, shape ``(T, M, K)``.
    """
    T = demand.shape[0]
    if x.shape != (T, network.num_sbs, network.num_items):
        raise DimensionMismatchError(f"x has shape {x.shape}")
    if y.shape != demand.shape:
        raise DimensionMismatchError(f"y has shape {y.shape}")

    total_volume = float(demand.sum())
    cached_at_request = x[:, network.class_sbs, :]  # (T, M, K)
    hit_volume = float((demand * cached_at_request).sum())
    served_volume = float((demand * y).sum())

    # Per-SBS bandwidth utilization.
    load_per_class = (demand * y).sum(axis=2)  # (T, M)
    per_sbs_load = np.zeros((T, network.num_sbs))
    np.add.at(per_sbs_load, (slice(None), network.class_sbs), load_per_class)
    with np.errstate(divide="ignore", invalid="ignore"):
        utilization = np.where(
            network.bandwidths > 0,
            per_sbs_load.mean(axis=0) / network.bandwidths,
            0.0,
        )

    with np.errstate(divide="ignore", invalid="ignore"):
        occupancy = np.where(
            network.cache_sizes > 0,
            x.sum(axis=2).mean(axis=0) / network.cache_sizes,
            0.0,
        )

    prev = (
        np.zeros((network.num_sbs, network.num_items))
        if x_initial is None
        else x_initial
    )
    insertions = 0.0
    for t in range(T):
        insertions += float(np.clip(x[t] - prev, 0, None).sum())
        prev = x[t]

    per_class_volume = demand.sum(axis=(0, 2))
    per_class_served = (demand * y).sum(axis=(0, 2))
    with np.errstate(divide="ignore", invalid="ignore"):
        per_class_ratio = np.where(
            per_class_volume > 0, per_class_served / per_class_volume, 0.0
        )
    active = per_class_volume > 0

    return EdgeMetrics(
        hit_ratio=hit_volume / total_volume if total_volume else 0.0,
        offload_ratio=served_volume / total_volume if total_volume else 0.0,
        bandwidth_utilization=utilization,
        cache_occupancy=occupancy,
        churn_per_slot=insertions / T if T else 0.0,
        offload_fairness=jain_index(per_class_ratio[active]),
    )

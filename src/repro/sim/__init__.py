"""Simulation engine, experiment sweeps, and report rendering."""

from repro.sim.engine import RunResult, evaluate_plan
from repro.sim.experiment import (
    SweepPoint,
    SweepResult,
    bandwidth_sweep,
    beta_sweep,
    default_policies,
    headline_comparison,
    noise_sweep,
    paper_scenario,
    window_sweep,
)
from repro.sim.resilience import (
    PolicyResilience,
    ResilienceReport,
    default_fault_schedule,
    render_resilience_table,
    run_resilience,
)
from repro.sim.runner import run_policies, run_policy
from repro.sim.report import render_sweep_table, render_headline_table, sweep_to_dict

__all__ = [
    "PolicyResilience",
    "ResilienceReport",
    "RunResult",
    "default_fault_schedule",
    "render_resilience_table",
    "run_resilience",
    "sweep_to_dict",
    "SweepPoint",
    "SweepResult",
    "bandwidth_sweep",
    "beta_sweep",
    "default_policies",
    "evaluate_plan",
    "headline_comparison",
    "noise_sweep",
    "paper_scenario",
    "render_headline_table",
    "render_sweep_table",
    "run_policies",
    "run_policy",
    "window_sweep",
]

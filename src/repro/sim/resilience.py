"""Resilience experiment: cost and recovery of policies under faults.

The acceptance scenario of the fault-injection runtime is one seeded
fault schedule — an SBS outage followed by a bandwidth-degradation
window — run through the online controllers and the LRFU baseline.
:func:`run_resilience` executes each policy twice on the *same* scenario,
once fault-free and once with the schedule injected, then derives three
resilience indicators per policy:

- **cost under faults** — realized cost summed over the slots any fault
  was active (:func:`repro.sim.metrics.cost_under_faults`);
- **time to recover** — slots after the last fault ends until the faulted
  per-slot cost trace re-joins the fault-free trace
  (:func:`repro.sim.metrics.time_to_recover`);
- **constraint violations** — worst-case slacks of the realized
  trajectories against the *effective* (degraded) constraints, audited by
  :func:`repro.faults.assert_feasible_under_faults`. A run that violates
  any effective constraint raises instead of reporting.

Everything in the report is JSON-able (``report.to_dict()``), which is
what ``benchmarks/bench_resilience.py`` persists as ``BENCH_resilience``.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.config import RuntimeConfig
from repro.faults import FaultSchedule, inject_faults, single_outage_with_degradation
from repro.faults.degrade import assert_feasible_under_faults
from repro.perf.executor import Executor
from repro.scenario import CachingPolicy, Scenario
from repro.sim.engine import EvaluationMode, RunResult
from repro.sim.experiment import default_policies, paper_scenario
from repro.sim.metrics import cost_under_faults, time_to_recover
from repro.sim.runner import run_policies

logger = logging.getLogger("repro.sim.resilience")


def default_fault_schedule(horizon: int, *, bandwidth_factor: float = 0.5) -> FaultSchedule:
    """The acceptance fault schedule, scaled to ``horizon``.

    One SBS outage in the second quarter of the horizon, then a bandwidth
    drop to ``bandwidth_factor`` starting at mid-horizon; each lasts a
    tenth of the horizon (at least two slots).
    """
    span = max(2, horizon // 10)
    return single_outage_with_degradation(
        sbs=0,
        outage_start=horizon // 4,
        outage_duration=span,
        degradation_start=horizon // 2,
        degradation_duration=span,
        bandwidth_factor=bandwidth_factor,
    )


@dataclass(frozen=True)
class PolicyResilience:
    """Resilience indicators of one policy (faulted vs. fault-free run)."""

    policy: str
    total_cost: float
    fault_free_cost: float
    cost_under_faults: float
    fault_free_cost_under_faults: float
    time_to_recover: int | None
    violations: Mapping[str, float]
    wall_time: float

    @property
    def cost_inflation(self) -> float:
        """Total-cost ratio of the faulted run to the fault-free run."""
        if self.fault_free_cost <= 0:
            return float("nan")
        return self.total_cost / self.fault_free_cost

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "total_cost": self.total_cost,
            "fault_free_cost": self.fault_free_cost,
            "cost_inflation": self.cost_inflation,
            "cost_under_faults": self.cost_under_faults,
            "fault_free_cost_under_faults": self.fault_free_cost_under_faults,
            "time_to_recover": self.time_to_recover,
            "violations": dict(self.violations),
            "wall_time": self.wall_time,
        }


@dataclass(frozen=True)
class ResilienceReport:
    """Full outcome of :func:`run_resilience` (JSON-able via ``to_dict``)."""

    schedule: FaultSchedule
    horizon: int
    mode: EvaluationMode
    policies: tuple[PolicyResilience, ...]
    faulted: Mapping[str, RunResult]
    fault_free: Mapping[str, RunResult]

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "mode": self.mode,
            "schedule": self.schedule.to_dict(),
            "policies": [p.to_dict() for p in self.policies],
        }


def run_resilience(
    scenario: Scenario | None = None,
    schedule: FaultSchedule | None = None,
    policies: Iterable[CachingPolicy] | None = None,
    *,
    horizon: int = 40,
    seed: int = 1,
    window: int = 5,
    mode: EvaluationMode = "reoptimize",
    recover_tol: float = 0.05,
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
    verbose: bool = False,
) -> ResilienceReport:
    """Run policies with and without faults; report degradation and recovery.

    Parameters
    ----------
    scenario:
        A *fault-free* scenario; defaults to the paper scenario at
        ``horizon`` / ``seed``. Must not already carry a fault schedule.
    schedule:
        Fault schedule to inject; defaults to
        :func:`default_fault_schedule` for the scenario's horizon.
    policies:
        Defaults to the online controllers plus LRFU (no offline solver —
        clairvoyant offline planning is not meaningful under unannounced
        faults).
    recover_tol:
        Relative tolerance for the recovery test (see
        :func:`repro.sim.metrics.time_to_recover`).

    Every faulted trajectory is audited against the effective (degraded)
    constraints; a violation raises ``ConfigurationError``.
    """
    if scenario is None:
        scenario = paper_scenario(seed=seed, horizon=horizon)
    if scenario.faults is not None and not scenario.faults.is_empty:
        raise ValueError(
            "run_resilience needs the fault-free scenario; pass the schedule "
            "separately instead of a pre-injected scenario"
        )
    if schedule is None:
        schedule = default_fault_schedule(scenario.horizon)
    if policies is None:
        policies = default_policies(window=window, include_offline=False)
    policy_list = list(policies)
    faulted_scenario = inject_faults(scenario, schedule)

    if verbose:
        logger.info("fault-free baseline (%d policies):", len(policy_list))
    baseline = run_policies(
        scenario, policy_list, mode=mode, verbose=verbose,
        executor=executor, config=config,
    )
    if verbose:
        logger.info("faulted run:")
    faulted = run_policies(
        faulted_scenario, policy_list, mode=mode, verbose=verbose,
        executor=executor, config=config,
    )

    active = schedule.active_mask(scenario.horizon)
    fault_end = schedule.last_fault_end()
    rows = []
    for name, result in faulted.items():
        violations = assert_feasible_under_faults(
            faulted_scenario, result.x, result.y
        )
        base = baseline[name]
        rows.append(
            PolicyResilience(
                policy=name,
                total_cost=result.cost.total,
                fault_free_cost=base.cost.total,
                cost_under_faults=cost_under_faults(result.per_slot_total, active),
                fault_free_cost_under_faults=cost_under_faults(
                    base.per_slot_total, active
                ),
                time_to_recover=time_to_recover(
                    result.per_slot_total,
                    base.per_slot_total,
                    fault_end,
                    rel_tol=recover_tol,
                ),
                violations=violations,
                wall_time=result.wall_time,
            )
        )
    return ResilienceReport(
        schedule=schedule,
        horizon=scenario.horizon,
        mode=mode,
        policies=tuple(rows),
        faulted=faulted,
        fault_free=baseline,
    )


def render_resilience_table(report: ResilienceReport) -> str:
    """Fixed-width text table of a resilience report."""
    header = (
        f"{'policy':<12} {'faulted':>12} {'fault-free':>12} {'inflation':>10} "
        f"{'under-fault':>12} {'recover':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in report.policies:
        recover = "never" if row.time_to_recover is None else f"{row.time_to_recover}"
        lines.append(
            f"{row.policy:<12} {row.total_cost:>12.1f} "
            f"{row.fault_free_cost:>12.1f} {row.cost_inflation:>10.3f} "
            f"{row.cost_under_faults:>12.1f} {recover:>8}"
        )
    return "\n".join(lines)

"""Discrete request-level replay of a caching/load-balancing plan.

The optimization model is *fluid*: demand is a mean rate and ``y`` splits
it fractionally. A real SBS serves individual requests. This module
replays a sampled :class:`~repro.workload.trace.RequestTrace` against a
plan, routing integer requests under the actual cache contents and
bandwidth, and reports the realized costs — validating that conclusions
drawn from the fluid model survive integer granularity.

Routing per slot:

1. a request for content ``k`` from class ``m`` can go to the SBS only if
   ``x[t, sbs(m), k] = 1``;
2. the plan's ``y[t, m, k]`` gives the target fraction routed to the SBS
   (``stochastic=False`` routes the expected integer count, rounding by
   largest remainder; ``stochastic=True`` samples Binomial);
3. if the SBS's integer service budget ``floor(B_n)`` is exceeded, excess
   requests spill back to the BS in increasing-``omega`` order (cheapest
   spill first), mirroring the fluid model's greedy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.network.costs import CostBreakdown, OperatingCost, QuadraticOperatingCost
from repro.network.topology import Network
from repro.types import FloatArray, IntArray
from repro.workload.trace import RequestTrace


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of a discrete replay.

    Attributes
    ----------
    served_sbs, served_bs:
        Integer requests served by the SBS / BS per ``(t, m, k)``.
    cost:
        Realized itemized cost, computed on the integer counts.
    hit_requests:
        Requests whose content was cached at request time (served from the
        SBS or not - the cacheability measure).
    total_requests:
        Total requests in the trace.
    """

    served_sbs: IntArray
    served_bs: IntArray
    cost: CostBreakdown
    hit_requests: int
    total_requests: int

    @property
    def offload_ratio(self) -> float:
        return self.served_sbs.sum() / max(self.total_requests, 1)

    @property
    def hit_ratio(self) -> float:
        return self.hit_requests / max(self.total_requests, 1)


def _largest_remainder_round(targets: FloatArray) -> IntArray:
    """Round non-negative targets to integers preserving the rounded total.

    Works on arrays of any shape (rounding is global across all entries).
    """
    flat = np.asarray(targets, dtype=np.float64).reshape(-1)
    floors = np.floor(flat).astype(np.int64)
    remainders = flat - floors
    extra = int(round(float(remainders.sum())))
    if extra > 0:
        order = np.argsort(-remainders, kind="stable")[:extra]
        floors[order] += 1
    return floors.reshape(np.asarray(targets).shape)


def replay_trace(
    network: Network,
    trace: RequestTrace,
    x: FloatArray,
    y: FloatArray,
    *,
    x_initial: FloatArray | None = None,
    stochastic: bool = False,
    rng: np.random.Generator | None = None,
    bs_cost: OperatingCost | None = None,
    sbs_cost: OperatingCost | None = None,
) -> ReplayReport:
    """Replay ``trace`` against the plan ``(x, y)``; see module docstring."""
    T, M, K = trace.counts.shape
    if x.shape != (T, network.num_sbs, K):
        raise DimensionMismatchError(f"x has shape {x.shape}")
    if y.shape != (T, M, K):
        raise DimensionMismatchError(f"y has shape {y.shape}")
    if stochastic and rng is None:
        raise ConfigurationError("stochastic replay needs an rng")
    bs_cost = bs_cost or QuadraticOperatingCost()
    sbs_cost = sbs_cost or QuadraticOperatingCost()

    counts = trace.counts
    cached = x[:, network.class_sbs, :] > 0.5  # (T, M, K)

    # Step 1+2: per-cell target SBS service.
    if stochastic:
        assert rng is not None
        routed = rng.binomial(counts, np.clip(y, 0.0, 1.0) * cached)
    else:
        routed = np.zeros_like(counts)
        for t in range(T):
            targets = counts[t] * np.clip(y[t], 0.0, 1.0) * cached[t]
            routed[t] = _largest_remainder_round(targets)
    routed = np.minimum(routed, counts * cached)

    # Step 3: integer bandwidth budgets, spilling cheapest requests first.
    budgets = np.floor(network.bandwidths).astype(np.int64)
    for t in range(T):
        for n in range(network.num_sbs):
            classes = network.classes_of_sbs[n]
            load = int(routed[t][classes].sum())
            excess = load - int(budgets[n])
            if excess <= 0:
                continue
            omega = network.omega_bs[classes]
            # Spill from the lowest-omega classes first (cheapest on the BS).
            for idx in np.argsort(omega, kind="stable"):
                if excess <= 0:
                    break
                m = classes[idx]
                row = routed[t, m]
                take = min(int(row.sum()), excess)
                # Remove requests item by item (largest allocations first).
                for k in np.argsort(-row, kind="stable"):
                    if take <= 0:
                        break
                    dec = min(int(row[k]), take)
                    routed[t, m, k] -= dec
                    take -= dec
                    excess -= dec

    served_bs = counts - routed

    # Realized costs on the integer counts.
    totals = CostBreakdown.zero()
    prev = (
        np.zeros((network.num_sbs, K)) if x_initial is None else x_initial
    )
    for t in range(T):
        bs_load = np.zeros(network.num_sbs)
        sbs_load = np.zeros(network.num_sbs)
        per_class_bs = network.omega_bs * served_bs[t].sum(axis=1)
        per_class_sbs = network.omega_sbs * routed[t].sum(axis=1)
        np.add.at(bs_load, network.class_sbs, per_class_bs)
        np.add.at(sbs_load, network.class_sbs, per_class_sbs)
        inserted = np.clip(x[t] - prev, 0.0, None).sum(axis=1)
        totals = totals + CostBreakdown(
            bs_cost.evaluate(bs_load),
            sbs_cost.evaluate(sbs_load),
            float(np.dot(network.replacement_costs, inserted)),
            int(np.count_nonzero((x[t] - prev) > 1e-6)),
        )
        prev = x[t]

    hit_requests = int((counts * cached).sum())
    return ReplayReport(
        served_sbs=routed,
        served_bs=served_bs,
        cost=totals,
        hit_requests=hit_requests,
        total_requests=int(counts.sum()),
    )

"""Minimal ASCII line charts for sweep and trace series.

The CLI runs in terminals without plotting libraries; this renders series
as a fixed-grid character chart so trends (who wins, crossings, flat
baselines) are visible at a glance without leaving the shell.

:func:`render_series_chart` is the generic grid renderer;
:func:`render_ascii_chart` keeps the original sweep-facing signature and
the `repro.obs` dashboard reuses the generic form for trace time series.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.experiment import SweepResult

_MARKERS = "ox*+#@%&"


def render_series_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str,
    x_label: str = "",
    width: int = 60,
    height: int = 16,
) -> str:
    """Render named y-series over shared x-values as an ASCII grid chart.

    Non-finite points (NaN, ±inf) are skipped — trace series routinely
    carry them (a policy with no sample at some slot, an unconverged
    solve's infinite gap). A chart with no series, no x values, or no
    finite point at all degrades to a one-line placeholder instead of
    raising: live dashboards must render *something* on their first,
    still-empty frame. Bad geometry stays an error.
    """
    if width < 16 or height < 4:
        raise ConfigurationError("chart needs width >= 16 and height >= 4")
    if not series:
        return f"{title}\n  (no series to plot)"
    values = np.asarray(list(x_values), dtype=np.float64)
    if values.size == 0:
        return f"{title}\n  (no x values to plot)"
    finite_x = values[np.isfinite(values)]
    all_y = [
        float(y)
        for ys in series.values()
        for y in ys
        if math.isfinite(float(y))
    ]
    if not all_y or finite_x.size == 0:
        return f"{title}\n  (no finite points to plot)"
    lo = min(all_y)
    hi = max(all_y)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_min = float(finite_x.min())
    x_max = float(finite_x.max())
    x_span = (x_max - x_min) or 1.0

    def col(v: float) -> int:
        return int(round((v - x_min) / x_span * (width - 1)))

    def row(y: float) -> int:
        frac = (y - lo) / (hi - lo)
        return (height - 1) - int(round(frac * (height - 1)))

    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for v, y in zip(values, ys):
            y = float(y)
            v = float(v)
            if not math.isfinite(y) or not math.isfinite(v):
                continue
            grid[row(y)][col(v)] = marker

    lines = [title]
    lines.append(f"{hi:>12.1f} ┤" + "".join(grid[0]))
    for r in range(1, height - 1):
        lines.append(" " * 12 + " │" + "".join(grid[r]))
    lines.append(f"{lo:>12.1f} ┤" + "".join(grid[-1]))
    axis = " " * 12 + " └" + "─" * width
    lines.append(axis)
    lines.append(
        " " * 14 + f"{x_min:<10g}{'':^{max(width - 20, 0)}}{x_max:>10g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def render_ascii_chart(
    sweep: SweepResult,
    metric: str,
    *,
    width: int = 60,
    height: int = 16,
) -> str:
    """Render one metric of a sweep as an ASCII chart with a legend."""
    table = sweep.table(metric)
    if not table:
        raise ConfigurationError("sweep has no policies to plot")
    return render_series_chart(
        [float(v) for v in sweep.values],
        {name: [float(y) for y in ys] for name, ys in table.items()},
        title=f"{metric} vs {sweep.parameter}",
        x_label=sweep.parameter,
        width=width,
        height=height,
    )

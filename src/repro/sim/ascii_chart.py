"""Minimal ASCII line charts for sweep series.

The CLI runs in terminals without plotting libraries; this renders a sweep
as a fixed-grid character chart so trends (who wins, crossings, flat
baselines) are visible at a glance without leaving the shell.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.experiment import SweepResult

_MARKERS = "ox*+#@%&"


def render_ascii_chart(
    sweep: SweepResult,
    metric: str,
    *,
    width: int = 60,
    height: int = 16,
) -> str:
    """Render one metric of a sweep as an ASCII chart with a legend."""
    if width < 16 or height < 4:
        raise ConfigurationError("chart needs width >= 16 and height >= 4")
    table = sweep.table(metric)
    if not table:
        raise ConfigurationError("sweep has no policies to plot")
    values = np.asarray(sweep.values, dtype=np.float64)
    all_y = np.array(list(table.values()), dtype=np.float64)
    lo = float(all_y.min())
    hi = float(all_y.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_span = float(values.max() - values.min()) or 1.0

    def col(v: float) -> int:
        return int(round((v - values.min()) / x_span * (width - 1)))

    def row(y: float) -> int:
        frac = (y - lo) / (hi - lo)
        return (height - 1) - int(round(frac * (height - 1)))

    for idx, (name, series) in enumerate(table.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for v, y in zip(values, series):
            grid[row(float(y))][col(float(v))] = marker

    lines = [f"{metric} vs {sweep.parameter}"]
    lines.append(f"{hi:>12.1f} ┤" + "".join(grid[0]))
    for r in range(1, height - 1):
        lines.append(" " * 12 + " │" + "".join(grid[r]))
    lines.append(f"{lo:>12.1f} ┤" + "".join(grid[-1]))
    axis = " " * 12 + " └" + "─" * width
    lines.append(axis)
    lines.append(
        " " * 14 + f"{values.min():<10g}{'':^{max(width - 20, 0)}}{values.max():>10g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(table)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)

"""Run policies on scenarios and collect results."""

from __future__ import annotations

import time
from typing import Iterable, Mapping

from repro.scenario import CachingPolicy, Scenario
from repro.sim.engine import EvaluationMode, RunResult, evaluate_plan


def run_policy(
    scenario: Scenario,
    policy: CachingPolicy,
    *,
    mode: EvaluationMode = "reoptimize",
) -> RunResult:
    """Plan with ``policy`` and score it against the scenario's true demand."""
    plan = policy.plan(scenario)
    return evaluate_plan(scenario, plan, policy_name=policy.name, mode=mode)


def run_policies(
    scenario: Scenario,
    policies: Iterable[CachingPolicy],
    *,
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
) -> dict[str, RunResult]:
    """Run several policies on the same scenario; keyed by policy name."""
    results: dict[str, RunResult] = {}
    for policy in policies:
        started = time.perf_counter()
        results[policy.name] = run_policy(scenario, policy, mode=mode)
        if verbose:
            elapsed = time.perf_counter() - started
            total = results[policy.name].cost.total
            print(f"  {policy.name:<16} total={total:12.1f}  ({elapsed:.2f}s)")
    return results


def cost_ratios(
    results: Mapping[str, RunResult], *, reference: str = "Offline"
) -> dict[str, float]:
    """Total-cost ratios of every policy to a reference policy.

    The paper's Section V-C reports these as "cost ratio to offline".
    """
    if reference not in results:
        raise KeyError(f"reference policy {reference!r} not in results")
    base = results[reference].cost.total
    if base <= 0:
        return {name: float("nan") for name in results}
    return {name: r.cost.total / base for name, r in results.items()}

"""Run policies on scenarios and collect results.

Policy evaluations on one scenario are independent of each other, so
:func:`run_policies` can fan them out through the shared executor layer
(:mod:`repro.perf.executor`). Results are reduced in the order the
policies were given, bit-identical to a serial run.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, Mapping

from repro.perf.executor import Executor, resolve_executor
from repro.scenario import CachingPolicy, Scenario
from repro.sim.engine import EvaluationMode, RunResult, evaluate_plan


def run_policy(
    scenario: Scenario,
    policy: CachingPolicy,
    *,
    mode: EvaluationMode = "reoptimize",
) -> RunResult:
    """Plan with ``policy`` and score it against the scenario's true demand.

    The returned result carries the wall-clock seconds the plan + scoring
    took (``RunResult.wall_time``), measured where the work actually ran —
    inside the worker when executed through a parallel executor.
    """
    started = time.perf_counter()
    plan = policy.plan(scenario)
    result = evaluate_plan(scenario, plan, policy_name=policy.name, mode=mode)
    return replace(result, wall_time=time.perf_counter() - started)


def _run_policy_task(
    task: tuple[Scenario, CachingPolicy, EvaluationMode],
) -> RunResult:
    """Module-level task wrapper so process executors can pickle it."""
    scenario, policy, mode = task
    return run_policy(scenario, policy, mode=mode)


def run_policies(
    scenario: Scenario,
    policies: Iterable[CachingPolicy],
    *,
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
    executor: Executor | str | None = None,
) -> dict[str, RunResult]:
    """Run several policies on the same scenario; keyed by policy name.

    With an ``executor`` (or ``REPRO_WORKERS`` set) the policies run in
    parallel; the result dict is always in input-policy order.
    """
    policy_list = list(policies)
    ex = resolve_executor(executor)
    if ex.workers > 1 and len(policy_list) > 1:
        outcomes = ex.map(
            _run_policy_task, [(scenario, p, mode) for p in policy_list]
        )
        if verbose:
            for result in outcomes:
                print(
                    f"  {result.policy:<16} total={result.cost.total:12.1f}"
                    f"  ({result.wall_time:.2f}s)"
                )
        return {result.policy: result for result in outcomes}

    results: dict[str, RunResult] = {}
    for policy in policy_list:
        results[policy.name] = run_policy(scenario, policy, mode=mode)
        if verbose:
            result = results[policy.name]
            print(
                f"  {policy.name:<16} total={result.cost.total:12.1f}"
                f"  ({result.wall_time:.2f}s)"
            )
    return results


def cost_ratios(
    results: Mapping[str, RunResult], *, reference: str = "Offline"
) -> dict[str, float]:
    """Total-cost ratios of every policy to a reference policy.

    The paper's Section V-C reports these as "cost ratio to offline".
    """
    if reference not in results:
        raise KeyError(f"reference policy {reference!r} not in results")
    base = results[reference].cost.total
    if base <= 0:
        return {name: float("nan") for name in results}
    return {name: r.cost.total / base for name, r in results.items()}

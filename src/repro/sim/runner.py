"""Run policies on scenarios and collect results.

Policy evaluations on one scenario are independent of each other, so
:func:`run_policies` can fan them out through the shared executor layer
(:mod:`repro.perf.executor`). Results are reduced in the order the
policies were given, bit-identical to a serial run.

Result dicts are keyed by policy name. Duplicate names (two ``RHC``
instances with different windows, say) would silently collapse into one
entry, so :func:`run_policies` de-duplicates them up front with the same
renaming adapter the sweeps use — ``RHC``, ``RHC#2``, ``RHC#3`` — and keys
the serial and parallel branches identically.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, replace
from typing import Iterable, Mapping

from repro.config import RuntimeConfig
from repro.obs.recorder import current_recorder, label_scope
from repro.perf.executor import Executor, map_recorded, resolve_executor
from repro.scenario import CachingPolicy, PolicyPlan, Scenario
from repro.sim.engine import EvaluationMode, RunResult, evaluate_plan

logger = logging.getLogger("repro.sim.runner")


@dataclass(frozen=True)
class _RenamedPolicy:
    """Present a policy under a stable display name.

    Sweeps that vary a policy parameter (e.g. the window ``w``) embed the
    parameter in the default names, which would make series keys differ
    across sweep points; this adapter pins the key. :func:`run_policies`
    also uses it to de-duplicate colliding names.
    """

    inner: CachingPolicy
    display: str

    @property
    def name(self) -> str:
        return self.display

    def plan(self, scenario: Scenario) -> PolicyPlan:
        return self.inner.plan(scenario)


def _stable_names(policies: Iterable[CachingPolicy]) -> list[CachingPolicy]:
    """Strip parameter suffixes: ``RHC(w=10)`` -> ``RHC`` etc."""
    return [
        _RenamedPolicy(p, p.name.split("(")[0]) if "(" in p.name else p
        for p in policies
    ]


def _unique_names(policies: list[CachingPolicy]) -> list[CachingPolicy]:
    """Suffix repeated display names (``LRFU``, ``LRFU#2``, ...).

    Keeps every policy's result addressable — without this, a results dict
    keyed by name silently drops all but the last duplicate.
    """
    counts: dict[str, int] = {}
    out: list[CachingPolicy] = []
    for policy in policies:
        n = counts.get(policy.name, 0) + 1
        counts[policy.name] = n
        out.append(
            policy if n == 1 else _RenamedPolicy(policy, f"{policy.name}#{n}")
        )
    return out


def run_policy(
    scenario: Scenario,
    policy: CachingPolicy,
    *,
    mode: EvaluationMode = "reoptimize",
) -> RunResult:
    """Plan with ``policy`` and score it against the scenario's true demand.

    The returned result carries the wall-clock seconds the plan + scoring
    took (``RunResult.wall_time``), measured where the work actually ran —
    inside the worker when executed through a parallel executor.
    """
    started = time.perf_counter()
    with label_scope(policy=policy.name):
        plan = policy.plan(scenario)
        result = evaluate_plan(
            scenario, plan, policy_name=policy.name, mode=mode
        )
    return replace(result, wall_time=time.perf_counter() - started)


def _run_policy_task(
    task: tuple[Scenario, CachingPolicy, EvaluationMode],
) -> RunResult:
    """Module-level task wrapper so process executors can pickle it."""
    scenario, policy, mode = task
    return run_policy(scenario, policy, mode=mode)


def run_policies(
    scenario: Scenario,
    policies: Iterable[CachingPolicy],
    *,
    mode: EvaluationMode = "reoptimize",
    verbose: bool = False,
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
) -> dict[str, RunResult]:
    """Run several policies on the same scenario; keyed by policy name.

    With an ``executor`` (or a :class:`repro.config.RuntimeConfig`, or the
    deprecated ``REPRO_WORKERS`` environment) the policies run in
    parallel. The result dict is always in input-policy order and always
    has one entry per policy: colliding names are suffixed (``LRFU``,
    ``LRFU#2``) instead of silently dropping results.
    """
    policy_list = _unique_names(list(policies))
    ex = resolve_executor(executor, config=config)
    recorder = current_recorder()
    tasks = [(scenario, p, mode) for p in policy_list]
    if recorder is not None:
        # Recorded runs use the recorded fan-out on EVERY backend, serial
        # included: each task collects into a fresh recorder merged back in
        # input order, so the trace bytes are executor-invariant.
        outcomes = map_recorded(ex, _run_policy_task, tasks, recorder)
    elif ex.workers > 1 and len(policy_list) > 1:
        outcomes = ex.map(_run_policy_task, tasks)
    else:
        outcomes = [run_policy(scenario, p, mode=mode) for p in policy_list]
    results = {p.name: r for p, r in zip(policy_list, outcomes)}
    if verbose:
        for result in results.values():
            logger.info(
                "  %-16s total=%12.1f  (%.2fs)",
                result.policy,
                result.cost.total,
                result.wall_time,
            )
    return results


def cost_ratios(
    results: Mapping[str, RunResult], *, reference: str = "Offline"
) -> dict[str, float]:
    """Total-cost ratios of every policy to a reference policy.

    The paper's Section V-C reports these as "cost ratio to offline".
    """
    if reference not in results:
        raise KeyError(f"reference policy {reference!r} not in results")
    base = results[reference].cost.total
    if base <= 0:
        return {name: float("nan") for name in results}
    return {name: r.cost.total / base for name, r in results.items()}

"""Persistence for scenarios and run results.

Reproducibility plumbing: a :class:`~repro.scenario.Scenario` or a
:class:`~repro.sim.engine.RunResult` can be written to disk and reloaded
bit-for-bit, so experiment artefacts can be archived next to the numbers
they produced. Formats:

- scenarios -> a single ``.npz`` (arrays) with an embedded JSON header
  (network parameters, predictor settings);
- run results -> ``.npz`` with the trajectories and itemized costs.

Only library-owned types are (de)serialized — no pickling of arbitrary
objects, so files are safe to share.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.costs import CostBreakdown
from repro.network.topology import Network
from repro.network import ContentCatalog, MUClass, SmallBaseStation
from repro.scenario import Scenario
from repro.sim.engine import RunResult
from repro.workload.demand import DemandMatrix
from repro.workload.predictor import PerfectPredictor, PerturbedPredictor

_FORMAT_VERSION = 1


def _network_header(network: Network) -> dict:
    return {
        "num_items": network.num_items,
        "sbss": [
            {
                "cache_size": int(s.cache_size),
                "bandwidth": float(s.bandwidth),
                "replacement_cost": float(s.replacement_cost),
            }
            for s in network.sbss
        ],
        "classes": [
            {
                "sbs_id": int(c.sbs_id),
                "omega_bs": float(c.omega_bs),
                "omega_sbs": float(c.omega_sbs),
            }
            for c in network.mu_classes
        ],
    }


def _network_from_header(header: dict) -> Network:
    catalog = ContentCatalog(int(header["num_items"]))
    sbss = tuple(
        SmallBaseStation(i, s["cache_size"], s["bandwidth"], s["replacement_cost"])
        for i, s in enumerate(header["sbss"])
    )
    classes = tuple(
        MUClass(i, c["sbs_id"], c["omega_bs"], c["omega_sbs"])
        for i, c in enumerate(header["classes"])
    )
    return Network(catalog, sbss, classes)


def save_scenario(scenario: Scenario, path: str | Path) -> None:
    """Write a scenario to ``path`` (``.npz``).

    The predictor is persisted when it is one of the library's predictor
    types (perfect or perturbed); custom predictors raise.
    """
    predictor = scenario.predictor
    if isinstance(predictor, PerfectPredictor):
        pred_header: dict = {"kind": "perfect"}
    elif isinstance(predictor, PerturbedPredictor):
        pred_header = {
            "kind": "perturbed",
            "eta": predictor.eta,
            "seed": predictor.seed,
            "mode": predictor.mode,
        }
    else:
        raise ConfigurationError(
            f"cannot persist predictor of type {type(predictor).__name__}"
        )
    header = {
        "version": _FORMAT_VERSION,
        "network": _network_header(scenario.network),
        "predictor": pred_header,
    }
    np.savez_compressed(
        Path(path),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        demand=scenario.demand.rates,
        x_initial=scenario.x_initial,
    )


def load_scenario(path: str | Path) -> Scenario:
    """Load a scenario written by :func:`save_scenario`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode())
        if header.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported scenario format version {header.get('version')}"
            )
        network = _network_from_header(header["network"])
        demand = DemandMatrix(data["demand"])
        pred_header = header["predictor"]
        if pred_header["kind"] == "perfect":
            predictor = PerfectPredictor(demand)
        else:
            predictor = PerturbedPredictor(
                demand,
                eta=float(pred_header["eta"]),
                seed=int(pred_header["seed"]),
                mode=pred_header["mode"],
            )
        return Scenario(
            network=network,
            demand=demand,
            predictor=predictor,
            x_initial=data["x_initial"],
        )


def save_run_result(result: RunResult, path: str | Path) -> None:
    """Write a run result (trajectories + itemized cost) to ``path``."""
    header = {
        "version": _FORMAT_VERSION,
        "policy": result.policy,
        "solves": result.solves,
        "cost": {
            "bs_cost": result.cost.bs_cost,
            "sbs_cost": result.cost.sbs_cost,
            "replacement": result.cost.replacement,
            "replacements": result.cost.replacements,
        },
    }
    np.savez_compressed(
        Path(path),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        x=result.x,
        y=result.y,
        per_slot_total=result.per_slot_total,
        per_slot_replacements=result.per_slot_replacements,
    )


def load_run_result(path: str | Path) -> RunResult:
    """Load a run result written by :func:`save_run_result`."""
    with np.load(Path(path)) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode())
        if header.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported result format version {header.get('version')}"
            )
        cost = CostBreakdown(
            bs_cost=float(header["cost"]["bs_cost"]),
            sbs_cost=float(header["cost"]["sbs_cost"]),
            replacement=float(header["cost"]["replacement"]),
            replacements=int(header["cost"]["replacements"]),
        )
        return RunResult(
            policy=header["policy"],
            cost=cost,
            per_slot_total=data["per_slot_total"],
            per_slot_replacements=data["per_slot_replacements"],
            x=data["x"],
            y=data["y"],
            solves=int(header["solves"]),
        )

"""Runtime configuration: one typed object instead of scattered env reads.

Historically four environment variables steered the runtime — worker count
(``REPRO_WORKERS``), executor kind (``REPRO_EXECUTOR``), the ``auto``
caching-backend pin (``REPRO_CACHING_BACKEND``) and the flow-graph-reuse
kill switch (``REPRO_FLOW_REUSE``). :class:`RuntimeConfig` replaces them
with an explicit argument accepted across the library and by every
:mod:`repro.api` entry point.

Precedence, everywhere a knob is consulted: **explicit argument >
environment > built-in default**. The environment variables keep working
as deprecated fallbacks so existing scripts do not break, but each one
triggers a :class:`DeprecationWarning` the first time it is actually read
in a process — exactly once per variable, never once per solve.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: Deprecated environment fallbacks (see module docstring).
WORKERS_ENV = "REPRO_WORKERS"
EXECUTOR_ENV = "REPRO_EXECUTOR"
BACKEND_ENV = "REPRO_CACHING_BACKEND"
FLOW_REUSE_ENV = "REPRO_FLOW_REUSE"

#: Supported (non-deprecated) switch for the incremental re-solve layer —
#: CI uses it to A/B the layer without touching call sites, so unlike the
#: variables above it does not warn. ``0`` disables; anything else enables.
INCREMENTAL_ENV = "REPRO_INCREMENTAL"

#: Supported switch for the batched (vectorized) solve core — the stacked
#: ``P1`` certificate kernel and the all-SBS ``P2`` water-fill. CI A/Bs it
#: like :data:`INCREMENTAL_ENV`, so it does not warn. ``0`` disables.
BATCHED_ENV = "REPRO_BATCHED"

#: Supported switch for the tie-aware acceptance rule of the batched ``P1``
#: certificate pass (default on). ``REPRO_BATCHED_TIES=0`` restores the
#: strict-margin certificate — tie-degenerate rows fall back to the per-SBS
#: backends — without changing any cost: the per-SBS backends resolve ties
#: canonically either way, so CI A/Bs this switch under ``--gate-costs``.
BATCHED_TIES_ENV = "REPRO_BATCHED_TIES"

#: Supported switch for the closed-form bandwidth-bound ``P2`` water-fill
#: (default on). ``REPRO_BW_CLOSED_FORM=0`` routes every bandwidth-bound
#: row through the legacy bisection instead — the A/B reference path CI
#: uses to gate cost drift — so like the switches above it does not warn.
BW_CLOSED_FORM_ENV = "REPRO_BW_CLOSED_FORM"

#: Supported override for the legacy bisection depth (the bandwidth-bound
#: A/B reference in :mod:`repro.optim.waterfill` and the capped-block
#: projection). Precedence: explicit argument > ``RuntimeConfig`` field >
#: env > :data:`DEFAULT_BISECTION_ITERS`.
BISECTION_ITERS_ENV = "REPRO_BISECTION_ITERS"

#: Historical bisection depth: 26 iterations bracket the residual to
#: ``~2^-26`` relative accuracy.
DEFAULT_BISECTION_ITERS = 26

#: Supported opt-in switch for the quantized ``P1`` memo key (see
#: :func:`repro.perf.solvecache.p1_quantized_digest`). Unset or ``0``
#: keeps the byte-exact digest; any other value enables quantization.
#: Measured on the headline-quick leg (EXPERIMENTS.md): the quantized key
#: adds no hits there — drifting-``mu`` iterations move prices by far more
#: than the 1e-9 band — so the byte-exact default stands; enable it only
#: for workloads with near-stationary prices.
QUANTIZED_MEMO_ENV = "REPRO_QUANTIZED_MEMO"

#: Supported environment fallbacks for the serve runtime (:mod:`repro.serve`).
#: Like the switches above they are part of the supported surface — CI and
#: deployment wrappers set them — so they do not warn. Precedence at every
#: consultation point: explicit argument > ``RuntimeConfig`` field > env >
#: built-in default (see the ``resolved_serve_*`` helpers).
SERVE_RPS_ENV = "REPRO_SERVE_RPS"
SERVE_ADMISSION_ENV = "REPRO_SERVE_ADMISSION"
SERVE_QUEUE_DEPTH_ENV = "REPRO_SERVE_QUEUE_DEPTH"
SERVE_SLOT_SECONDS_ENV = "REPRO_SERVE_SLOT_SECONDS"
SERVE_METRICS_PORT_ENV = "REPRO_SERVE_METRICS_PORT"
OBS_SLO_ENV = "REPRO_OBS_SLO"

#: Admission policies the serve runtime understands: ``"queue"`` applies
#: backpressure to the producer when the request queue fills; ``"shed"``
#: drops the overflow and keeps serving with whatever plan is committed.
ADMISSION_POLICIES = ("queue", "shed")

DEFAULT_SERVE_RPS = 200.0
DEFAULT_SERVE_ADMISSION = "queue"
DEFAULT_SERVE_QUEUE_DEPTH = 256
DEFAULT_SERVE_SLOT_SECONDS = 0.25

_WARNED: set[str] = set()


def deprecated_env(name: str) -> str | None:
    """Read a deprecated environment fallback, warning once per variable.

    Returns ``None`` (silently) when the variable is unset or empty —
    the warning fires only for users actually relying on the fallback.
    """
    value = os.environ.get(name)
    if not value:
        return None
    if name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"{name} is deprecated; pass RuntimeConfig("
            f"{_FIELD_OF[name]}=...) to the repro.api entry points instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return value


_FIELD_OF = {
    WORKERS_ENV: "workers",
    EXECUTOR_ENV: "executor",
    BACKEND_ENV: "caching_backend",
    FLOW_REUSE_ENV: "flow_reuse",
}


def reset_deprecation_warnings() -> None:
    """Forget which fallbacks have warned (test isolation helper)."""
    _WARNED.clear()


@dataclass(frozen=True)
class RuntimeConfig:
    """Explicit runtime knobs for solves, sweeps and benchmarks.

    Every field defaults to ``None`` — "not specified" — in which case the
    deprecated environment fallback and then the built-in default apply.

    Parameters
    ----------
    executor:
        Executor spec, e.g. ``"serial"``, ``"thread"``, ``"process:4"``
        (formerly ``REPRO_EXECUTOR``).
    workers:
        Worker count for parallel fan-outs (formerly ``REPRO_WORKERS``);
        overrides a count embedded in ``executor``.
    caching_backend:
        Pin for the ``auto`` ``P1`` backend choice: ``"flow"``, ``"lp"``
        or ``"lp-simplex"`` (formerly ``REPRO_CACHING_BACKEND``). Explicit
        ``backend=`` arguments at call sites still win.
    flow_reuse:
        Whether the flow backend pools built graphs across same-shape
        solves (formerly ``REPRO_FLOW_REUSE``; default on).
    incremental:
        Whether the incremental re-solve layer is active (default on):
        per-SBS ``P1`` memoization, warm-resumed min-cost flow, and
        cross-window warm-candidate seeding in the online controllers.
        ``REPRO_INCREMENTAL=0`` is the supported environment override.
    batched:
        Whether the batched solve core is active (default on): the stacked
        ``P1`` certificate kernel with per-SBS fallback and the all-SBS
        ``P2`` water-fill with certificate early exit. ``REPRO_BATCHED=0``
        is the supported environment override.
    batched_ties:
        Whether the batched ``P1`` pass accepts tie-degenerate relaxed
        optima via the tie-aware exact certificate (default on).
        ``REPRO_BATCHED_TIES=0`` restores the strict-margin certificate,
        so degenerate rows fall back to the per-SBS backends; costs are
        unaffected either way (the per-SBS backends resolve ties with the
        same canonical discipline), which is what makes the CI off/on A/B
        gateable bit-for-bit.
    quantized_memo:
        Opt-in quantized ``P1`` memo key (default off): prices are rounded
        to a tolerance band before digesting so drifting-``mu`` iterations
        can share memo entries; objectives are recomputed for the actual
        prices on every quantized hit. ``REPRO_QUANTIZED_MEMO=1`` is the
        environment override. Measured on the headline leg it buys nothing
        (see EXPERIMENTS.md), hence off by default.
    bw_closed_form:
        Whether bandwidth-bound ``P2`` rows are solved by the exact
        closed-form parametric path (default on) or by the legacy
        bisection reference. ``REPRO_BW_CLOSED_FORM=0`` is the supported
        environment override; CI uses it for cost-drift A/B runs.
    bisection_iters:
        Depth of the legacy residual bisection (the bandwidth-bound A/B
        reference and the capped-block projection fallback; default 26).
        ``REPRO_BISECTION_ITERS`` is the environment override.
    serve_rps:
        Open-loop arrival rate for the serve runtime (requests/second;
        default 200). ``REPRO_SERVE_RPS`` is the environment override.
    serve_admission:
        Admission policy when the request queue fills: ``"queue"``
        (backpressure the producer; default) or ``"shed"`` (drop the
        overflow). ``REPRO_SERVE_ADMISSION`` is the environment override.
    serve_queue_depth:
        Bound on the serve request queue (default 256).
        ``REPRO_SERVE_QUEUE_DEPTH`` is the environment override.
    serve_slot_seconds:
        Wall-clock length of one model timeslot while serving (default
        0.25 s) — the budget the background re-solve has to produce the
        next plan. ``REPRO_SERVE_SLOT_SECONDS`` is the environment
        override.
    serve_metrics_port:
        Port for the live HTTP telemetry exporter (``/metrics``,
        ``/healthz``, ``/slo``); ``0`` binds an ephemeral port, ``None``
        (the default) disables the exporter. ``REPRO_SERVE_METRICS_PORT``
        is the environment override.
    obs_slo:
        Declarative SLO spec string for the serve runtime, e.g.
        ``"p99_decision_us<200,shed_ratio<0.01"``
        (:func:`repro.obs.live.parse_slo_specs`); ``None`` disables SLO
        tracking. ``REPRO_OBS_SLO`` is the environment override.
    """

    executor: str | None = None
    workers: int | None = None
    caching_backend: str | None = None
    flow_reuse: bool | None = None
    incremental: bool | None = None
    batched: bool | None = None
    batched_ties: bool | None = None
    quantized_memo: bool | None = None
    bw_closed_form: bool | None = None
    bisection_iters: int | None = None
    serve_rps: float | None = None
    serve_admission: str | None = None
    serve_queue_depth: int | None = None
    serve_slot_seconds: float | None = None
    serve_metrics_port: int | None = None
    obs_slo: str | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.caching_backend is not None and self.caching_backend not in (
            "flow",
            "lp",
            "lp-simplex",
        ):
            raise ConfigurationError(
                "caching_backend must be flow, lp, or lp-simplex; "
                f"got {self.caching_backend!r}"
            )
        if self.bisection_iters is not None and self.bisection_iters < 1:
            raise ConfigurationError(
                f"bisection_iters must be >= 1, got {self.bisection_iters}"
            )
        if self.serve_rps is not None and not self.serve_rps > 0:
            raise ConfigurationError(
                f"serve_rps must be > 0, got {self.serve_rps}"
            )
        if (
            self.serve_admission is not None
            and self.serve_admission not in ADMISSION_POLICIES
        ):
            raise ConfigurationError(
                f"serve_admission must be one of {ADMISSION_POLICIES}; "
                f"got {self.serve_admission!r}"
            )
        if self.serve_queue_depth is not None and self.serve_queue_depth < 1:
            raise ConfigurationError(
                f"serve_queue_depth must be >= 1, got {self.serve_queue_depth}"
            )
        if self.serve_slot_seconds is not None and not self.serve_slot_seconds > 0:
            raise ConfigurationError(
                f"serve_slot_seconds must be > 0, got {self.serve_slot_seconds}"
            )
        if self.serve_metrics_port is not None and not (
            0 <= self.serve_metrics_port <= 65535
        ):
            raise ConfigurationError(
                f"serve_metrics_port must be in [0, 65535], "
                f"got {self.serve_metrics_port}"
            )
        if self.obs_slo is not None:
            # Validate eagerly so a bad spec fails at config construction,
            # not mid-run. Local import: repro.obs.live imports nothing
            # from this module at import time beyond the exception type.
            from repro.obs.live import parse_slo_specs

            parse_slo_specs(self.obs_slo)


def resolved_backend_pin(config: RuntimeConfig | None) -> str | None:
    """The ``auto``-backend pin: config field, else deprecated env, else none."""
    if config is not None and config.caching_backend is not None:
        return config.caching_backend
    env = deprecated_env(BACKEND_ENV)
    if env is not None and env not in ("flow", "lp", "lp-simplex"):
        raise ConfigurationError(
            f"{BACKEND_ENV} must be flow, lp, or lp-simplex; got {env!r}"
        )
    return env


def resolved_flow_reuse(config: RuntimeConfig | None) -> bool:
    """Flow-graph reuse: config field, else deprecated env, else on."""
    if config is not None and config.flow_reuse is not None:
        return config.flow_reuse
    env = deprecated_env(FLOW_REUSE_ENV)
    return env != "0"


def resolved_incremental(config: RuntimeConfig | None) -> bool:
    """Incremental re-solve layer: config field, else env, else on."""
    if config is not None and config.incremental is not None:
        return config.incremental
    return os.environ.get(INCREMENTAL_ENV, "") != "0"


def resolved_batched(config: RuntimeConfig | None) -> bool:
    """Batched solve core: config field, else env, else on."""
    if config is not None and config.batched is not None:
        return config.batched
    return os.environ.get(BATCHED_ENV, "") != "0"


def resolved_batched_ties(config: RuntimeConfig | None) -> bool:
    """Tie-aware batched ``P1`` acceptance: config field, else env, else on."""
    if config is not None and config.batched_ties is not None:
        return config.batched_ties
    return os.environ.get(BATCHED_TIES_ENV, "") != "0"


def resolved_quantized_memo(config: RuntimeConfig | None) -> bool:
    """Quantized ``P1`` memo key: config field, else env, else off."""
    if config is not None and config.quantized_memo is not None:
        return config.quantized_memo
    return os.environ.get(QUANTIZED_MEMO_ENV, "") == "1"


def resolved_bw_closed_form(
    config: RuntimeConfig | None, arg: bool | None = None
) -> bool:
    """Closed-form bandwidth-bound path: arg, else config, else env, else on."""
    if arg is not None:
        return bool(arg)
    if config is not None and config.bw_closed_form is not None:
        return config.bw_closed_form
    return os.environ.get(BW_CLOSED_FORM_ENV, "") != "0"


def resolved_bisection_iters(
    config: RuntimeConfig | None, arg: int | None = None
) -> int:
    """Legacy bisection depth: arg, else config, else env, else 26."""
    if arg is not None:
        if arg < 1:
            raise ConfigurationError(f"bisection iters must be >= 1, got {arg}")
        return int(arg)
    if config is not None and config.bisection_iters is not None:
        return config.bisection_iters
    raw = os.environ.get(BISECTION_ITERS_ENV)
    if raw:
        try:
            env = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{BISECTION_ITERS_ENV} must be an integer, got {raw!r}"
            ) from None
        if env < 1:
            raise ConfigurationError(
                f"{BISECTION_ITERS_ENV} must be >= 1, got {env}"
            )
        return env
    return DEFAULT_BISECTION_ITERS


def _serve_env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be a number, got {raw!r}") from None


def _serve_env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be an integer, got {raw!r}") from None


def resolved_serve_rps(
    config: RuntimeConfig | None, arg: float | None = None
) -> float:
    """Serve arrival rate: explicit arg, else config, else env, else 200."""
    if arg is not None:
        if not arg > 0:
            raise ConfigurationError(f"serve rps must be > 0, got {arg}")
        return float(arg)
    if config is not None and config.serve_rps is not None:
        return config.serve_rps
    env = _serve_env_float(SERVE_RPS_ENV)
    if env is not None:
        if not env > 0:
            raise ConfigurationError(f"{SERVE_RPS_ENV} must be > 0, got {env}")
        return env
    return DEFAULT_SERVE_RPS


def resolved_serve_admission(
    config: RuntimeConfig | None, arg: str | None = None
) -> str:
    """Admission policy: explicit arg, else config, else env, else queue."""
    for source, value in (
        ("serve admission", arg),
        (None, config.serve_admission if config is not None else None),
        (SERVE_ADMISSION_ENV, os.environ.get(SERVE_ADMISSION_ENV) or None),
    ):
        if value is None:
            continue
        if source is not None and value not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"{source} must be one of {ADMISSION_POLICIES}, got {value!r}"
            )
        return value
    return DEFAULT_SERVE_ADMISSION


def resolved_serve_queue_depth(
    config: RuntimeConfig | None, arg: int | None = None
) -> int:
    """Serve queue bound: explicit arg, else config, else env, else 256."""
    if arg is not None:
        if arg < 1:
            raise ConfigurationError(f"serve queue depth must be >= 1, got {arg}")
        return int(arg)
    if config is not None and config.serve_queue_depth is not None:
        return config.serve_queue_depth
    env = _serve_env_int(SERVE_QUEUE_DEPTH_ENV)
    if env is not None:
        if env < 1:
            raise ConfigurationError(
                f"{SERVE_QUEUE_DEPTH_ENV} must be >= 1, got {env}"
            )
        return env
    return DEFAULT_SERVE_QUEUE_DEPTH


def resolved_serve_slot_seconds(
    config: RuntimeConfig | None, arg: float | None = None
) -> float:
    """Serve slot period: explicit arg, else config, else env, else 0.25 s."""
    if arg is not None:
        if not arg > 0:
            raise ConfigurationError(
                f"serve slot seconds must be > 0, got {arg}"
            )
        return float(arg)
    if config is not None and config.serve_slot_seconds is not None:
        return config.serve_slot_seconds
    env = _serve_env_float(SERVE_SLOT_SECONDS_ENV)
    if env is not None:
        if not env > 0:
            raise ConfigurationError(
                f"{SERVE_SLOT_SECONDS_ENV} must be > 0, got {env}"
            )
        return env
    return DEFAULT_SERVE_SLOT_SECONDS


def resolved_serve_metrics_port(
    config: RuntimeConfig | None, arg: int | None = None
) -> int | None:
    """Metrics endpoint port: explicit arg, else config, else env, else off.

    Returns ``None`` when the exporter is disabled; ``0`` means "bind an
    ephemeral port".
    """
    for source, value in (
        ("serve metrics port", arg),
        (None, config.serve_metrics_port if config is not None else None),
        (SERVE_METRICS_PORT_ENV, _serve_env_int(SERVE_METRICS_PORT_ENV)),
    ):
        if value is None:
            continue
        if not 0 <= value <= 65535:
            raise ConfigurationError(
                f"{source or 'serve_metrics_port'} must be in [0, 65535], "
                f"got {value}"
            )
        return int(value)
    return None


def resolved_obs_slo(
    config: RuntimeConfig | None, arg: str | None = None
) -> str | None:
    """SLO spec string: explicit arg, else config, else env, else none.

    The spec grammar is validated by the consumer
    (:func:`repro.obs.live.parse_slo_specs`).
    """
    if arg is not None:
        return arg
    if config is not None and config.obs_slo is not None:
        return config.obs_slo
    return os.environ.get(OBS_SLO_ENV) or None

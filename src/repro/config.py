"""Runtime configuration: one typed object instead of scattered env reads.

Historically four environment variables steered the runtime — worker count
(``REPRO_WORKERS``), executor kind (``REPRO_EXECUTOR``), the ``auto``
caching-backend pin (``REPRO_CACHING_BACKEND``) and the flow-graph-reuse
kill switch (``REPRO_FLOW_REUSE``). :class:`RuntimeConfig` replaces them
with an explicit argument accepted across the library and by every
:mod:`repro.api` entry point.

Precedence, everywhere a knob is consulted: **explicit argument >
environment > built-in default**. The environment variables keep working
as deprecated fallbacks so existing scripts do not break, but each one
triggers a :class:`DeprecationWarning` the first time it is actually read
in a process — exactly once per variable, never once per solve.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: Deprecated environment fallbacks (see module docstring).
WORKERS_ENV = "REPRO_WORKERS"
EXECUTOR_ENV = "REPRO_EXECUTOR"
BACKEND_ENV = "REPRO_CACHING_BACKEND"
FLOW_REUSE_ENV = "REPRO_FLOW_REUSE"

#: Supported (non-deprecated) switch for the incremental re-solve layer —
#: CI uses it to A/B the layer without touching call sites, so unlike the
#: variables above it does not warn. ``0`` disables; anything else enables.
INCREMENTAL_ENV = "REPRO_INCREMENTAL"

#: Supported switch for the batched (vectorized) solve core — the stacked
#: ``P1`` certificate kernel and the all-SBS ``P2`` water-fill. CI A/Bs it
#: like :data:`INCREMENTAL_ENV`, so it does not warn. ``0`` disables.
BATCHED_ENV = "REPRO_BATCHED"

#: Supported opt-in switch for the quantized ``P1`` memo key (see
#: :func:`repro.perf.solvecache.p1_quantized_digest`). Unset or ``0``
#: keeps the byte-exact digest; any other value enables quantization.
QUANTIZED_MEMO_ENV = "REPRO_QUANTIZED_MEMO"

_WARNED: set[str] = set()


def deprecated_env(name: str) -> str | None:
    """Read a deprecated environment fallback, warning once per variable.

    Returns ``None`` (silently) when the variable is unset or empty —
    the warning fires only for users actually relying on the fallback.
    """
    value = os.environ.get(name)
    if not value:
        return None
    if name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"{name} is deprecated; pass RuntimeConfig("
            f"{_FIELD_OF[name]}=...) to the repro.api entry points instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return value


_FIELD_OF = {
    WORKERS_ENV: "workers",
    EXECUTOR_ENV: "executor",
    BACKEND_ENV: "caching_backend",
    FLOW_REUSE_ENV: "flow_reuse",
}


def reset_deprecation_warnings() -> None:
    """Forget which fallbacks have warned (test isolation helper)."""
    _WARNED.clear()


@dataclass(frozen=True)
class RuntimeConfig:
    """Explicit runtime knobs for solves, sweeps and benchmarks.

    Every field defaults to ``None`` — "not specified" — in which case the
    deprecated environment fallback and then the built-in default apply.

    Parameters
    ----------
    executor:
        Executor spec, e.g. ``"serial"``, ``"thread"``, ``"process:4"``
        (formerly ``REPRO_EXECUTOR``).
    workers:
        Worker count for parallel fan-outs (formerly ``REPRO_WORKERS``);
        overrides a count embedded in ``executor``.
    caching_backend:
        Pin for the ``auto`` ``P1`` backend choice: ``"flow"``, ``"lp"``
        or ``"lp-simplex"`` (formerly ``REPRO_CACHING_BACKEND``). Explicit
        ``backend=`` arguments at call sites still win.
    flow_reuse:
        Whether the flow backend pools built graphs across same-shape
        solves (formerly ``REPRO_FLOW_REUSE``; default on).
    incremental:
        Whether the incremental re-solve layer is active (default on):
        per-SBS ``P1`` memoization, warm-resumed min-cost flow, and
        cross-window warm-candidate seeding in the online controllers.
        ``REPRO_INCREMENTAL=0`` is the supported environment override.
    batched:
        Whether the batched solve core is active (default on): the stacked
        ``P1`` certificate kernel with per-SBS fallback and the all-SBS
        ``P2`` water-fill with certificate early exit. ``REPRO_BATCHED=0``
        is the supported environment override.
    quantized_memo:
        Opt-in quantized ``P1`` memo key (default off): prices are rounded
        to a tolerance band before digesting so drifting-``mu`` iterations
        can share memo entries; objectives are recomputed for the actual
        prices on every quantized hit. ``REPRO_QUANTIZED_MEMO=1`` is the
        environment override.
    """

    executor: str | None = None
    workers: int | None = None
    caching_backend: str | None = None
    flow_reuse: bool | None = None
    incremental: bool | None = None
    batched: bool | None = None
    quantized_memo: bool | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.caching_backend is not None and self.caching_backend not in (
            "flow",
            "lp",
            "lp-simplex",
        ):
            raise ConfigurationError(
                "caching_backend must be flow, lp, or lp-simplex; "
                f"got {self.caching_backend!r}"
            )


def resolved_backend_pin(config: RuntimeConfig | None) -> str | None:
    """The ``auto``-backend pin: config field, else deprecated env, else none."""
    if config is not None and config.caching_backend is not None:
        return config.caching_backend
    env = deprecated_env(BACKEND_ENV)
    if env is not None and env not in ("flow", "lp", "lp-simplex"):
        raise ConfigurationError(
            f"{BACKEND_ENV} must be flow, lp, or lp-simplex; got {env!r}"
        )
    return env


def resolved_flow_reuse(config: RuntimeConfig | None) -> bool:
    """Flow-graph reuse: config field, else deprecated env, else on."""
    if config is not None and config.flow_reuse is not None:
        return config.flow_reuse
    env = deprecated_env(FLOW_REUSE_ENV)
    return env != "0"


def resolved_incremental(config: RuntimeConfig | None) -> bool:
    """Incremental re-solve layer: config field, else env, else on."""
    if config is not None and config.incremental is not None:
        return config.incremental
    return os.environ.get(INCREMENTAL_ENV, "") != "0"


def resolved_batched(config: RuntimeConfig | None) -> bool:
    """Batched solve core: config field, else env, else on."""
    if config is not None and config.batched is not None:
        return config.batched
    return os.environ.get(BATCHED_ENV, "") != "0"


def resolved_quantized_memo(config: RuntimeConfig | None) -> bool:
    """Quantized ``P1`` memo key: config field, else env, else off."""
    if config is not None and config.quantized_memo is not None:
        return config.quantized_memo
    return os.environ.get(QUANTIZED_MEMO_ENV, "") == "1"

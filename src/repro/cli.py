"""Command-line interface, built on the :mod:`repro.api` facade.

Examples
--------
::

    repro run --beta 50 --horizon 60          # headline comparison point
    repro sweep --axis beta --values 0 50 100 # Fig. 2
    repro sweep --axis window                 # Fig. 3
    repro sweep --axis bandwidth              # Fig. 4
    repro sweep --axis noise --values 0 0.25  # Fig. 5
    repro bench --scale quick                 # benchmark suite (BENCH_*.json)
    repro resilience --horizon 40             # policies under a fault schedule
    repro serve --rps 200 --trace out.jsonl   # live serving runtime (repro.serve)
    repro serve --metrics-port 9109 --slo 'p99_decision_us<200'  # live SLOs
    repro run --trace out.jsonl               # record a telemetry trace + manifest
    repro obs report out.jsonl                # ASCII dashboard of a recorded trace
    repro obs analyze out.jsonl               # post-mortem trace diagnosis
    repro obs top --url http://127.0.0.1:9109 # live dashboard over /slo

The pre-redesign commands (``fig2`` ... ``fig5``, ``headline``, ``demo``)
still work as hidden aliases of ``sweep`` / ``run`` so existing scripts
keep running; they are simply no longer advertised in ``--help``.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Sequence

from repro import api
from repro.config import ADMISSION_POLICIES
from repro.obs import manifest_path_for, validate_manifest, validate_trace
from repro.serve import STRATEGIES

#: Metrics printed per sweep axis (mirrors the panels of Figs. 2-5).
_AXIS_METRICS = {
    "beta": ("total", "replacement", "replacements", "bs_cost"),
    "window": ("total", "replacements"),
    "bandwidth": ("total", "replacements"),
    "noise": ("total",),
}

#: Legacy figure commands and the axis they alias.
_LEGACY_AXES = {"fig2": "beta", "fig3": "window", "fig4": "bandwidth", "fig5": "noise"}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--horizon", type=int, default=100, help="timeslots T")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1], help="random seeds")
    parser.add_argument(
        "--window", type=int, default=10, help="prediction window w (ignored by the window axis)"
    )
    parser.add_argument(
        "--mode",
        choices=("reoptimize", "as_decided"),
        default="reoptimize",
        help="how realized load balancing is computed (see sim.engine)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each metric as an ASCII chart",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel workers for the (point, seed, policy) grid (default: serial)",
    )
    parser.add_argument(
        "--executor",
        type=str,
        default=None,
        help="executor spec, e.g. 'process:4', 'thread:8' or 'serial' "
        "(overrides --workers)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the machine-readable result as JSON to PATH",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="record a telemetry trace to PATH (JSONL) plus a run manifest "
        "next to it (see 'repro obs report')",
    )
    parser.add_argument("--verbose", action="store_true")


def _runtime_config(args: argparse.Namespace) -> api.RuntimeConfig | None:
    """Translate --executor/--workers into a :class:`repro.api.RuntimeConfig`."""
    if args.executor is None and args.workers is None:
        return None
    return api.RuntimeConfig(executor=args.executor, workers=args.workers)


def _print_sweep(
    sweep: "api.SweepResult", metrics: Sequence[str], *, chart: bool = False
) -> None:
    for metric in metrics:
        print()
        print(api.render_sweep_table(sweep, metric))
        if chart and len(sweep.points) > 1:
            from repro.sim.ascii_chart import render_ascii_chart

            print()
            print(render_ascii_chart(sweep, metric))


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> dict | None:
    sweep = api.headline_comparison(
        beta=args.beta,
        window=args.window,
        seeds=tuple(args.seeds),
        mode=args.mode,
        verbose=args.verbose,
        horizon=args.horizon,
        config=_runtime_config(args),
    )
    print()
    print(api.render_headline_table(sweep))
    return api.sweep_to_dict(sweep)


def _cmd_sweep(args: argparse.Namespace) -> dict | None:
    sweep = api.sweep(
        args.axis,
        args.values,
        seeds=tuple(args.seeds),
        mode=args.mode,
        verbose=args.verbose,
        horizon=args.horizon,
        config=_runtime_config(args),
        **({} if args.axis == "window" else {"window": args.window}),
    )
    _print_sweep(sweep, _AXIS_METRICS[args.axis], chart=args.chart)
    return api.sweep_to_dict(sweep)


def _cmd_resilience(args: argparse.Namespace) -> dict | None:
    report = api.run_resilience(
        horizon=args.horizon,
        seed=args.seeds[0],
        window=args.window,
        mode=args.mode,
        recover_tol=args.recover_tol,
        config=_runtime_config(args),
        verbose=args.verbose,
    )
    print()
    print(api.render_resilience_table(report))
    return report.to_dict()


def _cmd_serve(args: argparse.Namespace) -> dict | None:
    scenario = api.build_scenario(seed=args.seeds[0], horizon=args.horizon)
    report = api.run_serve(
        scenario,
        strategy=args.strategy,
        rps=args.rps,
        slot_seconds=args.slot_seconds,
        admission=args.admission,
        queue_depth=args.queue_depth,
        window=args.window,
        seed=args.seeds[0],
        max_requests=args.max_requests,
        pace=args.pace,
        metrics_port=args.metrics_port,
        slo=args.slo,
        config=_runtime_config(args),
    )
    print()
    print(api.render_serve_report(report))
    if args.decision_log:
        api.write_decision_log(args.decision_log, report.decisions)
        print(
            f"wrote {args.decision_log} ({len(report.decisions)} decisions)",
            file=sys.stderr,
        )
    return report.to_dict()


def _cmd_bench(args: argparse.Namespace) -> dict | None:
    if getattr(args, "bench_command", None) == "diff":
        return _cmd_bench_diff(args)
    if getattr(args, "bench_command", None) == "matrix":
        return _cmd_bench_matrix(args)
    if getattr(args, "bench_command", None) == "profile":
        return _cmd_bench_profile(args)
    bench_dir = Path(args.path) if args.path else _default_bench_dir()
    if bench_dir is None or not bench_dir.is_dir():
        print(
            "benchmark suite not found; pass --path <repo>/benchmarks",
            file=sys.stderr,
        )
        raise SystemExit(2)
    import os

    import pytest

    os.environ["REPRO_BENCH_SCALE"] = args.scale
    argv = [str(bench_dir), "-q", "-p", "no:cacheprovider"]
    if args.filter:
        argv += ["-k", args.filter]
    code = pytest.main(argv)
    if code != 0:
        raise SystemExit(int(code))
    return None


def _cmd_bench_matrix(args: argparse.Namespace) -> dict | None:
    """``repro bench matrix`` — the executor x incremental strategy grid.

    Each cell's wall-time lands as a top-level ``<cell>_seconds`` field of
    ``BENCH_matrix.json``, so two matrix records diff with the standard
    ``repro bench diff`` wall-time gate; the serial baseline's sweep
    payload makes ``--gate-costs`` work too. Exits non-zero when any cell
    drifts from the baseline's cost metrics (``costs_identical`` false).
    """
    import json

    from repro.obs import run_manifest, write_manifest
    from repro.perf.benchmatrix import run_bench_matrix

    workers = [int(w) for w in args.workers.split(",") if w.strip()]
    record = run_bench_matrix(
        beta=args.beta,
        horizon=args.horizon,
        workers=workers,
        verbose=True,
    )
    out_dir = Path(args.out) if args.out else _default_bench_dir()
    if out_dir is None:
        print("benchmarks directory not found; pass --out", file=sys.stderr)
        raise SystemExit(2)
    results = out_dir / "results" if args.out is None else out_dir
    results.mkdir(parents=True, exist_ok=True)
    path = results / "BENCH_matrix.json"
    with path.open("w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    manifest = run_manifest(
        seed=record["seeds"][0],
        config={
            "bench": "matrix",
            "beta": record["beta"],
            "horizon": record["horizon"],
            "cells": record["cells"],
        },
    )
    write_manifest(results / "BENCH_matrix.manifest.json", manifest)
    print(f"[saved to {path}]")
    if not record["costs_identical"]:
        print("FAIL: a matrix cell drifted from the baseline cost metrics")
        raise SystemExit(1)
    return record


def _cmd_bench_profile(args: argparse.Namespace) -> dict | None:
    """``repro bench profile <leg>`` — run one leg under cProfile.

    Emits ``PROFILE_<leg>.txt`` (deterministic top-N cumulative table,
    repo-relative paths) next to the leg's ``BENCH_*.json`` so hot-spot
    questions are answerable from CI artifacts.
    """
    from repro.perf.profiler import profile_bench

    bench_dir = Path(args.path) if args.path else _default_bench_dir()
    if bench_dir is None or not bench_dir.is_dir():
        print(
            "benchmark suite not found; pass --path <repo>/benchmarks",
            file=sys.stderr,
        )
        raise SystemExit(2)
    try:
        out = profile_bench(
            args.leg,
            bench_dir,
            scale=args.scale,
            top=args.top,
            out_dir=Path(args.out) if args.out else None,
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        raise SystemExit(2) from exc
    print(f"[saved to {out}]")
    return None


def _cmd_bench_diff(args: argparse.Namespace) -> dict | None:
    """``repro bench diff <old> <new>`` — compare two BENCH_*.json records.

    Exits non-zero when the two records have identical configuration
    digests and any shared wall-time field regressed by more than
    ``--threshold`` (default 10%). With differing digests the runs are not
    comparable, so timings are reported but never gated. ``--gate-costs``
    additionally fails the diff on any cost drift, regardless of digests —
    the gate for strategy A/Bs (batched off/on, executor changes) that
    must reproduce bit-identical costs.
    """
    from repro.perf.benchdiff import diff_bench, load_bench, render_bench_diff

    comparison = diff_bench(
        load_bench(args.old), load_bench(args.new), threshold=args.threshold
    )
    print(render_bench_diff(comparison))
    if comparison.gate_failed:
        raise SystemExit(1)
    if getattr(args, "gate_costs", False) and comparison.cost_drift:
        print(
            f"FAIL: --gate-costs with {len(comparison.cost_drift)} drifted "
            "cost entries"
        )
        raise SystemExit(1)
    return None


def _default_bench_dir() -> Path | None:
    """Locate ``benchmarks/`` next to the source tree (src layout checkout)."""
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "benchmarks"
        if (candidate / "conftest.py").is_file():
            return candidate
    return None


def _cmd_obs(args: argparse.Namespace) -> dict | None:
    """``repro obs {report,analyze,top}`` — inspect recorded or live telemetry."""
    if args.obs_command == "top":
        return _cmd_obs_top(args)
    if args.trace_file is None:
        print(f"repro obs {args.obs_command} needs a trace file", file=sys.stderr)
        raise SystemExit(2)
    if args.obs_command == "analyze":
        return _cmd_obs_analyze(args)
    events = api.read_trace(args.trace_file)
    print(api.render_trace_dashboard(events))
    manifest_path = manifest_path_for(args.trace_file)
    if manifest_path.is_file():
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        validate_manifest(manifest)
        print()
        print(
            f"manifest: seed={manifest['seed']} "
            f"config_hash={manifest['config_hash'][:12]} "
            f"trace_digest={manifest['trace']['digest'][:12]}"
        )
    return None


def _cmd_obs_analyze(args: argparse.Namespace) -> dict | None:
    """``repro obs analyze <trace>`` — deterministic post-mortem diagnosis.

    ``--json`` emits the canonical machine-readable report instead of the
    table; ``--strict`` exits non-zero unless the verdict is ``clean`` (the
    CI gate).
    """
    diagnosis = api.analyze_trace(api.read_trace(args.trace_file))
    if args.as_json:
        print(diagnosis.to_json())
    else:
        print(api.render_diagnosis(diagnosis))
    if args.strict and diagnosis.verdict != "clean":
        raise SystemExit(1)
    return None


def _cmd_obs_top(args: argparse.Namespace) -> dict | None:
    """``repro obs top`` — live dashboard polling a serve ``/slo`` endpoint."""
    import urllib.error
    import urllib.request

    endpoint = args.url.rstrip("/") + "/slo"
    history: list[dict] = []
    frame = 0
    try:
        while args.frames <= 0 or frame < args.frames:
            if frame:
                time.sleep(args.interval)
            try:
                with urllib.request.urlopen(endpoint, timeout=5.0) as response:
                    payload = json.loads(response.read().decode("utf-8"))
            except (OSError, urllib.error.URLError, ValueError) as exc:
                print(f"obs top: cannot poll {endpoint}: {exc}", file=sys.stderr)
                raise SystemExit(1) from exc
            history.append(payload)
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(api.render_top_frame(history))
            frame += 1
    except KeyboardInterrupt:
        pass
    return None


def _trace_config(args: argparse.Namespace, command: str) -> dict:
    """The run-defining configuration recorded in the trace manifest.

    Deliberately excludes the executor/worker spec and output paths: the
    manifest (like the trace itself) must be byte-identical no matter how
    the run was parallelized or where its artifacts were written.
    """
    config: dict = {"command": command}
    for key in (
        "horizon",
        "window",
        "mode",
        "beta",
        "axis",
        "recover_tol",
        "strategy",
        "rps",
        "slot_seconds",
        "admission",
        "queue_depth",
        "max_requests",
        "pace",
    ):
        value = getattr(args, key, None)
        if value is not None:
            config[key] = value
    values = getattr(args, "values", None)
    if values is not None:
        config["values"] = [float(v) for v in values]
    seeds = getattr(args, "seeds", None)
    if seeds is not None:
        config["seeds"] = [int(s) for s in seeds]
    return config


def _write_trace_artifacts(args: argparse.Namespace, command: str, recorder) -> None:
    api.write_trace(args.trace, recorder)
    fault_schedule = None
    if command == "resilience":
        fault_schedule = api.default_fault_schedule(args.horizon).to_dict()
    manifest = api.run_manifest(
        seed=int(args.seeds[0]) if getattr(args, "seeds", None) else 0,
        config=_trace_config(args, command),
        events=recorder.events,
        fault_schedule=fault_schedule,
    )
    manifest_path = manifest_path_for(args.trace)
    api.write_manifest(manifest_path, manifest)
    print(
        f"wrote {args.trace} ({validate_trace(recorder.events)} events) "
        f"and {manifest_path}",
        file=sys.stderr,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Joint Online Edge Caching and Load Balancing "
        "for Mobile Data Offloading in 5G Networks' (ICDCS'19): headline "
        "comparison, figure sweeps, benchmarks, and fault resilience.",
    )
    # metavar hides the legacy aliases from --help while keeping them parseable.
    sub = parser.add_subparsers(
        dest="command",
        required=True,
        metavar="{run,sweep,bench,resilience,serve,obs}",
    )

    pr = sub.add_parser("run", help="headline policy comparison (Section V-C)")
    pr.add_argument("--beta", type=float, default=50.0)
    _add_common(pr)

    ps = sub.add_parser("sweep", help="parameter sweep (Figs. 2-5)")
    ps.add_argument(
        "--axis", choices=api.SWEEP_AXES, required=True, help="which parameter to sweep"
    )
    ps.add_argument(
        "--values",
        type=float,
        nargs="+",
        default=None,
        help="sweep grid (default: the figure's grid)",
    )
    _add_common(ps)

    pb = sub.add_parser(
        "bench", help="run the benchmark suite (BENCH_*.json) or diff its records"
    )
    pb.add_argument(
        "--scale",
        choices=("quick", "full", "paper"),
        default="quick",
        help="benchmark problem scale",
    )
    pb.add_argument("--filter", type=str, default=None, help="pytest -k expression")
    pb.add_argument("--path", type=str, default=None, help="benchmarks directory")
    pb_sub = pb.add_subparsers(
        dest="bench_command", metavar="{run,diff,matrix,profile}"
    )
    pb_run = pb_sub.add_parser("run", help="run the suite (the default)")
    # SUPPRESS keeps values parsed before the sub-verb ('bench --scale full
    # run') from being clobbered by the subparser's defaults.
    pb_run.add_argument(
        "--scale", choices=("quick", "full", "paper"), default=argparse.SUPPRESS
    )
    pb_run.add_argument("--filter", type=str, default=argparse.SUPPRESS)
    pb_run.add_argument("--path", type=str, default=argparse.SUPPRESS)
    pb_matrix = pb_sub.add_parser(
        "matrix",
        help="executor x incremental strategy grid -> BENCH_matrix.json",
    )
    pb_matrix.add_argument("--beta", type=float, default=50.0)
    pb_matrix.add_argument(
        "--horizon", type=int, default=20, help="scenario horizon per cell"
    )
    pb_matrix.add_argument(
        "--workers",
        type=str,
        default="2,4",
        help="comma-separated pool widths in [2, 8] (default 2,4)",
    )
    pb_matrix.add_argument(
        "--out", type=str, default=None, help="output directory for the record"
    )
    pb_profile = pb_sub.add_parser(
        "profile",
        help="run one bench leg under cProfile -> PROFILE_<leg>.txt",
    )
    pb_profile.add_argument(
        "leg", help="bench leg name (e.g. 'headline' for bench_headline.py)"
    )
    pb_profile.add_argument(
        "--scale", choices=("quick", "full", "paper"), default=argparse.SUPPRESS
    )
    pb_profile.add_argument("--path", type=str, default=argparse.SUPPRESS)
    pb_profile.add_argument(
        "--top", type=int, default=30, help="rows in the cumulative table"
    )
    pb_profile.add_argument(
        "--out", type=str, default=None, help="output directory for the table"
    )
    pb_diff = pb_sub.add_parser(
        "diff", help="compare two BENCH_*.json records, gate on wall-time"
    )
    pb_diff.add_argument("old", help="baseline BENCH_*.json")
    pb_diff.add_argument("new", help="candidate BENCH_*.json")
    pb_diff.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="gated wall-time regression fraction (default 0.10); the gate "
        "only fires when the records' configuration digests match",
    )
    pb_diff.add_argument(
        "--gate-costs",
        action="store_true",
        help="also fail on any cost drift between the records (works across "
        "differing config digests — the strategy A/B gate: e.g. batched "
        "off/on must reproduce identical costs)",
    )

    pz = sub.add_parser(
        "resilience", help="policies under a seeded fault schedule (outage + degradation)"
    )
    pz.add_argument(
        "--recover-tol",
        type=float,
        default=0.05,
        help="relative tolerance for the recovery test",
    )
    _add_common(pz)

    pv = sub.add_parser(
        "serve", help="live request-path serving runtime (plan swaps at slot edges)"
    )
    pv.add_argument(
        "--rps",
        type=float,
        default=None,
        help="open-loop arrival rate (default: REPRO_SERVE_RPS or 200)",
    )
    pv.add_argument(
        "--slot-seconds",
        type=float,
        default=None,
        help="wall-clock length of one timeslot "
        "(default: REPRO_SERVE_SLOT_SECONDS or 0.25)",
    )
    pv.add_argument(
        "--admission",
        choices=ADMISSION_POLICIES,
        default=None,
        help="what to do when the solver falls behind: backpressure ('queue') "
        "or drop ('shed') (default: REPRO_SERVE_ADMISSION or 'queue')",
    )
    pv.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="admission queue depth (default: REPRO_SERVE_QUEUE_DEPTH or 256)",
    )
    pv.add_argument(
        "--strategy",
        choices=sorted(STRATEGIES),
        default="optimal-y",
        help="routing strategy for cache-hit requests",
    )
    pv.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="truncate the open-loop stream after this many requests",
    )
    pv.add_argument(
        "--pace",
        action="store_true",
        help="replay in real time (each request released at its virtual "
        "arrival) instead of as fast as the loop drains",
    )
    pv.add_argument(
        "--decision-log",
        type=str,
        default=None,
        metavar="PATH",
        help="write the canonical decision log (JSONL, sorted by seq) to PATH",
    )
    pv.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live /metrics, /healthz and /slo over HTTP on 127.0.0.1 "
        "at this port for the duration of the run (0 = ephemeral; default: "
        "REPRO_SERVE_METRICS_PORT or disabled)",
    )
    pv.add_argument(
        "--slo",
        type=str,
        default=None,
        metavar="SPEC",
        help="comma-separated SLO objectives evaluated with multi-window "
        "burn-rate alerting, e.g. 'p99_decision_us<200,shed_ratio<0.01' "
        "(default: REPRO_OBS_SLO or none)",
    )
    _add_common(pv)

    po = sub.add_parser(
        "obs", help="inspect recorded telemetry (see --trace) or a live run"
    )
    po.add_argument(
        "obs_command",
        choices=("report", "analyze", "top"),
        help="report: dashboard of a trace; analyze: post-mortem diagnosis; "
        "top: live dashboard polling a serve /slo endpoint",
    )
    # dest deliberately differs from the --trace *recording* option so the
    # dispatch loop never mistakes the input path for a recording request.
    po.add_argument(
        "trace_file",
        metavar="trace",
        type=str,
        nargs="?",
        default=None,
        help="trace file written by --trace (report/analyze only)",
    )
    po.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="analyze: emit the canonical JSON report instead of the table",
    )
    po.add_argument(
        "--strict",
        action="store_true",
        help="analyze: exit non-zero unless the verdict is 'clean'",
    )
    po.add_argument(
        "--url",
        type=str,
        default="http://127.0.0.1:9109",
        help="top: base URL of a running 'repro serve --metrics-port' endpoint",
    )
    po.add_argument(
        "--frames",
        type=int,
        default=0,
        help="top: number of refreshes before exiting (0 = until interrupted)",
    )
    po.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="top: seconds between refreshes",
    )
    po.add_argument(
        "--no-clear",
        action="store_true",
        help="top: append frames instead of clearing the screen",
    )

    # Hidden legacy aliases (fig2..fig5, headline, demo).
    p2 = sub.add_parser("fig2")
    p2.add_argument("--betas", type=float, nargs="+", default=None)
    _add_common(p2)
    p3 = sub.add_parser("fig3")
    p3.add_argument("--windows", type=int, nargs="+", default=None)
    _add_common(p3)
    p4 = sub.add_parser("fig4")
    p4.add_argument("--bandwidths", type=float, nargs="+", default=None)
    _add_common(p4)
    p5 = sub.add_parser("fig5")
    p5.add_argument("--etas", type=float, nargs="+", default=None)
    _add_common(p5)
    ph = sub.add_parser("headline")
    ph.add_argument("--beta", type=float, default=50.0)
    _add_common(ph)
    pd = sub.add_parser("demo")
    _add_common(pd)

    args = parser.parse_args(argv)
    started = time.perf_counter()

    command = args.command
    if command in _LEGACY_AXES:
        args.axis = _LEGACY_AXES[command]
        args.values = {
            "fig2": args.__dict__.get("betas"),
            "fig3": args.__dict__.get("windows"),
            "fig4": args.__dict__.get("bandwidths"),
            "fig5": args.__dict__.get("etas"),
        }[command]
        command = "sweep"
    elif command == "headline":
        command = "run"
    elif command == "demo":
        args.horizon = min(args.horizon, 30)
        args.window = min(args.window, 5)
        args.beta = 50.0
        command = "run"

    handlers = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "bench": _cmd_bench,
        "resilience": _cmd_resilience,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
    }

    # --verbose: route repro.* log records to stdout for this invocation.
    # The handler is created per call (not at import) so test harnesses that
    # replace sys.stdout see the output, and removed afterwards so repeated
    # main() calls never stack handlers.
    console: logging.Handler | None = None
    repro_logger = logging.getLogger("repro")
    if getattr(args, "verbose", False):
        console = logging.StreamHandler(sys.stdout)
        console.setFormatter(logging.Formatter("%(message)s"))
        console.setLevel(logging.INFO)
        repro_logger.addHandler(console)
        if repro_logger.level > logging.INFO or repro_logger.level == logging.NOTSET:
            repro_logger.setLevel(logging.INFO)

    trace_path = getattr(args, "trace", None)
    recorder = api.Recorder() if trace_path else None
    try:
        with api.record_into(recorder) if recorder is not None else nullcontext():
            payload = handlers[command](args)
    finally:
        if console is not None:
            repro_logger.removeHandler(console)

    if recorder is not None:
        _write_trace_artifacts(args, command, recorder)

    if getattr(args, "json", None) and payload is not None:
        _write_json(args.json, payload)

    elapsed = time.perf_counter() - started
    print(f"\ndone in {elapsed:.1f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: regenerate any of the paper's figures.

Examples
--------
::

    repro fig2 --betas 0 50 100 --horizon 60 --seeds 1 2
    repro fig3 --windows 2 4 6 8 10
    repro fig4
    repro fig5 --etas 0 0.25 0.5
    repro headline --beta 50
    repro demo --horizon 20

Each command prints the text tables of the corresponding figure panels
(see ``repro.sim.report``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.sim.experiment import (
    SweepResult,
    bandwidth_sweep,
    beta_sweep,
    headline_comparison,
    noise_sweep,
    window_sweep,
)
from repro.sim.report import render_headline_table, render_sweep_table


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--horizon", type=int, default=100, help="timeslots T")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1], help="random seeds")
    parser.add_argument(
        "--window", type=int, default=10, help="prediction window w (ignored by fig3)"
    )
    parser.add_argument(
        "--mode",
        choices=("reoptimize", "as_decided"),
        default="reoptimize",
        help="how realized load balancing is computed (see sim.engine)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each metric as an ASCII chart",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel workers for the (point, seed, policy) grid "
        "(default: serial, or REPRO_WORKERS if set)",
    )
    parser.add_argument(
        "--executor",
        type=str,
        default=None,
        help="executor spec, e.g. 'process:4', 'thread:8' or 'serial' "
        "(overrides --workers)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the sweep result as JSON to PATH",
    )
    parser.add_argument("--verbose", action="store_true")


def _executor_spec(args: argparse.Namespace) -> str | None:
    """Translate --executor/--workers into an executor spec string."""
    if args.executor:
        return args.executor
    if args.workers is not None:
        return f"process:{args.workers}" if args.workers > 1 else "serial"
    return None


def _print_sweep(
    sweep: SweepResult, metrics: Sequence[str], *, chart: bool = False
) -> None:
    for metric in metrics:
        print()
        print(render_sweep_table(sweep, metric))
        if chart and len(sweep.points) > 1:
            from repro.sim.ascii_chart import render_ascii_chart

            print()
            print(render_ascii_chart(sweep, metric))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the figures of 'Joint Online Edge Caching and "
        "Load Balancing for Mobile Data Offloading in 5G Networks' (ICDCS'19).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p2 = sub.add_parser("fig2", help="beta sweep (Fig. 2a-2d)")
    p2.add_argument(
        "--betas", type=float, nargs="+", default=[0, 25, 50, 75, 100, 150, 200]
    )
    _add_common(p2)

    p3 = sub.add_parser("fig3", help="prediction-window sweep (Fig. 3a-3b)")
    p3.add_argument("--windows", type=int, nargs="+", default=[2, 4, 6, 8, 10, 12])
    _add_common(p3)

    p4 = sub.add_parser("fig4", help="SBS bandwidth sweep (Fig. 4a-4b)")
    p4.add_argument(
        "--bandwidths", type=float, nargs="+", default=[5, 10, 15, 20, 25, 30]
    )
    _add_common(p4)

    p5 = sub.add_parser("fig5", help="prediction-noise sweep (Fig. 5)")
    p5.add_argument(
        "--etas", type=float, nargs="+", default=[0, 0.1, 0.2, 0.3, 0.4, 0.5]
    )
    _add_common(p5)

    ph = sub.add_parser("headline", help="Section V-C(1) comparison point")
    ph.add_argument("--beta", type=float, default=50.0)
    _add_common(ph)

    pd = sub.add_parser("demo", help="quick small-scale end-to-end run")
    _add_common(pd)

    args = parser.parse_args(argv)
    started = time.perf_counter()

    common = dict(
        seeds=tuple(args.seeds),
        mode=args.mode,
        verbose=args.verbose,
        horizon=args.horizon,
        executor=_executor_spec(args),
    )

    if args.command == "fig2":
        sweep = beta_sweep(args.betas, window=args.window, **common)
        _print_sweep(sweep, ("total", "replacement", "replacements", "bs_cost"), chart=args.chart)
    elif args.command == "fig3":
        sweep = window_sweep(args.windows, **common)
        _print_sweep(sweep, ("total", "replacements"), chart=args.chart)
    elif args.command == "fig4":
        sweep = bandwidth_sweep(args.bandwidths, window=args.window, **common)
        _print_sweep(sweep, ("total", "replacements"), chart=args.chart)
    elif args.command == "fig5":
        sweep = noise_sweep(args.etas, window=args.window, **common)
        _print_sweep(sweep, ("total",), chart=args.chart)
    elif args.command == "headline":
        sweep = headline_comparison(beta=args.beta, window=args.window, **common)
        print()
        print(render_headline_table(sweep))
    elif args.command == "demo":
        common["horizon"] = min(args.horizon, 30)
        sweep = headline_comparison(beta=50.0, window=min(args.window, 5), **common)
        print()
        print(render_headline_table(sweep))

    if args.json:
        import json

        from repro.sim.report import sweep_to_dict

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(sweep_to_dict(sweep), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)

    elapsed = time.perf_counter() - started
    print(f"\ndone in {elapsed:.1f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

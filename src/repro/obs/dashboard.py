"""ASCII dashboard rendered from a recorded trace.

Reuses the generic grid renderer extracted into
:func:`repro.sim.ascii_chart.render_series_chart`: per-slot realized cost
(one series per policy) from ``slot_end`` events, plus a compact summary
of solves, cache churn, faults, and log lines. This is what
``repro obs report <trace>`` prints.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.events import TraceEvent


def _slot_cost_series(
    events: Sequence[TraceEvent],
) -> tuple[list[int], dict[str, list[float]]]:
    """Group slot_end cost by policy; missing slots carry forward nothing
    (series are aligned on the union of observed slots)."""
    by_policy: dict[str, dict[int, float]] = {}
    slots: set[int] = set()
    for event in events:
        if event.kind != "slot_end" or event.slot is None:
            continue
        data = event.data
        policy = str(data.get("policy", "run"))
        total = data.get("total")
        if total is None or isinstance(total, bool):
            continue
        try:
            # Canonical JSON stringifies non-finite floats ("inf", "nan");
            # float() round-trips those, and the chart renderer skips
            # non-finite points. Anything unparseable is dropped.
            value = float(total)
        except (TypeError, ValueError):
            continue
        by_policy.setdefault(policy, {})[event.slot] = value
        slots.add(event.slot)
    ordered = sorted(slots)
    series = {
        name: [points.get(t, float("nan")) for t in ordered]
        for name, points in sorted(by_policy.items())
    }
    return ordered, series


def render_trace_dashboard(
    events: Sequence[TraceEvent], *, width: int = 60, height: int = 14
) -> str:
    """Render the per-slot cost chart plus an event/fault summary."""
    # Imported here, not at module top: the solver stack is instrumented
    # with repro.obs, so obs must not import sim at package-init time.
    from repro.sim.ascii_chart import render_series_chart

    kinds: dict[str, int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1

    sections: list[str] = []
    slots, series = _slot_cost_series(events)
    if slots and series:
        sections.append(
            render_series_chart(
                [float(t) for t in slots],
                series,
                title="per-slot cost",
                x_label="slot",
                width=width,
                height=height,
            )
        )
    else:
        sections.append("(no slot_end events — nothing to chart)")

    summary = ["", "trace summary"]
    summary.append("  events: " + str(len(events)))
    for kind in sorted(kinds):
        summary.append(f"    {kind:<18} {kinds[kind]}")

    solves = [e for e in events if e.kind == "solve_done"]
    if solves:
        gaps = [
            float(e.data["gap"])
            for e in solves
            if isinstance(e.data.get("gap"), (int, float))
        ]
        converged = sum(1 for e in solves if e.data.get("converged"))
        summary.append(
            f"  solves: {len(solves)} ({converged} converged"
            + (f", worst gap {max(gaps):.3g}" if gaps else "")
            + ")"
        )

    faults = [
        e for e in events if e.kind in ("fault_injected", "fault_cleared")
    ]
    if faults:
        windows = ", ".join(
            f"{e.kind.split('_')[1]}@{e.slot}" for e in faults if e.slot is not None
        )
        summary.append(f"  faults: {windows}")

    churn_in = sum(
        int(e.data.get("count", 0)) for e in events if e.kind == "cache_insert"
    )
    churn_out = sum(
        int(e.data.get("count", 0)) for e in events if e.kind == "cache_evict"
    )
    if churn_in or churn_out:
        summary.append(f"  cache churn: +{churn_in} / -{churn_out} items")

    logs = [e for e in events if e.kind == "log"]
    if logs:
        summary.append(f"  log lines: {len(logs)} (last: "
                       f"{logs[-1].data.get('message', '')!r})")

    sections.append("\n".join(summary))
    return "\n".join(sections)

"""Per-iteration convergence traces for the optimizers.

:class:`ConvergenceRecorder` is a tiny column-store the solver loops append
to (one ``record(**values)`` per iteration); :meth:`freeze` produces the
immutable :class:`ConvergenceTrace` surfaced on
:class:`repro.core.primal_dual.PrimalDualResult` and
:class:`repro.optim.fista.FistaResult`.

Column conventions:

* subgradient dual ascent (``algorithm="subgradient"``): ``lower_bound``,
  ``upper_bound``, ``gap``, ``step``, ``subgrad_norm``
* FISTA (``algorithm="fista"``): ``objective``, ``residual``,
  ``lipschitz`` — recorded for **accepted** iterates only, so with the
  monotone restart enabled the ``objective`` series is non-increasing
  (asserted by ``tests/test_obs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ConvergenceTrace:
    """Immutable per-iteration record of a solver run.

    ``rows[i]`` holds the values of ``columns`` at iteration ``i``.
    """

    algorithm: str
    columns: tuple[str, ...]
    rows: tuple[tuple[float, ...], ...]

    def __len__(self) -> int:
        return len(self.rows)

    def series(self, column: str) -> tuple[float, ...]:
        """All values of one column, in iteration order."""
        try:
            idx = self.columns.index(column)
        except ValueError:
            raise ConfigurationError(
                f"trace of {self.algorithm!r} has no column {column!r}; "
                f"available: {list(self.columns)}"
            ) from None
        return tuple(row[idx] for row in self.rows)

    def final(self, column: str) -> float | None:
        values = self.series(column)
        return values[-1] if values else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ConvergenceTrace":
        return cls(
            algorithm=str(payload["algorithm"]),
            columns=tuple(payload["columns"]),
            rows=tuple(tuple(float(v) for v in row) for row in payload["rows"]),
        )


class ConvergenceRecorder:
    """Mutable accumulator the solver loops write into.

    The column set is fixed by the first :meth:`record` call; later calls
    must supply exactly the same keys (missing data is a solver bug, not
    something to paper over with NaNs).
    """

    def __init__(self, algorithm: str) -> None:
        self.algorithm = algorithm
        self._columns: tuple[str, ...] | None = None
        self._rows: list[tuple[float, ...]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def record(self, **values: float) -> None:
        if self._columns is None:
            self._columns = tuple(sorted(values))
        elif set(values) != set(self._columns):
            raise ConfigurationError(
                f"convergence record keys {sorted(values)} differ from "
                f"established columns {list(self._columns)}"
            )
        self._rows.append(tuple(float(values[c]) for c in self._columns))

    def freeze(self) -> ConvergenceTrace:
        return ConvergenceTrace(
            algorithm=self.algorithm,
            columns=self._columns or (),
            rows=tuple(self._rows),
        )

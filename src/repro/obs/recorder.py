"""The :class:`Recorder` — event stream + metric registry — and its hooks.

Design constraints, in order:

1. **Off-by-default-cheap.** Instrumented code paths call the module-level
   :func:`emit` / :func:`inc` / :func:`observe` helpers, which cost one
   ``ContextVar.get`` + ``None`` check when no recorder is attached. The
   guard benchmark (``benchmarks/bench_obs.py``) asserts ~0% overhead
   disabled and < 5% enabled on the headline run.
2. **Deterministic.** Events carry no wall-clock data; metric maps are
   insertion-ordered and merged in task-input order (the same
   ordered-reduce discipline as :meth:`repro.perf.timers.StageTimers.merge`),
   so serial / thread / process executions of a seeded run produce
   byte-identical traces. Parallel fan-out uses
   :func:`repro.perf.executor.map_recorded`, which gives every task a
   fresh recorder and lets the parent merge them in input order.
3. **Protocol-neutral.** Activation is ambient (:func:`record_into`), so
   policies and solvers are instrumented without widening the
   :class:`repro.scenario.CachingPolicy` protocol or every call chain.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.obs.events import SCHEMA_VERSION, TraceEvent
from repro.obs.sketch import QuantileSketch

#: Label sets are canonicalized to sorted tuples so ``(name, labels)`` keys
#: are order-insensitive at call sites.
LabelKey = tuple[tuple[str, str], ...]
MetricKey = tuple[str, LabelKey]

#: Fixed histogram bucket upper bounds (powers of ten around typical
#: iteration counts / gaps); +inf is implicit in ``count``.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0
)


def _label_key(labels: Mapping[str, Any] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricRegistry:
    """Counters, gauges, histograms, and quantile sketches keyed by
    ``(name, labels)``.

    Insertion-ordered (plain dicts), so two registries fed the same
    sequence of updates serialize identically — the property the
    cross-executor determinism contract relies on.
    """

    def __init__(self) -> None:
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, Histogram] = {}
        self._sketches: dict[MetricKey, QuantileSketch] = {}

    def inc(
        self,
        name: str,
        value: float = 1.0,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        self._gauges[(name, _label_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value)

    def observe_quantile(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        key = (name, _label_key(labels))
        sketch = self._sketches.get(key)
        if sketch is None:
            sketch = self._sketches[key] = QuantileSketch()
        sketch.observe(value)

    def counter(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> float:
        return self._counters.get((name, _label_key(labels)), 0.0)

    def gauge(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> float | None:
        return self._gauges.get((name, _label_key(labels)))

    def histogram(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> Histogram | None:
        return self._histograms.get((name, _label_key(labels)))

    def sketch(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> QuantileSketch | None:
        return self._sketches.get((name, _label_key(labels)))

    def merge(self, other: "MetricRegistry") -> None:
        """Fold ``other`` into self: counters add, gauges last-write-wins,
        histograms and sketches pool. Call in task-input order for
        determinism."""
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0.0) + value
        for key, value in other._gauges.items():
            self._gauges[key] = value
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                copy = Histogram(buckets=hist.buckets)
                copy.merge(hist)
                self._histograms[key] = copy
            else:
                mine.merge(hist)
        for key, sketch in other._sketches.items():
            mine_sketch = self._sketches.get(key)
            if mine_sketch is None:
                copy_sketch = QuantileSketch(
                    sketch.lo, sketch.hi, sketch.buckets_per_decade
                )
                copy_sketch.merge(sketch)
                self._sketches[key] = copy_sketch
            else:
                mine_sketch.merge(sketch)

    @staticmethod
    def _key_str(key: MetricKey) -> str:
        name, labels = key
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{inner}}}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": {
                self._key_str(k): v for k, v in sorted(self._counters.items())
            },
            "gauges": {
                self._key_str(k): v for k, v in sorted(self._gauges.items())
            },
            "histograms": {
                self._key_str(k): h.to_dict()
                for k, h in sorted(self._histograms.items())
            },
            "sketches": {
                self._key_str(k): s.to_dict()
                for k, s in sorted(self._sketches.items())
            },
        }

    def items(self) -> dict[str, dict[MetricKey, Any]]:
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": dict(self._histograms),
            "sketches": dict(self._sketches),
        }


class Recorder:
    """Collects a typed event stream plus a metric registry for one run.

    Use :func:`record_into` to make a recorder ambient for a code region;
    instrumented modules then feed it through the module-level fast-path
    helpers (:func:`emit`, :func:`inc`, ...).
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.metrics = MetricRegistry()

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, kind: str, *, slot: int | None = None, **fields: Any) -> None:
        slot = _resolve_slot(slot)
        fields = _apply_labels(fields)
        self.events.append(
            TraceEvent.make(len(self.events), kind, slot, **fields)
        )

    def inc(
        self,
        name: str,
        value: float = 1.0,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        self.metrics.inc(name, value, labels)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        self.metrics.set_gauge(name, value, labels)

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        self.metrics.observe(name, value, labels)

    def observe_quantile(
        self,
        name: str,
        value: float,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        self.metrics.observe_quantile(name, value, labels)

    def merge(self, other: "Recorder") -> None:
        """Append ``other``'s events (renumbered) and fold its metrics.

        Same ordered-reduce discipline as ``StageTimers.merge``: the caller
        merges per-task recorders in task-input order, which makes the
        combined trace independent of worker scheduling.
        """
        base = len(self.events)
        for event in other.events:
            self.events.append(
                TraceEvent(
                    seq=base + event.seq,
                    kind=event.kind,
                    slot=event.slot,
                    fields=event.fields,
                )
            )
        self.metrics.merge(other.metrics)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "events": [e.to_dict() for e in self.events],
            "metrics": self.metrics.to_dict(),
        }


# --------------------------------------------------------------------------
# Ambient activation: one ContextVar holds the active recorder; two more
# carry the current slot / labels so deep call sites (the subgradient loop,
# the engine) emit fully-stamped events without threading arguments through
# every signature.

_ACTIVE: ContextVar[Recorder | None] = ContextVar("repro_obs_recorder", default=None)
_SLOT: ContextVar[int | None] = ContextVar("repro_obs_slot", default=None)
_LABELS: ContextVar[tuple[tuple[str, Any], ...]] = ContextVar(
    "repro_obs_labels", default=()
)


def current_recorder() -> Recorder | None:
    """The ambient recorder, or ``None`` when telemetry is off."""
    return _ACTIVE.get()


@contextmanager
def record_into(recorder: Recorder | None) -> Iterator[Recorder | None]:
    """Make ``recorder`` ambient for the dynamic extent of the block.

    ``record_into(None)`` explicitly silences telemetry for a region.
    """
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)


@contextmanager
def slot_scope(slot: int | None) -> Iterator[None]:
    """Stamp events emitted inside the block with ``slot`` by default."""
    token = _SLOT.set(slot)
    try:
        yield
    finally:
        _SLOT.reset(token)


@contextmanager
def label_scope(**labels: Any) -> Iterator[None]:
    """Attach ``labels`` as extra fields to events emitted in the block."""
    token = _LABELS.set(_LABELS.get() + tuple(labels.items()))
    try:
        yield
    finally:
        _LABELS.reset(token)


def _resolve_slot(slot: int | None) -> int | None:
    return _SLOT.get() if slot is None else slot


def _apply_labels(fields: dict[str, Any]) -> dict[str, Any]:
    ambient = _LABELS.get()
    if not ambient:
        return fields
    merged = dict(ambient)
    merged.update(fields)
    return merged


def emit(kind: str, *, slot: int | None = None, **fields: Any) -> None:
    """Fast-path event emit: no-op unless a recorder is ambient."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.emit(kind, slot=slot, **fields)


def inc(
    name: str, value: float = 1.0, labels: Mapping[str, Any] | None = None
) -> None:
    """Fast-path counter increment: no-op unless a recorder is ambient."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.inc(name, value, labels)


def set_gauge(
    name: str, value: float, labels: Mapping[str, Any] | None = None
) -> None:
    """Fast-path gauge set: no-op unless a recorder is ambient."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.set_gauge(name, value, labels)


def observe(
    name: str, value: float, labels: Mapping[str, Any] | None = None
) -> None:
    """Fast-path histogram observation: no-op unless a recorder is ambient."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.observe(name, value, labels)


def observe_quantile(
    name: str, value: float, labels: Mapping[str, Any] | None = None
) -> None:
    """Fast-path sketch observation: no-op unless a recorder is ambient."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder.observe_quantile(name, value, labels)


class RecorderHandler(logging.Handler):
    """Routes ``repro.*`` log records into the ambient recorder as ``log``
    events. Installed once on the ``repro`` logger; a record emitted with
    no recorder ambient is simply not traced (console handlers still see
    it)."""

    def emit(self, record: logging.LogRecord) -> None:  # noqa: A003
        recorder = _ACTIVE.get()
        if recorder is None:
            return
        try:
            recorder.emit(
                "log",
                logger=record.name,
                level=record.levelname,
                message=record.getMessage(),
            )
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


_handler_installed = False


def install_log_bridge() -> None:
    """Idempotently attach the :class:`RecorderHandler` to ``repro``."""
    global _handler_installed
    if _handler_installed:
        return
    logging.getLogger("repro").addHandler(RecorderHandler())
    _handler_installed = True

"""Post-mortem trace diagnosis — the ``repro obs analyze`` backend.

:func:`analyze_trace` replays any JSONL trace (sim or serve) through a
set of detectors and produces a :class:`Diagnosis`: a machine-checkable
health verdict plus a list of :class:`Finding` entries. The analysis is
a **pure, deterministic function of the event stream** — no clocks, no
randomness, findings and stats sorted — so two runs over the same trace
emit byte-identical reports (asserted by ``tests/test_obs_analyze.py``),
and a CI job can gate on the verdict.

Detectors:

====================  =====================================================
kind                  fires when
====================  =====================================================
``fault_window``      paired ``fault_injected``/``fault_cleared`` edges
                      (info — context for correlating the rest)
``convergence_stall`` >= 3 consecutive non-converged ``solve_done`` with
                      < 5% relative gap improvement (gap plateau);
                      ``stopped_by_patience`` solves are exempt — the
                      online ub-patience early exit is by design
``solver_storm``      a cluster of ``budget_exhausted`` /
                      ``stopped_by_budget`` solves / fallback-bailout log
                      lines (the P1 fallback storm signature)
``shed_burst``        a run of consecutive slots with ``request_shed``
                      events; flagged ``fault_correlated`` when the run
                      overlaps a fault window
``swap_starvation``   ``plan_swap`` events whose plan lag
                      (``slot - plan_slot``) stays positive for >= 3
                      consecutive swaps (solver persistently behind)
``slo_burn``          contiguous ``slo_alert`` windows per objective
====================  =====================================================
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.events import TraceEvent

__all__ = [
    "Finding",
    "Diagnosis",
    "analyze_trace",
    "render_diagnosis",
]

#: Gap plateau: relative improvement below this over >= STALL_RUN solves.
STALL_REL_IMPROVEMENT = 0.05
STALL_RUN = 3
#: Solver storm thresholds (events in one trace).
STORM_WARN = 3
STORM_CRITICAL = 10
#: Swap starvation: consecutive swaps served from a stale plan.
STARVATION_RUN = 3

_FALLBACK_RE = re.compile(r"fallback|bail[\s-]?out|bailout", re.IGNORECASE)

_SEVERITY_RANK = {"info": 0, "warning": 1, "critical": 2}


@dataclass(frozen=True)
class Finding:
    """One diagnosed condition over a slot range."""

    kind: str
    severity: str  # "info" | "warning" | "critical"
    slots: tuple[int, int]  # inclusive [first, last]; (-1, -1) if slot-free
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "slots": list(self.slots),
            "message": self.message,
            "data": {k: self.data[k] for k in sorted(self.data)},
        }


@dataclass(frozen=True)
class Diagnosis:
    """Verdict + findings + trace stats for one analyzed trace.

    ``verdict`` is ``clean`` (nothing above info), ``warn`` (at least one
    warning), or ``degraded`` (at least one critical finding).
    """

    verdict: str
    findings: tuple[Finding, ...]
    stats: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "findings": [f.to_dict() for f in self.findings],
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def _fault_windows(events: Sequence[TraceEvent], last_slot: int) -> list[tuple[int, int]]:
    windows: list[tuple[int, int]] = []
    open_at: int | None = None
    for event in events:
        if event.kind == "fault_injected":
            if open_at is None:
                open_at = event.slot if event.slot is not None else 0
        elif event.kind == "fault_cleared" and open_at is not None:
            end = event.slot if event.slot is not None else open_at
            windows.append((open_at, max(open_at, end - 1)))
            open_at = None
    if open_at is not None:
        windows.append((open_at, max(open_at, last_slot)))
    return windows


def _overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


def _detect_convergence_stall(events: Sequence[TraceEvent]) -> list[Finding]:
    findings: list[Finding] = []
    run: list[tuple[int, float]] = []  # (slot, gap) of the current plateau

    def close_run() -> None:
        if len(run) >= STALL_RUN:
            slots = (run[0][0], run[-1][0])
            findings.append(
                Finding(
                    kind="convergence_stall",
                    severity="warning",
                    slots=slots,
                    message=(
                        f"gap plateau over {len(run)} consecutive "
                        f"non-converged solves (slots {slots[0]}..{slots[1]}): "
                        f"gap {run[0][1]:.4g} -> {run[-1][1]:.4g}"
                    ),
                    data={
                        "solves": len(run),
                        "gap_first": run[0][1],
                        "gap_last": run[-1][1],
                    },
                )
            )
        run.clear()

    for event in events:
        if event.kind != "solve_done":
            continue
        data = event.data
        converged = bool(data.get("converged", False))
        # Online window solves stop early once the feasible incumbent
        # stagnates (ub_patience): an intentional exit, not a stall.
        patience = bool(data.get("stopped_by_patience", False))
        gap_raw = data.get("gap")
        gap = float(gap_raw) if isinstance(gap_raw, (int, float)) else None
        slot = event.slot if event.slot is not None else -1
        if converged or patience or gap is None:
            close_run()
            continue
        if run:
            prev_gap = run[-1][1]
            improved = (
                (prev_gap - gap) / abs(prev_gap)
                if prev_gap
                else (1.0 if gap < prev_gap else 0.0)
            )
            if improved >= STALL_REL_IMPROVEMENT:
                close_run()
        run.append((slot, gap))
    close_run()
    return findings


def _detect_solver_storm(events: Sequence[TraceEvent]) -> list[Finding]:
    hits: list[tuple[int, str]] = []
    for event in events:
        slot = event.slot if event.slot is not None else -1
        if event.kind == "budget_exhausted":
            hits.append((slot, "budget_exhausted"))
        elif event.kind == "solve_done" and bool(
            event.data.get("stopped_by_budget", False)
        ):
            hits.append((slot, "stopped_by_budget"))
        elif event.kind == "log" and _FALLBACK_RE.search(
            str(event.data.get("message", ""))
        ):
            hits.append((slot, "fallback_log"))
    if len(hits) < STORM_WARN:
        return []
    slots = [s for s, _ in hits if s >= 0]
    span = (min(slots), max(slots)) if slots else (-1, -1)
    by_kind: dict[str, int] = {}
    for _, kind in hits:
        by_kind[kind] = by_kind.get(kind, 0) + 1
    severity = "critical" if len(hits) >= STORM_CRITICAL else "warning"
    return [
        Finding(
            kind="solver_storm",
            severity=severity,
            slots=span,
            message=(
                f"{len(hits)} solver fallback/bailout signals "
                f"({', '.join(f'{k}={by_kind[k]}' for k in sorted(by_kind))})"
            ),
            data={"signals": len(hits), **{k: by_kind[k] for k in sorted(by_kind)}},
        )
    ]


def _detect_shed_bursts(
    events: Sequence[TraceEvent], fault_windows: Sequence[tuple[int, int]]
) -> list[Finding]:
    per_slot: dict[int, int] = {}
    for event in events:
        if event.kind == "request_shed" and event.slot is not None:
            per_slot[event.slot] = per_slot.get(event.slot, 0) + 1
    if not per_slot:
        return []
    findings: list[Finding] = []
    slots = sorted(per_slot)
    start = prev = slots[0]
    count = per_slot[start]

    def close(start: int, end: int, count: int) -> None:
        window = (start, end)
        correlated = any(_overlaps(window, fw) for fw in fault_windows)
        suffix = " (overlaps a fault window)" if correlated else ""
        findings.append(
            Finding(
                kind="shed_burst",
                severity="warning",
                slots=window,
                message=(
                    f"{count} requests shed over slots {start}..{end}{suffix}"
                ),
                data={"shed": count, "fault_correlated": correlated},
            )
        )

    for slot in slots[1:]:
        if slot == prev + 1:
            count += per_slot[slot]
        else:
            close(start, prev, count)
            start, count = slot, per_slot[slot]
        prev = slot
    close(start, prev, count)
    return findings


def _detect_swap_starvation(events: Sequence[TraceEvent]) -> list[Finding]:
    lags: list[tuple[int, int]] = []  # (slot, lag) per plan_swap
    for event in events:
        if event.kind != "plan_swap" or event.slot is None:
            continue
        plan_slot = event.data.get("plan_slot")
        if isinstance(plan_slot, (int, float)):
            lags.append((event.slot, max(0, event.slot - int(plan_slot))))
    findings: list[Finding] = []
    run: list[tuple[int, int]] = []

    def close_run() -> None:
        if len(run) >= STARVATION_RUN:
            slots = (run[0][0], run[-1][0])
            max_lag = max(lag for _, lag in run)
            findings.append(
                Finding(
                    kind="swap_starvation",
                    severity="warning",
                    slots=slots,
                    message=(
                        f"plan swaps served from stale plans for "
                        f"{len(run)} consecutive boundaries "
                        f"(slots {slots[0]}..{slots[1]}, max lag {max_lag})"
                    ),
                    data={"swaps": len(run), "max_lag": max_lag},
                )
            )
        run.clear()

    for slot, lag in lags:
        if lag > 0:
            run.append((slot, lag))
        else:
            close_run()
    close_run()
    return findings


def _detect_slo_burns(events: Sequence[TraceEvent]) -> list[Finding]:
    per_slo: dict[str, list[int]] = {}
    for event in events:
        if event.kind != "slo_alert":
            continue
        name = str(event.data.get("slo", "?"))
        per_slo.setdefault(name, []).append(
            event.slot if event.slot is not None else -1
        )
    findings: list[Finding] = []
    for name in sorted(per_slo):
        slots = sorted(per_slo[name])
        start = prev = slots[0]
        runs: list[tuple[int, int]] = []
        for slot in slots[1:]:
            if slot > prev + 1:
                runs.append((start, prev))
                start = slot
            prev = slot
        runs.append((start, prev))
        for run_start, run_end in runs:
            findings.append(
                Finding(
                    kind="slo_burn",
                    severity="warning",
                    slots=(run_start, run_end),
                    message=(
                        f"SLO {name} burning over slots "
                        f"{run_start}..{run_end} "
                        f"({run_end - run_start + 1} consecutive alerts)"
                    ),
                    data={"slo": name, "alerts": run_end - run_start + 1},
                )
            )
    return findings


def analyze_trace(
    events: Iterable[TraceEvent | Mapping[str, Any]]
) -> Diagnosis:
    """Run every detector over a trace and assemble the verdict.

    Accepts :class:`TraceEvent` objects or their dict form (parsed JSONL
    lines). Deterministic: same trace, same report bytes.
    """
    trace = [
        e if isinstance(e, TraceEvent) else TraceEvent.from_dict(e)
        for e in events
    ]
    kinds: dict[str, int] = {}
    last_slot = -1
    for event in trace:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.slot is not None and event.slot > last_slot:
            last_slot = event.slot

    fault_windows = _fault_windows(trace, last_slot)
    findings: list[Finding] = [
        Finding(
            kind="fault_window",
            severity="info",
            slots=window,
            message=f"fault active over slots {window[0]}..{window[1]}",
            data={"slots_active": window[1] - window[0] + 1},
        )
        for window in fault_windows
    ]
    findings.extend(_detect_convergence_stall(trace))
    findings.extend(_detect_solver_storm(trace))
    findings.extend(_detect_shed_bursts(trace, fault_windows))
    findings.extend(_detect_swap_starvation(trace))
    findings.extend(_detect_slo_burns(trace))

    findings.sort(
        key=lambda f: (
            -_SEVERITY_RANK[f.severity],
            f.slots,
            f.kind,
            f.message,
        )
    )
    worst = max(
        (_SEVERITY_RANK[f.severity] for f in findings), default=0
    )
    verdict = {0: "clean", 1: "warn", 2: "degraded"}[worst]
    return Diagnosis(
        verdict=verdict,
        findings=tuple(findings),
        stats={
            "events": len(trace),
            "kinds": {k: kinds[k] for k in sorted(kinds)},
            "last_slot": last_slot,
            "fault_windows": len(fault_windows),
        },
    )


def render_diagnosis(diagnosis: Diagnosis) -> str:
    """Human-readable report (stable ordering, no wall-clock data)."""
    stats = diagnosis.stats
    lines = [
        f"verdict: {diagnosis.verdict.upper()}",
        f"trace: {stats.get('events', 0)} events over slots "
        f"0..{stats.get('last_slot', -1)}, "
        f"{stats.get('fault_windows', 0)} fault window(s)",
    ]
    if not diagnosis.findings:
        lines.append("findings: none")
        return "\n".join(lines)
    lines.append(f"findings ({len(diagnosis.findings)}):")
    for finding in diagnosis.findings:
        lo, hi = finding.slots
        where = "-" if lo < 0 else (f"slot {lo}" if lo == hi else f"slots {lo}..{hi}")
        lines.append(
            f"  [{finding.severity:<8}] {finding.kind:<18} {where:<14} "
            f"{finding.message}"
        )
    return "\n".join(lines)

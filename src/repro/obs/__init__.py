"""repro.obs — structured run telemetry.

Event traces (:mod:`repro.obs.events`), the ambient
:class:`~repro.obs.recorder.Recorder` with its metric registry
(:mod:`repro.obs.recorder`), per-iteration convergence traces
(:mod:`repro.obs.convergence`), deterministic exporters
(:mod:`repro.obs.exporters`), the ASCII trace dashboard
(:mod:`repro.obs.dashboard`), streaming quantile sketches and sliding
windows (:mod:`repro.obs.sketch`), live SLO tracking with an HTTP
``/metrics`` exporter (:mod:`repro.obs.live`), and the post-mortem trace
diagnoser behind ``repro obs analyze`` (:mod:`repro.obs.analyze`).

Quickstart::

    from repro import api
    from repro.obs import Recorder, record_into, write_trace

    recorder = Recorder()
    scenario = api.build_scenario(seed=1, horizon=10)
    with record_into(recorder):
        api.compare_policies(scenario, [api.LRFU()])
    write_trace("run.jsonl", recorder)
"""

from repro.obs.analyze import (
    Diagnosis,
    Finding,
    analyze_trace,
    render_diagnosis,
)
from repro.obs.convergence import ConvergenceRecorder, ConvergenceTrace
from repro.obs.dashboard import render_trace_dashboard
from repro.obs.events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    TraceEvent,
    validate_event_dict,
    validate_trace,
)
from repro.obs.exporters import (
    canonical_json,
    config_digest,
    manifest_path_for,
    prometheus_snapshot,
    read_trace,
    run_manifest,
    slot_series_csv,
    trace_digest,
    validate_manifest,
    write_manifest,
    write_slot_series,
    write_trace,
)
from repro.obs.live import (
    MetricsServer,
    ServeTelemetry,
    SloSpec,
    SloTracker,
    parse_slo_specs,
    render_top_frame,
)
from repro.obs.recorder import (
    Histogram,
    MetricRegistry,
    Recorder,
    RecorderHandler,
    current_recorder,
    emit,
    inc,
    install_log_bridge,
    label_scope,
    observe,
    observe_quantile,
    record_into,
    set_gauge,
    slot_scope,
)
from repro.obs.sketch import QuantileSketch, WindowedCounter

__all__ = [
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "ConvergenceRecorder",
    "ConvergenceTrace",
    "Diagnosis",
    "Finding",
    "Histogram",
    "MetricRegistry",
    "MetricsServer",
    "QuantileSketch",
    "Recorder",
    "RecorderHandler",
    "ServeTelemetry",
    "SloSpec",
    "SloTracker",
    "TraceEvent",
    "WindowedCounter",
    "analyze_trace",
    "canonical_json",
    "config_digest",
    "current_recorder",
    "emit",
    "inc",
    "install_log_bridge",
    "label_scope",
    "manifest_path_for",
    "observe",
    "observe_quantile",
    "parse_slo_specs",
    "prometheus_snapshot",
    "read_trace",
    "record_into",
    "render_diagnosis",
    "render_top_frame",
    "render_trace_dashboard",
    "run_manifest",
    "set_gauge",
    "slot_scope",
    "slot_series_csv",
    "trace_digest",
    "validate_event_dict",
    "validate_manifest",
    "validate_trace",
    "write_manifest",
    "write_slot_series",
    "write_trace",
]

"""repro.obs — structured run telemetry.

Event traces (:mod:`repro.obs.events`), the ambient
:class:`~repro.obs.recorder.Recorder` with its metric registry
(:mod:`repro.obs.recorder`), per-iteration convergence traces
(:mod:`repro.obs.convergence`), deterministic exporters
(:mod:`repro.obs.exporters`), and the ASCII trace dashboard
(:mod:`repro.obs.dashboard`).

Quickstart::

    from repro import api
    from repro.obs import Recorder, record_into, write_trace

    recorder = Recorder()
    scenario = api.build_scenario(seed=1, horizon=10)
    with record_into(recorder):
        api.compare_policies(scenario, [api.LRFU()])
    write_trace("run.jsonl", recorder)
"""

from repro.obs.convergence import ConvergenceRecorder, ConvergenceTrace
from repro.obs.dashboard import render_trace_dashboard
from repro.obs.events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    TraceEvent,
    validate_event_dict,
    validate_trace,
)
from repro.obs.exporters import (
    canonical_json,
    config_digest,
    manifest_path_for,
    prometheus_snapshot,
    read_trace,
    run_manifest,
    slot_series_csv,
    trace_digest,
    validate_manifest,
    write_manifest,
    write_slot_series,
    write_trace,
)
from repro.obs.recorder import (
    Histogram,
    MetricRegistry,
    Recorder,
    RecorderHandler,
    current_recorder,
    emit,
    inc,
    install_log_bridge,
    label_scope,
    observe,
    record_into,
    set_gauge,
    slot_scope,
)

__all__ = [
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "ConvergenceRecorder",
    "ConvergenceTrace",
    "Histogram",
    "MetricRegistry",
    "Recorder",
    "RecorderHandler",
    "TraceEvent",
    "canonical_json",
    "config_digest",
    "current_recorder",
    "emit",
    "inc",
    "install_log_bridge",
    "label_scope",
    "manifest_path_for",
    "observe",
    "prometheus_snapshot",
    "read_trace",
    "record_into",
    "render_trace_dashboard",
    "run_manifest",
    "set_gauge",
    "slot_scope",
    "slot_series_csv",
    "trace_digest",
    "validate_event_dict",
    "validate_manifest",
    "validate_trace",
    "write_manifest",
    "write_slot_series",
    "write_trace",
]

"""Trace and metric exporters: JSONL, Prometheus text, CSV, run manifest.

Every exporter is deterministic: canonical JSON (sorted keys, no
whitespace), sorted metric families, and no wall-clock or host data in
anything whose byte-identity is asserted. In particular the **manifest**
deliberately omits the executor backend — the acceptance contract is that
the same seeded run writes identical trace and manifest bytes whether it
ran serially or on a thread/process pool.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import platform
import sys
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.obs.events import SCHEMA_VERSION, TraceEvent, validate_trace
from repro.obs.recorder import MetricRegistry, Recorder


def canonical_json(payload: Any) -> str:
    """The one true JSON form: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_digest(payload: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON of a config-like mapping."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


# --------------------------------------------------------------------------
# JSONL event log


def trace_lines(events: Iterable[TraceEvent]) -> list[str]:
    return [event.to_json() for event in events]


def write_trace(path: str | Path, recorder: Recorder) -> Path:
    """Write the recorder's events as canonical JSONL (one event per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = "\n".join(trace_lines(recorder.events))
    path.write_text(body + "\n" if body else "", encoding="utf-8")
    return path


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Parse and validate a JSONL trace back into events."""
    events: list[TraceEvent] = []
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: invalid JSON in trace: {exc}"
            ) from exc
        events.append(TraceEvent.from_dict(payload))
    validate_trace(events)
    return events


def trace_digest(events: Sequence[TraceEvent]) -> str:
    """sha256 over the canonical JSONL bytes of a trace."""
    body = "\n".join(trace_lines(events))
    return hashlib.sha256((body + "\n" if body else "").encode()).hexdigest()


# --------------------------------------------------------------------------
# Prometheus-style text snapshot


def prometheus_snapshot(metrics: MetricRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters get a ``_total`` suffix; histograms expand to ``_bucket``
    (cumulative, with an explicit ``+Inf``), ``_sum``, and ``_count``
    series; quantile sketches render as ``summary`` families with
    ``quantile="0.5"/"0.95"/"0.99"`` labels — all sorted for stable
    output.
    """

    def fmt_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
        parts = [f'{k}="{v}"' for k, v in labels]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    lines: list[str] = []
    data = metrics.items()
    by_name: dict[str, list] = {}
    for (name, labels), value in sorted(data["counters"].items()):
        by_name.setdefault(f"{name}_total:counter", []).append((labels, value))
    for (name, labels), value in sorted(data["gauges"].items()):
        by_name.setdefault(f"{name}:gauge", []).append((labels, value))
    for key, series in by_name.items():
        name, kind = key.rsplit(":", 1)
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in series:
            lines.append(f"{name}{fmt_labels(labels)} {value:g}")
    for (name, labels), hist in sorted(data["histograms"].items()):
        lines.append(f"# TYPE {name} histogram")
        for bound, count in zip(hist.buckets, hist.counts):
            # counts are already cumulative per bucket
            le = 'le="%g"' % bound
            lines.append(f"{name}_bucket{fmt_labels(labels, le)} {count}")
        inf_le = 'le="+Inf"'
        lines.append(f"{name}_bucket{fmt_labels(labels, inf_le)} {hist.count}")
        lines.append(f"{name}_sum{fmt_labels(labels)} {hist.total:g}")
        lines.append(f"{name}_count{fmt_labels(labels)} {hist.count}")
    for (name, labels), sketch in sorted(data.get("sketches", {}).items()):
        lines.append(f"# TYPE {name} summary")
        for q in (0.5, 0.95, 0.99):
            est = sketch.quantile(q)
            if est is None:
                continue
            q_label = f'quantile="{q:g}"'
            lines.append(f"{name}{fmt_labels(labels, q_label)} {est:g}")
        lines.append(f"{name}_sum{fmt_labels(labels)} {sketch.total:g}")
        lines.append(f"{name}_count{fmt_labels(labels)} {sketch.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------
# CSV time series


def slot_series_csv(events: Sequence[TraceEvent]) -> str:
    """Per-slot cost time series from ``slot_end`` events, as CSV text.

    One row per ``slot_end`` event with the union of data fields as
    columns (sorted), so traces with heterogeneous policies still align.
    """
    rows = [e for e in events if e.kind == "slot_end"]
    field_names: list[str] = sorted({k for e in rows for k, _ in e.fields})
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["slot", *field_names])
    for event in rows:
        data = event.data
        writer.writerow(
            [event.slot, *[data.get(name, "") for name in field_names]]
        )
    return buffer.getvalue()


def write_slot_series(path: str | Path, events: Sequence[TraceEvent]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(slot_series_csv(events), encoding="utf-8")
    return path


# --------------------------------------------------------------------------
# Run manifest


def package_versions() -> dict[str, str]:
    import numpy
    import scipy

    import repro

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "repro": repro.__version__,
    }


def run_manifest(
    *,
    seed: int | None,
    config: Mapping[str, Any],
    events: Sequence[TraceEvent] = (),
    fault_schedule: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the reproducibility manifest for one run.

    ``config`` is the run-defining parameter mapping (horizon, beta,
    window, ...); its canonical-JSON sha256 becomes ``config_hash``.
    ``fault_schedule`` is a ``FaultSchedule.to_dict()`` payload (or None).
    The executor backend is intentionally absent: a manifest describes the
    *model run*, which is executor-invariant by contract.
    """
    kinds: dict[str, int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    manifest: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "seed": seed,
        "config": dict(sorted(config.items())),
        "config_hash": config_digest(config),
        "packages": package_versions(),
        "fault_schedule_digest": (
            None if fault_schedule is None else config_digest(fault_schedule)
        ),
        "trace": {
            "events": len(events),
            "kinds": dict(sorted(kinds.items())),
            "digest": trace_digest(events),
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str | Path, manifest: Mapping[str, Any]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(manifest) + "\n", encoding="utf-8")
    return path


def manifest_path_for(trace_path: str | Path) -> Path:
    """``out.jsonl`` -> ``out.manifest.json`` (next to the trace)."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.stem + ".manifest.json")


def validate_manifest(payload: Mapping[str, Any]) -> None:
    """Check the manifest carries every required field."""
    required = {
        "schema_version",
        "seed",
        "config",
        "config_hash",
        "packages",
        "fault_schedule_digest",
        "trace",
    }
    missing = required - set(payload)
    if missing:
        raise ConfigurationError(f"manifest missing fields {sorted(missing)}")
    for pkg in ("python", "numpy", "scipy", "repro"):
        if pkg not in payload["packages"]:
            raise ConfigurationError(f"manifest packages missing {pkg!r}")
    trace = payload["trace"]
    if not isinstance(trace, Mapping) or {
        "events",
        "kinds",
        "digest",
    } - set(trace):
        raise ConfigurationError("manifest trace block incomplete")


if sys.version_info < (3, 10):  # pragma: no cover
    raise ImportError("repro.obs requires Python >= 3.10")

"""Typed, seed-stable trace events — the vocabulary of `repro.obs`.

A :class:`TraceEvent` is one structured fact about a run: a slot began, a
window solve finished, a cache insertion happened, a fault window opened.
Events are **pure model outputs** by design: they carry no wall-clock
timestamps, thread ids, or memory addresses, so the trace of a seeded run
is bit-for-bit identical across the serial / thread / process executors
(asserted by ``tests/test_obs_traces.py`` and ``benchmarks/bench_obs.py``).
Wall-clock measurements stay where they always were — in
:class:`repro.perf.timers.StageTimers` and the ``BENCH_*.json`` records.

The event taxonomy (:data:`EVENT_KINDS`):

===================  ========================================================
kind                 emitted when
===================  ========================================================
``slot_start``       the engine begins scoring a slot (demand volume)
``slot_end``         the engine finishes a slot (itemized realized cost)
``solve_done``       Algorithm 1 terminates (iterations, gap, bounds)
``cache_insert``     a slot installs new contents (count)
``cache_evict``      a slot drops contents (count)
``reroute``          a down SBS's traffic falls back to the BS
``fault_injected``   the fault-active mask rises, or a schedule is bound
``fault_cleared``    the fault-active mask falls
``budget_exhausted`` an anytime :class:`~repro.optim.budget.SolveBudget` fired
``plan_swap``        the serve loop installed a new committed ``(x, y)`` plan
``request_shed``     serve admission control dropped a request (queue full)
``slo_alert``        an SLO burn-rate alert fired (short+long windows hot)
``log``              a ``repro.*`` logging record routed into the recorder
===================  ========================================================

The canonical JSON form (:meth:`TraceEvent.to_json`) sorts keys and strips
whitespace, so equal events serialize to equal bytes — the property the
JSONL exporter and the determinism benchmarks build on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.exceptions import ConfigurationError

#: Schema version stamped into traces and manifests; bump on breaking changes.
SCHEMA_VERSION = 1

#: The closed set of event kinds (see module docstring).
EVENT_KINDS = frozenset(
    {
        "slot_start",
        "slot_end",
        "solve_done",
        "cache_insert",
        "cache_evict",
        "reroute",
        "fault_injected",
        "fault_cleared",
        "budget_exhausted",
        "plan_swap",
        "request_shed",
        "slo_alert",
        "log",
    }
)

#: JSON scalar types allowed as event field values.
Scalar = str | int | float | bool | None


def _coerce_scalar(key: str, value: Any) -> Scalar:
    """Normalize a field value to a plain JSON scalar (numpy included).

    Non-finite floats become the strings ``"inf"`` / ``"-inf"`` / ``"nan"``:
    strict JSON has no literal for them, and the trace must stay parseable
    by any conforming reader (``json.dumps(allow_nan=True)`` would emit the
    non-standard ``Infinity``).
    """
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, float):
        # normalizes numpy float subclasses to plain float as well
        return str(value) if not math.isfinite(value) else float(value)
    if isinstance(value, int):
        return int(value)
    # numpy scalars expose .item(); coerce without importing numpy here.
    item = getattr(value, "item", None)
    if callable(item):
        coerced = item()
        if isinstance(coerced, float) and not math.isfinite(coerced):
            return str(coerced)
        if isinstance(coerced, (str, bool, int, float)):
            return coerced
    raise ConfigurationError(
        f"event field {key!r} has non-scalar value {value!r} "
        f"({type(value).__name__}); traces carry JSON scalars only"
    )


@dataclass(frozen=True)
class TraceEvent:
    """One structured run event.

    Attributes
    ----------
    seq:
        0-based position in the trace. Assigned by the
        :class:`~repro.obs.recorder.Recorder` and renumbered on merge, so
        a merged trace is always consecutively numbered.
    kind:
        One of :data:`EVENT_KINDS`.
    slot:
        The timeslot the event refers to, or ``None`` for slot-free events
        (an offline solve, a log line).
    fields:
        Sorted ``(key, value)`` pairs of JSON scalars — sorted so equal
        events compare and serialize identically regardless of the keyword
        order at the emit site.
    """

    seq: int
    kind: str
    slot: int | None
    fields: tuple[tuple[str, Scalar], ...]

    @classmethod
    def make(
        cls, seq: int, kind: str, slot: int | None = None, **fields: Any
    ) -> "TraceEvent":
        """Build a validated event from loose keyword fields."""
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {kind!r}; pick from {sorted(EVENT_KINDS)}"
            )
        pairs = tuple(
            sorted((k, _coerce_scalar(k, v)) for k, v in fields.items())
        )
        return cls(
            seq=int(seq),
            kind=kind,
            slot=None if slot is None else int(slot),
            fields=pairs,
        )

    @property
    def data(self) -> dict[str, Scalar]:
        return dict(self.fields)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form: ``{"seq", "kind", "slot", "data"}``."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "slot": self.slot,
            "data": self.data,
        }

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceEvent":
        validate_event_dict(payload)
        return cls.make(
            payload["seq"], payload["kind"], payload["slot"], **payload["data"]
        )


def validate_event_dict(payload: Mapping[str, Any]) -> None:
    """Raise :class:`ConfigurationError` unless ``payload`` fits the schema."""
    required = {"seq", "kind", "slot", "data"}
    missing = required - set(payload)
    if missing:
        raise ConfigurationError(f"event missing keys {sorted(missing)}")
    if not isinstance(payload["seq"], int) or payload["seq"] < 0:
        raise ConfigurationError(f"event seq must be a >= 0 int, got {payload['seq']!r}")
    if payload["kind"] not in EVENT_KINDS:
        raise ConfigurationError(f"unknown event kind {payload['kind']!r}")
    slot = payload["slot"]
    if slot is not None and (not isinstance(slot, int) or slot < 0):
        raise ConfigurationError(f"event slot must be None or a >= 0 int, got {slot!r}")
    data = payload["data"]
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"event data must be a mapping, got {type(data)}")
    for key, value in data.items():
        if not isinstance(key, str):
            raise ConfigurationError(f"event data key {key!r} is not a string")
        if value is not None and not isinstance(value, (str, bool, int, float)):
            raise ConfigurationError(
                f"event data value {key}={value!r} is not a JSON scalar"
            )


def validate_trace(events: Iterable[TraceEvent | Mapping[str, Any]]) -> int:
    """Validate a whole trace: per-event schema plus consecutive numbering.

    Accepts events or their dict form (e.g. parsed JSONL lines); returns
    the number of events checked.
    """
    count = 0
    for expected, event in enumerate(events):
        payload = event.to_dict() if isinstance(event, TraceEvent) else event
        validate_event_dict(payload)
        if payload["seq"] != expected:
            raise ConfigurationError(
                f"trace seq gap: event {expected} carries seq {payload['seq']}"
            )
        count += 1
    return count

"""Live telemetry surfaces for the serving runtime (DESIGN.md §11).

Three pieces sit on top of the :mod:`repro.obs` recorder:

- :class:`SloSpec` / :func:`parse_slo_specs` / :class:`SloTracker` —
  declarative service-level objectives (``p99_decision_us<200``,
  ``shed_ratio<0.01``, ``swap_drop_ratio<0.05``) evaluated with the
  SRE-style **multi-window burn rate** rule: an alert fires only when the
  error-budget burn exceeds the threshold over *both* a short and a long
  sliding window, which suppresses single-spike false positives while
  still catching fast burns. Windows advance on the clock the caller
  feeds in — the serve loop uses request *virtual* arrival time, so
  alert decisions are deterministic for a seeded, unpaced run.
- :class:`MetricsServer` — a background-thread HTTP exporter on stdlib
  ``http.server`` serving ``/metrics`` (Prometheus text), ``/healthz``,
  and ``/slo`` (JSON quantiles + ratios + per-SBS utilization). It only
  ever reads an immutable snapshot dict that the serve loop republishes
  at slot boundaries (atomic attribute swap — no locks on the request
  path, no dict-mutation races).
- :class:`ServeTelemetry` — the aggregator the serve loop drives:
  updates the tracker, counts alerts, and builds the published snapshot
  from the run's :class:`~repro.obs.recorder.Recorder`.

Everything here lives *outside* the virtual-time determinism contract:
the exporter answers on wall-clock demand and latency values are
wall-clock measurements. The contract that does hold (asserted by
``tests/test_obs_live.py``) is that enabling any of it never changes the
decision log of a seeded run.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.obs.recorder import Recorder
from repro.obs.sketch import WindowedCounter

__all__ = [
    "SloSpec",
    "parse_slo_specs",
    "SloTracker",
    "MetricsServer",
    "ServeTelemetry",
    "render_top_frame",
]


# --------------------------------------------------------------------------
# SLO specs


#: Known SLO names -> (kind, quantile). Latency thresholds are given in
#: microseconds; ratio thresholds are fractions in (0, 1).
_SLO_NAMES: dict[str, tuple[str, float | None]] = {
    "p50_decision_us": ("latency", 0.50),
    "p95_decision_us": ("latency", 0.95),
    "p99_decision_us": ("latency", 0.99),
    "shed_ratio": ("shed", None),
    "swap_drop_ratio": ("swap", None),
}

_SPEC_RE = re.compile(r"^\s*([a-z0-9_]+)\s*<=?\s*([0-9.eE+-]+)\s*$")


@dataclass(frozen=True)
class SloSpec:
    """One parsed objective.

    ``budget`` is the tolerated bad-event fraction: ``1 - q`` for a
    latency quantile objective (at most that fraction of decisions may
    exceed the threshold), the threshold itself for ratio objectives.
    ``threshold_seconds`` carries the latency threshold in seconds
    (``None`` for ratio objectives).
    """

    name: str
    kind: str  # "latency" | "shed" | "swap"
    threshold: float  # as written in the spec (us for latency)
    budget: float
    quantile: float | None = None
    threshold_seconds: float | None = None

    def describe(self) -> str:
        return f"{self.name}<{self.threshold:g}"


def parse_slo_specs(text: str | None) -> tuple[SloSpec, ...]:
    """Parse a comma-separated SLO spec string.

    >>> parse_slo_specs("p99_decision_us<200, shed_ratio<0.01")
    (..., ...)

    Unknown names, non-positive latency thresholds, and ratio thresholds
    outside ``(0, 1)`` raise :class:`ConfigurationError`.
    """
    if text is None or not text.strip():
        return ()
    specs: list[SloSpec] = []
    for chunk in text.split(","):
        match = _SPEC_RE.match(chunk)
        if match is None:
            raise ConfigurationError(
                f"bad SLO spec {chunk.strip()!r}; expected 'name<value' like "
                f"'p99_decision_us<200'"
            )
        name, raw = match.group(1), match.group(2)
        if name not in _SLO_NAMES:
            raise ConfigurationError(
                f"unknown SLO {name!r}; pick from {sorted(_SLO_NAMES)}"
            )
        try:
            value = float(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad SLO threshold {raw!r} in {chunk.strip()!r}"
            ) from exc
        kind, quantile = _SLO_NAMES[name]
        if kind == "latency":
            if value <= 0:
                raise ConfigurationError(
                    f"latency SLO {name} needs a positive microsecond "
                    f"threshold, got {value:g}"
                )
            assert quantile is not None
            specs.append(
                SloSpec(
                    name=name,
                    kind=kind,
                    threshold=value,
                    budget=round(1.0 - quantile, 10),
                    quantile=quantile,
                    threshold_seconds=value * 1e-6,
                )
            )
        else:
            if not 0.0 < value < 1.0:
                raise ConfigurationError(
                    f"ratio SLO {name} needs a threshold in (0, 1), "
                    f"got {value:g}"
                )
            specs.append(
                SloSpec(name=name, kind=kind, threshold=value, budget=value)
            )
    return tuple(specs)


class SloTracker:
    """Multi-window burn-rate evaluation over a set of :class:`SloSpec`.

    Per spec, two (bad, total) sliding-window counter pairs track the
    bad-event fraction over a short and a long window. The *burn rate*
    is ``bad_fraction / budget`` — 1.0 means the error budget is being
    consumed exactly at the tolerated rate. An alert fires when **both**
    windows burn at or above ``burn_threshold``. Window sizes are in the
    caller's time units (the serve loop feeds virtual seconds).
    """

    def __init__(
        self,
        specs: Sequence[SloSpec],
        *,
        short_window: float = 1.0,
        long_window: float = 10.0,
        burn_threshold: float = 1.0,
    ) -> None:
        if short_window <= 0 or long_window < short_window:
            raise ConfigurationError(
                f"need 0 < short_window <= long_window, got "
                f"{short_window} / {long_window}"
            )
        if burn_threshold <= 0:
            raise ConfigurationError(
                f"burn_threshold must be > 0, got {burn_threshold}"
            )
        self.specs = tuple(specs)
        self.burn_threshold = float(burn_threshold)
        self._windows: dict[str, dict[str, WindowedCounter]] = {
            spec.name: {
                "bad_short": WindowedCounter(short_window),
                "total_short": WindowedCounter(short_window),
                "bad_long": WindowedCounter(long_window),
                "total_long": WindowedCounter(long_window),
            }
            for spec in self.specs
        }

    def _observe(self, kind: str, t: float, bad: bool) -> None:
        for spec in self.specs:
            if spec.kind != kind:
                continue
            w = self._windows[spec.name]
            w["total_short"].add(t)
            w["total_long"].add(t)
            if bad:
                w["bad_short"].add(t)
                w["bad_long"].add(t)

    def observe_decision(self, t: float, seconds: float) -> None:
        """One routing decision took ``seconds`` (wall) at virtual ``t``."""
        for spec in self.specs:
            if spec.kind != "latency":
                continue
            w = self._windows[spec.name]
            w["total_short"].add(t)
            w["total_long"].add(t)
            assert spec.threshold_seconds is not None
            if seconds > spec.threshold_seconds:
                w["bad_short"].add(t)
                w["bad_long"].add(t)

    def observe_request(self, t: float, *, shed: bool) -> None:
        self._observe("shed", t, shed)

    def observe_swap(self, t: float, *, dropped: bool) -> None:
        self._observe("swap", t, dropped)

    def status(self, now: float) -> list[dict[str, Any]]:
        """Per-spec burn state at time ``now`` (sorted by spec name)."""
        out: list[dict[str, Any]] = []
        for spec in sorted(self.specs, key=lambda s: s.name):
            w = self._windows[spec.name]
            ts = w["total_short"].total(now)
            tl = w["total_long"].total(now)
            frac_short = w["bad_short"].total(now) / ts if ts else 0.0
            frac_long = w["bad_long"].total(now) / tl if tl else 0.0
            burn_short = frac_short / spec.budget
            burn_long = frac_long / spec.budget
            out.append(
                {
                    "slo": spec.describe(),
                    "name": spec.name,
                    "kind": spec.kind,
                    "threshold": spec.threshold,
                    "budget": spec.budget,
                    "burn_short": burn_short,
                    "burn_long": burn_long,
                    "alert": bool(
                        ts
                        and tl
                        and burn_short >= self.burn_threshold
                        and burn_long >= self.burn_threshold
                    ),
                }
            )
        return out

    def evaluate(self, now: float) -> list[dict[str, Any]]:
        """The alerting subset of :meth:`status` at time ``now``."""
        return [entry for entry in self.status(now) if entry["alert"]]


# --------------------------------------------------------------------------
# HTTP exporter


def _make_handler(
    snapshot_fn: Callable[[], Mapping[str, Any]]
) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *args: Any) -> None:  # silence stderr
            pass

        def _send(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            try:
                snap = snapshot_fn()
            except Exception as exc:  # pragma: no cover - defensive
                self._send(500, f"snapshot failed: {exc}\n", "text/plain")
                return
            if path == "/metrics":
                self._send(
                    200,
                    str(snap.get("metrics_text", "")),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/healthz":
                body = json.dumps(
                    {
                        "status": "ok" if snap.get("healthy", True) else "degraded",
                        "slot": snap.get("slot"),
                        "alerts_total": snap.get("alerts_total", 0),
                    },
                    sort_keys=True,
                )
                self._send(200, body + "\n", "application/json")
            elif path == "/slo":
                body = json.dumps(snap.get("slo", {}), sort_keys=True)
                self._send(200, body + "\n", "application/json")
            else:
                self._send(404, f"no route {path}\n", "text/plain")

    return Handler


class MetricsServer:
    """Background-thread HTTP exporter over a snapshot function.

    ``snapshot_fn`` must return a mapping with (all optional) keys
    ``metrics_text`` (Prometheus text for ``/metrics``), ``slo`` (JSON
    payload for ``/slo``), ``healthy``, ``slot``, and ``alerts_total``
    (``/healthz``). It is called on exporter threads, so hand it an
    atomically-swapped immutable snapshot, never a live mutable registry
    (:class:`ServeTelemetry` does exactly that).

    ``port=0`` binds an ephemeral port; :meth:`start` returns the bound
    port. Use as a context manager to guarantee shutdown.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Mapping[str, Any]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._snapshot_fn = snapshot_fn
        self.host = host
        self.port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        if self._server is not None:
            return self.port
        try:
            server = ThreadingHTTPServer(
                (self.host, self.port), _make_handler(self._snapshot_fn)
            )
        except OSError as exc:
            raise ConfigurationError(
                f"cannot bind metrics endpoint on {self.host}:{self.port}: {exc}"
            ) from exc
        server.daemon_threads = True
        self._server = server
        self.port = int(server.server_address[1])
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# --------------------------------------------------------------------------
# Serve-loop aggregator


class ServeTelemetry:
    """Aggregates live serve telemetry and publishes exporter snapshots.

    The serve loop owns one of these when live surfaces are enabled. All
    mutation happens on the event-loop thread; :meth:`snapshot` (called
    from exporter threads) only reads the last published immutable dict.
    """

    def __init__(
        self, recorder: Recorder, tracker: SloTracker | None = None
    ) -> None:
        self.recorder = recorder
        self.tracker = tracker
        self.alerts_total = 0
        self._snapshot: dict[str, Any] = {
            "healthy": True,
            "slot": None,
            "alerts_total": 0,
            "slo": {},
            "metrics_text": "",
        }

    def snapshot(self) -> Mapping[str, Any]:
        return self._snapshot

    # -- tracker feeds (no-ops without a tracker) --------------------------

    def decision(self, t: float, seconds: float) -> None:
        if self.tracker is not None:
            self.tracker.observe_decision(t, seconds)

    def request(self, t: float, *, shed: bool) -> None:
        if self.tracker is not None:
            self.tracker.observe_request(t, shed=shed)

    def swap(self, t: float, *, dropped: bool) -> None:
        if self.tracker is not None:
            self.tracker.observe_swap(t, dropped=dropped)

    def evaluate(self, now: float) -> list[dict[str, Any]]:
        """Burn-rate alerts at virtual time ``now`` (counted per call)."""
        if self.tracker is None:
            return []
        alerts = self.tracker.evaluate(now)
        self.alerts_total += len(alerts)
        return alerts

    # -- snapshot publication ----------------------------------------------

    def publish(
        self,
        *,
        slot: int | None,
        now: float,
        queue_depth: int | None = None,
        plan_lag: int | None = None,
        sbs_utilization: Mapping[int, float] | None = None,
    ) -> None:
        """Rebuild and atomically swap the exporter snapshot.

        Called at slot boundaries and at end of run, on the loop thread —
        the only place live registry state is read.
        """
        # Local import: exporters imports recorder; keep module import
        # order acyclic (recorder <- exporters <- live).
        from repro.obs.exporters import prometheus_snapshot

        metrics = self.recorder.metrics
        decided = metrics.counter("serve_requests")
        shed = metrics.counter("serve_shed")
        offered = decided + shed
        swaps = metrics.counter("serve_plan_swaps")
        dropped = metrics.counter("serve_plan_swaps_dropped")
        sketch = metrics.sketch("serve_decision_seconds")
        slo: dict[str, Any] = {
            "slot": slot,
            "decision_latency_seconds": (
                sketch.summary((0.5, 0.95, 0.99)) if sketch is not None else None
            ),
            "requests_offered": offered,
            "shed_ratio": (shed / offered) if offered else 0.0,
            "swap_drop_ratio": (dropped / swaps) if swaps else 0.0,
            "queue_depth": queue_depth,
            "plan_lag": plan_lag,
            "sbs_utilization": (
                {str(n): sbs_utilization[n] for n in sorted(sbs_utilization)}
                if sbs_utilization is not None
                else {}
            ),
            "objectives": self.tracker.status(now) if self.tracker else [],
            "alerts_total": self.alerts_total,
        }
        self._snapshot = {
            "healthy": True,
            "slot": slot,
            "alerts_total": self.alerts_total,
            "slo": slo,
            "metrics_text": prometheus_snapshot(metrics),
        }


# --------------------------------------------------------------------------
# `repro obs top` frame rendering


def render_top_frame(
    history: Sequence[Mapping[str, Any]], *, width: int = 60, height: int = 10
) -> str:
    """One ASCII dashboard frame from a history of ``/slo`` payloads.

    Deterministic in its input (no clock reads); the CLI loop handles
    polling, clearing, and sleeping.
    """
    from repro.sim.ascii_chart import render_series_chart

    if not history:
        return "obs top: waiting for first /slo sample..."
    latest = history[-1]
    lat = latest.get("decision_latency_seconds") or {}
    p99_s = [
        (frame.get("decision_latency_seconds") or {}).get("p99") or 0.0
        for frame in history
    ]
    shed = [float(frame.get("shed_ratio") or 0.0) for frame in history]
    chart = render_series_chart(
        list(range(len(history))),
        {
            "p99_ms": [v * 1e3 for v in p99_s],
            "shed_pct": [v * 100.0 for v in shed],
        },
        title="decision p99 (ms) / shed (%)",
        x_label="sample",
        width=width,
        height=height,
    )
    lines = [chart, ""]
    lines.append(
        f"slot={latest.get('slot')}  offered={latest.get('requests_offered')}  "
        f"shed={float(latest.get('shed_ratio') or 0.0):.2%}  "
        f"swap_drop={float(latest.get('swap_drop_ratio') or 0.0):.2%}  "
        f"alerts={latest.get('alerts_total', 0)}"
    )
    if lat:
        p50 = lat.get("p50")
        p95 = lat.get("p95")
        p99 = lat.get("p99")
        fmt = lambda v: "-" if v is None else f"{v * 1e6:.0f}us"  # noqa: E731
        lines.append(
            f"decision latency: p50 {fmt(p50)}  p95 {fmt(p95)}  p99 {fmt(p99)}"
            f"  n={lat.get('count', 0)}"
        )
    util = latest.get("sbs_utilization") or {}
    if util:
        cells = []
        for sid in sorted(util, key=lambda s: int(s)):
            frac = max(0.0, min(1.0, float(util[sid])))
            bar = "#" * round(frac * 10)
            cells.append(f"sbs{sid} [{bar:<10}] {frac:.0%}")
        lines.append("utilization: " + "  ".join(cells))
    objectives = latest.get("objectives") or []
    for entry in objectives:
        flag = "ALERT" if entry.get("alert") else "ok"
        lines.append(
            f"slo {entry.get('slo'):<24} burn short {entry.get('burn_short', 0.0):6.2f} "
            f"long {entry.get('burn_long', 0.0):6.2f}  {flag}"
        )
    return "\n".join(lines)

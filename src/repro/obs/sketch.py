"""Streaming quantile sketches and sliding-window counters.

Two small, deterministic, mergeable primitives back the live-telemetry
layer (DESIGN.md §11):

- :class:`QuantileSketch` — a fixed-bucket HDR-style histogram with
  log-spaced bucket bounds. Values are binned by order of magnitude at
  ``buckets_per_decade`` resolution, which bounds the *relative value
  error* of any quantile estimate by ``gamma - 1`` where
  ``gamma = 10 ** (1 / buckets_per_decade)`` (~3.7% at the default 64
  buckets/decade). Counts live in a sparse ``dict[int, int]``, so memory
  is proportional to the number of *occupied* buckets, not the value
  range. Merging adds sparse counts bucket-wise — serial observation and
  merged-shard observation of the same multiset serialize byte-identically
  (the ``map_recorded`` ordered-reduce contract).
- :class:`WindowedCounter` — a ring of ``bucket_count`` time buckets
  spanning ``window`` time units, for rates over a sliding window
  ("requests in the last 60 s"). The clock is whatever the caller feeds
  ``add`` / ``total`` — the serve loop keys it on *virtual* request
  arrival time, so window contents are deterministic for a seeded run.

Neither primitive reads the wall clock; determinism is entirely the
caller's choice of observed values.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = ["QuantileSketch", "WindowedCounter"]

#: Default sketch range: 100 ns .. 1000 s expressed in seconds — wide
#: enough for latencies, iteration counts, and duality gaps alike.
DEFAULT_LO = 1e-7
DEFAULT_HI = 1e3
DEFAULT_BUCKETS_PER_DECADE = 64


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch with exact count/sum/min/max.

    Bucket ``i`` covers ``(lo * g**i, lo * g**(i+1)]`` with
    ``g = 10 ** (1 / buckets_per_decade)``; estimates return the bucket's
    upper edge, giving a one-sided guarantee for in-range values::

        exact <= estimate <= exact * g

    Values below ``lo`` (including zero and negatives) clamp into the
    first bucket; values above ``hi`` clamp into the last. NaN is
    skipped; ±inf clamp like out-of-range values. ``min``/``max``/``sum``
    are exact over the *observed* (unclamped) finite values.
    """

    __slots__ = ("lo", "hi", "buckets_per_decade", "_nbuckets", "_scale",
                 "counts", "count", "total", "min", "max")

    def __init__(
        self,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> None:
        if not (0 < lo < hi) or not math.isfinite(lo) or not math.isfinite(hi):
            raise ValueError(f"need 0 < lo < hi finite, got lo={lo} hi={hi}")
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        self._scale = self.buckets_per_decade / math.log(10.0)
        self._nbuckets = (
            int(math.ceil(math.log10(self.hi / self.lo) * buckets_per_decade))
            or 1
        )
        self.counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    @property
    def relative_error(self) -> float:
        """Documented worst-case relative value error: ``g - 1``."""
        return 10.0 ** (1.0 / self.buckets_per_decade) - 1.0

    def _index(self, value: float) -> int:
        if value <= self.lo:
            return 0
        if value >= self.hi:
            return self._nbuckets - 1
        # ceil(log_g(value/lo)) - 1: bucket i covers (lo*g^i, lo*g^(i+1)]
        idx = int(math.ceil(math.log(value / self.lo) * self._scale)) - 1
        if idx < 0:
            return 0
        if idx >= self._nbuckets:
            return self._nbuckets - 1
        return idx

    def _edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` (clamped to ``hi``)."""
        edge = self.lo * 10.0 ** ((index + 1) / self.buckets_per_decade)
        return min(edge, self.hi)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        if math.isfinite(value):
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        idx = self._index(value)
        self.counts[idx] = self.counts.get(idx, 0) + 1

    def quantile(self, q: float) -> float | None:
        """Rank-based quantile estimate (upper bucket edge at rank
        ``ceil(q * count)`` — matches ``numpy.quantile`` with
        ``method="inverted_cdf"`` up to the bucket width)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                # Tighten with the exact extrema: the true value can never
                # lie outside [min, max].
                est = self._edge(idx)
                if est > self.max:
                    est = self.max
                if est < self.min:
                    est = self.min
                return est
        return self.max  # pragma: no cover - unreachable (counts sum == count)

    def _config(self) -> tuple[float, float, int]:
        return (self.lo, self.hi, self.buckets_per_decade)

    def merge(self, other: "QuantileSketch") -> None:
        if other._config() != self._config():
            raise ValueError(
                "cannot merge sketches with different configurations: "
                f"{self._config()} vs {other._config()}"
            )
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n

    def to_dict(self) -> dict[str, Any]:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": {str(i): self.counts[i] for i in sorted(self.counts)},
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuantileSketch":
        sketch = cls(
            lo=payload["lo"],
            hi=payload["hi"],
            buckets_per_decade=payload["buckets_per_decade"],
        )
        sketch.counts = {int(k): int(v) for k, v in payload["counts"].items()}
        sketch.count = int(payload["count"])
        sketch.total = float(payload["sum"])
        if payload.get("min") is not None:
            sketch.min = float(payload["min"])
        if payload.get("max") is not None:
            sketch.max = float(payload["max"])
        return sketch

    def summary(self, quantiles: Iterable[float] = (0.5, 0.95, 0.99)) -> dict:
        """Quantile estimates plus exact aggregates, for /slo payloads."""
        out: dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": (self.total / self.count) if self.count else None,
        }
        for q in quantiles:
            out[f"p{round(q * 100):02d}"] = self.quantile(q)
        return out


class WindowedCounter:
    """Sliding-window counter: a ring of ``bucket_count`` buckets covering
    ``window`` time units.

    ``add(t, v)`` credits ``v`` to the bucket containing time ``t``;
    ``total(now)`` sums the buckets still inside ``(now - window, now]``.
    Time moves forward: adding at an older bucket epoch than already seen
    is credited to the current bucket (out-of-order slack is bounded by
    one bucket width). The caller supplies the clock — virtual time for
    deterministic serve accounting, wall time for purely-live gauges.
    """

    __slots__ = ("window", "bucket_count", "_width", "_epochs", "_values")

    def __init__(self, window: float, bucket_count: int = 12) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if bucket_count < 1:
            raise ValueError(f"bucket_count must be >= 1, got {bucket_count}")
        self.window = float(window)
        self.bucket_count = int(bucket_count)
        self._width = self.window / self.bucket_count
        self._epochs = [-1] * self.bucket_count
        self._values = [0.0] * self.bucket_count

    def _epoch(self, t: float) -> int:
        return int(math.floor(t / self._width))

    def add(self, t: float, value: float = 1.0) -> None:
        epoch = self._epoch(t)
        slot = epoch % self.bucket_count
        if self._epochs[slot] != epoch:
            if self._epochs[slot] > epoch:
                return  # stale out-of-order add beyond ring capacity
            self._epochs[slot] = epoch
            self._values[slot] = 0.0
        self._values[slot] += float(value)

    def total(self, now: float) -> float:
        """Sum of values inside the window ending at ``now``."""
        newest = self._epoch(now)
        oldest = newest - self.bucket_count + 1
        return sum(
            v
            for e, v in zip(self._epochs, self._values)
            if oldest <= e <= newest
        )

    def rate(self, now: float) -> float:
        """``total(now)`` per time unit over the window span."""
        return self.total(now) / self.window

"""Brute-force exact solver for tiny instances (test oracle).

Enumerates every feasible integral caching trajectory and evaluates each
with the exact fixed-cache load-balancing oracle. Exponential in
``T * N * K`` — strictly a verification tool for the primal-dual algorithm
and the online controllers on instances with a handful of items and slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product

import numpy as np

from repro.core.load_balancing import solve_y_given_x
from repro.core.problem import JointProblem
from repro.exceptions import ConfigurationError
from repro.network.costs import CostBreakdown
from repro.types import FloatArray

#: Refuse to enumerate more caching trajectories than this.
MAX_TRAJECTORIES = 2_000_000


@dataclass(frozen=True)
class ExhaustiveResult:
    """The exact optimum of a tiny instance.

    Attributes
    ----------
    x, y:
        An optimal trajectory pair.
    cost:
        Its itemized cost (``cost.total`` is the exact optimal value).
    trajectories:
        Number of caching trajectories enumerated.
    """

    x: FloatArray
    y: FloatArray
    cost: CostBreakdown
    trajectories: int


def _per_sbs_states(num_items: int, cache_size: int) -> list[np.ndarray]:
    """All 0/1 cache vectors with at most ``cache_size`` ones."""
    states = []
    for size in range(min(cache_size, num_items) + 1):
        for chosen in combinations(range(num_items), size):
            v = np.zeros(num_items)
            v[list(chosen)] = 1.0
            states.append(v)
    return states


def solve_exhaustive(problem: JointProblem) -> ExhaustiveResult:
    """Enumerate all feasible caching trajectories and return the best.

    Raises :class:`ConfigurationError` when the instance would require more
    than :data:`MAX_TRAJECTORIES` evaluations.
    """
    net = problem.network
    T = problem.horizon
    per_slot_states: list[np.ndarray] = []
    # Joint cache states across SBSs for one slot.
    sbs_states = [
        _per_sbs_states(net.num_items, int(net.cache_sizes[n]))
        for n in range(net.num_sbs)
    ]
    for combo in product(*sbs_states):
        per_slot_states.append(np.stack(combo))  # (N, K)

    total = len(per_slot_states) ** T
    if total > MAX_TRAJECTORIES:
        raise ConfigurationError(
            f"{total} caching trajectories exceed the exhaustive-search limit "
            f"({MAX_TRAJECTORIES}); shrink the instance"
        )

    best: ExhaustiveResult | None = None
    for seq in product(range(len(per_slot_states)), repeat=T):
        x = np.stack([per_slot_states[i] for i in seq])  # (T, N, K)
        balancing = solve_y_given_x(problem, x)
        cost = problem.cost(x, balancing.y)
        if best is None or cost.total < best.cost.total:
            best = ExhaustiveResult(
                x=x, y=balancing.y, cost=cost, trajectories=total
            )
    assert best is not None
    return best

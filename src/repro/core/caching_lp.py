"""Subproblem ``P1`` — the caching problem (Eq. 18) with exact integral optima.

Given the dual prices ``mu``, ``P1`` decomposes per SBS into

    min   sum_t ( beta_n * sum_k p[t,k]  -  sum_k c[t,k] * x[t,k] )
    s.t.  sum_k x[t,k] <= C_n,      p[t,k] >= x[t,k] - x[t-1,k],
          x in {0,1},               p >= 0,

with ``c[t,k] = sum_{m in n} mu[t,m,k]`` (Eqs. 20-22). Theorem 1 proves the
constraint matrix totally unimodular, so the LP relaxation has an integral
optimum. Two exact backends are provided:

- ``"flow"`` (default): the LP *is* a min-cost flow in which each of the
  ``C_n`` cache slots is one unit of flow travelling through time — idling
  between hub nodes for free, or detouring through a content's per-slot
  node chain (paying ``beta_n`` to enter, collecting ``c[t,k]`` per slot
  held). Integrality is automatic and the solve is combinatorial.
- ``"lp"``: the sparse LP of Eqs. 20-22 via :func:`repro.optim.solve_lp`
  (HiGHS or the in-house simplex); near-integral vertices are snapped and
  verified. Used to cross-check the flow backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
import scipy.optimize
import scipy.sparse

from repro.exceptions import ConfigurationError, SolverError
from repro.network.topology import Network
from repro.optim.linprog import solve_lp
from repro.optim.mincostflow import MinCostFlow
from repro.types import FloatArray, is_binary

CachingBackend = Literal["auto", "flow", "lp", "lp-simplex"]

#: ``auto`` uses the combinatorial flow solver up to this many ``(slot,
#: item)`` cells per SBS and the sparse HiGHS LP above it. Measured on the
#: paper's scenario the flow solver still wins at T=100, K=30 (3000 cells),
#: so the crossover is set above that.
AUTO_FLOW_LIMIT = 5000


@dataclass(frozen=True)
class CachingSolution:
    """Solution of ``P1`` across all SBSs.

    Attributes
    ----------
    x:
        Integral caching trajectory, shape ``(T, N, K)``.
    objective:
        The ``P1`` objective ``sum_t (h - sum mu x)`` at the solution.
    """

    x: FloatArray
    objective: float


def class_prices(network: Network, mu: FloatArray) -> FloatArray:
    """Aggregate dual prices per SBS: ``c[t, n, k] = sum_{m in n} mu[t, m, k]``."""
    T = mu.shape[0]
    out = np.zeros((T, network.num_sbs, network.num_items))
    np.add.at(out, (slice(None), network.class_sbs), mu)
    return out


def solve_caching(
    network: Network,
    mu: FloatArray,
    x_initial: FloatArray,
    *,
    backend: CachingBackend = "auto",
) -> CachingSolution:
    """Solve ``P1`` given multipliers ``mu`` of shape ``(T, M, K)``.

    ``x_initial`` is the 0/1 cache state entering the first slot, shape
    ``(N, K)``; insertions in the first slot are charged against it.
    """
    if backend == "auto":
        cells = mu.shape[0] * network.num_items
        backend = "flow" if cells <= AUTO_FLOW_LIMIT else "lp"
    if mu.ndim != 3 or mu.shape[1:] != (network.num_classes, network.num_items):
        raise ConfigurationError(
            f"mu must have shape (T, M, K), got {mu.shape}"
        )
    if np.any(mu < -1e-9):
        raise ConfigurationError("dual prices must be non-negative")
    T = mu.shape[0]
    prices = class_prices(network, mu)

    x = np.zeros((T, network.num_sbs, network.num_items))
    objective = 0.0
    for n in range(network.num_sbs):
        c = prices[:, n, :]
        beta = float(network.replacement_costs[n])
        cap = int(network.cache_sizes[n])
        x0 = x_initial[n]
        if backend == "flow":
            xn, obj = _solve_single_sbs_flow(c, beta, cap, x0)
        elif backend in ("lp", "lp-simplex"):
            lp_backend = "scipy" if backend == "lp" else "simplex"
            xn, obj = _solve_single_sbs_lp(c, beta, cap, x0, lp_backend=lp_backend)
        else:
            raise ConfigurationError(f"unknown caching backend {backend!r}")
        x[:, n, :] = xn
        objective += obj
    return CachingSolution(x=x, objective=objective)


def caching_objective(
    network: Network, x: FloatArray, mu: FloatArray, x_initial: FloatArray
) -> float:
    """Evaluate the ``P1`` objective for a given trajectory (for tests)."""
    prices = class_prices(network, mu)
    prev = x_initial
    total = 0.0
    for t in range(x.shape[0]):
        inserted = np.clip(x[t] - prev, 0.0, None).sum(axis=1)
        total += float(np.dot(network.replacement_costs, inserted))
        total -= float(np.sum(prices[t] * x[t]))
        prev = x[t]
    return total


# ----------------------------------------------------------------- flow back

def _solve_single_sbs_flow(
    c: FloatArray, beta: float, cap: int, x0: FloatArray
) -> tuple[FloatArray, float]:
    """Min-cost-flow formulation for one SBS.

    Nodes: free-slot hubs ``F_0..F_T`` plus an in/out pair per ``(k, t)``.
    A unit of flow is one cache slot; holding content ``k`` during slot
    ``t`` routes through ``(k,t)_in -> (k,t)_out`` (gain ``c[t,k]``),
    entering from a hub costs ``beta`` (free at ``t=0`` for initially
    cached contents).
    """
    T, K = c.shape
    if cap == 0:
        return np.zeros((T, K)), 0.0

    def hub(t: int) -> int:
        return t  # 0..T

    def node_in(k: int, t: int) -> int:
        return (T + 1) + 2 * (t * K + k)

    def node_out(k: int, t: int) -> int:
        return (T + 1) + 2 * (t * K + k) + 1

    num_nodes = (T + 1) + 2 * T * K + 2
    src = num_nodes - 2
    snk = num_nodes - 1
    g = MinCostFlow(num_nodes)
    g.add_arc(src, hub(0), cap, 0.0)
    for t in range(T):
        g.add_arc(hub(t), hub(t + 1), cap, 0.0)
    g.add_arc(hub(T), snk, cap, 0.0)

    hold_arcs = np.empty((T, K), dtype=np.int64)
    for t in range(T):
        for k in range(K):
            fetch_cost = 0.0 if (t == 0 and x0[k] > 0.5) else beta
            g.add_arc(hub(t), node_in(k, t), 1, fetch_cost)
            hold_arcs[t, k] = g.add_arc(node_in(k, t), node_out(k, t), 1, -float(c[t, k]))
            g.add_arc(node_out(k, t), hub(t + 1), 1, 0.0)
            if t + 1 < T:
                g.add_arc(node_out(k, t), node_in(k, t + 1), 1, 0.0)

    result = g.solve(src, snk, cap, dag=True)
    if result.amount != cap:
        raise SolverError(
            f"caching flow routed {result.amount}/{cap} units; graph is malformed"
        )
    x = result.arc_flow[hold_arcs]
    x = np.where(x > 0.5, 1.0, 0.0)
    obj = _objective_single(c, beta, x, x0)
    return x, obj


# ------------------------------------------------------------------- LP back

def _solve_single_sbs_lp(
    c: FloatArray,
    beta: float,
    cap: int,
    x0: FloatArray,
    *,
    lp_backend: str,
) -> tuple[FloatArray, float]:
    """Sparse LP of Eqs. 20-22 for one SBS; snaps and validates integrality."""
    T, K = c.shape
    n_x = T * K

    # Objective: -c on x, beta on p.
    cost = np.concatenate([-c.reshape(-1), np.full(n_x, beta)])

    cells = np.arange(n_x)
    # Capacity rows (one per slot): sum_k x[t,k] <= cap.
    cap_rows = np.repeat(np.arange(T), K)
    cap_cols = cells
    cap_vals = np.ones(n_x)
    # Switching rows (one per cell): x[t,k] - x[t-1,k] - p[t,k] <= [t=0] x0[k].
    sw_rows = T + cells
    later = cells[K:]  # cells with t > 0
    rows_all = np.concatenate([cap_rows, sw_rows, T + later, sw_rows])
    cols_all = np.concatenate([cap_cols, cells, later - K, n_x + cells])
    vals_all = np.concatenate(
        [cap_vals, np.ones(n_x), -np.ones(n_x - K), -np.ones(n_x)]
    )
    b_ub = np.concatenate([np.full(T, float(cap)), x0.astype(np.float64), np.zeros(n_x - K)])

    A_ub = scipy.sparse.csr_matrix(
        (vals_all, (rows_all, cols_all)), shape=(T + n_x, 2 * n_x)
    )
    lo = np.zeros(2 * n_x)
    hi = np.concatenate([np.ones(n_x), np.full(n_x, np.inf)])

    if lp_backend == "scipy":
        res = scipy.optimize.linprog(
            cost,
            A_ub=A_ub,
            b_ub=np.asarray(b_ub),
            bounds=np.column_stack([lo, hi]),
            method="highs",
        )
        if not res.success:
            raise SolverError(f"HiGHS failed on P1: {res.message}")
        raw = np.asarray(res.x[:n_x]).reshape(T, K)
    else:
        result = solve_lp(
            cost,
            A_ub=A_ub.toarray(),
            b_ub=np.asarray(b_ub),
            lo=lo,
            hi=hi,
            backend="simplex",
        )
        raw = result.x[:n_x].reshape(T, K)

    snapped = np.where(raw > 0.5, 1.0, 0.0)
    if not is_binary(raw, atol=1e-5):
        # A degenerate optimal face can contain fractional points; verify the
        # snap did not change the objective before accepting it.
        raw_obj = _objective_single(c, beta, raw, x0, fractional=True)
        snap_obj = _objective_single(c, beta, snapped, x0)
        if snap_obj > raw_obj + 1e-6 * max(1.0, abs(raw_obj)):
            raise SolverError(
                "LP returned a fractional P1 solution that does not snap cleanly; "
                "this contradicts total unimodularity and indicates a solver issue"
            )
    obj = _objective_single(c, beta, snapped, x0)
    return snapped, obj


def _objective_single(
    c: FloatArray,
    beta: float,
    x: FloatArray,
    x0: FloatArray,
    *,
    fractional: bool = False,
) -> float:
    prev = x0.astype(np.float64)
    total = 0.0
    for t in range(x.shape[0]):
        total += beta * float(np.clip(x[t] - prev, 0.0, None).sum())
        total -= float(np.sum(c[t] * x[t]))
        prev = x[t]
    return total

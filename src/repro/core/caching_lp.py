"""Subproblem ``P1`` — the caching problem (Eq. 18) with exact integral optima.

Given the dual prices ``mu``, ``P1`` decomposes per SBS into

    min   sum_t ( beta_n * sum_k p[t,k]  -  sum_k c[t,k] * x[t,k] )
    s.t.  sum_k x[t,k] <= C_n,      p[t,k] >= x[t,k] - x[t-1,k],
          x in {0,1},               p >= 0,

with ``c[t,k] = sum_{m in n} mu[t,m,k]`` (Eqs. 20-22). Theorem 1 proves the
constraint matrix totally unimodular, so the LP relaxation has an integral
optimum. Two exact backends are provided:

- ``"flow"`` (default): the LP *is* a min-cost flow in which each of the
  ``C_n`` cache slots is one unit of flow travelling through time — idling
  between hub nodes for free, or detouring through a content's per-slot
  node chain (paying ``beta_n`` to enter, collecting ``c[t,k]`` per slot
  held). Integrality is automatic and the solve is combinatorial.
- ``"lp"``: the sparse LP of Eqs. 20-22 via :func:`repro.optim.solve_lp`
  (HiGHS or the in-house simplex); near-integral vertices are snapped and
  verified. Used to cross-check the flow backend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Literal

import numpy as np
import scipy.optimize
import scipy.sparse

from repro.config import (
    BACKEND_ENV,
    FLOW_REUSE_ENV,
    RuntimeConfig,
    resolved_backend_pin,
    resolved_batched,
    resolved_batched_ties,
    resolved_flow_reuse,
    resolved_quantized_memo,
)
from repro.core.capped import capped_cancel_stack
from repro.exceptions import ConfigurationError, SolverError
from repro.network.topology import Network
from repro.obs.recorder import inc
from repro.optim.linprog import solve_lp
from repro.optim.mincostflow import FlowState, MinCostFlow
from repro.perf.executor import Executor, resolve_executor
from repro.perf.solvecache import SolveCache, p1_digest, p1_quantized_digest
from repro.types import FloatArray, is_binary

CachingBackend = Literal["auto", "flow", "lp", "lp-simplex"]

#: ``auto`` uses the combinatorial flow solver up to this many ``(slot,
#: item)`` cells per SBS and the sparse HiGHS LP above it. Re-measured
#: after the flow-graph-reuse optimization (measurement table in
#: EXPERIMENTS.md, "Backend crossover"): with graph reuse the flow solve is
#: dominated by augmentation, which scales with the cache size, so the true
#: crossover depends on ``cap`` more than on the cell count. At the paper's
#: ``cap = 5`` the two backends are within ~10% of each other over
#: 3000-5000 cells (flow clearly ahead below ~1500); at ``cap >= 10`` HiGHS
#: wins from ~2000 cells. The cell count stays the rule's proxy because it
#: is what callers know cheaply; pin :data:`BACKEND_ENV` to override.
AUTO_FLOW_LIMIT = 5000

def resolve_backend(
    backend: CachingBackend, cells: int, *, config: RuntimeConfig | None = None
) -> str:
    """Resolve ``auto``: config pin, deprecated env pin, or the cell rule.

    Explicit non-``auto`` backends always win. The pin comes from
    :class:`repro.config.RuntimeConfig` (``caching_backend``) with the
    deprecated ``REPRO_CACHING_BACKEND`` variable as a fallback.
    """
    if backend != "auto":
        return backend
    pin = resolved_backend_pin(config)
    if pin is not None:
        return pin
    return "flow" if cells <= AUTO_FLOW_LIMIT else "lp"


@dataclass(frozen=True)
class CachingSolution:
    """Solution of ``P1`` across all SBSs.

    Attributes
    ----------
    x:
        Integral caching trajectory, shape ``(T, N, K)``.
    objective:
        The ``P1`` objective ``sum_t (h - sum mu x)`` at the solution.
    """

    x: FloatArray
    objective: float


def class_prices(network: Network, mu: FloatArray) -> FloatArray:
    """Aggregate dual prices per SBS: ``c[t, n, k] = sum_{m in n} mu[t, m, k]``."""
    T = mu.shape[0]
    out = np.zeros((T, network.num_sbs, network.num_items))
    np.add.at(out, (slice(None), network.class_sbs), mu)
    return out


def solve_caching(
    network: Network,
    mu: FloatArray,
    x_initial: FloatArray,
    *,
    backend: CachingBackend = "auto",
    executor: Executor | str | None = None,
    config: RuntimeConfig | None = None,
    cache: SolveCache | None = None,
) -> CachingSolution:
    """Solve ``P1`` given multipliers ``mu`` of shape ``(T, M, K)``.

    ``x_initial`` is the 0/1 cache state entering the first slot, shape
    ``(N, K)``; insertions in the first slot are charged against it.

    ``P1`` is exactly separable per SBS, so with an ``executor`` (or a
    :class:`repro.config.RuntimeConfig`, or the deprecated
    ``REPRO_WORKERS`` / ``REPRO_EXECUTOR`` environment) the per-SBS solves
    fan out in parallel; results are reduced in SBS order, bit-identical
    to the serial path. All runtime knobs — including flow-graph reuse —
    are resolved here in the parent, so worker processes never consult the
    environment.

    With a :class:`repro.perf.solvecache.SolveCache` the per-SBS solves
    become incremental: byte-identical subproblems are answered from the
    digest-exact memo without solving, and flow-backend misses resume the
    SBS's previous flow instead of cold-starting. All cache bookkeeping
    (memo lookups, counter increments, warm-state handoff) happens here in
    the parent, so results and recorded telemetry stay bit-identical
    across executors.

    Two further runtime knobs compose with the memo:

    - the **batched relaxation pass** (``RuntimeConfig(batched=...)``,
      default on) answers memo misses whose cardinality-relaxed optimum
      is provably unique and feasible from one vectorized DP over all
      misses (:func:`_solve_batched_p1`) — counted as
      ``p1_batched_solves`` / ``p1_batched_fallbacks``;
    - the **quantized memo key** (``RuntimeConfig(quantized_memo=...)``,
      opt-in) bands prices to :data:`repro.perf.solvecache.P1_QUANTUM`
      so near-repeat subproblems hit; cross-band hits re-evaluate the
      objective against the actual prices and are counted as
      ``p1_quant_memo_hits``.
    """
    backend = resolve_backend(backend, mu.shape[0] * network.num_items, config=config)
    if backend not in ("flow", "lp", "lp-simplex"):
        raise ConfigurationError(f"unknown caching backend {backend!r}")
    if mu.ndim != 3 or mu.shape[1:] != (network.num_classes, network.num_items):
        raise ConfigurationError(
            f"mu must have shape (T, M, K), got {mu.shape}"
        )
    if np.any(mu < -1e-9):
        raise ConfigurationError("dual prices must be non-negative")
    T = mu.shape[0]
    K = network.num_items
    prices = class_prices(network, mu)
    reuse = resolved_flow_reuse(config)
    want_state = cache is not None and backend == "flow"

    quantized = resolved_quantized_memo(config)
    results: list[tuple[FloatArray, float] | None] = [None] * network.num_sbs
    hits_before = cache.hits if cache is not None else 0
    quant_before = cache.quant_hits if cache is not None else 0
    miss_ns: list[int] = []
    miss_keys: list[tuple[bytes, bytes | None]] = []
    for n in range(network.num_sbs):
        key: bytes = b""
        exact_key: bytes | None = None
        if cache is not None:
            c_n = prices[:, n, :]
            beta_n = float(network.replacement_costs[n])
            cap_n = int(network.cache_sizes[n])
            x0_n = np.asarray(x_initial[n], dtype=np.float64)
            exact_key = p1_digest(c_n, beta_n, cap_n, x0_n)
            if quantized:
                key = p1_quantized_digest(c_n, beta_n, cap_n, x0_n)
                banded_hit = cache.lookup_banded(key, exact_key)
                if banded_hit is not None:
                    x_hit, obj_hit, banded = banded_hit
                    if banded:
                        # Cross-band reuse: the trajectory is valid (the
                        # feasible set ignores prices) but the stored
                        # objective belonged to the neighbour's prices.
                        obj_hit = _objective_single(c_n, beta_n, x_hit, x0_n)
                    results[n] = (x_hit, obj_hit)
                    continue
            else:
                key = exact_key
                hit = cache.lookup(key)
                if hit is not None:
                    results[n] = hit
                    continue
        miss_ns.append(n)
        miss_keys.append((key, exact_key))
    n_misses = len(miss_ns)

    # Batched relaxation pass: one vectorized DP over every miss at once;
    # subproblems whose certificate holds are solved here (and memoized),
    # the rest fall back to the exact per-SBS backends below.
    if resolved_batched(config) and miss_ns:
        accepted = _solve_batched_p1(
            network, prices, x_initial, miss_ns, ties=resolved_batched_ties(config)
        )
        if accepted:
            kept_ns: list[int] = []
            kept_keys: list[tuple[bytes, bytes | None]] = []
            for n, keys in zip(miss_ns, miss_keys):
                entry = accepted.get(n)
                if entry is None:
                    kept_ns.append(n)
                    kept_keys.append(keys)
                    continue
                results[n] = entry
                if cache is not None:
                    cache.store(keys[0], entry[0], entry[1], exact_key=keys[1])
            miss_ns, miss_keys = kept_ns, kept_keys
            inc("p1_batched_solves", len(accepted))
        if miss_ns:
            inc("p1_batched_fallbacks", len(miss_ns))

    tasks = []
    miss_meta: list[tuple[int, tuple[bytes, bytes | None], tuple[int, int, int, int]]] = []
    for n, key in zip(miss_ns, miss_keys):
        c_n = prices[:, n, :]
        beta_n = float(network.replacement_costs[n])
        cap_n = int(network.cache_sizes[n])
        x0_n = np.asarray(x_initial[n], dtype=np.float64)
        warm: FlowState | None = None
        state_key = (n, T, K, cap_n)
        ws = want_state
        if cache is not None and want_state:
            if cache.is_resume_disabled(state_key):
                # Resume is permanently off for this key: skip the state
                # export too — nothing will ever consume it.
                ws = False
            else:
                warm = cache.warm_state_for(state_key)
        miss_meta.append((n, key, state_key))
        tasks.append((c_n, beta_n, cap_n, x0_n, backend, reuse, warm, ws))

    ex = resolve_executor(executor, config=config)
    if ex.workers > 1 and len(tasks) > 1:
        solved = ex.map(_solve_sbs_task, tasks)
    else:
        solved = [_solve_sbs_task(task) for task in tasks]

    resumes = bailouts = disabled = 0
    for (n, key, state_key), (xn, obj, state, resumed, bailed) in zip(
        miss_meta, solved
    ):
        results[n] = (xn, obj)
        if cache is not None:
            cache.store(key[0], xn, obj, exact_key=key[1])
            if state is not None:
                cache.flow_states[state_key] = state
            if resumed:
                disabled += cache.note_resume(state_key, bool(bailed))
            cache.warm_resumes += resumed
            cache.warm_bailouts += bailed
            resumes += resumed
            bailouts += bailed
    if cache is not None:
        hits = cache.hits - hits_before
        if hits:
            inc("p1_memo_hits", hits)
        if n_misses:
            # Memo misses count every digest lookup that missed, including
            # those the batched relaxation pass answered.
            inc("p1_memo_misses", n_misses)
        qhits = cache.quant_hits - quant_before
        if qhits:
            inc("p1_quant_memo_hits", qhits)
        if resumes:
            inc("flow_warm_resumes", resumes)
        if bailouts:
            inc("flow_warm_bailouts", bailouts)
        if disabled:
            inc("flow_warm_disabled_keys", disabled)

    x = np.zeros((T, network.num_sbs, K))
    objective = 0.0
    for n, entry in enumerate(results):
        assert entry is not None
        xn, obj = entry
        x[:, n, :] = xn
        objective += obj
    return CachingSolution(x=x, objective=objective)


def _solve_sbs_task(
    task: tuple[FloatArray, float, int, FloatArray, str, bool, "FlowState | None", bool],
) -> tuple[FloatArray, float, "FlowState | None", int, int]:
    """One SBS's ``P1`` solve — module-level so process executors can use it.

    Returns ``(x, objective, flow_state, warm_resumes, warm_bailouts)``;
    the last three are ``(None, 0, 0)`` unless the caller asked for warm
    state (flow backend with an active :class:`SolveCache`).
    """
    c, beta, cap, x0, backend, reuse, warm, want_state = task
    if backend == "flow":
        if want_state:
            return _solve_single_sbs_flow(
                c, beta, cap, x0, reuse=reuse, warm_state=warm, want_state=True
            )
        xn, obj = _solve_single_sbs_flow(c, beta, cap, x0, reuse=reuse)
        return xn, obj, None, 0, 0
    lp_backend = "scipy" if backend == "lp" else "simplex"
    xn, obj = _solve_single_sbs_lp(c, beta, cap, x0, lp_backend=lp_backend)
    return xn, obj, None, 0, 0


def caching_objective(
    network: Network, x: FloatArray, mu: FloatArray, x_initial: FloatArray
) -> float:
    """Evaluate the ``P1`` objective for a given trajectory (for tests)."""
    prices = class_prices(network, mu)
    prev = x_initial
    total = 0.0
    for t in range(x.shape[0]):
        inserted = np.clip(x[t] - prev, 0.0, None).sum(axis=1)
        total += float(np.dot(network.replacement_costs, inserted))
        total -= float(np.sum(prices[t] * x[t]))
        prev = x[t]
    return total


# ------------------------------------------------------------- batched relax

#: Element budget per DP-tensor chunk of the batched relaxation pass
#: (bounds peak memory at roughly ten float64 tensors of this size).
_BATCH_DP_CHUNK = 32_000_000

_DP_EPS = float(np.finfo(np.float64).eps)


def _relaxed_dp_stack(
    C: FloatArray,
    beta: FloatArray,
    X0: FloatArray,
    caps: FloatArray,
    *,
    ties: bool,
) -> tuple[FloatArray, FloatArray]:
    """Canonical cardinality-relaxed ``P1`` DP over a stack of SBSs.

    Dropping the per-slot cardinality constraint makes ``P1`` separate per
    *item* into an interval-selection problem — hold content ``k`` through
    profitable time intervals, paying ``beta`` per insertion (free at
    ``t = 0`` for initially cached items) — solved for every (SBS, item)
    pair of the ``(B, T, K)`` stack simultaneously by one two-state DP
    over the horizon. Every elementwise operation here is independent of
    ``B``, so the ``B = 1`` call a per-SBS backend makes produces bitwise
    the rows a stacked call would (the property
    ``tests/test_batched.py::TestP1Ties`` pins).

    Ties are resolved by one **canonical discipline** — prefer the
    uncached state: enter as late as possible (``stay > enter``), leave as
    early as possible (``V0 >= V1`` keeps the item out, final state
    cached only on strict gain). Among all relaxed optima this picks the
    pointwise-minimal occupancy one, which maximizes the chance of cap
    feasibility below.

    Acceptance (the returned ``ok`` mask) requires

    * **certified decisions**: with ``ties=True`` every margin along the
      backtracked path is either exactly ``0.0`` (a structural tie — the
      canonical branch is taken) or strict beyond the float danger band
      ``16 * eps * max(T, 4) * max(1, beta, max |c|)``, and the path's
      value re-folds bitwise to the DP optimum; with ``ties=False`` the
      legacy strict-margin rule (every on-path margin above
      ``1e-9 * max(1, beta, max |c|)``) — bitwise the pre-tie-aware
      acceptance set, because flipping the tie direction of a decision
      can only matter on paths the legacy rule already rejected; and
    * **cap feasibility**: the relaxed optimum satisfies the per-slot
      cardinality caps.

    A certified cap-feasible relaxed optimum is a true optimum of the
    *constrained* problem (every feasible trajectory is relaxed-feasible),
    so accepting it is exact. Sub-danger-band nonzero margins — decisions
    whose sign could flip under a different float evaluation order — are
    never accepted.
    """
    B, T, K = C.shape
    bcol = np.asarray(beta, dtype=np.float64)[:, None]
    scale = np.maximum(
        1.0, np.maximum(bcol[:, 0], np.abs(C).max(axis=(1, 2)) if K else 0.0)
    )[:, None]
    if ties:
        # Path values are <= T-term float sums: their error is below
        # T * eps * scale, so margins beyond this band cannot change sign
        # under any evaluation order, and nonzero margins inside it are
        # treated as unsafe rather than as ties.
        tol = (16.0 * _DP_EPS * max(T, 4)) * scale
    else:
        tol = 1e-9 * scale

    # Forward pass: V1/V0 = best profit with the item cached/uncached in
    # slot t.
    take1 = np.empty((T, B, K), dtype=bool)  # cached at t <- cached at t-1
    take0 = np.empty((T, B, K), dtype=bool)  # uncached at t <- uncached
    m1 = np.empty((T, B, K))
    m0 = np.empty((T, B, K))
    fetch0 = np.where(X0 > 0.5, 0.0, bcol)
    V1 = C[:, 0, :] - fetch0
    V0 = np.zeros((B, K))
    for t in range(1, T):
        stay = V1
        enter = V0 - bcol
        take1[t] = stay > enter  # tie -> enter late
        m1[t] = np.abs(stay - enter)
        nV1 = np.maximum(stay, enter) + C[:, t, :]
        take0[t] = V0 >= V1  # tie -> stay uncached
        m0[t] = np.abs(V0 - V1)
        V0 = np.maximum(V0, V1)
        V1 = nV1

    # Backtrack the optimal path, accumulating certification failures only
    # along decisions the path actually takes.
    x = np.zeros((B, T, K))
    state = V1 > V0  # cache in the last slot only on strict gain
    mfin = np.abs(V1 - V0)
    fail = ((mfin > 0.0) & (mfin <= tol)) if ties else (mfin <= tol)
    for t in range(T - 1, 0, -1):
        x[:, t, :] = state
        m = np.where(state, m1[t], m0[t])
        fail |= ((m > 0.0) & (m <= tol)) if ties else (m <= tol)
        state = np.where(state, take1[t], ~take0[t])
    x[:, 0, :] = state

    if ties:
        # Fold the backtracked path's value with the DP's exact operation
        # order and require bitwise agreement with the DP optimum — a
        # belt-and-braces guard that the tie-resolved path really attains
        # the optimal value (any pointer/value inconsistency fails here).
        on = x[:, 0, :] > 0.5
        acc = np.where(on, C[:, 0, :] - fetch0, 0.0)
        for t in range(1, T):
            on = x[:, t, :] > 0.5
            was = x[:, t - 1, :] > 0.5
            acc = np.where(
                on & ~was,
                (acc - bcol) + C[:, t, :],
                np.where(on & was, acc + C[:, t, :], acc),
            )
        final = np.where(x[:, T - 1, :] > 0.5, V1, V0)
        fail |= acc != final

    counts = x.sum(axis=2)
    ok = ~fail.any(axis=1) & (counts <= np.asarray(caps)[:, None]).all(axis=1)
    return x, ok


def _certified_canonical(
    c: FloatArray, beta: float, cap: int, x0: FloatArray
) -> tuple[FloatArray, float] | None:
    """The canonical certified-exact ``P1`` optimum for one SBS, if any.

    Runs :func:`_relaxed_dp_stack` with ``B = 1`` under the tie-aware
    certificate; when the canonical relaxed optimum certifies and fits the
    cap it *is* an optimum of the constrained problem. Cap-bound rows — the
    relaxed optimum over-caps, which is the common case on the paper's
    uniform-cost scenarios — go to the exact cap-constrained kernel
    (:func:`repro.core.capped.capped_cancel_stack`) instead. Either way the
    predicate is exactly the one the batched pass applies, so a per-SBS
    backend that answers from it returns bitwise what the batched pass
    would have returned for the same row: tie resolution is uniform across
    every solve path by construction, not by reverse-engineering any
    backend's internal order. Returns ``(x, objective)``, or ``None`` when
    neither kernel certifies (the backend's own exact solve takes over).
    """
    C = np.ascontiguousarray(c, dtype=np.float64)[None]
    beta_arr = np.asarray([float(beta)], dtype=np.float64)
    X0 = np.asarray(x0, dtype=np.float64)[None]
    caps = np.asarray([cap], dtype=np.float64)
    x, ok = _relaxed_dp_stack(C, beta_arr, X0, caps, ties=True)
    if not bool(ok[0]):
        x, ok = capped_cancel_stack(C, beta_arr, X0, caps)
        if not bool(ok[0]):
            return None
    xb = x[0]
    return xb, _objective_single(c, beta, xb, x0)


def _solve_batched_p1(
    network: Network,
    prices: FloatArray,
    x_initial: FloatArray,
    ns: list[int],
    *,
    ties: bool = True,
) -> dict[int, tuple[FloatArray, float]]:
    """Vectorized certified-exact ``P1`` over a stack of SBSs.

    Two stages per memory-bounded chunk. One :func:`_relaxed_dp_stack`
    call answers every row whose certified relaxed optimum fits the cap;
    the cap-bound remainder — the storm case on the paper's uniform-cost
    scenarios, where the relaxed optimum over-caps on (nearly) every row —
    goes to the exact cap-constrained cancel kernel
    (:func:`repro.core.capped.capped_cancel_stack`, counted as
    ``p1_batched_capped``). Only rows neither stage certifies fall back to
    the per-SBS backends.

    ``ties=True`` (the default, governed by
    ``RuntimeConfig(batched_ties=...)`` / ``REPRO_BATCHED_TIES``) enables
    the canonical tie discipline and the capped stage; ``ties=False``
    restores the legacy strict-margin-only acceptance, which rejects every
    tied or cap-bound row — the acceptance *rate* A/B CI runs. Either way
    the accepted answers are bitwise what the per-SBS backends return,
    because those backends answer from the same
    :func:`_certified_canonical` predicate first. Returns
    ``{n: (x, objective)}`` for the accepted SBSs, objectives evaluated by
    :func:`_objective_single` exactly as the per-SBS backends do.
    """
    T = prices.shape[0]
    K = network.num_items
    idx = np.asarray(ns, dtype=np.intp)
    out: dict[int, tuple[FloatArray, float]] = {}
    capped = 0
    chunk = max(1, _BATCH_DP_CHUNK // max(1, T * K))
    for start in range(0, idx.size, chunk):
        sel = idx[start : start + chunk]
        C = np.ascontiguousarray(prices[:, sel, :].transpose(1, 0, 2))  # (B,T,K)
        beta = network.replacement_costs[sel].astype(np.float64)
        caps = np.asarray(network.cache_sizes[sel])
        X0 = np.asarray(x_initial[sel], dtype=np.float64)
        x, ok = _relaxed_dp_stack(C, beta, X0, caps, ties=ties)
        for b in np.flatnonzero(ok):
            xb = x[b]
            out[int(sel[b])] = (
                xb,
                _objective_single(C[b], float(beta[b]), xb, X0[b]),
            )
        rest = np.flatnonzero(~ok)
        if ties and rest.size:
            xc, okc = capped_cancel_stack(C[rest], beta[rest], X0[rest], caps[rest])
            for i in np.flatnonzero(okc):
                b = int(rest[i])
                xb = xc[i]
                out[int(sel[b])] = (
                    xb,
                    _objective_single(C[b], float(beta[b]), xb, X0[b]),
                )
                capped += 1
    if capped:
        inc("p1_batched_capped", capped)
    return out


# ----------------------------------------------------------------- flow back

@dataclass
class _FlowTemplate:
    """A built caching-flow graph, reusable across solves of one shape.

    The arc topology depends only on ``(T, K, cap)``; the dual prices (hold
    costs) and ``(beta, x0)`` (fetch costs) change between solves, so they
    are rewritten in place via :meth:`MinCostFlow.set_all_arc_costs` and
    the flow rewound with :meth:`MinCostFlow.reset`. ``base_costs`` is the
    id-indexed all-user-arc cost vector with the structural (always-zero)
    arcs filled in, so a solve only scatters the fetch/hold costs into a
    copy of it.
    """

    graph: MinCostFlow
    fetch_arcs: "np.ndarray"  # (T, K) arc ids, cost = beta or 0
    hold_arcs: "np.ndarray"  # (T, K) arc ids, cost = -c[t, k]
    base_costs: "np.ndarray"  # (num_user_arcs,) zeros
    src: int
    snk: int


def _build_flow_template(T: int, K: int, cap: int) -> _FlowTemplate:
    """Construct the caching-flow topology with placeholder costs.

    Nodes: free-slot hubs ``F_0..F_T`` plus an in/out pair per ``(k, t)``.
    A unit of flow is one cache slot; holding content ``k`` during slot
    ``t`` routes through ``(k,t)_in -> (k,t)_out`` (gain ``c[t,k]``),
    entering from a hub costs ``beta`` (free at ``t=0`` for initially
    cached contents).
    """

    def hub(t: int) -> int:
        return t  # 0..T

    def node_in(k: int, t: int) -> int:
        return (T + 1) + 2 * (t * K + k)

    def node_out(k: int, t: int) -> int:
        return (T + 1) + 2 * (t * K + k) + 1

    num_nodes = (T + 1) + 2 * T * K + 2
    src = num_nodes - 2
    snk = num_nodes - 1
    g = MinCostFlow(num_nodes)
    g.add_arc(src, hub(0), cap, 0.0)
    for t in range(T):
        g.add_arc(hub(t), hub(t + 1), cap, 0.0)
    g.add_arc(hub(T), snk, cap, 0.0)

    fetch_arcs = np.empty((T, K), dtype=np.int64)
    hold_arcs = np.empty((T, K), dtype=np.int64)
    for t in range(T):
        for k in range(K):
            fetch_arcs[t, k] = g.add_arc(hub(t), node_in(k, t), 1, 0.0)
            hold_arcs[t, k] = g.add_arc(node_in(k, t), node_out(k, t), 1, 0.0)
            g.add_arc(node_out(k, t), hub(t + 1), 1, 0.0)
            if t + 1 < T:
                g.add_arc(node_out(k, t), node_in(k, t + 1), 1, 0.0)
    base_costs = np.zeros(g._num_user_arcs, dtype=np.float64)
    return _FlowTemplate(g, fetch_arcs, hold_arcs, base_costs, src, snk)


def _initial_potentials_dag(c: FloatArray, fetch_costs: FloatArray) -> list[float]:
    """Closed-form shortest distances on the empty caching flow.

    The generic topological pass walks every arc of the template in Kahn
    order; the caching DAG's layered structure lets the same distances be
    computed by a vectorized forward DP over slots instead. Exactness
    matters: each node's distance is a min over incoming path sums whose
    additions happen in the same order as the relaxation pass, so the
    returned potentials are the bitwise values that pass would produce
    (up to the sign of zero) and Dijkstra's stale-potential guard treats
    them as settled.
    """
    T, K = c.shape
    d_hub = np.empty(T + 1)
    d_hub[0] = 0.0
    d_in = np.empty((T, K))
    d_out = np.empty((T, K))
    hold = -np.asarray(c, dtype=np.float64)
    for t in range(T):
        enter = d_hub[t] + fetch_costs[t]
        d_in[t] = enter if t == 0 else np.minimum(enter, d_out[t - 1])
        d_out[t] = d_in[t] + hold[t]
        d_hub[t + 1] = min(d_hub[t], float(d_out[t].min()))
    num_nodes = (T + 1) + 2 * T * K + 2
    potentials = np.empty(num_nodes)
    potentials[: T + 1] = d_hub
    potentials[T + 1 : T + 1 + 2 * T * K : 2] = d_in.reshape(-1)
    potentials[T + 2 : T + 2 + 2 * T * K : 2] = d_out.reshape(-1)
    potentials[num_nodes - 2] = 0.0  # source
    potentials[num_nodes - 1] = d_hub[T]  # sink
    return potentials.tolist()


# Templates are checked out under a lock so concurrent thread-executor
# solves never share a graph; each process has its own pool.
_TEMPLATE_POOL: dict[tuple[int, int, int], list[_FlowTemplate]] = {}
_TEMPLATE_LOCK = threading.Lock()
_TEMPLATE_POOL_LIMIT = 8  # per (T, K, cap); bounds memory under thread fan-out


def _acquire_template(T: int, K: int, cap: int) -> _FlowTemplate:
    with _TEMPLATE_LOCK:
        pool = _TEMPLATE_POOL.get((T, K, cap))
        if pool:
            return pool.pop()
    return _build_flow_template(T, K, cap)


def _release_template(T: int, K: int, cap: int, template: _FlowTemplate) -> None:
    with _TEMPLATE_LOCK:
        pool = _TEMPLATE_POOL.setdefault((T, K, cap), [])
        if len(pool) < _TEMPLATE_POOL_LIMIT:
            pool.append(template)


def _solve_single_sbs_flow(
    c: FloatArray,
    beta: float,
    cap: int,
    x0: FloatArray,
    *,
    reuse: bool | None = None,
    warm_state: FlowState | None = None,
    want_state: bool = False,
    canonical: bool = True,
):
    """Min-cost-flow solve for one SBS (see :func:`_build_flow_template`).

    Tie-degenerate subproblems are answered by :func:`_certified_canonical`
    before any flow work: the flow's own tie resolution is an accident of
    Dijkstra settle order and the potentials earlier augmentations left
    behind, so imposing the canonical discipline here (and identically in
    the LP backend and the batched pass) is what makes every solve path
    return the same bits on degenerate instances. ``canonical=False``
    exposes the raw flow answer — tests use it to verify the canonical
    trajectory attains the flow's optimal objective.

    ``reuse`` pools the built graph across solves of the same shape
    (default on; ``RuntimeConfig(flow_reuse=False)`` or the deprecated
    ``REPRO_FLOW_REUSE=0`` disables). A reused solve is bit-identical to a
    fresh-graph solve: the rewound capacities and rewritten costs
    reproduce the exact graph a fresh build would create.

    Returns ``(x, objective)``; with ``want_state=True`` the return is
    ``(x, objective, flow_state, warm_resumes, warm_bailouts)`` and, when
    ``warm_state`` is given, the solve resumes from it
    (:meth:`repro.optim.mincostflow.MinCostFlow.resume`) instead of
    cold-starting.
    """
    T, K = c.shape
    if cap == 0:
        zero = np.zeros((T, K))
        return (zero, 0.0, None, 0, 0) if want_state else (zero, 0.0)
    if canonical:
        canon = _certified_canonical(c, beta, cap, x0)
        if canon is not None:
            xc, objc = canon
            return (xc, objc, None, 0, 0) if want_state else (xc, objc)
    if reuse is None:
        reuse = resolved_flow_reuse(None)

    template = _acquire_template(T, K, cap) if reuse else _build_flow_template(T, K, cap)
    g = template.graph
    fetch_costs = np.full((T, K), float(beta))
    fetch_costs[0, np.asarray(x0) > 0.5] = 0.0
    costs = template.base_costs.copy()
    costs[template.fetch_arcs.reshape(-1)] = fetch_costs.reshape(-1)
    costs[template.hold_arcs.reshape(-1)] = -np.asarray(c, dtype=np.float64).reshape(-1)
    g.set_all_arc_costs(costs)
    potentials = _initial_potentials_dag(c, fetch_costs)

    resumed = bailed = 0
    if warm_state is not None:
        result = g.resume(
            template.src,
            template.snk,
            cap,
            warm_state,
            dag=True,
            initial_potentials=potentials,
        )
        resumed = 1
        bailed = int(g.last_resume_bailed)
    else:
        g.reset()
        result = g.solve(
            template.src, template.snk, cap, dag=True, initial_potentials=potentials
        )
    state = g.export_state() if want_state else None
    x = result.arc_flow[template.hold_arcs]
    if reuse:
        _release_template(T, K, cap, template)
    if result.amount != cap:
        raise SolverError(
            f"caching flow routed {result.amount}/{cap} units; graph is malformed"
        )
    x = np.where(x > 0.5, 1.0, 0.0)
    obj = _objective_single(c, beta, x, x0)
    if want_state:
        return x, obj, state, resumed, bailed
    return x, obj


# ------------------------------------------------------------------- LP back

def _solve_single_sbs_lp(
    c: FloatArray,
    beta: float,
    cap: int,
    x0: FloatArray,
    *,
    lp_backend: str,
    canonical: bool = True,
) -> tuple[FloatArray, float]:
    """Sparse LP of Eqs. 20-22 for one SBS; snaps and validates integrality.

    Like the flow backend, tie-degenerate subproblems are answered by
    :func:`_certified_canonical` first so every backend resolves ties with
    the same canonical discipline (the LP's vertex choice on a degenerate
    optimal face is solver-internal and not reproducible across backends).
    """
    if canonical and cap > 0:
        canon = _certified_canonical(c, beta, cap, x0)
        if canon is not None:
            return canon
    T, K = c.shape
    n_x = T * K

    # Objective: -c on x, beta on p.
    cost = np.concatenate([-c.reshape(-1), np.full(n_x, beta)])

    cells = np.arange(n_x)
    # Capacity rows (one per slot): sum_k x[t,k] <= cap.
    cap_rows = np.repeat(np.arange(T), K)
    cap_cols = cells
    cap_vals = np.ones(n_x)
    # Switching rows (one per cell): x[t,k] - x[t-1,k] - p[t,k] <= [t=0] x0[k].
    sw_rows = T + cells
    later = cells[K:]  # cells with t > 0
    rows_all = np.concatenate([cap_rows, sw_rows, T + later, sw_rows])
    cols_all = np.concatenate([cap_cols, cells, later - K, n_x + cells])
    vals_all = np.concatenate(
        [cap_vals, np.ones(n_x), -np.ones(n_x - K), -np.ones(n_x)]
    )
    b_ub = np.concatenate([np.full(T, float(cap)), x0.astype(np.float64), np.zeros(n_x - K)])

    A_ub = scipy.sparse.csr_matrix(
        (vals_all, (rows_all, cols_all)), shape=(T + n_x, 2 * n_x)
    )
    lo = np.zeros(2 * n_x)
    hi = np.concatenate([np.ones(n_x), np.full(n_x, np.inf)])

    if lp_backend == "scipy":
        res = scipy.optimize.linprog(
            cost,
            A_ub=A_ub,
            b_ub=np.asarray(b_ub),
            bounds=np.column_stack([lo, hi]),
            method="highs",
        )
        if not res.success:
            raise SolverError(f"HiGHS failed on P1: {res.message}")
        raw = np.asarray(res.x[:n_x]).reshape(T, K)
    else:
        result = solve_lp(
            cost,
            A_ub=A_ub.toarray(),
            b_ub=np.asarray(b_ub),
            lo=lo,
            hi=hi,
            backend="simplex",
        )
        raw = result.x[:n_x].reshape(T, K)

    snapped = np.where(raw > 0.5, 1.0, 0.0)
    if not is_binary(raw, atol=1e-5):
        # A degenerate optimal face can contain fractional points; verify the
        # snap did not change the objective before accepting it.
        raw_obj = _objective_single(c, beta, raw, x0, fractional=True)
        snap_obj = _objective_single(c, beta, snapped, x0)
        if snap_obj > raw_obj + 1e-6 * max(1.0, abs(raw_obj)):
            raise SolverError(
                "LP returned a fractional P1 solution that does not snap cleanly; "
                "this contradicts total unimodularity and indicates a solver issue"
            )
    obj = _objective_single(c, beta, snapped, x0)
    return snapped, obj


def _objective_single(
    c: FloatArray,
    beta: float,
    x: FloatArray,
    x0: FloatArray,
    *,
    fractional: bool = False,
) -> float:
    # Per-slot reductions are vectorized; the scalar accumulation stays a
    # t-ordered loop so the result is bitwise what the original per-slot
    # loop computed (row-wise axis reductions are bit-equal to reducing
    # each row alone; only the accumulation order could differ).
    prev = np.vstack([x0.astype(np.float64)[None, :], x[:-1]])
    inserted = np.clip(x - prev, 0.0, None).sum(axis=1)
    gained = (c * x).sum(axis=1)
    total = 0.0
    for t in range(x.shape[0]):
        total += beta * float(inserted[t])
        total -= float(gained[t])
    return total

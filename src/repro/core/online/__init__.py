"""Online controllers of Section IV: RHC, FHC variants, AFHC, and CHC."""

from repro.core.online.base import OnlineSolveSettings
from repro.core.online.chc import AFHC, CHC
from repro.core.online.fhc import FixedHorizonTrajectory, run_fhc_variant
from repro.core.online.rhc import RHC

__all__ = [
    "AFHC",
    "CHC",
    "FixedHorizonTrajectory",
    "OnlineSolveSettings",
    "RHC",
    "run_fhc_variant",
]

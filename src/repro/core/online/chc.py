"""Committed Horizon Control (Algorithm 3) and AFHC, with rounding.

CHC with commitment level ``r`` runs the ``r`` phase-shifted FHC variants
and *averages* their actions (Eqs. 36-37). Averaged caches are generally
fractional, so the paper's rounding policy (Theorem 3) is applied:
threshold the averaged caches at ``rho* = (3 - sqrt(5))/2``, keep ``y``
only where the rounded cache holds the item. AFHC is exactly CHC with
``r = w`` (full-window commitment), provided as its own named policy for
the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.online.base import OnlineSolveSettings, record_cache_stats
from repro.core.online.fhc import run_fhc_variant
from repro.core.rounding import (
    optimal_rounding_threshold,
    round_caching,
    round_load_balancing,
)
from repro.exceptions import ConfigurationError
from repro.obs.recorder import inc, label_scope
from repro.scenario import PolicyPlan, Scenario


@dataclass(frozen=True)
class CHC:
    """Committed Horizon Control with window ``w`` and commitment ``r``.

    Parameters
    ----------
    window:
        Prediction window size ``w``.
    commitment:
        Commitment level ``r`` in ``[1, w]`` (paper default in the
        evaluation: ``r = w/2``). ``r = 1`` recovers RHC-like behaviour
        (but still averaged over one variant, i.e. plain RHC); ``r = w``
        is AFHC.
    rho:
        Rounding threshold; ``None`` uses the optimal ``rho*`` of Thm 3.
    settings:
        Inner-solver configuration.
    """

    window: int = 10
    commitment: int = 5
    rho: float | None = None
    settings: OnlineSolveSettings = field(default_factory=OnlineSolveSettings)

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if not 1 <= self.commitment <= self.window:
            raise ConfigurationError(
                f"commitment must be in [1, window={self.window}], "
                f"got {self.commitment}"
            )
        if self.rho is not None and not 0.0 < self.rho < 1.0:
            raise ConfigurationError(f"rho must be in (0, 1), got {self.rho}")

    @property
    def name(self) -> str:
        return f"CHC(w={self.window},r={self.commitment})"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        with label_scope(controller=self.name):
            return self._plan(scenario)

    def _plan(self, scenario: Scenario) -> PolicyPlan:
        x_sum = np.zeros(
            (scenario.horizon, scenario.network.num_sbs, scenario.network.num_items)
        )
        y_sum = np.zeros(
            (
                scenario.horizon,
                scenario.network.num_classes,
                scenario.network.num_items,
            )
        )
        solves = 0
        # One cache across all variants: they run sequentially, so sharing
        # stays deterministic, and overlapping variant windows can answer
        # each other's byte-identical P1 subproblems from the memo.
        cache = self.settings.make_solve_cache()
        for v in range(self.commitment):
            traj = run_fhc_variant(
                scenario,
                variant=v,
                window=self.window,
                commitment=self.commitment,
                settings=self.settings,
                solve_cache=cache,
            )
            x_sum += traj.x
            y_sum += traj.y
            solves += traj.solves
            inc("fhc_variants_run", labels={"controller": self.name})
        record_cache_stats(cache, self.name)
        x_avg = x_sum / self.commitment
        y_avg = y_sum / self.commitment
        rho = self.rho if self.rho is not None else optimal_rounding_threshold()
        x = round_caching(x_avg, scenario.network.cache_sizes, rho=rho)
        y = round_load_balancing(y_avg, x, scenario.network.class_sbs)
        return PolicyPlan(x=x, y=y, solves=solves)


class AFHC(CHC):
    """Averaging Fixed Horizon Control: CHC with full commitment ``r = w``.

    Not re-decorated as a dataclass: it keeps CHC's (frozen) fields but
    pins ``commitment = window`` in its constructor.
    """

    def __init__(
        self,
        window: int = 10,
        rho: float | None = None,
        settings: OnlineSolveSettings | None = None,
    ) -> None:
        object.__setattr__(self, "window", window)
        object.__setattr__(self, "commitment", window)
        object.__setattr__(self, "rho", rho)
        object.__setattr__(
            self, "settings", settings if settings is not None else OnlineSolveSettings()
        )
        self.__post_init__()

    @property
    def name(self) -> str:
        return f"AFHC(w={self.window})"

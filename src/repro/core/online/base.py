"""Shared machinery for the online controllers.

Every controller repeatedly solves a ``w``-slot window of the joint problem
(Eq. 26, via Algorithm 1 — Theorem 2 shows the integer window problem keeps
the continuous competitive ratio). :class:`OnlineSolveSettings` bundles the
inner-solver knobs, and :func:`solve_window` applies them with warm-started
multipliers, which is what keeps a 100-slot receding-horizon run fast: the
window shifts by one slot, so the previous window's multipliers (shifted by
one slot) are an excellent starting point.

When the scenario carries a fault schedule (:mod:`repro.faults`), windows
are planned against the *effective* network observed at the decision slot —
the persistence assumption: the currently-observed degradation is assumed
to last through the window. The installed caches handed to the window
problem are already evicted-to-fit by the physical system (controllers
track them with :func:`repro.faults.realize_slot`), and a previous window's
trajectory can seed the solve as a warm feasible candidate. All of this is
gated on faults being active, so fault-free runs are bit-identical to the
original controllers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import RuntimeConfig, resolved_incremental
from repro.core.caching_lp import CachingBackend
from repro.core.primal_dual import PrimalDualResult, solve_primal_dual
from repro.faults.degrade import (
    degraded_network,
    evict_trajectory_to_fit,
    sbs_item_values,
)
from repro.obs.recorder import inc, slot_scope
from repro.perf.solvecache import SolveCache
from repro.scenario import Scenario
from repro.types import FloatArray


@dataclass(frozen=True)
class OnlineSolveSettings:
    """Inner-solver configuration for per-window Algorithm 1 runs.

    Parameters
    ----------
    max_iter:
        Subgradient iteration cap per window (smaller than the offline
        default — windows are small and warm-started).
    gap_tol:
        Relative duality-gap target per window.
    caching_backend:
        ``P1`` backend for window solves.
    ub_patience:
        Stop a window solve early once the best feasible candidate has not
        improved for this many iterations — the committed trajectory is
        the feasible candidate, so chasing the dual certificate further
        buys nothing online.
    max_seconds:
        Anytime wall-time cap per window solve; the committed trajectory is
        then the best feasible one found so far. ``None`` (default) means
        uncapped. Keeps a degraded or surge-stressed slot from stalling
        the rest of the horizon.
    incremental:
        Whether the incremental re-solve layer is active for this
        controller: every window seeds the previous window's committed
        trajectory (shifted to the new slots) as a feasible incumbent, and
        one :class:`repro.perf.solvecache.SolveCache` — ``P1`` memo plus
        warm flow states — is carried across the whole window sequence.
        ``None`` (default) defers to ``RuntimeConfig(incremental=...)`` /
        ``REPRO_INCREMENTAL`` (default on).
    """

    max_iter: int = 40
    gap_tol: float = 1e-3
    caching_backend: CachingBackend = "auto"
    ub_patience: int | None = 8
    max_seconds: float | None = None
    incremental: bool | None = None

    def resolved_incremental(self) -> bool:
        """The effective incremental flag (field, else env, else on)."""
        if self.incremental is not None:
            return self.incremental
        return resolved_incremental(None)

    def make_solve_cache(self) -> SolveCache | None:
        """A fresh per-plan :class:`SolveCache`, or ``None`` when disabled."""
        return SolveCache() if self.resolved_incremental() else None


def solve_window(
    scenario: Scenario,
    decided_at: int,
    window_start: int,
    window: int,
    x_prev: FloatArray,
    settings: OnlineSolveSettings,
    mu_warm: FloatArray | None,
    x_warm: FloatArray | None = None,
    solve_cache: SolveCache | None = None,
) -> PrimalDualResult:
    """Solve one prediction window with Algorithm 1.

    ``decided_at`` is the slot at which the forecast is issued (it differs
    from ``window_start`` only for the negatively-anchored first solves of
    FHC variants). Slots before 0 or past the trace see zero demand, per
    the paper's convention.

    ``x_warm`` — a previous window's caching trajectory, shifted to this
    window's slots — seeds Algorithm 1 as a feasible incumbent and a
    pre-warmed repair-cache entry. Under an active fault schedule the
    window problem is built on the degraded network observed at
    ``decided_at`` and the seed is first evicted-to-fit the effective
    capacities (warm restart from the last feasible point); on the
    fault-free path the seeding is gated by ``settings.incremental``
    (cross-window reuse, default on). ``solve_cache`` carries the ``P1``
    memo and warm flow states across the caller's whole window sequence.
    """
    predicted = scenario.predictor.predict_window(
        max(decided_at, 0), window_start, window
    )
    faults = scenario.faults
    network = None
    candidates: tuple[FloatArray, ...] | None = None
    if faults is not None and not faults.is_empty:
        state = faults.state_at(max(decided_at, 0), scenario.network)
        network = degraded_network(scenario.network, state)
        if x_warm is not None and x_warm.shape[0] == window:
            caps_t = np.broadcast_to(
                state.cache_sizes, (window, scenario.network.num_sbs)
            )
            values_t = np.stack(
                [sbs_item_values(scenario.network, predicted[t]) for t in range(window)]
            )
            candidates = (evict_trajectory_to_fit(x_warm, caps_t, values_t),)
    elif (
        settings.resolved_incremental()
        and x_warm is not None
        and x_warm.shape[0] == window
    ):
        candidates = (x_warm,)
    problem = scenario.window_problem(predicted, x_prev, network=network)
    mu0 = None
    if mu_warm is not None and mu_warm.shape == (window, *predicted.shape[1:]):
        mu0 = mu_warm
    inc("window_solves")
    if mu0 is not None:
        inc("window_solves_warm_started")
    if candidates is not None:
        inc("window_solves_candidate_seeded")
    config = (
        RuntimeConfig(incremental=settings.incremental)
        if settings.incremental is not None
        else None
    )
    # Stamp the deciding slot onto every event the inner solver emits
    # (solve_done, budget_exhausted), so traces tie each solve to its slot.
    with slot_scope(max(window_start, 0)):
        return solve_primal_dual(
            problem,
            max_iter=settings.max_iter,
            gap_tol=settings.gap_tol,
            caching_backend=settings.caching_backend,
            mu0=mu0,
            ub_patience=settings.ub_patience,
            initial_candidates=candidates,
            max_seconds=settings.max_seconds,
            config=config,
            solve_cache=solve_cache,
        )


def record_cache_stats(cache: SolveCache | None, controller: str) -> None:
    """Report a plan's :class:`SolveCache` counters, labeled per controller.

    The unlabeled ``p1_memo_*`` / ``flow_warm_*`` counters accumulate
    per-call inside ``solve_caching``; these labeled totals additionally
    attribute the reuse to the controller whose plan owned the cache (the
    benchmark report reads them per policy).
    """
    if cache is None:
        return
    labels = {"controller": controller}
    if cache.hits:
        inc("p1_memo_hits", cache.hits, labels=labels)
    if cache.misses:
        inc("p1_memo_misses", cache.misses, labels=labels)
    if cache.warm_resumes:
        inc("flow_warm_resumes", cache.warm_resumes, labels=labels)
    if cache.warm_bailouts:
        inc("flow_warm_bailouts", cache.warm_bailouts, labels=labels)


def shift_mu(mu: FloatArray, shift: int) -> FloatArray:
    """Shift multipliers ``shift`` slots earlier, padding the tail.

    Used to warm-start the next window: slot ``t`` of the new window
    corresponds to slot ``t + shift`` of the previous one; the final
    ``shift`` slots reuse the last available multiplier as a prior. Works
    on any per-slot trajectory — the controllers also apply it to caching
    trajectories when seeding warm candidates under faults.
    """
    if shift <= 0:
        return mu.copy()
    T = mu.shape[0]
    out = np.empty_like(mu)
    if shift >= T:
        out[:] = mu[-1]
        return out
    out[: T - shift] = mu[shift:]
    out[T - shift :] = mu[-1]
    return out

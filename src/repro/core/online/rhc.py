"""Receding Horizon Control (Algorithm 2).

At each slot ``tau`` RHC solves the window ``[tau, tau + w)`` on predicted
demand, starting from the caches actually installed at ``tau - 1``, and
commits only the first slot's actions (Eqs. 32-33). Because the window
problem is solved by Algorithm 1, the committed caches are integral without
rounding, and Theorem 2 carries over the continuous competitive ratio
``1 + O(1/w)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.online.base import (
    OnlineSolveSettings,
    record_cache_stats,
    shift_mu,
    solve_window,
)
from repro.exceptions import ConfigurationError
from repro.faults.degrade import realize_slot, scenario_states
from repro.obs.recorder import inc, label_scope
from repro.scenario import PolicyPlan, Scenario


@dataclass(frozen=True)
class RHC:
    """Receding Horizon Control with prediction window ``w``.

    Parameters
    ----------
    window:
        Prediction window size ``w`` (the paper's default is 10).
    settings:
        Inner-solver configuration for the per-window Algorithm 1 runs.
    """

    window: int = 10
    settings: OnlineSolveSettings = field(default_factory=OnlineSolveSettings)

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")

    @property
    def name(self) -> str:
        return f"RHC(w={self.window})"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        with label_scope(controller=self.name):
            return self._plan(scenario)

    def _plan(self, scenario: Scenario) -> PolicyPlan:
        T = scenario.horizon
        net = scenario.network
        x = np.zeros((T, net.num_sbs, net.num_items))
        y = np.zeros((T, net.num_classes, net.num_items))
        x_prev = scenario.x_initial
        mu_warm = None
        x_warm = None
        solves = 0
        faulted = scenario.faults is not None and not scenario.faults.is_empty
        states = scenario_states(scenario) if faulted else None
        incremental = self.settings.resolved_incremental()
        cache = self.settings.make_solve_cache()
        for tau in range(T):
            result = solve_window(
                scenario,
                decided_at=tau,
                window_start=tau,
                window=self.window,
                x_prev=x_prev,
                settings=self.settings,
                mu_warm=mu_warm,
                x_warm=x_warm,
                solve_cache=cache,
            )
            solves += 1
            inc("controller_commits", labels={"controller": "RHC"})
            x[tau] = result.x[0]
            y[tau] = result.y[0]
            if faulted:
                # Track the caches actually installed (outage freeze +
                # evict-to-fit) so the next window starts from reality,
                # and seed it with this window's shifted trajectory.
                x_prev = realize_slot(
                    x[tau], x_prev, states.slot(tau), scenario.demand.rates[tau], net
                )
                x_warm = shift_mu(result.x, 1)
            else:
                x_prev = x[tau]
                # Cross-window reuse: the committed trajectory, shifted one
                # slot, seeds the next window as a feasible incumbent.
                if incremental:
                    x_warm = shift_mu(result.x, 1)
            mu_warm = shift_mu(result.mu, 1)
        record_cache_stats(cache, self.name)
        return PolicyPlan(x=x, y=y, solves=solves)

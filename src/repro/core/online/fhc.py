"""Fixed Horizon Control — the building block of CHC and AFHC.

FHC variant ``v`` (one of ``r`` phase-shifted copies) re-plans at the times
``Psi_v = {tau : tau = v (mod r)}`` (Section IV-B): at each solve time it
optimizes the ``w``-slot window on predicted demand from *its own* cache
state and commits the first ``r`` actions. Variants are independent
trajectories; CHC averages them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.horizon import committed_slots, fhc_solve_times
from repro.core.online.base import OnlineSolveSettings, shift_mu, solve_window
from repro.exceptions import ConfigurationError
from repro.faults.degrade import realize_slot, scenario_states
from repro.obs.recorder import inc
from repro.perf.solvecache import SolveCache
from repro.scenario import Scenario
from repro.types import FloatArray


@dataclass(frozen=True)
class FixedHorizonTrajectory:
    """One FHC variant's full trajectory over the horizon.

    Attributes
    ----------
    x, y:
        The variant's committed actions, shapes ``(T, N, K)`` / ``(T, M, K)``.
    solves:
        Number of window optimizations performed.
    """

    x: FloatArray
    y: FloatArray
    solves: int


def run_fhc_variant(
    scenario: Scenario,
    *,
    variant: int,
    window: int,
    commitment: int,
    settings: OnlineSolveSettings,
    solve_cache: SolveCache | None = None,
) -> FixedHorizonTrajectory:
    """Run FHC variant ``v`` with window ``w`` and commitment level ``r``.

    ``solve_cache`` shares incremental re-solve state with the caller (CHC
    passes one cache across all its variants); when omitted, a per-variant
    cache is created if the incremental layer is enabled.
    """
    if not 1 <= commitment <= window:
        raise ConfigurationError(
            f"commitment must be in [1, window={window}], got {commitment}"
        )
    T = scenario.horizon
    net = scenario.network
    x = np.zeros((T, net.num_sbs, net.num_items))
    y = np.zeros((T, net.num_classes, net.num_items))
    x_prev = scenario.x_initial
    mu_warm = None
    x_warm = None
    solves = 0
    faulted = scenario.faults is not None and not scenario.faults.is_empty
    states = scenario_states(scenario) if faulted else None
    incremental = settings.resolved_incremental()
    if solve_cache is None:
        solve_cache = settings.make_solve_cache()
    for tau in fhc_solve_times(variant, commitment, T):
        result = solve_window(
            scenario,
            decided_at=tau,
            window_start=tau,
            window=window,
            x_prev=x_prev,
            settings=settings,
            mu_warm=mu_warm,
            x_warm=x_warm,
            solve_cache=solve_cache,
        )
        solves += 1
        slots = committed_slots(tau, commitment, T)
        inc(
            "controller_commits",
            len(slots),
            labels={"controller": "FHC", "variant": variant},
        )
        for t in slots:
            x[t] = result.x[t - tau]
            y[t] = result.y[t - tau]
        if faulted:
            # Roll the committed block through the physical repairs so the
            # next solve starts from the caches actually installed.
            for t in slots:
                x_prev = realize_slot(
                    x[t], x_prev, states.slot(t), scenario.demand.rates[t], net
                )
            x_warm = shift_mu(result.x, commitment)
        else:
            if len(slots):
                x_prev = x[slots[-1]]
            # Cross-window reuse: this window's trajectory, shifted past
            # the committed block, seeds the variant's next solve.
            if incremental:
                x_warm = shift_mu(result.x, commitment)
        mu_warm = shift_mu(result.mu, commitment)
    return FixedHorizonTrajectory(x=x, y=y, solves=solves)

"""Algorithm 1 — primal-dual decomposition for the joint problem.

The coupling constraint ``y <= x`` (Eq. 3) is relaxed with multipliers
``mu[t, m, k] >= 0`` (Eq. 12). Each outer iteration:

1. solves the caching subproblem ``P1`` (integral, Theorem 1),
2. solves the load-balancing subproblem ``P2`` (strictly convex),
3. updates ``mu`` along the subgradient ``y - x`` (Eq. 17),
4. maintains a certified *lower bound* (the dual value ``P1 + P2``) and a
   feasible *upper bound* (the cost of ``P1``'s caches with the exact
   fixed-cache ``y`` — the repair that makes the primal candidate feasible),

and stops at relative gap ``epsilon`` (the paper uses ``1e-4``) or the
iteration cap — exactly the structure of the paper's Algorithm 1.

Step sizes
----------
The paper's Eq. 16 rule ``delta_l = 1 / (1 + alpha l)`` is dimensionless;
because ``mu`` has the units of marginal cost (hundreds to thousands in the
paper's scenario), the rule is kept but scaled by a unit-correcting factor
measured on the first iteration. The default is the Polyak step
``delta_l = (UB_best - d_l) / ||g_l||^2``, which needs no tuning and
certifies the same bounds; both are available via ``step``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal, Mapping

import numpy as np

from repro.config import RuntimeConfig, resolved_incremental
from repro.core.caching_lp import CachingBackend, solve_caching
from repro.core.load_balancing import solve_p2, solve_y_given_x
from repro.core.problem import JointProblem
from repro.exceptions import ConfigurationError
from repro.network.costs import CostBreakdown
from repro.obs.convergence import ConvergenceTrace
from repro.obs.recorder import emit, observe_quantile
from repro.optim.budget import SolveBudget
from repro.optim.subgradient import dual_ascent_recorder
from repro.perf.executor import Executor, resolve_executor
from repro.perf.solvecache import SolveCache
from repro.perf.timers import StageTimers
from repro.types import DEFAULT_GAP_TOL, FloatArray

StepMode = Literal["polyak", "paper"]


@dataclass(frozen=True)
class PrimalDualResult:
    """Outcome of Algorithm 1.

    Attributes
    ----------
    x:
        Best feasible integral caching trajectory found, shape ``(T, N, K)``.
    y:
        The exact optimal load balancing for ``x``, shape ``(T, M, K)``.
    cost:
        Itemized cost of ``(x, y)`` — the certified upper bound.
    lower_bound:
        Best dual value (a certified lower bound on the optimum).
    gap:
        Relative duality gap ``(UB - LB) / |UB|`` at termination.
    iterations:
        Outer (subgradient) iterations performed.
    converged:
        Whether the gap tolerance was met.
    mu:
        Final multipliers (useful for warm-starting subsequent windows).
    history:
        Per-iteration ``(lower_bound, upper_bound)`` pairs.
    timings:
        Wall-clock seconds per solver stage (``p1``, ``p2``, ``repair``,
        ``total``), from :class:`repro.perf.timers.StageTimers`.
    stopped_by_budget:
        Whether an anytime budget (``max_seconds``) ended the loop before
        convergence; ``(x, y)`` is then the best *feasible* pair found so
        far and the bounds/gap are still certified.
    convergence:
        Per-iteration :class:`repro.obs.convergence.ConvergenceTrace` with
        columns ``gap``, ``lower_bound``, ``upper_bound``, ``step``,
        ``subgrad_norm`` — the dual-ascent diagnostics the paper plots.
    """

    x: FloatArray
    y: FloatArray
    cost: CostBreakdown
    lower_bound: float
    gap: float
    iterations: int
    converged: bool
    mu: FloatArray
    history: tuple[tuple[float, float], ...]
    timings: Mapping[str, float] = field(default_factory=dict)
    stopped_by_budget: bool = False
    convergence: ConvergenceTrace | None = None

    @property
    def upper_bound(self) -> float:
        return self.cost.total


def solve_primal_dual(
    problem: JointProblem,
    *,
    max_iter: int = 150,
    gap_tol: float = DEFAULT_GAP_TOL,
    step: StepMode = "polyak",
    alpha: float = 0.05,
    polyak_relax: float = 1.0,
    caching_backend: CachingBackend = "flow",
    mu0: FloatArray | None = None,
    ub_patience: int | None = None,
    initial_candidates: tuple[FloatArray, ...] | None = None,
    executor: Executor | str | None = None,
    max_seconds: float | None = None,
    config: RuntimeConfig | None = None,
    solve_cache: SolveCache | None = None,
) -> PrimalDualResult:
    """Run Algorithm 1 on ``problem``.

    Parameters
    ----------
    max_iter:
        Cap on outer subgradient iterations (the paper's ``L``).
    gap_tol:
        Relative duality-gap stopping tolerance (the paper's ``epsilon``).
    step:
        ``"polyak"`` (default) or ``"paper"`` (Eq. 16 with measured scale).
    alpha:
        Decay parameter of the paper's step rule.
    polyak_relax:
        Relaxation factor ``theta`` in the Polyak step.
    mu0:
        Warm-start multipliers, e.g. from the previous receding-horizon
        window; dramatically cuts iterations for consecutive solves.
    ub_patience:
        Optional early stop: end when the best feasible cost has not
        improved for this many iterations. Used by the online controllers,
        where the feasible trajectory (not the dual certificate) is what
        gets committed.
    initial_candidates:
        Optional heuristic caching trajectories (shape ``(T, N, K)``,
        integral, capacity-feasible) evaluated up-front as incumbent upper
        bounds. Guarantees the returned solution is at least as good as
        every supplied candidate.
    executor:
        Parallel-execution strategy for the per-SBS ``P1`` solves — an
        :class:`repro.perf.Executor`, a spec string (``"process:4"``), or
        ``None`` to consult ``REPRO_WORKERS`` / ``REPRO_EXECUTOR``.
        Results are bit-identical across strategies.
    max_seconds:
        Anytime wall-time cap. Checked after each completed outer
        iteration, so at least one feasible ``(x, y)`` pair always exists
        when the cap fires; the result then carries
        ``stopped_by_budget=True``. The same clock is shared with the
        FISTA fallback inside ``P2`` so a single slow subproblem cannot
        blow through the cap.
    config:
        Runtime knobs (:class:`repro.config.RuntimeConfig`) consulted when
        ``executor`` / backend choices are not given explicitly; falls back
        to the deprecated environment variables.
    solve_cache:
        Incremental re-solve state (:class:`repro.perf.solvecache.SolveCache`)
        shared with related solves — the online controllers pass one cache
        across their whole window sequence. When omitted and the
        incremental layer is enabled (``RuntimeConfig(incremental=...)`` /
        ``REPRO_INCREMENTAL``; default on), a private per-call cache is
        created so within-solve reuse still applies. A cache also enables
        the *best-dual recovery* step: when the loop stops without
        converging, the caching trajectory at the best dual point is
        re-derived (free, via the memo) and evaluated as one extra
        feasible candidate.
    """
    if max_iter <= 0:
        raise ConfigurationError(f"max_iter must be positive, got {max_iter}")
    if not 0 < polyak_relax <= 2:
        raise ConfigurationError(f"polyak_relax must be in (0, 2], got {polyak_relax}")

    sbs_of = problem.network.class_sbs
    mu = np.zeros(problem.y_shape) if mu0 is None else np.maximum(mu0, 0.0)
    if mu.shape != problem.y_shape:
        raise ConfigurationError(f"mu0 shape {mu.shape} != {problem.y_shape}")
    ex = resolve_executor(executor, config=config)
    if solve_cache is None and resolved_incremental(config):
        solve_cache = SolveCache()
    timers = StageTimers()
    solve_started = time.perf_counter()
    budget = SolveBudget(max_seconds=max_seconds) if max_seconds is not None else None
    stopped_by_budget = False
    stopped_by_patience = False

    lower_bound = -np.inf
    best_cost: CostBreakdown | None = None
    best_x: FloatArray | None = None
    best_y: FloatArray | None = None
    history: list[tuple[float, float]] = []
    paper_scale: float | None = None
    y_warm: FloatArray | None = None
    gap = np.inf
    iterations = 0
    converged = False
    relax = polyak_relax
    since_lb_improved = 0
    since_ub_improved = 0
    repair_cache: dict[bytes, tuple[FloatArray, CostBreakdown]] = {}
    convergence = dual_ascent_recorder()

    for candidate_x in initial_candidates or ():
        cx = np.where(np.asarray(candidate_x, dtype=np.float64) > 0.5, 1.0, 0.0)
        if cx.shape != problem.x_shape:
            raise ConfigurationError(
                f"candidate shape {cx.shape} != {problem.x_shape}"
            )
        with timers.stage("repair"):
            cy = solve_y_given_x(problem, cx, config=config).y
        c_cost = problem.cost(cx, cy)
        repair_cache[cx.tobytes()] = (cy, c_cost)
        if best_cost is None or c_cost.total < best_cost.total:
            best_cost, best_x, best_y = c_cost, cx, cy

    mu_best: FloatArray | None = None
    mu_solved: FloatArray | None = None
    for iteration in range(1, max_iter + 1):
        iterations = iteration
        mu_solved = mu
        reanchor = False
        with timers.stage("p1"):
            caching = solve_caching(
                problem.network,
                mu,
                problem.x_initial,
                backend=caching_backend,
                executor=ex,
                config=config,
                cache=solve_cache,
            )
        with timers.stage("p2"):
            balancing = solve_p2(problem, mu, y0=y_warm, budget=budget, config=config)
        y_warm = balancing.y
        dual_value = caching.objective + balancing.objective
        # At the -inf sentinel the relative-improvement margin is nan
        # (-inf + 1e-12*inf), which compares False against everything and
        # would pin the bound at -inf forever; accept any finite dual first.
        if not np.isfinite(lower_bound) or dual_value > lower_bound + 1e-12 * max(
            1.0, abs(lower_bound)
        ):
            lower_bound = dual_value
            # The subgradient update rebinds ``mu`` to a fresh array, so
            # aliasing (no copy) is safe here.
            mu_best = mu
            since_lb_improved = 0
        else:
            since_lb_improved += 1
            # The Polyak step overshoots when the dual stalls; relax it.
            if since_lb_improved >= 5:
                relax = max(relax * 0.5, 0.05)
                since_lb_improved = 0
                # With a memo, also re-anchor the ascent at the best dual
                # point seen: the gradient step is skipped this iteration,
                # so the next one re-solves ``mu_best`` byte-identically —
                # ``P1`` comes straight from the memo — and the relaxed
                # ascent continues from the best point instead of wherever
                # the overshoot drifted.
                if solve_cache is not None and mu_best is not None and mu_best is not mu:
                    mu = mu_best
                    reanchor = True

        # Feasible repair: keep P1's caches, re-solve y exactly under them.
        # P1 often revisits the same caches as mu oscillates, so repairs
        # are memoized on the cache trajectory.
        x_key = caching.x.tobytes()
        cached = repair_cache.get(x_key)
        if cached is None:
            with timers.stage("repair"):
                repaired_y = solve_y_given_x(problem, caching.x, config=config).y
            candidate = problem.cost(caching.x, repaired_y)
            repair_cache[x_key] = (repaired_y, candidate)
        else:
            repaired_y, candidate = cached
        if best_cost is None or candidate.total < best_cost.total - 1e-12:
            best_cost = candidate
            best_x = caching.x
            best_y = repaired_y
            since_ub_improved = 0
        else:
            since_ub_improved += 1

        history.append((lower_bound, best_cost.total))
        denom = max(abs(best_cost.total), 1e-12)
        gap = (best_cost.total - lower_bound) / denom

        subgrad = balancing.y - caching.x[:, sbs_of, :]
        norm_sq = float(np.sum(subgrad**2))
        delta = 0.0
        stop = False
        if gap <= gap_tol:
            converged = True
            stop = True
        elif ub_patience is not None and since_ub_improved >= ub_patience:
            stopped_by_patience = True
            stop = True
        elif budget is not None and budget.exhausted(iteration):
            stopped_by_budget = True
            stop = True
        elif norm_sq <= 1e-18:
            # y <= x already satisfied everywhere: the candidate is optimal
            # for the current mu and the repair certified it.
            converged = gap <= gap_tol
            stop = True
        elif reanchor:
            pass  # mu was rebound to mu_best above; re-solve it next
        else:
            surplus = max(best_cost.total - dual_value, 0.0)
            if step == "polyak":
                delta = relax * surplus / norm_sq
            elif step == "paper":
                if paper_scale is None:
                    paper_scale = surplus / norm_sq if surplus > 0 else 1.0
                delta = paper_scale / (1.0 + alpha * iteration)
            else:
                raise ConfigurationError(f"unknown step mode {step!r}")
            mu = np.maximum(mu + delta * subgrad, 0.0)
        convergence.record(
            lower_bound=lower_bound,
            upper_bound=best_cost.total,
            gap=gap,
            step=delta,
            subgrad_norm=float(np.sqrt(norm_sq)),
        )
        if stop:
            break

    assert best_cost is not None and best_x is not None and best_y is not None

    # Best-dual recovery: a loop that stopped without converging (patience
    # or iteration cap) last solved ``P1`` at a *worse* dual point than the
    # best one seen. Re-deriving the caching trajectory at ``mu_best`` is
    # free with the memo (its per-SBS subproblems were solved when the best
    # dual was recorded) and evaluating it can only improve the committed
    # feasible candidate — the classic primal-recovery-at-best-dual step.
    if (
        solve_cache is not None
        and not converged
        and not stopped_by_budget
        and mu_best is not None
        and mu_solved is not None
        and mu_best is not mu_solved
        and mu_best.tobytes() != mu_solved.tobytes()
    ):
        with timers.stage("p1"):
            recovered = solve_caching(
                problem.network,
                mu_best,
                problem.x_initial,
                backend=caching_backend,
                executor=ex,
                config=config,
                cache=solve_cache,
            )
        x_key = recovered.x.tobytes()
        cached = repair_cache.get(x_key)
        if cached is None:
            with timers.stage("repair"):
                repaired_y = solve_y_given_x(problem, recovered.x, config=config).y
            candidate = problem.cost(recovered.x, repaired_y)
            repair_cache[x_key] = (repaired_y, candidate)
        else:
            repaired_y, candidate = cached
        if candidate.total < best_cost.total - 1e-12:
            best_cost, best_x, best_y = candidate, recovered.x, repaired_y
            gap = (best_cost.total - lower_bound) / max(abs(best_cost.total), 1e-12)
            converged = gap <= gap_tol

    timers.add("total", time.perf_counter() - solve_started)
    timings = timers.as_dict()
    emit(
        "solve_done",
        iterations=iterations,
        gap=float(gap),
        lower_bound=float(lower_bound),
        upper_bound=float(best_cost.total),
        converged=converged,
        stopped_by_budget=stopped_by_budget,
        stopped_by_patience=stopped_by_patience,
    )
    # Streaming sketches over *deterministic* solve outcomes only (never
    # wall-clock), so merged registries stay byte-identical across
    # executors (tests/test_obs_traces.py).
    observe_quantile("solve_gap", float(gap))
    observe_quantile("solve_iterations", float(iterations))
    if stopped_by_budget:
        emit(
            "budget_exhausted",
            iterations=iterations,
            max_seconds=max_seconds,
        )
    return PrimalDualResult(
        x=best_x,
        y=best_y,
        cost=best_cost,
        lower_bound=lower_bound,
        gap=gap,
        iterations=iterations,
        converged=converged,
        mu=mu,
        history=tuple(history),
        timings=timings,
        stopped_by_budget=stopped_by_budget,
        convergence=convergence.freeze(),
    )

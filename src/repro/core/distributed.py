"""Distributed (per-SBS) solving — the paper's future-work direction.

The conclusion of the paper announces "distributed algorithms" as future
work. For the cost model of Section II the joint problem is *exactly*
separable across SBSs: each SBS owns its cache variables, its MU classes'
load-balancing variables, its capacity/bandwidth constraints, and its own
additive share of every cost term (Eqs. 5, 6, 8 all sum per SBS). Each SBS
can therefore run Algorithm 1 on its local subproblem with no coordination
at all, and the concatenation of the local solutions solves the global
problem.

This module implements that decomposition: :func:`split_by_sbs` carves a
joint problem into single-SBS problems, :func:`solve_distributed` solves
them independently (as independent SBS controllers would) and merges the
results, and :class:`DistributedOfflineOptimal` wraps it as a policy. The
test suite asserts the merge matches the joint solve — turning the
separability claim into executable proof.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.primal_dual import PrimalDualResult, solve_primal_dual
from repro.core.problem import JointProblem
from repro.network.costs import CostBreakdown
from repro.network.topology import Network
from repro.perf.executor import Executor, resolve_executor
from repro.scenario import PolicyPlan, Scenario
from repro.types import DEFAULT_GAP_TOL, FloatArray, IntArray


def split_by_sbs(problem: JointProblem) -> list[tuple[JointProblem, IntArray]]:
    """Split a joint problem into independent single-SBS problems.

    Returns one ``(sub_problem, class_indices)`` pair per SBS, where
    ``class_indices`` maps the sub-problem's class axis back into the joint
    problem's.
    """
    net = problem.network
    out: list[tuple[JointProblem, IntArray]] = []
    for n in range(net.num_sbs):
        classes = net.classes_of_sbs[n]
        sub_network = _single_sbs_network(net, n)
        sub = JointProblem(
            network=sub_network,
            demand=problem.demand[:, classes, :],
            x_initial=problem.x_initial[n : n + 1],
            bs_cost=problem.bs_cost,
            sbs_cost=problem.sbs_cost,
        )
        out.append((sub, classes))
    return out


def _single_sbs_network(network: Network, n: int) -> Network:
    """A one-SBS network containing SBS ``n`` and its classes, re-indexed."""
    from repro.network.stations import SmallBaseStation
    from repro.network.users import MUClass

    sbs = network.sbss[n]
    classes = network.classes_of_sbs[n]
    return Network(
        catalog=network.catalog,
        sbss=(
            SmallBaseStation(
                0, sbs.cache_size, sbs.bandwidth, sbs.replacement_cost
            ),
        ),
        mu_classes=tuple(
            MUClass(i, 0, network.mu_classes[m].omega_bs, network.mu_classes[m].omega_sbs)
            for i, m in enumerate(classes)
        ),
        bs=network.bs,
    )


@dataclass(frozen=True)
class DistributedResult:
    """Merged outcome of the independent per-SBS solves.

    Attributes mirror :class:`~repro.core.primal_dual.PrimalDualResult`
    where meaningful; ``per_sbs`` holds the local results.
    """

    x: FloatArray
    y: FloatArray
    cost: CostBreakdown
    lower_bound: float
    gap: float
    per_sbs: tuple[PrimalDualResult, ...]

    @property
    def upper_bound(self) -> float:
        return self.cost.total


def _solve_sbs_subproblem(
    task: tuple[JointProblem, int, float, int | None],
) -> PrimalDualResult:
    """One SBS controller's local Algorithm 1 run (picklable task)."""
    sub, max_iter, gap_tol, ub_patience = task
    return solve_primal_dual(
        sub, max_iter=max_iter, gap_tol=gap_tol, ub_patience=ub_patience
    )


def solve_distributed(
    problem: JointProblem,
    *,
    max_iter: int = 150,
    gap_tol: float = DEFAULT_GAP_TOL,
    ub_patience: int | None = 25,
    executor: Executor | str | None = None,
) -> DistributedResult:
    """Solve each SBS's subproblem independently and merge.

    Every SBS runs Algorithm 1 locally; nothing is exchanged. The merged
    bounds are sums of the local bounds (valid because the objective and
    constraints are separable). With an ``executor`` (or ``REPRO_WORKERS``
    set) the independent controllers run in parallel — they would run on
    separate machines in a real deployment — and the merge happens in
    fixed SBS order, so the result is bit-identical to the serial path.
    """
    net = problem.network
    x = np.zeros(problem.x_shape)
    y = np.zeros(problem.y_shape)
    total_cost = CostBreakdown.zero()
    lower = 0.0
    parts = split_by_sbs(problem)
    tasks = [(sub, max_iter, gap_tol, ub_patience) for sub, _ in parts]
    ex = resolve_executor(executor)
    if ex.workers > 1 and len(tasks) > 1:
        locals_ = ex.map(_solve_sbs_subproblem, tasks)
    else:
        locals_ = [_solve_sbs_subproblem(task) for task in tasks]
    for n, (result, (_, classes)) in enumerate(zip(locals_, parts)):
        x[:, n, :] = result.x[:, 0, :]
        y[:, classes, :] = result.y
        total_cost = total_cost + result.cost
        lower += result.lower_bound
    gap = (total_cost.total - lower) / max(abs(total_cost.total), 1e-12)
    return DistributedResult(
        x=x,
        y=y,
        cost=total_cost,
        lower_bound=lower,
        gap=gap,
        per_sbs=tuple(locals_),
    )


@dataclass(frozen=True)
class DistributedOfflineOptimal:
    """Offline optimum computed by independent per-SBS controllers.

    ``executor`` is a spec string (e.g. ``"process:4"``) rather than an
    :class:`~repro.perf.Executor` instance so the policy stays picklable
    for sweep-level fan-out.
    """

    max_iter: int = 150
    gap_tol: float = DEFAULT_GAP_TOL
    ub_patience: int | None = 25
    executor: str | None = None

    @property
    def name(self) -> str:
        return "DistributedOffline"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        result = solve_distributed(
            scenario.problem(),
            max_iter=self.max_iter,
            gap_tol=self.gap_tol,
            ub_patience=self.ub_patience,
            executor=self.executor,
        )
        return PolicyPlan(x=result.x, y=result.y, solves=len(result.per_sbs))

"""The paper's contribution: joint caching + load balancing optimization.

- :mod:`repro.core.problem` — the joint optimization problem (Eq. 9).
- :mod:`repro.core.caching_lp` — subproblem ``P1`` (Eq. 18) with exact
  integral solutions (Theorem 1) via min-cost flow or LP.
- :mod:`repro.core.load_balancing` — subproblem ``P2`` (Eq. 19) and the
  exact load-balancing oracle for fixed caches.
- :mod:`repro.core.primal_dual` — Algorithm 1 (offline primal-dual).
- :mod:`repro.core.offline` — the offline optimal policy wrapper.
- :mod:`repro.core.rounding` — the CHC rounding policy (Theorem 3).
- :mod:`repro.core.online` — RHC / AFHC / CHC controllers (Section IV).
- :mod:`repro.core.exhaustive` — brute-force oracle for tiny instances.
"""

from repro.core.problem import JointProblem
from repro.core.primal_dual import PrimalDualResult, solve_primal_dual
from repro.core.rounding import optimal_rounding_threshold, round_caching

__all__ = [
    "JointProblem",
    "PrimalDualResult",
    "optimal_rounding_threshold",
    "round_caching",
    "solve_primal_dual",
]

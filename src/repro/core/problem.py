"""The joint caching + load-balancing problem over a (window of a) horizon.

:class:`JointProblem` bundles everything Eq. 9 needs: the network, the
demand over the slots being optimized, the cache state entering the first
slot, and the operating-cost shapes. It provides cost evaluation and
feasibility checking used by every algorithm in the library, so all
policies are scored by exactly the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.network.costs import (
    CostBreakdown,
    OperatingCost,
    QuadraticOperatingCost,
    total_cost,
)
from repro.network.topology import Network
from repro.types import FloatArray, INTEGRALITY_ATOL, is_binary


@dataclass(frozen=True)
class JointProblem:
    """One instance of the paper's optimization (Eq. 9) over ``T`` slots.

    Parameters
    ----------
    network:
        The 5G network (SBS capacities, bandwidths, weights, betas).
    demand:
        Mean arrival rates for the slots being optimized, shape ``(T, M, K)``.
        For online controllers this is a *predicted* window.
    x_initial:
        Cache state entering slot 0, shape ``(N, K)``; the replacement cost
        of slot 0 is charged against it. Defaults to empty caches.
    bs_cost, sbs_cost:
        Operating-cost shapes (default: the paper's quadratics, Eqs. 5-6).
    """

    network: Network
    demand: FloatArray
    x_initial: FloatArray = field(default=None)  # type: ignore[assignment]
    bs_cost: OperatingCost = field(default_factory=QuadraticOperatingCost)
    sbs_cost: OperatingCost = field(default_factory=QuadraticOperatingCost)

    def __post_init__(self) -> None:
        demand = np.ascontiguousarray(self.demand, dtype=np.float64)
        if demand.ndim != 3:
            raise DimensionMismatchError(
                f"demand must have shape (T, M, K), got {demand.shape}"
            )
        expected = (self.network.num_classes, self.network.num_items)
        if demand.shape[1:] != expected:
            raise DimensionMismatchError(
                f"demand slots have shape {demand.shape[1:]}, expected (M, K) = {expected}"
            )
        if np.any(demand < 0):
            raise ConfigurationError("demand must be non-negative")
        object.__setattr__(self, "demand", demand)

        if self.x_initial is None:
            x0 = np.zeros((self.network.num_sbs, self.network.num_items))
        else:
            x0 = np.ascontiguousarray(self.x_initial, dtype=np.float64)
            if x0.shape != (self.network.num_sbs, self.network.num_items):
                raise DimensionMismatchError(
                    f"x_initial has shape {x0.shape}, expected (N, K)"
                )
            if not is_binary(x0):
                raise ConfigurationError("x_initial must be a 0/1 matrix")
        object.__setattr__(self, "x_initial", x0)

    # --------------------------------------------------------------- shapes

    @property
    def horizon(self) -> int:
        return self.demand.shape[0]

    @property
    def x_shape(self) -> tuple[int, int, int]:
        """Shape of a caching trajectory: ``(T, N, K)``."""
        return (self.horizon, self.network.num_sbs, self.network.num_items)

    @property
    def y_shape(self) -> tuple[int, int, int]:
        """Shape of a load-balancing trajectory: ``(T, M, K)``."""
        return (self.horizon, self.network.num_classes, self.network.num_items)

    # ----------------------------------------------------------- evaluation

    def cost(self, x: FloatArray, y: FloatArray) -> CostBreakdown:
        """Itemized objective value of a trajectory (Eq. 9)."""
        return total_cost(
            self.network,
            self.demand,
            x,
            y,
            x_initial=self.x_initial,
            bs_cost=self.bs_cost,
            sbs_cost=self.sbs_cost,
        )

    def check_feasible(
        self,
        x: FloatArray,
        y: FloatArray,
        *,
        atol: float = 1e-6,
        require_integral_x: bool = True,
    ) -> None:
        """Raise :class:`ConfigurationError` if ``(x, y)`` violates any constraint.

        Checks constraints (1), (2), (3), (10), (11) of the paper.
        """
        if x.shape != self.x_shape:
            raise DimensionMismatchError(f"x shape {x.shape} != {self.x_shape}")
        if y.shape != self.y_shape:
            raise DimensionMismatchError(f"y shape {y.shape} != {self.y_shape}")
        if require_integral_x and not is_binary(x, atol=max(atol, INTEGRALITY_ATOL)):
            raise ConfigurationError("x is not integral")
        if np.any(x < -atol) or np.any(x > 1 + atol):
            raise ConfigurationError("x outside [0, 1]")
        if np.any(y < -atol) or np.any(y > 1 + atol):
            raise ConfigurationError("y outside [0, 1]")
        caps = self.network.cache_sizes
        used = x.sum(axis=2)
        if np.any(used > caps[None, :] + atol):
            worst = float((used - caps[None, :]).max())
            raise ConfigurationError(f"cache capacity exceeded by {worst:.3g}")
        # Constraint (3): y[m, k] <= x[sbs(m), k].
        x_of_class = x[:, self.network.class_sbs, :]
        if np.any(y > x_of_class + atol):
            raise ConfigurationError("coupling constraint y <= x violated")
        # Constraint (2): per-SBS bandwidth.
        load = (self.demand * y).sum(axis=2)  # (T, M)
        per_sbs = np.zeros((self.horizon, self.network.num_sbs))
        np.add.at(per_sbs, (slice(None), self.network.class_sbs), load)
        tol = atol * np.maximum(1.0, self.network.bandwidths)
        if np.any(per_sbs > self.network.bandwidths[None, :] + tol[None, :]):
            worst = float((per_sbs - self.network.bandwidths[None, :]).max())
            raise ConfigurationError(f"bandwidth exceeded by {worst:.3g}")

    # ------------------------------------------------------------ windowing

    def window(self, start: int, length: int, x_initial: FloatArray) -> "JointProblem":
        """Sub-problem over slots ``start..start+length-1`` with a new initial cache.

        Slots past the end of the demand are zero-padded, matching the
        paper's convention ``Lambda^t = 0`` for ``t > T``.
        """
        if length <= 0:
            raise ConfigurationError(f"window length must be positive, got {length}")
        T = self.horizon
        padded = np.zeros((length, *self.demand.shape[1:]))
        lo = max(start, 0)
        hi = min(start + length, T)
        if lo < hi:
            padded[lo - start : hi - start] = self.demand[lo:hi]
        return replace(self, demand=padded, x_initial=x_initial)

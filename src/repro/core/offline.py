"""The offline optimal policy (Section III).

Runs Algorithm 1 over the entire horizon with the *true* demand — the
paper's "unrealistic lower bound" baseline that every online algorithm is
compared against in Section V.

Two engineering additions harden the primal recovery (the dual bounds are
unaffected):

- **incumbent seeding**: the per-slot volume-top-C (LRFU) and static
  horizon-top-C trajectories are evaluated up-front, so the returned
  solution provably never loses to those heuristics;
- **local-search polish** (:mod:`repro.core.polish`): single-item
  swap/insert/evict moves on the best trajectory, closing the small primal
  gaps a subgradient method can leave on weakly coupled instances.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.caching_lp import CachingBackend
from repro.core.polish import polish_caching
from repro.core.primal_dual import PrimalDualResult, solve_primal_dual
from repro.core.problem import JointProblem
from repro.scenario import PolicyPlan, Scenario
from repro.types import DEFAULT_GAP_TOL, FloatArray


def _volume_top_c(problem: JointProblem, *, static: bool) -> FloatArray:
    """Heuristic trajectory: cache the top-``C_n`` items by demand volume.

    ``static=True`` ranks by horizon-total volume (one cache for all
    slots); ``static=False`` re-ranks every slot (the LRFU trajectory).
    """
    net = problem.network
    T = problem.horizon
    x = np.zeros(problem.x_shape)
    for n in range(net.num_sbs):
        classes = net.classes_of_sbs[n]
        cap = int(net.cache_sizes[n])
        if cap == 0:
            continue
        volume = problem.demand[:, classes, :].sum(axis=1)  # (T, K)
        if static:
            score = np.broadcast_to(volume.sum(axis=0), (T, net.num_items))
        else:
            score = volume
        top = np.argsort(-score, axis=1, kind="stable")[:, :cap]
        # One scatter for all slots: keep only the positive-volume picks.
        positive = np.take_along_axis(score, top, axis=1) > 0
        tt, jj = np.nonzero(positive)
        x[tt, n, top[tt, jj]] = 1.0
    return x


@dataclass(frozen=True)
class OfflineOptimal:
    """Offline optimal solution via the primal-dual algorithm.

    Parameters
    ----------
    max_iter:
        Outer subgradient iteration cap.
    gap_tol:
        Relative duality-gap tolerance (paper's ``epsilon = 1e-4``).
    caching_backend:
        ``P1`` backend (``"auto"`` default; ``"lp"`` for cross-checks).
    ub_patience:
        Optional early stop when the feasible cost stops improving; set to
        ``None`` when a tight dual certificate is the point of the run.
    polish:
        Apply the local-search polish to the final trajectory.
    seed_candidates:
        Seed the search with the LRFU and static top-C trajectories.
    """

    max_iter: int = 200
    gap_tol: float = DEFAULT_GAP_TOL
    caching_backend: CachingBackend = "auto"
    ub_patience: int | None = 25
    polish: bool = True
    seed_candidates: bool = True

    @property
    def name(self) -> str:
        return "Offline"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        result = self.solve(scenario)
        return PolicyPlan(x=result.x, y=result.y, solves=result.iterations)

    def solve(self, scenario: Scenario) -> PrimalDualResult:
        """Run Algorithm 1 (plus seeding/polish) and return the full result."""
        problem = scenario.problem()
        candidates: tuple[FloatArray, ...] | None = None
        if self.seed_candidates:
            candidates = (
                _volume_top_c(problem, static=False),
                _volume_top_c(problem, static=True),
            )
        result = solve_primal_dual(
            problem,
            max_iter=self.max_iter,
            gap_tol=self.gap_tol,
            caching_backend=self.caching_backend,
            ub_patience=self.ub_patience,
            initial_candidates=candidates,
        )
        if not self.polish:
            return result
        x, y, cost = polish_caching(problem, result.x)
        if cost.total >= result.cost.total - 1e-12:
            return result
        denom = max(abs(cost.total), 1e-12)
        return replace(
            result,
            x=x,
            y=y,
            cost=cost,
            gap=(cost.total - result.lower_bound) / denom,
        )

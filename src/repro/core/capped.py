"""Exact cap-constrained ``P1`` kernel — negative-cycle canceling.

The batched relaxation pass (:func:`repro.core.caching_lp._relaxed_dp_stack`)
accepts a row only when the *cardinality-relaxed* optimum happens to satisfy
the per-slot cache cap. On the paper's uniform-cost scenarios that premise
collapses: the relaxed optimum wants to cache every profitable item at once,
the cap binds in (nearly) every slot, and every row storms to the per-SBS
min-cost-flow backend — 1278 of 1284 memo misses on the headline quick
workload, each paying a Python-heap Dijkstra. This module solves those
cap-bound rows exactly, vectorized over the whole miss stack.

Method
------
Start from the canonical **prefix-greedy** candidate: each item's best prefix
value is ``max_e sum_{t<e} c[t,k] - beta * [k not initially cached]``; take
the top-``cap`` strictly-profitable items (stable order), each held on its own
best prefix (smallest argmax — leave as early as possible, matching the
relaxation pass's prefer-uncached tie discipline). The candidate is a feasible
integral flow of the caching network (:func:`_build_flow_template`'s
topology). By flow theory a feasible flow is minimum-cost **iff its residual
graph admits no negative-cost cycle**, so:

1. **Check** (batched, no parent tracking): label-correcting Bellman sweeps
   over the residual graph — one forward and one backward pass over the
   horizon per sweep pair, all rows at once. Labels start at zero (the
   implicit super-source) and only decrease; a row whose labels reach a fixed
   point has *no* improving residual cycle and its candidate is accepted as
   exactly optimal.
2. **Cancel** (per row, rare): a row still improving at the sweep budget
   contains a negative cycle. Re-run its sweeps with parent pointers and the
   float-band update gate, walk the pointers into the cycle, flip the hold
   arcs it traverses (each toggles one ``x[t, k]``), and go back to step 1.

On the captured headline fallback storm the candidate is already optimal for
86% of rows and no row needs more than four cancel rounds.

Exactness and floats
--------------------
An accepted row is a flow with no strictly-improving residual relaxation under
float arithmetic — the same epistemic class as the min-cost-flow backend's own
optimality condition (both compare float path costs). The cancel phase gates
updates by the relaxation pass's danger band ``16 * eps * max(T, 4) * scale``
and accepts a residual cycle whose true gain is within the band as a tie, so
sub-band float ambiguity never drives a flip. On all 1278 captured storm rows
the kernel's objective equals the flow backend's bitwise.

Every elementwise operation here is independent of the stack size ``B``
(reductions run over items and the horizon only), so a ``B = 1`` call made by
a per-SBS backend produces bitwise the row a stacked call would — the same
shared-kernel property the relaxation pass maintains, and the reason the
batched pass and the per-SBS fallbacks stay cost-identical under the
``batched_ties`` A/B.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

__all__ = ["capped_cancel_stack"]

_EPS = float(np.finfo(np.float64).eps)
_INF = float("inf")

#: Cancel rounds before a row is given up to the per-SBS backends. The
#: captured storm needs at most 4; each round removes one negative cycle, so
#: hitting this bound means the candidate was unusually far from optimal.
MAX_ROUNDS = 10


def _detect_pairs(T: int) -> int:
    """Sweep-pair budget for the batched convergence check.

    A forward+backward pair propagates label decreases across the whole
    horizon in each direction, so fixed points arrive in a handful of pairs
    (3–4 on the captured storm). A row still changing here is *routed* to
    the cancel phase, never rejected, so the budget is a routing heuristic:
    small enough that cycle rows don't burn sweeps proving the obvious,
    large enough that legitimate fixed points land within it.
    """
    return 8 + T // 8


def _cancel_pairs(T: int) -> int:
    """Sweep-pair budget for the parent-tracked cancel phase.

    Rarely reached: the cycle walk is attempted every pair once labels can
    have wrapped an improving cycle, and typically succeeds within two or
    three pairs.
    """
    return 2 * T + 10


def _prefix_greedy_stack(
    C: FloatArray, beta: FloatArray, X0: FloatArray, caps: FloatArray
) -> FloatArray:
    """Canonical feasible candidate: top-``cap`` items on their best prefix.

    Prefix intervals (enter at ``t = 0``) dominate for the storm's workload
    shape, but any feasible trajectory is a valid starting flow — the cancel
    rounds repair whatever optimality the candidate lacks.
    """
    B, T, K = C.shape
    vals = np.cumsum(C, axis=1) - np.where(X0 > 0.5, 0.0, beta[:, None])[:, None, :]
    best = vals.max(axis=1)
    e_best = vals.argmax(axis=1) + 1  # smallest argmax -> leave early
    order = np.argsort(-best, axis=1, kind="stable")
    rank = np.empty_like(order)
    np.put_along_axis(rank, order, np.arange(K)[None, :], axis=1)
    take = (rank < np.asarray(caps)[:, None]) & (best > 0.0)
    x = (np.arange(T)[None, :, None] < e_best[:, None, :]) & take[:, None, :]
    return x.astype(np.float64)


def _residual_masks(
    x: FloatArray, X0: FloatArray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Arc-usage masks of a trajectory stack: on / enter / continue / exit.

    ``ent[:, 0]`` is ``on[:, 0]`` — the ``t = 0`` fetch arc carries every
    initially-held slot (at zero cost for ``x0`` items), mirroring the flow
    template's topology.
    """
    on = x > 0.5
    prev = np.concatenate([X0[:, None, :] > 0.5, on[:, :-1]], axis=1)
    ent = on & ~prev
    ent[:, 0] = on[:, 0]
    nxt = np.concatenate([on[:, 1:], np.zeros_like(on[:, :1])], axis=1)
    cont = on & nxt
    exi = on & ~nxt
    return on, ent, cont, exi


def _bellman_converged(
    C: FloatArray,
    fetch: FloatArray,
    on: np.ndarray,
    ent: np.ndarray,
    cont: np.ndarray,
    exi: np.ndarray,
    counts: np.ndarray,
    caps: FloatArray,
    tol: FloatArray,
    max_pairs: int,
) -> np.ndarray:
    """Which rows' residual graphs admit no improving cycle (batched).

    Residual arc costs are pre-masked with ``+inf`` where an arc is absent
    and pre-shifted by each row's float danger band ``tol``, so every
    relaxation is one fused add plus one in-place minimum and labels for
    all ``B`` rows advance together. The shift makes sub-band residual
    slivers (float-noise "cycles" of vanishing gain) non-improving — they
    are ties, and damping them is what makes fixed points arrive in a
    handful of sweep pairs — while a genuinely improving cycle's gain
    dwarfs its accumulated shift. Returns the ``(B,)`` converged mask: a
    row that stopped changing is at a fixed point (its updates read only
    its own slices, so it can never change again) and its candidate is
    optimal within the band; a row still changing at the budget holds an
    improving cycle for the cancel phase to extract and re-judge against
    the unshifted costs.
    """
    B, T, K = C.shape
    tb = np.asarray(tol)[:, None]
    t3 = tb[:, :, None]
    a_fetch = np.where(ent, _INF, fetch) + t3  # hub(t) -> in(t,k): pay fetch
    a_fetchr = np.where(ent, -fetch, _INF) + t3  # in(t,k) -> hub(t): refund
    a_add = np.where(on, _INF, -C) + t3  # in -> out: start holding, gain c
    a_drop = np.where(on, C, _INF) + t3  # out -> in: stop holding
    g_cf = np.where(cont, _INF, 0.0) + t3  # out(t)  -> in(t+1)
    g_cr = np.where(cont, 0.0, _INF) + t3  # in(t+1) -> out(t)
    g_ef = np.where(exi, _INF, 0.0) + t3  # out(t)  -> hub(t+1)
    g_er = np.where(exi, 0.0, _INF) + t3  # hub(t+1) -> out(t)
    h_f = np.where(counts > 0, 0.0, _INF) + tb  # hub chain forward
    h_r = np.where(counts < np.asarray(caps)[:, None], 0.0, _INF) + tb  # back

    d_hub = np.zeros((B, T + 1))
    d_in = np.zeros((B, T, K))
    d_out = np.zeros((B, T, K))
    changed = np.ones(B, dtype=bool)
    for _ in range(max_pairs):
        s_hub = d_hub.copy()
        s_in = d_in.copy()
        s_out = d_out.copy()
        for t in range(T):
            cin = d_hub[:, t, None] + a_fetch[:, t]
            if t:
                cin = np.minimum(cin, d_out[:, t - 1] + g_cf[:, t - 1])
            dit = d_in[:, t]
            np.minimum(dit, cin, out=dit)
            dot = d_out[:, t]
            np.minimum(dot, dit + a_add[:, t], out=dot)
            np.minimum(dit, dot + a_drop[:, t], out=dit)
            hc = np.minimum(
                (dot + g_ef[:, t]).min(axis=1), d_hub[:, t] + h_f[:, t]
            )
            dh = d_hub[:, t + 1]
            np.minimum(dh, hc, out=dh)
        for t in range(T - 1, -1, -1):
            cout = d_hub[:, t + 1, None] + g_er[:, t]
            if t < T - 1:
                cout = np.minimum(cout, d_in[:, t + 1] + g_cr[:, t])
            dot = d_out[:, t]
            np.minimum(dot, cout, out=dot)
            dit = d_in[:, t]
            np.minimum(dit, dot + a_drop[:, t], out=dit)
            np.minimum(dot, dit + a_add[:, t], out=dot)
            hc = np.minimum(
                (dit + a_fetchr[:, t]).min(axis=1), d_hub[:, t + 1] + h_r[:, t]
            )
            dh = d_hub[:, t]
            np.minimum(dh, hc, out=dh)
        changed = (
            (d_hub != s_hub).any(axis=1)
            | (d_in != s_in).any(axis=(1, 2))
            | (d_out != s_out).any(axis=(1, 2))
        )
        if not changed.any():
            break
    return ~changed


def _arc_cost(
    u: int, v: int, T: int, K: int, c: FloatArray, fetch: FloatArray
) -> float:
    """Cost of the residual arc ``u -> v`` (node ids as in the flow template)."""
    if u <= T and v <= T:
        return 0.0  # hub chain, either direction
    if u <= T:  # hub -> in (pay fetch) or hub -> out (exit reversal)
        r = v - (T + 1)
        t, k = divmod(r // 2, K)
        return float(fetch[t, k]) if r % 2 == 0 else 0.0
    if v <= T:  # in -> hub (fetch refund) or out -> hub (exit)
        r = u - (T + 1)
        t, k = divmod(r // 2, K)
        return -float(fetch[t, k]) if r % 2 == 0 else 0.0
    ru, rv = u - (T + 1), v - (T + 1)
    if ru // 2 == rv // 2:  # hold arc: in -> out gains c, out -> in repays it
        t, k = divmod(rv // 2, K)
        return -float(c[t, k]) if rv % 2 == 1 else float(c[t, k])
    return 0.0  # continue arc, either direction


def _cancel_round_single(
    c: FloatArray,
    fetch: FloatArray,
    x0: FloatArray,
    cap: int,
    x: FloatArray,
    tol: float,
    max_pairs: int,
) -> tuple[str, list[tuple[int, int, float]] | None]:
    """One gated, parent-tracked Bellman run on a single row's residual graph.

    Updates only fire beyond the float danger band ``tol``. After each sweep
    pair (from the second on — labels must have had a chance to wrap the
    cycle) the parent pointers are walked ``V + 1`` steps from the most
    negative label; landing in a cycle of true gain beyond the band yields
    the hold-arc flips. Returns ``("optimal", None)`` on a fixed point,
    ``("cycle", flips)`` when an improving cycle is extracted, and
    ``("stuck", None)`` when the budget ends ambiguously (defensive; hands
    the row to the exact per-SBS backends).
    """
    T, K = c.shape
    on = x > 0.5
    prev = np.vstack([x0[None, :] > 0.5, on[:-1]])
    ent = on & ~prev
    ent[0] = on[0]
    nxt = np.vstack([on[1:], np.zeros((1, K), dtype=bool)])
    cont = on & nxt
    exi = on & ~nxt
    counts = on.sum(axis=1)

    base = T + 1
    in_id = base + 2 * (np.arange(T)[:, None] * K + np.arange(K)[None, :])
    out_id = in_id + 1

    a_fetch = np.where(ent, _INF, fetch)
    a_fetchr = np.where(ent, -fetch, _INF)
    a_add = np.where(on, _INF, -c)
    a_drop = np.where(on, c, _INF)
    g_cf = np.where(cont, _INF, 0.0)
    g_cr = np.where(cont, 0.0, _INF)
    g_ef = np.where(exi, _INF, 0.0)
    g_er = np.where(exi, 0.0, _INF)

    d_hub = np.zeros(T + 1)
    d_in = np.zeros((T, K))
    d_out = np.zeros((T, K))
    p_hub = np.full(T + 1, -1, dtype=np.int64)
    p_in = np.full((T, K), -1, dtype=np.int64)
    p_out = np.full((T, K), -1, dtype=np.int64)

    def upd(d: np.ndarray, p: np.ndarray, cand: np.ndarray, pids) -> bool:
        better = cand < d - tol
        if not better.any():
            return False
        d[better] = cand[better]
        p[better] = np.broadcast_to(pids, cand.shape)[better]
        return True

    def upd_hub(t: int, cand: float, pid: int) -> bool:
        if cand < d_hub[t] - tol:
            d_hub[t] = cand
            p_hub[t] = pid
            return True
        return False

    V = T + 1 + 2 * T * K

    def walk() -> tuple[float, list[tuple[int, int, float]]] | None:
        """Parent walk from the most negative label; its cycle, if any."""
        dvec = np.empty(V)
        pvec = np.full(V, -1, dtype=np.int64)
        dvec[: T + 1] = d_hub
        pvec[: T + 1] = p_hub
        dvec[in_id.ravel()] = d_in.ravel()
        pvec[in_id.ravel()] = p_in.ravel()
        dvec[out_id.ravel()] = d_out.ravel()
        pvec[out_id.ravel()] = p_out.ravel()
        node = int(dvec.argmin())
        for _ in range(V + 1):
            parent = int(pvec[node])
            if parent < 0:
                return None
            node = parent
        cyc = [node]
        cur = int(pvec[node])
        while cur != node:
            cyc.append(cur)
            cur = int(pvec[cur])
        gain = 0.0
        flips: list[tuple[int, int, float]] = []
        m = len(cyc)
        for i in range(m):
            v = cyc[i]
            u = cyc[(i + 1) % m]  # parent direction: the residual arc is u -> v
            gain += _arc_cost(u, v, T, K, c, fetch)
            if v > T and u > T:
                rv, ru = v - base, u - base
                if rv // 2 == ru // 2:  # a hold arc of the same (t, k) pair
                    t, k = divmod(rv // 2, K)
                    flips.append((t, k, 1.0 if rv % 2 == 1 else 0.0))
        return gain, flips

    for pair in range(max_pairs):
        changed = False
        for t in range(T):
            changed |= upd(d_in[t], p_in[t], d_hub[t] + a_fetch[t], t)
            if t:
                changed |= upd(
                    d_in[t], p_in[t], d_out[t - 1] + g_cf[t - 1], out_id[t - 1]
                )
            changed |= upd(d_out[t], p_out[t], d_in[t] + a_add[t], in_id[t])
            changed |= upd(d_in[t], p_in[t], d_out[t] + a_drop[t], out_id[t])
            vals = d_out[t] + g_ef[t]
            kb = int(vals.argmin())
            changed |= upd_hub(t + 1, float(vals[kb]), int(out_id[t, kb]))
            if counts[t] > 0:
                changed |= upd_hub(t + 1, float(d_hub[t]), t)
        for t in range(T - 1, -1, -1):
            changed |= upd(d_out[t], p_out[t], d_hub[t + 1] + g_er[t], t + 1)
            if t < T - 1:
                changed |= upd(d_out[t], p_out[t], d_in[t + 1] + g_cr[t], in_id[t + 1])
            changed |= upd(d_in[t], p_in[t], d_out[t] + a_drop[t], out_id[t])
            changed |= upd(d_out[t], p_out[t], d_in[t] + a_add[t], in_id[t])
            vals = d_in[t] + a_fetchr[t]
            kb = int(vals.argmin())
            changed |= upd_hub(t, float(vals[kb]), int(in_id[t, kb]))
            if counts[t] < cap:
                changed |= upd_hub(t, float(d_hub[t + 1]), t + 1)
        if not changed:
            return "optimal", None
        if pair >= 1:
            found = walk()
            if found is not None:
                gain, flips = found
                # Only a cycle of true gain beyond the band is an
                # improvement; a sub-band cycle on the walked path does not
                # prove optimality (a real one may sit elsewhere), so keep
                # sweeping in that case.
                if gain < -tol and flips:
                    return "cycle", flips
    return "stuck", None


def capped_cancel_stack(
    C: FloatArray,
    beta: FloatArray,
    X0: FloatArray,
    caps: FloatArray,
    *,
    max_rounds: int = MAX_ROUNDS,
) -> tuple[FloatArray, np.ndarray]:
    """Exact cap-constrained ``P1`` over a ``(B, T, K)`` stack.

    Returns ``(x, ok)``: trajectories and the mask of rows solved to
    certified optimality. Rows with ``~ok`` (budget exhaustion — never
    observed on the captured storm) must go to the per-SBS exact backends;
    their ``x`` slices are meaningless.
    """
    B, T, K = C.shape
    ok = np.zeros(B, dtype=bool)
    if B == 0:
        return np.zeros((B, T, K)), ok
    x = _prefix_greedy_stack(C, beta, X0, caps) if T and K else np.zeros((B, T, K))
    if T == 0 or K == 0:
        ok[:] = True
        return x, ok

    fetch = np.broadcast_to(
        np.asarray(beta, dtype=np.float64)[:, None, None], (B, T, K)
    ).copy()
    fetch[:, 0][X0 > 0.5] = 0.0
    scale = np.maximum(
        1.0, np.maximum(np.asarray(beta, dtype=np.float64), np.abs(C).max(axis=(1, 2)))
    )
    tol = (16.0 * _EPS * max(T, 4)) * scale
    dp = _detect_pairs(T)
    cp = _cancel_pairs(T)

    active = np.arange(B)
    for _ in range(max_rounds):
        on, ent, cont, exi = _residual_masks(x[active], X0[active])
        counts = on.sum(axis=2)
        conv = _bellman_converged(
            C[active], fetch[active], on, ent, cont, exi, counts,
            np.asarray(caps)[active], tol[active], dp,
        )
        ok[active[conv]] = True
        active = active[~conv]
        if active.size == 0:
            break
        keep: list[int] = []
        for b in active:
            status, flips = _cancel_round_single(
                C[b], fetch[b], X0[b], int(caps[b]), x[b], float(tol[b]), cp
            )
            if status == "optimal":
                ok[b] = True
            elif status == "cycle":
                assert flips is not None
                for t, k, v in flips:
                    x[b, t, k] = v
                if (x[b].sum(axis=1) <= caps[b]).all():
                    keep.append(int(b))
                # An infeasible flip set cannot happen for a true residual
                # cycle; if it ever does, the row silently falls back to the
                # exact per-SBS backends.
        active = np.asarray(keep, dtype=np.intp)
        if active.size == 0:
            break
    return x, ok

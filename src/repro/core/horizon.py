"""Window and commitment bookkeeping for the online controllers (Section IV).

- RHC solves a ``w``-slot window at every slot and commits only the first
  action.
- FHC variant ``v`` solves at the times ``Psi_v = {i : i = v (mod r)}``
  (the paper's commitment classes) and commits ``r`` consecutive actions
  per solve.
- CHC averages the ``r`` variants; AFHC is CHC with ``r = w``.

These helpers keep the index arithmetic (including the negative start
times the paper's ``Psi_v`` includes, so every slot is covered by every
variant) in one tested place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class HorizonSpec:
    """Prediction window ``w`` and commitment level ``r`` for a controller.

    ``r = 1`` is RHC-like commitment; ``r = w`` is AFHC. The paper requires
    ``1 <= r <= w``.
    """

    window: int
    commitment: int

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window}")
        if not 1 <= self.commitment <= self.window:
            raise ConfigurationError(
                f"commitment must be in [1, window={self.window}], got {self.commitment}"
            )


def fhc_solve_times(variant: int, commitment: int, horizon: int) -> list[int]:
    """Solve times of FHC variant ``v`` over ``0..horizon-1``.

    The variant solves at times ``tau = v (mod r)``, starting from the
    largest such ``tau <= 0`` (possibly negative) so its commitments cover
    slot 0, and continuing while the committed block intersects the horizon.
    """
    if not 0 <= variant < commitment:
        raise ConfigurationError(
            f"variant must be in [0, commitment={commitment}), got {variant}"
        )
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    # First solve time <= 0 congruent to variant mod commitment.
    first = variant - commitment if variant > 0 else 0
    times = []
    tau = first
    while tau < horizon:
        if tau + commitment > 0:  # committed block [tau, tau+r) touches >= 0
            times.append(tau)
        tau += commitment
    return times


def committed_slots(tau: int, commitment: int, horizon: int) -> range:
    """The slots of ``0..horizon-1`` committed by a solve at time ``tau``."""
    return range(max(tau, 0), min(tau + commitment, horizon))

"""The CHC rounding policy and its approximation guarantee (Theorem 3).

Averaging the ``r`` FHC variants' integral caches produces fractional
values ``x-bar in [0, 1]``. The paper's rounding policy (Section IV-B):

(i)  ``x = 1`` where ``x-bar >= rho``, else ``0``, with threshold
     ``rho = (3 - sqrt(5)) / 2 ~= 0.382``;
(ii) ``y`` follows the averaged value where ``x = 1`` and is zeroed where
     ``x = 0``.

Theorem 3 bounds the rounded cost by ``max(1/rho, 1/(1-rho)^2)`` times the
unrounded cost, minimized at ``rho* = (3 - sqrt(5)) / 2`` where both terms
equal ``1/rho* ~= 2.618`` (the paper's "2.62").

Two engineering notes, recorded here because the paper leaves them
implicit:

- Thresholding can select more than ``C_n`` items when many entries sit
  just above ``rho`` (each variant's cache is feasible, but the union of
  their supports can be larger). :func:`round_caching` therefore keeps the
  ``C_n`` *largest* fractional values among those above threshold, which
  only removes items and thus never violates Theorem 3's bound direction
  for the replacement cost.
- The paper's optimal threshold balances the replacement bound ``1/rho``
  against the BS-cost bound ``1/(1-rho)^2``; the SBS-cost bound ``1/rho^2``
  is vacuous in the paper's evaluation (``omega-hat = 0``) and
  :func:`approximation_ratio` exposes both conventions.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import FloatArray, IntArray


def optimal_rounding_threshold() -> float:
    """The paper's ``rho* = (3 - sqrt(5)) / 2 ~= 0.38197``."""
    return (3.0 - np.sqrt(5.0)) / 2.0


def approximation_ratio(rho: float, *, include_sbs_cost: bool = False) -> float:
    """Theorem 3's approximation ratio for threshold ``rho``.

    With ``include_sbs_cost=False`` (the paper's evaluation setting,
    ``omega-hat = 0``) the ratio is ``max(1/rho, 1/(1-rho)^2)``, minimized
    at :func:`optimal_rounding_threshold` with value ``~2.618``. Setting
    ``include_sbs_cost=True`` adds the ``1/rho^2`` term from the SBS
    operating-cost bound.
    """
    if not 0.0 < rho < 1.0:
        raise ConfigurationError(f"rho must be in (0, 1), got {rho}")
    terms = [1.0 / rho, 1.0 / (1.0 - rho) ** 2]
    if include_sbs_cost:
        terms.append(1.0 / rho**2)
    return max(terms)


def round_caching(
    x_fractional: FloatArray,
    cache_sizes: IntArray,
    *,
    rho: float | None = None,
) -> FloatArray:
    """Round an averaged caching trajectory to a feasible 0/1 trajectory.

    Parameters
    ----------
    x_fractional:
        Averaged caches ``x-bar``, shape ``(T, N, K)``, entries in [0, 1].
    cache_sizes:
        Per-SBS capacities ``C_n`` used for the capacity repair.
    rho:
        Rounding threshold; defaults to the optimal ``rho*``.
    """
    if rho is None:
        rho = optimal_rounding_threshold()
    if not 0.0 < rho < 1.0:
        raise ConfigurationError(f"rho must be in (0, 1), got {rho}")
    x_fractional = np.asarray(x_fractional, dtype=np.float64)
    if x_fractional.ndim != 3:
        raise ConfigurationError(
            f"x_fractional must have shape (T, N, K), got {x_fractional.shape}"
        )
    if np.any(x_fractional < -1e-9) or np.any(x_fractional > 1 + 1e-9):
        raise ConfigurationError("x_fractional entries must lie in [0, 1]")

    T, N, K = x_fractional.shape
    rounded = np.where(x_fractional >= rho, 1.0, 0.0)
    # Capacity repair: keep the C_n largest fractional values. Violating
    # (t, n) rows are repaired in one stacked pass; ties rank by item
    # index (stable sort on the negated values), exactly as a per-row
    # ``argsort(-values)[:cap]`` would order them.
    caps = np.asarray(cache_sizes, dtype=np.int64)
    counts = (rounded > 0.5).sum(axis=2)
    bad_t, bad_n = np.nonzero(counts > caps[None, :])
    if bad_t.size:
        frac = x_fractional[bad_t, bad_n]
        selected = rounded[bad_t, bad_n] > 0.5
        # Unselected items sort to the tail (+inf key); each violating row
        # has more than cap selected items, so the tail never ranks.
        key = np.where(selected, -frac, np.inf)
        order = np.argsort(key, axis=1, kind="stable")
        ranks = np.empty_like(order)
        rows = np.arange(bad_t.size)[:, None]
        ranks[rows, order] = np.arange(K)[None, :]
        rounded[bad_t, bad_n] = (
            selected & (ranks < caps[bad_n][:, None])
        ).astype(np.float64)
    return rounded


def round_load_balancing(
    y_fractional: FloatArray,
    x_rounded: FloatArray,
    class_sbs: IntArray,
) -> FloatArray:
    """Step (ii) of the rounding policy: zero ``y`` where the cache is empty."""
    y_fractional = np.asarray(y_fractional, dtype=np.float64)
    mask = x_rounded[:, class_sbs, :]
    return np.clip(y_fractional, 0.0, 1.0) * mask

"""Subproblem ``P2`` — load balancing (Eq. 19) and the fixed-cache oracle.

Two related problems are solved here, both per SBS and per slot:

1. ``P2`` inside Algorithm 1: minimize ``f_t(Y) + g_t(Y) + mu . Y`` over
   ``0 <= y <= 1`` and the bandwidth constraint (2) — the coupling ``y <= x``
   has been dualized into ``mu``.
2. The *fixed-cache oracle*: given an integral cache ``x``, compute the
   exact optimal ``y`` (now with ``y <= x`` enforced directly and no
   ``mu``). Every policy in the library is evaluated through this oracle so
   realized costs are always the best achievable for the chosen caches.

For the paper's evaluation setting — quadratic BS cost, ``omega-hat = 0``
(Section V-B) — both reduce to a one-dimensional fixed point over the BS
residual ``r``: at a given ``r`` the KKT conditions rank items by the
per-bandwidth-unit benefit ``kappa_j = 2 r omega_j - mu_j / lambda_j`` and
fill greedily up to the bandwidth, and the resulting residual is monotone
in ``r``. Both the loop and batched layouts route every (SBS, slot) row
through :func:`repro.optim.waterfill.waterfill_batch`, which solves the
fixed point *in closed form*: a single threshold scan whenever the
bandwidth constraint is slack (the overwhelmingly common case) and the
exact parametric bound solve (DESIGN.md §7) when it binds, with the
legacy residual bisection retained only as a fallback for degenerate
rows and as the A/B reference (``closed_form=False``). Both layouts are
bit-identical by construction, and results agree with the historical
all-bisection solver to the documented ``<= 1e-9`` objective envelope
(the closed form is exact where the bisection was a ``2^-26``-bracketed
approximation). ``RuntimeConfig`` (or ``REPRO_BW_CLOSED_FORM`` /
``REPRO_BISECTION_ITERS``) selects the path and the reference depth;
the resolution happens once in :func:`solve_p2` /
:func:`solve_y_given_x` and is threaded through every kernel and
projection call below. The general case (``omega-hat > 0`` or
non-quadratic costs) falls back to FISTA over the box-plus-halfspace
feasible set, whose binding-block projection uses the same exact
parametric solve (:func:`repro.optim.projection.halfspace_theta_exact`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    RuntimeConfig,
    resolved_batched,
    resolved_bisection_iters,
    resolved_bw_closed_form,
)
from repro.core.problem import JointProblem
from repro.exceptions import DimensionMismatchError
from repro.network.costs import QuadraticOperatingCost
from repro.optim.budget import SolveBudget
from repro.optim.fista import minimize_fista
from repro.optim.projection import halfspace_theta_exact
from repro.optim.waterfill import waterfill_batch
from repro.types import FloatArray, IntArray


@dataclass(frozen=True)
class LoadBalancingSolution:
    """Solution of ``P2`` (or the fixed-cache oracle) over a window.

    Attributes
    ----------
    y:
        Load-balancing trajectory, shape ``(T, M, K)``.
    objective:
        The solved objective: ``sum_t (f + g) + sum mu . y`` for ``P2``;
        ``sum_t (f + g)`` for the fixed-cache oracle.
    """

    y: FloatArray
    objective: float


def _uses_fast_path(problem: JointProblem) -> bool:
    return isinstance(problem.bs_cost, QuadraticOperatingCost) and bool(
        np.all(problem.network.omega_sbs == 0.0)
    )


# --------------------------------------------------------------------- P2

def solve_p2(
    problem: JointProblem,
    mu: FloatArray,
    *,
    y0: FloatArray | None = None,
    tol: float = 1e-7,
    max_iter: int = 500,
    budget: SolveBudget | None = None,
    config: RuntimeConfig | None = None,
) -> LoadBalancingSolution:
    """Solve ``P2`` given multipliers ``mu`` of shape ``(T, M, K)``.

    ``budget`` is the enclosing anytime budget (shared clock): the FISTA
    fallback stops early once it is exhausted and returns its best feasible
    iterate. The closed-form fast path ignores it — one pass is exact.
    ``config`` selects the batched solve core (default on; both paths
    return bit-identical solutions), the bandwidth-bound solve
    (``bw_closed_form``, default on) and the bisection reference depth
    (``bisection_iters``).
    """
    if mu.shape != problem.y_shape:
        raise DimensionMismatchError(f"mu shape {mu.shape} != {problem.y_shape}")
    closed_form = resolved_bw_closed_form(config)
    bisection_iters = resolved_bisection_iters(config)
    if _uses_fast_path(problem):
        return _solve_p2_fast(
            problem,
            mu,
            batched=resolved_batched(config),
            closed_form=closed_form,
            bisection_iters=bisection_iters,
        )
    return _solve_p2_fista(
        problem,
        mu,
        y0=y0,
        tol=tol,
        max_iter=max_iter,
        budget=budget,
        batched=resolved_batched(config),
        closed_form=closed_form,
        bisection_iters=bisection_iters,
    )


def solve_y_given_x(
    problem: JointProblem,
    x: FloatArray,
    *,
    y0: FloatArray | None = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    budget: SolveBudget | None = None,
    config: RuntimeConfig | None = None,
) -> LoadBalancingSolution:
    """Exact optimal ``y`` for a fixed integral caching trajectory ``x``.

    Enforces ``y <= x`` directly; with the paper's costs this is the greedy
    bandwidth fill by descending ``omega`` (a fractional knapsack), solved
    in closed form for all slots at once. ``budget`` caps the FISTA
    fallback only (the closed form is a single exact pass).
    """
    if x.shape != problem.x_shape:
        raise DimensionMismatchError(f"x shape {x.shape} != {problem.x_shape}")
    zero_mu = np.zeros(problem.y_shape)
    closed_form = resolved_bw_closed_form(config)
    bisection_iters = resolved_bisection_iters(config)
    if _uses_fast_path(problem):
        return _solve_p2_fast(
            problem,
            zero_mu,
            x_caps=x,
            batched=resolved_batched(config),
            closed_form=closed_form,
            bisection_iters=bisection_iters,
        )
    return _solve_p2_fista(
        problem,
        zero_mu,
        x_caps=x,
        y0=y0,
        tol=tol,
        max_iter=max_iter,
        budget=budget,
        batched=resolved_batched(config),
        closed_form=closed_form,
        bisection_iters=bisection_iters,
    )


def p2_objective(problem: JointProblem, y: FloatArray, mu: FloatArray) -> float:
    """Evaluate the ``P2`` objective ``sum_t (f + g) + mu . y`` (for tests)."""
    from repro.network.costs import bs_operating_cost, sbs_operating_cost

    total = float(np.sum(mu * y))
    for t in range(problem.horizon):
        total += bs_operating_cost(
            problem.network, problem.demand[t], y[t], problem.bs_cost
        )
        total += sbs_operating_cost(
            problem.network, problem.demand[t], y[t], problem.sbs_cost
        )
    return total


# ------------------------------------------------------------- fast solver

def _solve_p2_fast(
    problem: JointProblem,
    mu: FloatArray,
    *,
    x_caps: FloatArray | None = None,
    batched: bool = False,
    closed_form: bool | None = None,
    bisection_iters: int | None = None,
) -> LoadBalancingSolution:
    """Exact solver for quadratic BS cost with ``omega-hat = 0``.

    Solves the per-(SBS, slot) residual fixed point; see module docstring.
    The loop path feeds one SBS at a time (all its slots as rows) through
    :func:`repro.optim.waterfill.waterfill_batch`; the batched path stacks
    all ``N x T`` (SBS, slot) rows into a single call. The kernel is
    padding- and stacking-invariant, so both produce bit-identical
    solutions — ``batched`` selects granularity, not semantics.
    ``closed_form`` / ``bisection_iters`` are forwarded to the kernel
    verbatim (``None`` re-resolves from the environment there).
    """
    if batched:
        return _solve_p2_fast_batched(
            problem,
            mu,
            x_caps=x_caps,
            closed_form=closed_form,
            bisection_iters=bisection_iters,
        )
    net = problem.network
    scale = problem.bs_cost.scale  # type: ignore[union-attr]
    T = problem.horizon
    y = np.zeros(problem.y_shape)
    objective = 0.0
    for n in range(net.num_sbs):
        classes = net.classes_of_sbs[n]
        lam = problem.demand[:, classes, :].reshape(T, -1)  # (T, J)
        omega = np.repeat(net.omega_bs[classes], net.num_items)  # (J,)
        mu_n = mu[:, classes, :].reshape(T, -1)
        caps = lam.copy()
        if x_caps is not None:
            per_class_caps = np.broadcast_to(
                x_caps[:, n, None, :], (T, len(classes), net.num_items)
            ).reshape(T, -1)
            caps = caps * per_class_caps
        W = lam @ omega  # (T,)
        B = float(net.bandwidths[n])

        alloc, u = _waterfill(
            lam,
            caps,
            omega,
            mu_n,
            W,
            B,
            scale,
            closed_form=closed_form,
            bisection_iters=bisection_iters,
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            y_n = np.where(lam > 0, alloc / lam, 0.0)
        y[:, classes, :] = y_n.reshape(T, len(classes), net.num_items)
        residual = W - u
        objective += float(scale * np.sum(residual**2)) + float(np.sum(mu_n * y_n))
    return LoadBalancingSolution(y=y, objective=objective)


def _solve_p2_fast_batched(
    problem: JointProblem,
    mu: FloatArray,
    *,
    x_caps: FloatArray | None = None,
    closed_form: bool | None = None,
    bisection_iters: int | None = None,
) -> LoadBalancingSolution:
    """Batched fast path: one water-fill call over all ``N x T`` rows.

    Rows are stacked SBS-major (rows ``n*T .. (n+1)*T`` belong to SBS
    ``n``); SBSs with fewer (class, item) coordinates are zero-padded on
    the right, which is inert because padded caps are zero. ``W`` is
    accumulated per SBS with the same GEMV the loop path uses, so every
    per-row quantity entering the kernel is bit-identical to the loop
    path's.
    """
    net = problem.network
    scale = problem.bs_cost.scale  # type: ignore[union-attr]
    T = problem.horizon
    K = net.num_items
    N = net.num_sbs
    if N == 1:
        # One SBS: SBS-major stacking is the identity, so the loop body —
        # which already feeds all T rows through one kernel call — is the
        # same computation minus the zero-init/copy assembly.
        return _solve_p2_fast(
            problem,
            mu,
            x_caps=x_caps,
            batched=False,
            closed_form=closed_form,
            bisection_iters=bisection_iters,
        )
    counts = [len(net.classes_of_sbs[n]) for n in range(N)]
    j_max = max(counts) * K if N else 0
    R = N * T

    lam_b = np.zeros((R, j_max))
    mu_b = np.zeros((R, j_max))
    om_b = np.zeros((R, j_max))
    caps_b = np.zeros((R, j_max))
    W_b = np.zeros(R)
    bw_b = np.zeros(R)
    group = np.repeat(np.arange(N, dtype=np.intp), T)
    for n in range(N):
        classes = net.classes_of_sbs[n]
        J = counts[n] * K
        rows = slice(n * T, (n + 1) * T)
        lam = problem.demand[:, classes, :].reshape(T, -1)
        omega = np.repeat(net.omega_bs[classes], K)
        lam_b[rows, :J] = lam
        mu_b[rows, :J] = mu[:, classes, :].reshape(T, -1)
        om_b[rows, :J] = omega
        caps = lam.copy()
        if x_caps is not None:
            per_class_caps = np.broadcast_to(
                x_caps[:, n, None, :], (T, counts[n], K)
            ).reshape(T, -1)
            caps = caps * per_class_caps
        caps_b[rows, :J] = caps
        W_b[rows] = lam @ omega
        bw_b[rows] = float(net.bandwidths[n])

    alloc_b, u_b = waterfill_batch(
        lam_b,
        caps_b,
        om_b,
        mu_b,
        W_b,
        bw_b,
        scale,
        group_ids=group,
        closed_form=closed_form,
        bisection_iters=bisection_iters,
    )

    y = np.zeros(problem.y_shape)
    objective = 0.0
    for n in range(N):
        classes = net.classes_of_sbs[n]
        J = counts[n] * K
        rows = slice(n * T, (n + 1) * T)
        lam = lam_b[rows, :J]
        mu_n = mu_b[rows, :J]
        with np.errstate(divide="ignore", invalid="ignore"):
            y_n = np.where(lam > 0, alloc_b[rows, :J] / lam, 0.0)
        y[:, classes, :] = y_n.reshape(T, counts[n], K)
        residual = W_b[rows] - u_b[rows]
        objective += float(scale * np.sum(residual**2)) + float(np.sum(mu_n * y_n))
    return LoadBalancingSolution(y=y, objective=objective)


def _waterfill(
    lam: FloatArray,
    caps: FloatArray,
    omega: FloatArray,
    mu: FloatArray,
    W: FloatArray,
    bandwidth: float,
    scale: float,
    *,
    closed_form: bool | None = None,
    bisection_iters: int | None = None,
) -> tuple[FloatArray, FloatArray]:
    """One-SBS water-fill: thin wrapper over the shared batched kernel.

    Arrays are ``(T, J)`` with ``J`` the flattened (class, item) coordinates
    of one SBS. Returns the routed amounts ``alloc`` (in bandwidth units,
    ``alloc <= caps``) and the offloaded weighted volume ``u`` per slot.
    Routing through :func:`repro.optim.waterfill.waterfill_batch` is what
    makes the loop and batched ``P2`` paths bit-identical.
    """
    omega_rows = np.ascontiguousarray(np.broadcast_to(omega, caps.shape))
    bw = np.full(lam.shape[0], float(bandwidth))
    return waterfill_batch(
        np.ascontiguousarray(lam),
        caps,
        omega_rows,
        mu,
        W,
        bw,
        scale,
        closed_form=closed_form,
        bisection_iters=bisection_iters,
    )


def _waterfill_reference(
    lam: FloatArray,
    caps: FloatArray,
    omega: FloatArray,
    mu: FloatArray,
    W: FloatArray,
    bandwidth: float,
    scale: float,
    *,
    iters: int | None = None,
) -> tuple[FloatArray, FloatArray]:
    """Historical all-bisection water-fill, kept as an independent test
    reference for the closed-form kernel.

    Bisection on the residual ``r`` with a greedy bandwidth fill inside;
    ``iters`` fixed iterations (arg > ``RuntimeConfig.bisection_iters`` >
    ``REPRO_BISECTION_ITERS`` > 26) bracket the fixed point to
    ``~2^-iters`` relative accuracy, then the closing interpolation mixes
    the two endpoint fills. The production kernel must match this
    solver's objective to ``1e-9`` (and is exact where this one is
    approximate).
    """
    iters = resolved_bisection_iters(None, iters)
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(lam > 0, mu / lam, np.inf)
    omega_full = np.broadcast_to(omega, caps.shape)

    # The greedy order is re-derived from kappa every fill, but between
    # late bisection iterations it usually stops changing. The previous
    # order is kept and reused for every row whose sort keys are already
    # strictly ascending under it — that check is O(J) per row versus
    # O(J log J) for the argsort, and reuse is exact: a strictly ascending
    # row pins the unique sorted order of its eligible items, and
    # ineligible items (the +inf tail) carry zero capacity, so their
    # arrangement cannot affect the fill.
    prev_order: IntArray | None = None

    def fill(
        r: FloatArray, *, with_alloc: bool
    ) -> tuple[FloatArray | None, FloatArray]:
        nonlocal prev_order
        # Benefit per bandwidth unit at residual r; items with non-positive
        # benefit are never routed.
        kappa = 2.0 * scale * r[:, None] * omega[None, :] - slope
        eligible = (kappa > 0) & (caps > 0)
        key = np.where(eligible, -kappa, np.inf)
        order = None
        if prev_order is not None:
            seq = np.take_along_axis(key, prev_order, axis=1)
            lo, hi = seq[:, :-1], seq[:, 1:]
            sorted_ok = np.all((hi > lo) | (np.isposinf(lo) & np.isposinf(hi)), axis=1)
            if sorted_ok.all():
                order = prev_order
            elif sorted_ok.any():
                order = prev_order.copy()
                stale = ~sorted_ok
                order[stale] = np.argsort(key[stale], axis=1, kind="stable")
        if order is None:
            order = np.argsort(key, axis=1, kind="stable")
        prev_order = order
        caps_sorted = np.take_along_axis(np.where(eligible, caps, 0.0), order, axis=1)
        cum = np.cumsum(caps_sorted, axis=1)
        alloc_sorted = np.clip(bandwidth - (cum - caps_sorted), 0.0, caps_sorted)
        omega_sorted = np.take_along_axis(omega_full, order, axis=1)
        u = np.einsum("tj,tj->t", alloc_sorted, omega_sorted)
        if not with_alloc:
            return None, u
        alloc = np.zeros_like(caps)
        np.put_along_axis(alloc, order, alloc_sorted, axis=1)
        return alloc, u

    if not np.any((slope > 0) & (caps > 0)):
        # mu == 0 on every item that could be routed (items with zero cap
        # never receive flow regardless of their slope): the fill order
        # (by omega) and the eligible set do not depend on r, so a single
        # pass at any positive r is exact. This is the fixed-cache oracle's
        # hot path — it skips the bisection entirely.
        alloc, u = fill(np.maximum(W, 1.0), with_alloc=True)
        assert alloc is not None
        return alloc, u

    r_lo = np.zeros_like(W)
    r_hi = np.maximum(W.astype(np.float64), 1e-12)
    for _ in range(iters):
        mid = 0.5 * (r_lo + r_hi)
        _, u = fill(mid, with_alloc=False)
        implied = W - u
        too_small = implied > mid  # G(r) > 0 -> root is to the right
        r_lo = np.where(too_small, mid, r_lo)
        r_hi = np.where(too_small, r_hi, mid)

    # u(r) is a non-decreasing step function (the greedy order shifts toward
    # high-omega items as r grows), so the fixed point W - u(r) = r can sit
    # at a jump: G(r_lo) > 0 >= G(r_hi) with u jumping across the target.
    # The KKT-optimal point there mixes the two adjacent greedy fills (the
    # tied items split the bandwidth); both fills are feasible, u is linear
    # in y, so the exact mix is a convex interpolation.
    alloc_lo, u_lo = fill(r_lo, with_alloc=True)
    alloc_hi, u_hi = fill(r_hi, with_alloc=True)
    assert alloc_lo is not None and alloc_hi is not None
    u_target = W - 0.5 * (r_lo + r_hi)
    gap = u_hi - u_lo
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(gap > 1e-15, np.clip((u_target - u_lo) / gap, 0.0, 1.0), 0.0)
    alloc = alloc_lo + t[:, None] * (alloc_hi - alloc_lo)
    u = u_lo + t * gap
    return alloc, u


# ------------------------------------------------------------ FISTA solver

def _solve_p2_fista(
    problem: JointProblem,
    mu: FloatArray,
    *,
    x_caps: FloatArray | None = None,
    y0: FloatArray | None = None,
    tol: float = 1e-7,
    max_iter: int = 500,
    budget: SolveBudget | None = None,
    batched: bool = False,
    closed_form: bool | None = None,
    bisection_iters: int | None = None,
) -> LoadBalancingSolution:
    """General-case ``P2`` via accelerated projected gradient.

    The objective and gradient already operate on the full ``(T, M, K)``
    tensor; ``batched`` additionally runs the per-SBS block projection as
    one stacked :func:`_project_blocks_capped` call over all ``N x T``
    rows instead of one call per SBS. Per-row independence of the theta
    solve (exact by default, bisection under ``closed_form=False``) makes
    the two layouts bit-identical.
    """
    net = problem.network
    T = problem.horizon
    lam = problem.demand
    omega = net.omega_bs
    omega_hat = net.omega_sbs
    sbs_of = net.class_sbs

    # Per-slot, per-SBS totals; computed via scatter-add over classes.
    def per_sbs(values_per_class: FloatArray) -> FloatArray:
        out = np.zeros((T, net.num_sbs))
        np.add.at(out, (slice(None), sbs_of), values_per_class)
        return out

    W_ns = per_sbs(omega[None, :] * lam.sum(axis=2))  # (T, N)

    caps = np.ones(problem.y_shape)
    if x_caps is not None:
        caps = x_caps[:, sbs_of, :].astype(np.float64)

    def objective(y_flat: FloatArray) -> float:
        y = y_flat.reshape(problem.y_shape)
        offload = (lam * y).sum(axis=2)  # (T, M)
        u = per_sbs(omega[None, :] * offload)
        v = per_sbs(omega_hat[None, :] * offload)
        return (
            problem.bs_cost.evaluate(W_ns - u)
            + problem.sbs_cost.evaluate(v)
            + float(np.sum(mu * y))
        )

    def gradient(y_flat: FloatArray) -> FloatArray:
        y = y_flat.reshape(problem.y_shape)
        offload = (lam * y).sum(axis=2)
        u = per_sbs(omega[None, :] * offload)
        v = per_sbs(omega_hat[None, :] * offload)
        df = problem.bs_cost.derivative(W_ns - u)  # (T, N)
        dg = problem.sbs_cost.derivative(v)
        coeff = -df[:, sbs_of] * omega[None, :] + dg[:, sbs_of] * omega_hat[None, :]
        return (coeff[:, :, None] * lam + mu).reshape(-1)

    K = net.num_items
    N = net.num_sbs
    counts = [len(net.classes_of_sbs[n]) for n in range(N)]

    if batched:
        # Stack all (SBS, slot) blocks into one projection call. The
        # demand coefficients, caps and budgets are loop-invariant, so
        # they are assembled once; only the iterate is re-packed per call.
        # Zero padding (a = caps = v = 0) is inert in the bisection.
        j_max = max(counts) * K if N else 0
        R = N * T
        a_b = np.zeros((R, j_max))
        caps_b = np.zeros((R, j_max))
        bud_b = np.zeros(R)
        for n in range(N):
            classes = net.classes_of_sbs[n]
            J = counts[n] * K
            rows = slice(n * T, (n + 1) * T)
            a_b[rows, :J] = lam[:, classes, :].reshape(T, -1)
            caps_b[rows, :J] = caps[:, classes, :].reshape(T, -1)
            bud_b[rows] = float(net.bandwidths[n])

        def project(y_flat: FloatArray) -> FloatArray:
            yt = y_flat.reshape(problem.y_shape)
            v_b = np.zeros((R, j_max))
            for n in range(N):
                classes = net.classes_of_sbs[n]
                J = counts[n] * K
                rows = slice(n * T, (n + 1) * T)
                v_b[rows, :J] = yt[:, classes, :].reshape(T, -1)
            out_b = _project_blocks_capped(
                v_b,
                a_b,
                bud_b,
                caps_b,
                closed_form=closed_form,
                iterations=bisection_iters,
            )
            y = np.empty(problem.y_shape)
            for n in range(N):
                classes = net.classes_of_sbs[n]
                J = counts[n] * K
                rows = slice(n * T, (n + 1) * T)
                y[:, classes, :] = out_b[rows, :J].reshape(T, counts[n], K)
            return y.reshape(-1)

    else:

        def project(y_flat: FloatArray) -> FloatArray:
            # Each class belongs to exactly one SBS, so the per-SBS blocks
            # partition the coordinates and each is projected exactly once.
            # The raw (unclipped) iterate must be handed to the block
            # projection: clipping first would change the Euclidean
            # projection.
            y = y_flat.reshape(problem.y_shape).copy()
            for n in range(net.num_sbs):
                classes = net.classes_of_sbs[n]
                block = y[:, classes, :].reshape(T, -1)
                a = lam[:, classes, :].reshape(T, -1)
                budgets = np.full(T, net.bandwidths[n])
                projected = _project_blocks_capped(
                    block,
                    a,
                    budgets,
                    caps[:, classes, :].reshape(T, -1),
                    closed_form=closed_form,
                    iterations=bisection_iters,
                )
                y[:, classes, :] = projected.reshape(T, len(classes), net.num_items)
            return y.reshape(-1)

    start = np.zeros(problem.y_shape) if y0 is None else np.clip(y0, 0.0, caps)
    result = minimize_fista(
        objective,
        gradient,
        project,
        start.reshape(-1),
        tol=tol,
        max_iter=max_iter,
        budget=budget,
    )
    y = result.x.reshape(problem.y_shape)
    return LoadBalancingSolution(y=y, objective=result.objective)


def _project_blocks_capped(
    v: FloatArray,
    a: FloatArray,
    budgets: FloatArray,
    caps: FloatArray,
    *,
    early_exit: bool = True,
    closed_form: bool | None = None,
    iterations: int | None = None,
) -> FloatArray:
    """Batched projection onto ``{0 <= y <= caps, a . y <= budget}`` per row.

    Extends :func:`repro.optim.projection.project_halfspace_box_batch` to
    per-coordinate upper bounds (needed when ``y <= x`` is enforced
    directly rather than dualized). By default the binding rows solve the
    exact parametric theta (:func:`repro.optim.projection.halfspace_theta_exact`);
    ``closed_form=False`` (arg > config > ``REPRO_BW_CLOSED_FORM``) keeps
    the legacy theta bisection as the A/B reference, running
    ``iterations`` steps (arg > config > ``REPRO_BISECTION_ITERS`` > 26).

    The theta bisection exits early for any row whose bracket endpoints
    already produce the same clipped point bitwise: ``clip(v - theta a)``
    is elementwise monotone in ``theta`` (``a >= 0``), so equal endpoint
    points pin the point on the whole bracket and every further iteration
    is a no-op for that row. The early exit is bitwise-invisible;
    ``early_exit=False`` runs the fixed iteration count for A/B tests.
    """
    base = np.clip(v, 0.0, caps)
    usage = np.einsum("bd,bd->b", a, base)
    violated = usage > budgets + 1e-12
    if not np.any(violated):
        return base
    vv, aa, bb, cc = v[violated], a[violated], budgets[violated], caps[violated]

    if resolved_bw_closed_form(None, closed_form):
        theta = halfspace_theta_exact(vv, aa, bb, 0.0, cc)
        out = base
        out[violated] = np.clip(vv - theta[:, None] * aa, 0.0, cc)
        return out
    iters = resolved_bisection_iters(None, iterations)

    theta_lo = np.zeros(vv.shape[0])
    theta_hi = np.ones(vv.shape[0])
    for _ in range(64):
        y = np.clip(vv - theta_hi[:, None] * aa, 0.0, cc)
        over = np.einsum("bd,bd->b", aa, y) > bb
        if not np.any(over):
            break
        theta_lo = np.where(over, theta_hi, theta_lo)
        theta_hi = np.where(over, theta_hi * 2.0, theta_hi)

    result = np.empty_like(vv)
    idx = np.arange(vv.shape[0])
    y_lo = np.clip(vv - theta_lo[:, None] * aa, 0.0, cc)
    y_hi = np.clip(vv - theta_hi[:, None] * aa, 0.0, cc)
    for _ in range(iters):
        if early_exit:
            same = np.all(y_lo == y_hi, axis=1)
            if same.any():
                result[idx[same]] = y_hi[same]
                keep = ~same
                idx = idx[keep]
                vv, aa, bb, cc = vv[keep], aa[keep], bb[keep], cc[keep]
                theta_lo, theta_hi = theta_lo[keep], theta_hi[keep]
                y_lo, y_hi = y_lo[keep], y_hi[keep]
                if idx.size == 0:
                    break
        mid = 0.5 * (theta_lo + theta_hi)
        y_m = np.clip(vv - mid[:, None] * aa, 0.0, cc)
        over = np.einsum("bd,bd->b", aa, y_m) > bb
        theta_lo = np.where(over, mid, theta_lo)
        theta_hi = np.where(over, theta_hi, mid)
        y_lo = np.where(over[:, None], y_m, y_lo)
        y_hi = np.where(over[:, None], y_hi, y_m)
    result[idx] = y_hi
    out = base
    out[violated] = result
    return out

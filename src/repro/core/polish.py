"""Local-search polish for caching trajectories.

Dual subgradient methods certify tight *bounds* but recover the primal
combinatorial piece only from the ``P1`` solutions visited along the way;
on weakly coupled instances (small ``beta``) the visited caches can miss
cheap single-item improvements. :func:`polish_caching` closes that gap
with a first-improvement local search over single-item moves:

- **swap**: replace one cached item with one uncached item in a slot;
- **insert**: add an item when the cache has free space;
- **evict**: drop an item.

Each move's effect is evaluated exactly: the slot's operating cost through
the fixed-cache oracle (a single-slot water-fill) and the switching-cost
delta against both temporal neighbours. Passes repeat until no move
improves or ``max_passes`` is reached, so the result never costs more than
the input trajectory.

Batched evaluation
------------------
On the paper's fast path (quadratic BS cost, ``omega-hat = 0``) the oracle
decomposes per SBS, and a single-item move touches exactly one SBS. The
batched path (``RuntimeConfig(batched=...)``, default on) exploits both
facts: all candidate rows of a cell are pushed through one
:func:`repro.optim.waterfill.waterfill_batch` call, each candidate's
full-slot ``y`` is assembled from the cached current-slot oracle plus the
candidate's block, and moves are then scanned in the same first-improvement
order as the loop path. Every assembled ``y`` and operating cost is
bit-identical to what the per-move oracle would have produced.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import numpy as np

from repro.config import (
    RuntimeConfig,
    resolved_batched,
    resolved_bisection_iters,
    resolved_bw_closed_form,
)
from repro.core.load_balancing import _uses_fast_path, solve_y_given_x
from repro.core.problem import JointProblem
from repro.exceptions import ConfigurationError
from repro.network.costs import CostBreakdown, bs_operating_cost, sbs_operating_cost
from repro.optim.waterfill import waterfill_batch
from repro.types import FloatArray


def _slot_problems(problem: JointProblem) -> list[JointProblem]:
    zero = np.zeros((problem.network.num_sbs, problem.network.num_items))
    return [
        dc_replace(problem, demand=problem.demand[t : t + 1], x_initial=zero)
        for t in range(problem.horizon)
    ]


def _operating_cost(
    sub: JointProblem, x_t: FloatArray, *, config: RuntimeConfig | None = None
) -> tuple[float, FloatArray]:
    y = solve_y_given_x(sub, x_t[None], config=config).y
    return sub.cost(x_t[None], y).operating, y


def _switch_delta(
    problem: JointProblem,
    x: FloatArray,
    t: int,
    n: int,
    new_row: FloatArray,
) -> float:
    """Switching-cost change of replacing ``x[t, n]`` by ``new_row``."""
    beta = float(problem.network.replacement_costs[n])
    prev = problem.x_initial[n] if t == 0 else x[t - 1, n]
    old_row = x[t, n]
    delta = beta * float(
        np.clip(new_row - prev, 0, None).sum() - np.clip(old_row - prev, 0, None).sum()
    )
    if t + 1 < x.shape[0]:
        nxt = x[t + 1, n]
        delta += beta * float(
            np.clip(nxt - new_row, 0, None).sum() - np.clip(nxt - old_row, 0, None).sum()
        )
    return delta


def _cell_moves(
    row: FloatArray, cap: int
) -> list[tuple[int | None, int | None]]:
    cached = np.flatnonzero(row > 0.5)
    empty = np.flatnonzero(row < 0.5)
    moves: list[tuple[int | None, int | None]] = []
    if len(cached) < cap:
        moves.extend((None, int(k_in)) for k_in in empty)
    moves.extend((int(k_out), int(k_in)) for k_out in cached for k_in in empty)
    moves.extend((int(k_out), None) for k_out in cached)
    return moves


def _candidate_blocks(
    sub: JointProblem,
    n: int,
    new_rows: FloatArray,
    *,
    closed_form: bool | None = None,
    bisection_iters: int | None = None,
) -> FloatArray:
    """Oracle ``y`` blocks of SBS ``n`` for a stack of candidate cache rows.

    ``new_rows`` has shape ``(V, K)``; returns ``(V, J)`` with ``J`` the
    flattened (class, item) coordinates of SBS ``n`` — each row bitwise
    equal to what :func:`solve_y_given_x` computes for that cache row on
    the fast path (``mu = 0`` makes every row a single greedy fill).
    """
    net = sub.network
    K = net.num_items
    classes = net.classes_of_sbs[n]
    C = len(classes)
    V = new_rows.shape[0]
    lam_row = sub.demand[:, classes, :].reshape(1, -1)[0]  # (J,)
    omega = np.repeat(net.omega_bs[classes], K)
    per_class_caps = np.broadcast_to(new_rows[:, None, :], (V, C, K)).reshape(V, -1)
    caps_b = lam_row[None, :] * per_class_caps
    lam_b = np.broadcast_to(lam_row, (V, lam_row.size))
    om_b = np.broadcast_to(omega, (V, omega.size))
    W_val = float(lam_row @ omega)
    alloc_b, _ = waterfill_batch(
        np.ascontiguousarray(lam_b),
        caps_b,
        np.ascontiguousarray(om_b),
        np.zeros((V, lam_row.size)),
        np.full(V, W_val),
        np.full(V, float(net.bandwidths[n])),
        sub.bs_cost.scale,  # type: ignore[union-attr]
        closed_form=closed_form,
        bisection_iters=bisection_iters,
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(lam_b > 0, alloc_b / lam_b, 0.0)


def polish_caching(
    problem: JointProblem,
    x: FloatArray,
    *,
    max_passes: int = 2,
    tol: float = 1e-9,
    config: RuntimeConfig | None = None,
) -> tuple[FloatArray, FloatArray, CostBreakdown]:
    """Improve ``x`` by single-item local moves; returns ``(x, y, cost)``.

    The returned cost is never worse than the input trajectory's. ``y`` is
    the exact fixed-cache optimum for the polished caches. ``config``
    selects the batched candidate evaluation (default on); both paths
    visit the same moves and return bit-identical results.
    """
    if max_passes <= 0:
        raise ConfigurationError(f"max_passes must be positive, got {max_passes}")
    x = np.where(np.asarray(x, dtype=np.float64) > 0.5, 1.0, 0.0)
    if x.shape != problem.x_shape:
        raise ConfigurationError(f"x shape {x.shape} != {problem.x_shape}")
    net = problem.network
    T = problem.horizon
    K = net.num_items
    batched = resolved_batched(config) and _uses_fast_path(problem)
    closed_form = resolved_bw_closed_form(config)
    bisection_iters = resolved_bisection_iters(config)
    slots = _slot_problems(problem)
    slot_y: list[FloatArray] = []
    slot_cost = np.zeros(T)
    for t in range(T):
        slot_cost[t], y_t = _operating_cost(slots[t], x[t], config=config)
        slot_y.append(y_t)

    for _ in range(max_passes):
        improved = False
        for t in range(T):
            for n in range(net.num_sbs):
                cap = int(net.cache_sizes[n])
                if cap == 0:
                    continue
                row = x[t, n]
                moves = _cell_moves(row, cap)
                if not moves:
                    continue
                if batched:
                    new_rows = np.tile(row, (len(moves), 1))
                    for v, (k_out, k_in) in enumerate(moves):
                        if k_out is not None:
                            new_rows[v, k_out] = 0.0
                        if k_in is not None:
                            new_rows[v, k_in] = 1.0
                    blocks = _candidate_blocks(
                        slots[t],
                        n,
                        new_rows,
                        closed_form=closed_form,
                        bisection_iters=bisection_iters,
                    )
                    classes = net.classes_of_sbs[n]
                    sub = slots[t]
                    for v, (k_out, k_in) in enumerate(moves):
                        y_move = slot_y[t].copy()
                        y_move[:, classes, :] = blocks[v].reshape(
                            1, len(classes), K
                        )
                        new_op = bs_operating_cost(
                            net, sub.demand[0], y_move[0], sub.bs_cost
                        ) + sbs_operating_cost(
                            net, sub.demand[0], y_move[0], sub.sbs_cost
                        )
                        delta = (new_op - slot_cost[t]) + _switch_delta(
                            problem, x, t, n, new_rows[v]
                        )
                        if delta < -tol:
                            # First improvement per cell, exactly as the
                            # loop path scans them.
                            x[t, n] = new_rows[v]
                            slot_cost[t] = new_op
                            slot_y[t] = y_move
                            improved = True
                            break
                    continue
                for k_out, k_in in moves:
                    new_row = row.copy()
                    if k_out is not None:
                        new_row[k_out] = 0.0
                    if k_in is not None:
                        new_row[k_in] = 1.0
                    x_t = x[t].copy()
                    x_t[n] = new_row
                    new_op, y_new = _operating_cost(slots[t], x_t, config=config)
                    delta = (new_op - slot_cost[t]) + _switch_delta(
                        problem, x, t, n, new_row
                    )
                    if delta < -tol:
                        # First improvement per cell: apply and move on (the
                        # remaining candidate moves were built for the old
                        # row and are no longer valid).
                        x[t, n] = new_row
                        slot_cost[t] = new_op
                        slot_y[t] = y_new
                        improved = True
                        break
        if not improved:
            break

    y = solve_y_given_x(problem, x, config=config).y
    return x, y, problem.cost(x, y)

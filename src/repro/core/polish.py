"""Local-search polish for caching trajectories.

Dual subgradient methods certify tight *bounds* but recover the primal
combinatorial piece only from the ``P1`` solutions visited along the way;
on weakly coupled instances (small ``beta``) the visited caches can miss
cheap single-item improvements. :func:`polish_caching` closes that gap
with a first-improvement local search over single-item moves:

- **swap**: replace one cached item with one uncached item in a slot;
- **insert**: add an item when the cache has free space;
- **evict**: drop an item.

Each move's effect is evaluated exactly: the slot's operating cost through
the fixed-cache oracle (a single-slot water-fill) and the switching-cost
delta against both temporal neighbours. Passes repeat until no move
improves or ``max_passes`` is reached, so the result never costs more than
the input trajectory.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import numpy as np

from repro.core.load_balancing import solve_y_given_x
from repro.core.problem import JointProblem
from repro.exceptions import ConfigurationError
from repro.network.costs import CostBreakdown
from repro.types import FloatArray


def _slot_problems(problem: JointProblem) -> list[JointProblem]:
    zero = np.zeros((problem.network.num_sbs, problem.network.num_items))
    return [
        dc_replace(problem, demand=problem.demand[t : t + 1], x_initial=zero)
        for t in range(problem.horizon)
    ]


def _operating_cost(sub: JointProblem, x_t: FloatArray) -> float:
    y = solve_y_given_x(sub, x_t[None]).y
    return sub.cost(x_t[None], y).operating


def _switch_delta(
    problem: JointProblem,
    x: FloatArray,
    t: int,
    n: int,
    new_row: FloatArray,
) -> float:
    """Switching-cost change of replacing ``x[t, n]`` by ``new_row``."""
    beta = float(problem.network.replacement_costs[n])
    prev = problem.x_initial[n] if t == 0 else x[t - 1, n]
    old_row = x[t, n]
    delta = beta * float(
        np.clip(new_row - prev, 0, None).sum() - np.clip(old_row - prev, 0, None).sum()
    )
    if t + 1 < x.shape[0]:
        nxt = x[t + 1, n]
        delta += beta * float(
            np.clip(nxt - new_row, 0, None).sum() - np.clip(nxt - old_row, 0, None).sum()
        )
    return delta


def polish_caching(
    problem: JointProblem,
    x: FloatArray,
    *,
    max_passes: int = 2,
    tol: float = 1e-9,
) -> tuple[FloatArray, FloatArray, CostBreakdown]:
    """Improve ``x`` by single-item local moves; returns ``(x, y, cost)``.

    The returned cost is never worse than the input trajectory's. ``y`` is
    the exact fixed-cache optimum for the polished caches.
    """
    if max_passes <= 0:
        raise ConfigurationError(f"max_passes must be positive, got {max_passes}")
    x = np.where(np.asarray(x, dtype=np.float64) > 0.5, 1.0, 0.0)
    if x.shape != problem.x_shape:
        raise ConfigurationError(f"x shape {x.shape} != {problem.x_shape}")
    net = problem.network
    T = problem.horizon
    slots = _slot_problems(problem)
    slot_cost = np.array([_operating_cost(slots[t], x[t]) for t in range(T)])

    for _ in range(max_passes):
        improved = False
        for t in range(T):
            for n in range(net.num_sbs):
                cap = int(net.cache_sizes[n])
                if cap == 0:
                    continue
                row = x[t, n]
                cached = np.flatnonzero(row > 0.5)
                empty = np.flatnonzero(row < 0.5)
                moves: list[tuple[int | None, int | None]] = []
                if len(cached) < cap:
                    moves.extend((None, int(k_in)) for k_in in empty)
                moves.extend(
                    (int(k_out), int(k_in)) for k_out in cached for k_in in empty
                )
                moves.extend((int(k_out), None) for k_out in cached)
                for k_out, k_in in moves:
                    new_row = row.copy()
                    if k_out is not None:
                        new_row[k_out] = 0.0
                    if k_in is not None:
                        new_row[k_in] = 1.0
                    x_t = x[t].copy()
                    x_t[n] = new_row
                    new_op = _operating_cost(slots[t], x_t)
                    delta = (new_op - slot_cost[t]) + _switch_delta(
                        problem, x, t, n, new_row
                    )
                    if delta < -tol:
                        # First improvement per cell: apply and move on (the
                        # remaining candidate moves were built for the old
                        # row and are no longer valid).
                        x[t, n] = new_row
                        slot_cost[t] = new_op
                        improved = True
                        break
        if not improved:
            break

    y = solve_y_given_x(problem, x).y
    return x, y, problem.cost(x, y)

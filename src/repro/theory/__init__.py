"""Theoretical guarantees from the paper (Theorems 1-3 and Section IV)."""

from repro.theory.bounds import (
    afhc_competitive_ratio,
    chc_competitive_ratio,
    chc_rounding_ratio,
    rhc_competitive_ratio,
)

__all__ = [
    "afhc_competitive_ratio",
    "chc_competitive_ratio",
    "chc_rounding_ratio",
    "rhc_competitive_ratio",
]

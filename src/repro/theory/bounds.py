"""Competitive-ratio and approximation bounds (Section IV, Theorems 2-3).

The paper cites the following guarantees, reproduced here as computable
functions so tests and reports can check measured performance against the
theory:

- RHC's competitive ratio is ``1 + O(1/w)`` (Lin et al. [19]); the explicit
  constant from [19] for switching-cost problems is
  ``1 + beta / (w * e0)``, where ``beta`` is the switching-cost scale and
  ``e0`` a lower bound on the per-slot operating cost of any feasible
  action. Theorem 2 extends the ratio unchanged to the mixed-integer
  problem via the total unimodularity of ``P1``.
- AFHC's competitive ratio from [19] is ``1 + beta / ((w + 1) * e0)``.
- CHC with commitment ``r <= w`` interpolates between the two (Chen et
  al. [21]); we expose the conservative ``1 + beta / (r * e0)`` form.
- The CHC rounding policy multiplies any of these by the Theorem-3 factor
  ``max(1/rho, 1/(1 - rho)^2)`` (``~2.618`` at the optimal threshold).
"""

from __future__ import annotations

from repro.core.rounding import approximation_ratio, optimal_rounding_threshold
from repro.exceptions import ConfigurationError


def _check(window: int, beta: float, min_operating_cost: float) -> None:
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    if beta < 0:
        raise ConfigurationError(f"beta must be >= 0, got {beta}")
    if min_operating_cost <= 0:
        raise ConfigurationError(
            f"min_operating_cost must be positive, got {min_operating_cost}"
        )


def rhc_competitive_ratio(
    window: int, beta: float, min_operating_cost: float
) -> float:
    """Upper bound on RHC's competitive ratio: ``1 + beta / (w * e0)``."""
    _check(window, beta, min_operating_cost)
    return 1.0 + beta / (window * min_operating_cost)


def afhc_competitive_ratio(
    window: int, beta: float, min_operating_cost: float
) -> float:
    """Upper bound on AFHC's competitive ratio: ``1 + beta / ((w + 1) * e0)``."""
    _check(window, beta, min_operating_cost)
    return 1.0 + beta / ((window + 1) * min_operating_cost)


def chc_competitive_ratio(
    window: int, commitment: int, beta: float, min_operating_cost: float
) -> float:
    """Conservative CHC bound ``1 + beta / (r * e0)`` for commitment ``r``."""
    _check(window, beta, min_operating_cost)
    if not 1 <= commitment <= window:
        raise ConfigurationError(
            f"commitment must be in [1, window={window}], got {commitment}"
        )
    return 1.0 + beta / (commitment * min_operating_cost)


def chc_rounding_ratio(rho: float | None = None) -> float:
    """Theorem 3's approximation factor for the rounding policy.

    At the optimal threshold ``rho* = (3 - sqrt(5))/2`` this is
    ``1/rho* ~= 2.618``, the paper's "2.62".
    """
    if rho is None:
        rho = optimal_rounding_threshold()
    return approximation_ratio(rho)

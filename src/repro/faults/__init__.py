"""Fault injection and graceful degradation.

:mod:`repro.faults.schedule` defines the deterministic, seedable
:class:`FaultSchedule` vocabulary (SBS outages, bandwidth and cache
degradation windows, demand surges, predictor blackouts);
:mod:`repro.faults.degrade` turns a schedule into per-slot effective
network state and repairs plans against it (evict-to-fit, outage freeze,
stale forecasts) instead of raising.

The stable entry point for callers is :func:`repro.api.inject_faults`.
"""

from repro.faults.degrade import (
    StalePredictor,
    assert_feasible_under_faults,
    degraded_network,
    evict_to_fit,
    evict_trajectory_to_fit,
    inject_faults,
    realize_caching,
    realize_slot,
    sbs_item_values,
    scenario_states,
)
from repro.faults.schedule import (
    BandwidthDegradation,
    CacheDegradation,
    DemandSurge,
    FaultEvent,
    FaultSchedule,
    FaultStates,
    PredictorBlackout,
    SbsOutage,
    SlotState,
    schedules_equal,
    single_outage_with_degradation,
)

__all__ = [
    "BandwidthDegradation",
    "CacheDegradation",
    "DemandSurge",
    "FaultEvent",
    "FaultSchedule",
    "FaultStates",
    "PredictorBlackout",
    "SbsOutage",
    "SlotState",
    "StalePredictor",
    "assert_feasible_under_faults",
    "degraded_network",
    "evict_to_fit",
    "evict_trajectory_to_fit",
    "inject_faults",
    "realize_caching",
    "realize_slot",
    "sbs_item_values",
    "scenario_states",
    "schedules_equal",
    "single_outage_with_degradation",
]

"""Graceful degradation: make plans feasible under a fault schedule.

The planning layers (offline Algorithm 1, RHC/CHC/AFHC windows, the
baselines) all decide against *some* model of the network; a fault schedule
makes the realized network differ from that model mid-horizon. The repairs
here close that gap deterministically instead of raising:

- :func:`evict_to_fit` — when ``C_n`` shrinks below the installed set,
  evict the least valuable contents (lowest current demand volume at that
  SBS, ties broken by item index) until the cache fits;
- :func:`realize_caching` — roll a planned caching trajectory forward under
  the per-slot effective state: a down SBS cannot fetch (its cache freezes)
  and every slot's cache is evicted-to-fit its effective capacity;
- :func:`degraded_network` — the network a controller should plan against
  at a decision slot (persistence assumption: the currently observed
  degradation lasts through the window);
- :class:`StalePredictor` — during a predictor blackout, re-issue the
  forecast from the last decision slot that had one;
- :func:`inject_faults` — bind a schedule to a scenario (surging the true
  demand, wrapping the predictor) so every downstream consumer sees it;
- :func:`assert_feasible_under_faults` — the zero-violation audit the
  resilience benchmark and tests run on every realized trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.schedule import FaultSchedule, FaultStates, SlotState
from repro.network.topology import Network
from repro.obs.recorder import emit, inc
from repro.scenario import Scenario
from repro.types import FloatArray
from repro.workload.demand import DemandMatrix
from repro.workload.predictor import DemandPredictor


def sbs_item_values(network: Network, rates_slot: FloatArray) -> FloatArray:
    """Per-(SBS, item) demand volume of one slot, shape ``(N, K)``.

    The eviction value of a cached item: how much demand its SBS's classes
    direct at it right now.
    """
    values = np.zeros((network.num_sbs, network.num_items))
    np.add.at(values, network.class_sbs, rates_slot)
    return values


def evict_to_fit(
    x_slot: FloatArray, caps: np.ndarray, values: FloatArray
) -> FloatArray:
    """Evict lowest-value contents until every SBS row fits its capacity.

    Deterministic: rows already within capacity are returned bit-identical;
    oversized rows keep their ``cap`` highest-``values`` cached items, ties
    broken by ascending item index.
    """
    x = np.where(np.asarray(x_slot, dtype=np.float64) > 0.5, 1.0, 0.0)
    caps = np.asarray(caps)
    used = x.sum(axis=1)
    for n in np.nonzero(used > caps)[0]:
        cap = int(caps[n])
        cached = np.nonzero(x[n] > 0.5)[0]
        if cap <= 0:
            inc("fault_evictions", len(cached), labels={"sbs": int(n)})
            x[n, cached] = 0.0
            continue
        # Sort cached items by descending value, ascending index on ties.
        order = cached[np.lexsort((cached, -values[n, cached]))]
        inc("fault_evictions", len(order[cap:]), labels={"sbs": int(n)})
        x[n, order[cap:]] = 0.0
    return x


def evict_trajectory_to_fit(
    x: FloatArray, caps_t: np.ndarray, values_t: FloatArray
) -> FloatArray:
    """Apply :func:`evict_to_fit` slot by slot over a ``(T, N, K)`` trajectory."""
    out = np.empty_like(x, dtype=np.float64)
    for t in range(x.shape[0]):
        out[t] = evict_to_fit(x[t], caps_t[t], values_t[t])
    return out


def realize_caching(
    plan_x: FloatArray,
    x_initial: FloatArray,
    states: FaultStates,
    rates: FloatArray,
    network: Network,
) -> FloatArray:
    """Roll a planned caching trajectory forward under the effective state.

    Per slot: a down SBS keeps its previous cache (no fetches while
    unreachable), every SBS is evicted-to-fit its effective capacity, and
    the result becomes the next slot's baseline — so a fault-time eviction
    is followed by a genuine (cost-bearing) re-fetch after recovery if the
    plan still wants the item.
    """
    T = plan_x.shape[0]
    x_real = np.empty_like(plan_x, dtype=np.float64)
    prev = np.where(np.asarray(x_initial, dtype=np.float64) > 0.5, 1.0, 0.0)
    for t in range(T):
        desired = np.where(plan_x[t] > 0.5, 1.0, 0.0)
        down = ~states.sbs_up[t]
        if down.any():
            inc("fault_frozen_slots", int(down.sum()))
            desired[down] = prev[down]
        x_real[t] = evict_to_fit(
            desired, states.cache_sizes[t], sbs_item_values(network, rates[t])
        )
        prev = x_real[t]
    return x_real


def realize_slot(
    desired: FloatArray,
    prev: FloatArray,
    state: SlotState,
    rates_slot: FloatArray,
    network: Network,
) -> FloatArray:
    """One step of :func:`realize_caching` (same rule, single slot).

    Controllers use this to track the caches *actually installed* after
    each committed slot — observing their own physical cache state — so
    their ``x_prev`` matches what the engine's realization will produce.
    """
    x = np.where(np.asarray(desired, dtype=np.float64) > 0.5, 1.0, 0.0)
    down = ~np.asarray(state.sbs_up)
    if down.any():
        x[down] = np.where(np.asarray(prev, dtype=np.float64)[down] > 0.5, 1.0, 0.0)
    return evict_to_fit(x, state.cache_sizes, sbs_item_values(network, rates_slot))


def degraded_network(network: Network, state: SlotState) -> Network:
    """The network a controller should plan against at one decision slot.

    Applies the slot's effective bandwidths (0 for a down SBS) and cache
    capacities — the persistence assumption: whatever degradation is
    observed now is planned to last through the prediction window.
    """
    return network.with_bandwidths(
        [float(b) for b in state.bandwidths]
    ).with_cache_sizes([int(c) for c in state.cache_sizes])


@dataclass(frozen=True)
class StalePredictor:
    """Blackout-aware wrapper: re-issue the last available forecast.

    During a blackout slot, forecasts are the ones the inner predictor
    issued at the most recent non-blackout decision slot (possibly ``-1``,
    i.e. "before the trace began" — the paper's controllers accept negative
    decision anchors already). Outside blackouts it is transparent.
    """

    inner: DemandPredictor
    schedule: FaultSchedule
    horizon: int

    def predict_window(self, decided_at: int, start: int, length: int) -> FloatArray:
        mask = self.schedule.blackout_mask(self.horizon)
        t = min(max(decided_at, 0), self.horizon - 1) if self.horizon else 0
        if self.horizon == 0 or not mask[t]:
            return self.inner.predict_window(decided_at, start, length)
        clear = t - 1
        while clear >= 0 and mask[clear]:
            clear -= 1
        return self.inner.predict_window(clear, start, length)


def inject_faults(scenario: Scenario, schedule: FaultSchedule) -> Scenario:
    """Bind ``schedule`` to ``scenario``; the one entry point for faults.

    Returns a new scenario whose true demand carries the surges, whose
    predictor is blackout-aware but *surge-blind* (it keeps forecasting the
    pre-surge trace — surges are unknown arrivals), and whose ``faults``
    field the engine and controllers consult for per-slot network state.
    """
    if scenario.faults is not None:
        raise ConfigurationError(
            "scenario already carries a fault schedule; compose events into "
            "one FaultSchedule instead of injecting twice"
        )
    schedule.validate(scenario.network)
    if schedule.is_empty:
        return replace(scenario, faults=schedule)
    emit("fault_injected", events=len(schedule.events))

    demand = scenario.demand
    factors = schedule.demand_factors(demand.horizon, demand.num_classes)
    if not np.all(factors == 1.0):
        demand = DemandMatrix(demand.rates * factors[:, :, None])

    predictor = scenario.predictor
    if schedule.blackout_mask(scenario.horizon).any():
        predictor = StalePredictor(predictor, schedule, scenario.horizon)

    return replace(scenario, demand=demand, predictor=predictor, faults=schedule)


def scenario_states(scenario: Scenario) -> FaultStates:
    """The scenario's per-slot effective state (nominal when fault-free)."""
    schedule = scenario.faults if scenario.faults is not None else FaultSchedule()
    return schedule.states(scenario.horizon, scenario.network)


def assert_feasible_under_faults(
    scenario: Scenario,
    x: FloatArray,
    y: FloatArray,
    *,
    atol: float = 1e-6,
) -> dict[str, float]:
    """Audit a realized trajectory against the *effective* constraints.

    Checks, per slot: integrality and the unit box; effective cache
    capacity; the coupling ``y <= x``; the effective bandwidth budget; and
    that down SBSs serve nothing. Raises :class:`ConfigurationError` on the
    first violation; returns the measured worst-case slacks (all ``<= 0``
    up to ``atol``) for machine-readable benchmark records.
    """
    net = scenario.network
    states = scenario_states(scenario)
    rates = scenario.demand.rates
    T = scenario.horizon

    if x.shape != (T, net.num_sbs, net.num_items):
        raise ConfigurationError(f"x has shape {x.shape}")
    if y.shape != (T, net.num_classes, net.num_items):
        raise ConfigurationError(f"y has shape {y.shape}")
    if np.any((x < -atol) | (x > 1 + atol)) or np.any(np.abs(x - np.round(x)) > atol):
        raise ConfigurationError("realized x is not a 0/1 trajectory")
    if np.any((y < -atol) | (y > 1 + atol)):
        raise ConfigurationError("realized y outside [0, 1]")

    used = x.sum(axis=2)  # (T, N)
    cache_slack = float((used - states.cache_sizes).max())
    if cache_slack > atol:
        raise ConfigurationError(
            f"effective cache capacity exceeded by {cache_slack:.3g}"
        )

    coupling_slack = float((y - x[:, net.class_sbs, :]).max())
    if coupling_slack > atol:
        raise ConfigurationError(
            f"coupling y <= x violated by {coupling_slack:.3g}"
        )

    load = (rates * y).sum(axis=2)  # (T, M)
    per_sbs = np.zeros((T, net.num_sbs))
    np.add.at(per_sbs, (slice(None), net.class_sbs), load)
    tol = atol * np.maximum(1.0, states.bandwidths)
    bandwidth_slack = float((per_sbs - states.bandwidths).max())
    if np.any(per_sbs > states.bandwidths + tol):
        raise ConfigurationError(
            f"effective bandwidth exceeded by {bandwidth_slack:.3g}"
        )

    down_service = float(np.where(~states.sbs_up, per_sbs, 0.0).max())
    if down_service > atol:
        raise ConfigurationError(
            f"a down SBS served {down_service:.3g} units of traffic"
        )

    return {
        "max_cache_violation": max(cache_slack, 0.0),
        "max_bandwidth_violation": max(bandwidth_slack, 0.0),
        "max_coupling_violation": max(coupling_slack, 0.0),
        "max_down_sbs_service": max(down_service, 0.0),
    }

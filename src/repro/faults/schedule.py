"""Deterministic, seedable fault schedules for resilience scenarios.

The paper's model (and the seed reproduction) assumes a static network:
fixed cache capacities ``C_n``, fixed bandwidths ``B_n``, an SBS that is
always reachable, and a predictor that always answers. A production edge
deployment violates every one of those assumptions routinely, so this
module defines the vocabulary of *faults* the simulation can inject:

- :class:`SbsOutage` — an SBS is unreachable for a window of slots (its
  bandwidth is effectively 0 and its cache cannot be updated);
- :class:`BandwidthDegradation` — ``B_n`` is scaled down for a window
  (backhaul congestion, radio interference);
- :class:`CacheDegradation` — ``C_n`` is scaled down for a window (disk
  pressure, partial hardware failure) — installed contents beyond the
  shrunken capacity must be evicted;
- :class:`DemandSurge` — true arrival rates are scaled up for a window
  (flash crowd), *without* the predictor being told;
- :class:`PredictorBlackout` — the forecasting service is down for a
  window of decision slots; controllers must act on stale forecasts.

A :class:`FaultSchedule` is an immutable, order-independent collection of
such events. It is pure data: the same schedule object produces the same
per-slot effective network state on every run, every backend, and every
executor — the determinism the resilience benchmark asserts. Schedules are
either built explicitly or drawn reproducibly via
:meth:`FaultSchedule.random`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.topology import Network
from repro.types import FloatArray, IntArray


def _check_window(start: int, duration: int, what: str) -> None:
    if start < 0:
        raise ConfigurationError(f"{what} start must be >= 0, got {start}")
    if duration <= 0:
        raise ConfigurationError(f"{what} duration must be positive, got {duration}")


def _check_factor(factor: float, what: str, *, lo: float, hi: float) -> None:
    if not lo <= factor <= hi:
        raise ConfigurationError(
            f"{what} factor must be in [{lo:g}, {hi:g}], got {factor}"
        )


@dataclass(frozen=True)
class SbsOutage:
    """SBS ``sbs`` is down during slots ``[start, start + duration)``.

    While down, the SBS serves no traffic (effective bandwidth 0) and its
    cache cannot be written; installed contents survive the outage.
    """

    sbs: int
    start: int
    duration: int

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration, "outage")
        if self.sbs < 0:
            raise ConfigurationError(f"sbs must be >= 0, got {self.sbs}")


@dataclass(frozen=True)
class BandwidthDegradation:
    """SBS ``sbs`` retains only ``factor`` of its bandwidth during the window."""

    sbs: int
    start: int
    duration: int
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration, "bandwidth degradation")
        _check_factor(self.factor, "bandwidth", lo=0.0, hi=1.0)
        if self.sbs < 0:
            raise ConfigurationError(f"sbs must be >= 0, got {self.sbs}")


@dataclass(frozen=True)
class CacheDegradation:
    """SBS ``sbs`` retains only ``floor(factor * C_n)`` cache slots during the window."""

    sbs: int
    start: int
    duration: int
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration, "cache degradation")
        _check_factor(self.factor, "cache", lo=0.0, hi=1.0)
        if self.sbs < 0:
            raise ConfigurationError(f"sbs must be >= 0, got {self.sbs}")


@dataclass(frozen=True)
class DemandSurge:
    """True arrival rates are multiplied by ``factor`` during the window.

    ``classes`` restricts the surge to specific MU classes (``None`` means
    all classes). The surge changes the *realized* demand only — predictors
    built before injection keep forecasting the pre-surge trace, which is
    exactly the unknown-arrivals stress the related work targets.
    """

    start: int
    duration: int
    factor: float
    classes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration, "demand surge")
        if self.factor < 0.0:
            raise ConfigurationError(f"surge factor must be >= 0, got {self.factor}")
        if self.classes is not None:
            object.__setattr__(self, "classes", tuple(int(c) for c in self.classes))


@dataclass(frozen=True)
class PredictorBlackout:
    """No fresh forecasts during decision slots ``[start, start + duration)``."""

    start: int
    duration: int

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration, "predictor blackout")


FaultEvent = (
    SbsOutage | BandwidthDegradation | CacheDegradation | DemandSurge | PredictorBlackout
)


@dataclass(frozen=True)
class SlotState:
    """Effective network parameters of one slot under a fault schedule."""

    cache_sizes: IntArray  # (N,)
    bandwidths: FloatArray  # (N,)
    sbs_up: np.ndarray  # (N,) bool
    predictor_blackout: bool


@dataclass(frozen=True)
class FaultStates:
    """Vectorized per-slot effective state over a whole horizon.

    Attributes
    ----------
    cache_sizes:
        Effective ``C_n`` per slot, shape ``(T, N)`` (int).
    bandwidths:
        Effective ``B_n`` per slot, shape ``(T, N)`` — 0 while down.
    sbs_up:
        Reachability mask, shape ``(T, N)`` (bool).
    demand_factor:
        Multiplier on true arrivals, shape ``(T, M)``.
    predictor_blackout:
        Blackout mask over decision slots, shape ``(T,)`` (bool).
    """

    cache_sizes: IntArray
    bandwidths: FloatArray
    sbs_up: np.ndarray
    demand_factor: FloatArray
    predictor_blackout: np.ndarray

    def slot(self, t: int) -> SlotState:
        return SlotState(
            cache_sizes=self.cache_sizes[t],
            bandwidths=self.bandwidths[t],
            sbs_up=self.sbs_up[t],
            predictor_blackout=bool(self.predictor_blackout[t]),
        )

    def segments(self) -> list[tuple[int, int]]:
        """Maximal runs ``[lo, hi)`` of slots with identical network state.

        Only the quantities that shape the load-balancing solve matter
        here (bandwidths and reachability); the engine re-solves ``y`` once
        per segment instead of once per slot.
        """
        T = self.bandwidths.shape[0]
        if T == 0:
            return []
        same = np.all(self.bandwidths[1:] == self.bandwidths[:-1], axis=1) & np.all(
            self.sbs_up[1:] == self.sbs_up[:-1], axis=1
        )
        breaks = [0, *list(np.nonzero(~same)[0] + 1), T]
        return [(breaks[i], breaks[i + 1]) for i in range(len(breaks) - 1)]


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable collection of fault events over a horizon.

    The schedule itself is pure data; all effects are derived views
    (:meth:`states`, :meth:`state_at`, :meth:`demand_factors`). Equality
    and hashing follow the event tuple, so two schedules built from the
    same seed compare equal.
    """

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(
                event,
                (
                    SbsOutage,
                    BandwidthDegradation,
                    CacheDegradation,
                    DemandSurge,
                    PredictorBlackout,
                ),
            ):
                raise ConfigurationError(
                    f"unknown fault event type {type(event).__name__!r}"
                )

    # ----------------------------------------------------------------- basics

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __iter__(self) -> Iterable[FaultEvent]:
        return iter(self.events)

    def extended(self, *events: FaultEvent) -> "FaultSchedule":
        """A new schedule with ``events`` appended."""
        return FaultSchedule(self.events + tuple(events))

    def validate(self, network: Network) -> None:
        """Raise if any event references an SBS or class outside ``network``."""
        for event in self.events:
            sbs = getattr(event, "sbs", None)
            if sbs is not None and sbs >= network.num_sbs:
                raise ConfigurationError(
                    f"{type(event).__name__} references SBS {sbs}, "
                    f"but the network has {network.num_sbs}"
                )
            classes = getattr(event, "classes", None)
            if classes is not None:
                for c in classes:
                    if not 0 <= c < network.num_classes:
                        raise ConfigurationError(
                            f"DemandSurge references class {c}, "
                            f"but the network has {network.num_classes}"
                        )

    # ------------------------------------------------------------ state views

    def states(self, horizon: int, network: Network) -> FaultStates:
        """The effective per-slot network state over ``horizon`` slots."""
        self.validate(network)
        T = int(horizon)
        N = network.num_sbs
        M = network.num_classes
        caps = np.broadcast_to(network.cache_sizes, (T, N)).copy()
        bw = np.broadcast_to(network.bandwidths, (T, N)).copy()
        up = np.ones((T, N), dtype=bool)
        demand_factor = np.ones((T, M))
        blackout = np.zeros(T, dtype=bool)

        for event in self.events:
            lo = min(event.start, T)
            hi = min(event.start + event.duration, T)
            if lo >= hi:
                continue
            if isinstance(event, SbsOutage):
                up[lo:hi, event.sbs] = False
            elif isinstance(event, BandwidthDegradation):
                bw[lo:hi, event.sbs] *= event.factor
            elif isinstance(event, CacheDegradation):
                shrunk = int(np.floor(event.factor * network.cache_sizes[event.sbs]))
                caps[lo:hi, event.sbs] = np.minimum(caps[lo:hi, event.sbs], shrunk)
            elif isinstance(event, DemandSurge):
                cols = (
                    slice(None)
                    if event.classes is None
                    else np.asarray(event.classes, dtype=np.int64)
                )
                demand_factor[lo:hi, cols] *= event.factor
            elif isinstance(event, PredictorBlackout):
                blackout[lo:hi] = True

        bw = np.where(up, bw, 0.0)
        return FaultStates(
            cache_sizes=caps.astype(np.int64),
            bandwidths=bw,
            sbs_up=up,
            demand_factor=demand_factor,
            predictor_blackout=blackout,
        )

    def state_at(self, t: int, network: Network) -> SlotState:
        """Effective network state of slot ``t`` (horizon-free convenience)."""
        return self.states(max(t + 1, 1), network).slot(max(t, 0))

    def demand_factors(self, horizon: int, num_classes: int) -> FloatArray:
        """Per-slot, per-class surge multipliers, shape ``(T, M)``."""
        T = int(horizon)
        factors = np.ones((T, num_classes))
        for event in self.events:
            if not isinstance(event, DemandSurge):
                continue
            lo = min(event.start, T)
            hi = min(event.start + event.duration, T)
            if lo >= hi:
                continue
            cols = (
                slice(None)
                if event.classes is None
                else np.asarray(event.classes, dtype=np.int64)
            )
            factors[lo:hi, cols] *= event.factor
        return factors

    def blackout_mask(self, horizon: int) -> np.ndarray:
        """Per-slot predictor-blackout mask, shape ``(T,)`` (bool)."""
        mask = np.zeros(int(horizon), dtype=bool)
        for event in self.events:
            if isinstance(event, PredictorBlackout):
                lo = min(event.start, int(horizon))
                hi = min(event.start + event.duration, int(horizon))
                mask[lo:hi] = True
        return mask

    def active_mask(self, horizon: int) -> np.ndarray:
        """Slots during which *any* fault event is active, shape ``(T,)``."""
        mask = np.zeros(int(horizon), dtype=bool)
        for event in self.events:
            lo = min(event.start, int(horizon))
            hi = min(event.start + event.duration, int(horizon))
            mask[lo:hi] = True
        return mask

    def last_fault_end(self) -> int:
        """One past the final slot touched by any event (0 when empty)."""
        return max((e.start + e.duration for e in self.events), default=0)

    # -------------------------------------------------------------- portable

    def to_dict(self) -> dict:
        """JSON-able rendering (used by the resilience benchmark record)."""
        return {
            "events": [
                {"type": type(event).__name__, **asdict(event)}
                for event in self.events
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSchedule":
        kinds = {
            "SbsOutage": SbsOutage,
            "BandwidthDegradation": BandwidthDegradation,
            "CacheDegradation": CacheDegradation,
            "DemandSurge": DemandSurge,
            "PredictorBlackout": PredictorBlackout,
        }
        events = []
        for entry in payload.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("type")
            if kind not in kinds:
                raise ConfigurationError(f"unknown fault event type {kind!r}")
            if entry.get("classes") is not None:
                entry["classes"] = tuple(entry["classes"])
            events.append(kinds[kind](**entry))
        return cls(tuple(events))

    # ------------------------------------------------------------- generation

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        horizon: int,
        num_sbs: int,
        num_classes: int | None = None,
        outages: int = 1,
        bandwidth_events: int = 1,
        cache_events: int = 0,
        surges: int = 0,
        blackouts: int = 0,
        max_duration: int | None = None,
        bandwidth_factor_range: tuple[float, float] = (0.3, 0.8),
        cache_factor_range: tuple[float, float] = (0.4, 0.8),
        surge_factor_range: tuple[float, float] = (1.5, 3.0),
    ) -> "FaultSchedule":
        """Draw a reproducible schedule: same arguments → identical events.

        Event windows are drawn uniformly over the horizon with durations
        up to ``max_duration`` (default ``max(2, horizon // 5)``). The
        stream is keyed only by ``seed`` and the argument values, never by
        global state, so serial/thread/process runs (and re-runs) see the
        same schedule.
        """
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if num_sbs <= 0:
            raise ConfigurationError(f"num_sbs must be positive, got {num_sbs}")
        rng = np.random.default_rng(seed)
        cap = max_duration if max_duration is not None else max(2, horizon // 5)
        cap = max(1, min(cap, horizon))

        def window() -> tuple[int, int]:
            duration = int(rng.integers(1, cap + 1))
            start = int(rng.integers(0, max(horizon - duration, 0) + 1))
            return start, duration

        events: list[FaultEvent] = []
        for _ in range(outages):
            start, duration = window()
            events.append(SbsOutage(int(rng.integers(0, num_sbs)), start, duration))
        for _ in range(bandwidth_events):
            start, duration = window()
            factor = float(rng.uniform(*bandwidth_factor_range))
            events.append(
                BandwidthDegradation(int(rng.integers(0, num_sbs)), start, duration, factor)
            )
        for _ in range(cache_events):
            start, duration = window()
            factor = float(rng.uniform(*cache_factor_range))
            events.append(
                CacheDegradation(int(rng.integers(0, num_sbs)), start, duration, factor)
            )
        for _ in range(surges):
            start, duration = window()
            factor = float(rng.uniform(*surge_factor_range))
            classes: tuple[int, ...] | None = None
            if num_classes is not None and num_classes > 1 and rng.random() < 0.5:
                count = int(rng.integers(1, num_classes))
                classes = tuple(
                    int(c) for c in rng.choice(num_classes, size=count, replace=False)
                )
            events.append(DemandSurge(start, duration, factor, classes))
        for _ in range(blackouts):
            start, duration = window()
            events.append(PredictorBlackout(start, duration))
        return cls(tuple(events))


def single_outage_with_degradation(
    *,
    sbs: int = 0,
    outage_start: int,
    outage_duration: int,
    degradation_start: int,
    degradation_duration: int,
    bandwidth_factor: float = 0.5,
) -> FaultSchedule:
    """The acceptance scenario: one SBS outage plus a bandwidth-drop window."""
    return FaultSchedule(
        (
            SbsOutage(sbs, outage_start, outage_duration),
            BandwidthDegradation(
                sbs, degradation_start, degradation_duration, bandwidth_factor
            ),
        )
    )


def schedules_equal(a: FaultSchedule, b: FaultSchedule) -> bool:
    """Structural equality helper (used by the determinism tests)."""
    return a.events == b.events


__all__: Sequence[str] = [
    "BandwidthDegradation",
    "CacheDegradation",
    "DemandSurge",
    "FaultEvent",
    "FaultSchedule",
    "FaultStates",
    "PredictorBlackout",
    "SbsOutage",
    "SlotState",
    "schedules_equal",
    "single_outage_with_degradation",
]

"""Baseline caching policies.

- :class:`LRFU` — the paper's comparison baseline (Section V-A): each slot
  every SBS caches the top-``C_n`` contents by current request volume.
- :class:`LFU`, :class:`LRU`, :class:`FIFO` — the classic rule-based
  policies the related-work section surveys, driven at slot granularity.
- :class:`StaticTopK` — clairvoyant static cache (never replaces).
- :class:`NoCache` — serves everything from the BS (upper reference).
- :class:`BeladyVolume` — clairvoyant hit-volume-optimal caching, showing
  that hit ratio is the wrong objective under weighted costs.
"""

from repro.baselines.belady import BeladyVolume
from repro.baselines.classic import FIFO, LFU, LRU
from repro.baselines.hysteresis import HysteresisCache
from repro.baselines.lrfu import LRFU
from repro.baselines.static import NoCache, StaticTopK

__all__ = [
    "BeladyVolume",
    "FIFO",
    "HysteresisCache",
    "LFU",
    "LRFU",
    "LRU",
    "NoCache",
    "StaticTopK",
]

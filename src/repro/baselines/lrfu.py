"""LRFU — the paper's baseline (Section V-A).

The paper combines LRU and LFU into "LRFU": *"at each timeslot, SBSs cache
the contents ranking by the MUs' requests number from high to low with the
limitation of the cache size"*, using accurate (noise-free) request
information. With the paper's stationary request pattern the ranking is
constant, so LRFU's caches — and hence its replacement count — do not vary
with ``beta`` or with prediction noise, exactly the flat curves of
Figs. 2c and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenario import PolicyPlan, Scenario


@dataclass(frozen=True)
class LRFU:
    """Cache the top-``C_n`` contents by current-slot request volume."""

    @property
    def name(self) -> str:
        return "LRFU"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        net = scenario.network
        T = scenario.horizon
        x = np.zeros((T, net.num_sbs, net.num_items))
        for n in range(net.num_sbs):
            classes = net.classes_of_sbs[n]
            cap = int(net.cache_sizes[n])
            if cap == 0:
                continue
            # Aggregate per-item demand of this SBS's classes, per slot.
            volume = scenario.demand.rates[:, classes, :].sum(axis=1)  # (T, K)
            top = np.argsort(-volume, axis=1, kind="stable")[:, :cap]
            for t in range(T):
                requested = volume[t, top[t]] > 0
                x[t, n, top[t][requested]] = 1.0
        return PolicyPlan(x=x, y=None, solves=0)

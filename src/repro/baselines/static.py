"""Static reference policies: clairvoyant top-K and no caching at all."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenario import PolicyPlan, Scenario


@dataclass(frozen=True)
class StaticTopK:
    """Cache the horizon-average top-``C_n`` items once and never replace.

    Clairvoyant (it sees the whole trace) but static: with the paper's
    stationary demand it pays replacement cost exactly once, which makes
    it a useful lower reference for replacement-count plots.
    """

    @property
    def name(self) -> str:
        return "StaticTopK"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        net = scenario.network
        T = scenario.horizon
        x = np.zeros((T, net.num_sbs, net.num_items))
        for n in range(net.num_sbs):
            classes = net.classes_of_sbs[n]
            cap = int(net.cache_sizes[n])
            if cap == 0:
                continue
            volume = scenario.demand.rates[:, classes, :].sum(axis=(0, 1))  # (K,)
            top = np.argsort(-volume, kind="stable")[:cap]
            top = top[volume[top] > 0]
            x[:, n, top] = 1.0
        return PolicyPlan(x=x, y=None, solves=0)


@dataclass(frozen=True)
class NoCache:
    """Serve every request from the BS (caches stay empty).

    The upper reference: the worst admissible policy under the model, since
    it forgoes all offloading and pays the full quadratic BS cost.
    """

    @property
    def name(self) -> str:
        return "NoCache"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        x = np.zeros(
            (scenario.horizon, scenario.network.num_sbs, scenario.network.num_items)
        )
        return PolicyPlan(x=x, y=None, solves=0)

"""Classic rule-based cache replacement: LFU, LRU, FIFO.

The related-work section of the paper surveys these as the first family of
edge-caching schemes ("FIFO, Least Recently Used (LRU), Least Frequently
Used (LFU), or their variants"). They are implemented here at slot
granularity over the demand trace:

- Every slot, items with positive demand at an SBS are *candidates*.
- A candidate missing from the cache is inserted if the policy's score
  ranks it above the current worst cached item (which is then evicted);
  plain insert-on-any-request would thrash when more than ``C_n`` items
  are requested per slot, which is the common case in the paper's setting.
- Scores: LFU — cumulative request volume; LRU — last-requested slot
  (ties by current volume); FIFO — insertion slot (never "refreshed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.scenario import PolicyPlan, Scenario
from repro.types import FloatArray


def _run_scored_policy(
    scenario: Scenario,
    score_update: Callable[[FloatArray, FloatArray, int], FloatArray],
    *,
    refresh_on_hit: bool,
) -> FloatArray:
    """Shared eviction loop; ``score_update(scores, volume, t)`` returns the
    per-item scores after observing slot ``t`` (higher = more valuable)."""
    net = scenario.network
    T = scenario.horizon
    K = net.num_items
    x = np.zeros((T, net.num_sbs, K))
    for n in range(net.num_sbs):
        classes = net.classes_of_sbs[n]
        cap = int(net.cache_sizes[n])
        if cap == 0:
            continue
        cached: set[int] = set()
        scores = np.zeros(K)
        inserted_at = np.full(K, -1.0)
        for t in range(T):
            volume = scenario.demand.rates[t, classes, :].sum(axis=0)
            scores = score_update(scores, volume, t)
            requested = np.flatnonzero(volume > 0)
            # Insert best-scoring missing candidates while they beat the
            # worst cached item (or there is free space).
            for k in sorted(requested, key=lambda i: -scores[i]):
                if k in cached:
                    if refresh_on_hit:
                        inserted_at[k] = t
                    continue
                if len(cached) < cap:
                    cached.add(k)
                    inserted_at[k] = t
                    continue
                worst = min(cached, key=lambda i: (scores[i], inserted_at[i]))
                if scores[k] > scores[worst]:
                    cached.discard(worst)
                    cached.add(k)
                    inserted_at[k] = t
            x[t, n, list(cached)] = 1.0
    return x


@dataclass(frozen=True)
class LFU:
    """Least Frequently Used: evict the smallest cumulative request volume."""

    @property
    def name(self) -> str:
        return "LFU"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        def update(scores: FloatArray, volume: FloatArray, t: int) -> FloatArray:
            return scores + volume

        x = _run_scored_policy(scenario, update, refresh_on_hit=False)
        return PolicyPlan(x=x, y=None, solves=0)


@dataclass(frozen=True)
class LRU:
    """Least Recently Used: evict the item requested longest ago.

    Slot-granular recency: the score of an item requested in slot ``t`` is
    ``t`` plus a small volume tie-break within the slot.
    """

    @property
    def name(self) -> str:
        return "LRU"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        def update(scores: FloatArray, volume: FloatArray, t: int) -> FloatArray:
            vmax = float(volume.max()) if volume.size else 0.0
            tie = volume / (vmax + 1.0)
            return np.where(volume > 0, t + tie, scores)

        x = _run_scored_policy(scenario, update, refresh_on_hit=True)
        return PolicyPlan(x=x, y=None, solves=0)


@dataclass(frozen=True)
class FIFO:
    """First-In-First-Out: evict the oldest insertion.

    Admission is filtered (a missing item enters only when its current-slot
    volume beats the oldest cached item's current volume) so the policy
    does not cycle the whole catalog through the cache every slot; eviction
    order is strictly insertion time.
    """

    @property
    def name(self) -> str:
        return "FIFO"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        net = scenario.network
        T = scenario.horizon
        K = net.num_items
        x = np.zeros((T, net.num_sbs, K))
        for n in range(net.num_sbs):
            classes = net.classes_of_sbs[n]
            cap = int(net.cache_sizes[n])
            if cap == 0:
                continue
            queue: list[int] = []  # oldest first
            for t in range(T):
                volume = scenario.demand.rates[t, classes, :].sum(axis=0)
                for k in sorted(np.flatnonzero(volume > 0), key=lambda i: -volume[i]):
                    if k in queue:
                        continue
                    if len(queue) < cap:
                        queue.append(int(k))
                    elif volume[k] > volume[queue[0]]:
                        queue.pop(0)
                        queue.append(int(k))
                x[t, n, queue] = 1.0
        return PolicyPlan(x=x, y=None, solves=0)

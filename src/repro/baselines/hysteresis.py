"""Hysteresis caching: a prediction-free, switching-cost-aware online policy.

The classic ski-rental/lazy-provisioning idea applied to per-item caching:
track, for each item, the *cumulative foregone benefit* since it was last
(not) cached, and change the cache only when that regret exceeds the
replacement cost ``beta_n``. Unlike LRFU it never chases one-slot noise;
unlike RHC it needs no forecasts at all — only the current slot's demand.

Per SBS ``n`` and slot ``t``:

1. score each item by its current-slot *offload value*: the demand volume
   it could absorb, weighted by its requesters' ``omega`` (the same
   quantity the optimum trades against bandwidth);
2. accumulate ``regret[k] += max(score[k] - score[weakest cached], 0)``
   for uncached items;
3. when an uncached item's regret exceeds ``hysteresis * beta_n``, swap it
   in for the currently weakest cached item and reset both regrets.

This is a 2-competitive-style rule for each pairwise swap decision; it is
included both as a stronger baseline than LRFU and as a reference point
for how much of the online algorithms' gain requires predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.scenario import PolicyPlan, Scenario


@dataclass(frozen=True)
class HysteresisCache:
    """Swap an item in only after its cumulative regret exceeds ``beta``.

    Parameters
    ----------
    hysteresis:
        Multiplier on ``beta_n`` before a swap fires. 1.0 is the
        ski-rental break-even; larger values switch later (more inertia).
    """

    hysteresis: float = 1.0

    def __post_init__(self) -> None:
        if self.hysteresis <= 0:
            raise ConfigurationError(
                f"hysteresis must be positive, got {self.hysteresis}"
            )

    @property
    def name(self) -> str:
        return "Hysteresis"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        net = scenario.network
        T = scenario.horizon
        K = net.num_items
        x = np.zeros((T, net.num_sbs, K))
        for n in range(net.num_sbs):
            classes = net.classes_of_sbs[n]
            cap = int(net.cache_sizes[n])
            if cap == 0:
                continue
            beta = float(net.replacement_costs[n])
            threshold = self.hysteresis * beta
            omega = net.omega_bs[classes]
            cached: np.ndarray = np.array([], dtype=np.int64)
            regret = np.zeros(K)
            for t in range(T):
                volume = scenario.demand.rates[t, classes, :]  # (|M_n|, K)
                score = (omega[:, None] * volume).sum(axis=0)  # (K,)

                # Fill free slots immediately (first fetch is unavoidable).
                if cached.size < cap:
                    candidates = np.argsort(-score, kind="stable")
                    for k in candidates:
                        if cached.size >= cap:
                            break
                        if k not in cached and score[k] > 0:
                            cached = np.append(cached, k)

                if cached.size:
                    weakest_idx = cached[np.argmin(score[cached])]
                    floor = score[weakest_idx]
                    # Accumulate regret for outside items beating the floor.
                    outside = np.setdiff1d(
                        np.arange(K), cached, assume_unique=False
                    )
                    regret[outside] += np.clip(score[outside] - floor, 0.0, None)
                    regret[cached] = 0.0
                    # Fire at most one swap per slot (cheapest sufficient).
                    best_out = outside[np.argmax(regret[outside])] if outside.size else None
                    if (
                        best_out is not None
                        and regret[best_out] > threshold
                        and cached.size >= cap
                    ):
                        cached = cached[cached != weakest_idx]
                        cached = np.append(cached, best_out)
                        regret[best_out] = 0.0
                x[t, n, cached] = 1.0
        return PolicyPlan(x=x, y=None, solves=0)

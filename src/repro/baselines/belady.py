"""Belady-style clairvoyant hit-ratio caching.

Belady's MIN is the hit-ratio-optimal eviction rule for unit-cost caches:
evict the item whose next use is farthest in the future. Adapted to the
slot/volume model, the closest analogue caches, each slot, the ``C_n``
items with the largest *discounted future demand volume* at the SBS.

Included as an instructive baseline: it is clairvoyant and maximizes
(discounted) hit volume, yet it still loses to the paper's optimization
because hit volume is the wrong objective here — it ignores the per-class
BS weights ``omega_m``, the bandwidth cap, and the replacement cost
``beta_n``. The gap between Belady and the offline optimum isolates how
much of the paper's gain comes from *joint, cost-aware* optimization
rather than from clairvoyance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.scenario import PolicyPlan, Scenario


@dataclass(frozen=True)
class BeladyVolume:
    """Cache the top-``C_n`` items by discounted future demand volume.

    Parameters
    ----------
    discount:
        Per-slot geometric discount on future volume (1.0 = plain total
        future volume; smaller values emphasize the near future the way
    	Belady's next-use rule does).
    lookahead:
        Horizon of the future window considered (``None`` = to trace end).
    """

    discount: float = 0.7
    lookahead: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.discount <= 1.0:
            raise ConfigurationError(f"discount must be in (0, 1], got {self.discount}")
        if self.lookahead is not None and self.lookahead <= 0:
            raise ConfigurationError(
                f"lookahead must be positive, got {self.lookahead}"
            )

    @property
    def name(self) -> str:
        return "BeladyVolume"

    def plan(self, scenario: Scenario) -> PolicyPlan:
        net = scenario.network
        T = scenario.horizon
        x = np.zeros((T, net.num_sbs, net.num_items))
        horizon = T if self.lookahead is None else self.lookahead
        weights = self.discount ** np.arange(horizon, dtype=np.float64)
        for n in range(net.num_sbs):
            classes = net.classes_of_sbs[n]
            cap = int(net.cache_sizes[n])
            if cap == 0:
                continue
            volume = scenario.demand.rates[:, classes, :].sum(axis=1)  # (T, K)
            for t in range(T):
                future = volume[t : min(t + horizon, T)]
                score = (weights[: future.shape[0], None] * future).sum(axis=0)
                top = np.argsort(-score, kind="stable")[:cap]
                top = top[score[top] > 0]
                x[t, n, top] = 1.0
        return PolicyPlan(x=x, y=None, solves=0)

"""Performance infrastructure: executors (parallel fan-out) and timers.

See ``DESIGN.md`` ("Performance architecture") for how the pieces fit:
:mod:`repro.perf.executor` is the shared serial/thread/process execution
layer used by the per-SBS, distributed, and sweep fan-outs, and
:mod:`repro.perf.timers` provides the stage timers surfaced in solver
results and ``BENCH_*.json`` reports.
"""

from repro.perf.executor import (
    EXECUTOR_ENV,
    WORKERS_ENV,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_workers,
    get_executor,
    in_worker,
    parse_spec,
    resolve_executor,
)
from repro.perf.timers import StageTimers

__all__ = [
    "EXECUTOR_ENV",
    "WORKERS_ENV",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "StageTimers",
    "default_workers",
    "get_executor",
    "in_worker",
    "parse_spec",
    "resolve_executor",
]

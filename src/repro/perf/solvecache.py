"""Incremental re-solve state shared across Algorithm 1 invocations.

Algorithm 1 calls ``solve_caching`` once per subgradient iteration, and the
online controllers repeat that over windows overlapping in ``w - 1`` slots,
so near-identical per-SBS ``P1`` subproblems are solved thousands of times
per run. :class:`SolveCache` carries the three pieces of reuse state that
make the repeats cheap (DESIGN.md, "Incremental re-solve"):

- an exact **per-SBS memo**: each SBS solve is keyed on a blake2b digest of
  its ``(c_slice, x_initial_slice, cap, beta)`` bytes; a hit skips the
  solve entirely and returns the stored ``(x, objective)``. Because the key
  is digest-exact, hits cannot change any numeric output — a hit is the
  bitwise answer a cold solve would produce.
- per-SBS **warm flow states** (:class:`repro.optim.mincostflow.FlowState`):
  the previous solve's flow and node potentials, resumed instead of
  cold-started on a miss. A resume only pays off when the price change
  left the retained flow (near-)optimal — large subgradient steps create
  negative residual cycles and every attempt bails to a cold solve — so
  consecutive bails put the state key on an exponential cooldown
  (:meth:`SolveCache.warm_state_for`), with periodic re-probes that
  re-enable resumes as soon as the ascent settles into small steps. A key
  whose cooldown would exceed :data:`BACKOFF_CAP` has demonstrably
  price-flip-dominated dynamics (every settle attempt burns the full SPFA
  budget before bailing), so it is **disabled outright**: its state is
  dropped, no further resumes are attempted for the life of the cache,
  and the decision is counted (``flow_warm_disabled_keys``).
- plain **hit/miss counters**, incremented by the owner in the parent
  process (ContextVars do not cross pool workers), so recorded metric
  streams stay byte-identical across serial/thread/process executors.

A cache is owned by one logical solve sequence — a controller ``plan()``
or a single ``solve_primal_dual`` call — never shared across concurrently
running plans, which keeps counter ordering deterministic.
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.types import FloatArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.optim.mincostflow import FlowState

#: Memo entries retained per cache (LRU). A 100-slot online run performs a
#: few hundred subgradient iterations, each contributing one entry per SBS,
#: so the default never evicts in practice while still bounding memory.
MEMO_LIMIT = 4096

#: Longest resume cooldown (in skipped attempts) a key can accumulate.
#: A strike that would push the cooldown past this cap permanently
#: disables warm resume for the key instead (see :meth:`SolveCache.note_resume`).
BACKOFF_CAP = 64


#: Price quantum of the opt-in banded memo key: prices within the same
#: 1e-9-wide band hash identically. Half a band is the largest price
#: perturbation a banded hit can hide, so the reused trajectory's
#: suboptimality is bounded by ``quantum * T * K`` — far inside the 1e-9
#: *relative* reproduction envelope for the paper's cost magnitudes.
P1_QUANTUM = 1e-9


def p1_digest(c: FloatArray, beta: float, cap: int, x0: FloatArray) -> bytes:
    """Exact identity of one SBS's ``P1`` subproblem, as a blake2b digest.

    Keyed on the raw bytes of the price slice and initial cache state plus
    the packed ``(cap, beta)`` scalars and the slice shape — byte-equal
    inputs, and only byte-equal inputs, collide (up to hash collisions,
    negligible at 16-byte digests).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(struct.pack("<qqqd", c.shape[0], c.shape[1], cap, beta))
    h.update(np.ascontiguousarray(c).tobytes())
    h.update(np.ascontiguousarray(x0).tobytes())
    return h.digest()


def p1_quantized_digest(
    c: FloatArray, beta: float, cap: int, x0: FloatArray, *, quantum: float = P1_QUANTUM
) -> bytes:
    """Tolerance-banded ``P1`` digest: prices rounded to ``quantum`` bands.

    Subgradient iterates whose prices drift by less than half a band map
    to the same key, so a near-repeat can be answered from the memo. Only
    the prices are banded — ``(cap, beta, x0)`` stay exact, because a
    banded hit reuses the stored *trajectory* and any difference there
    changes the feasible set, not just the objective. Callers must
    re-evaluate the objective against the actual prices on a banded hit
    (:meth:`SolveCache.lookup_banded` flags those).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(struct.pack("<qqqdd", c.shape[0], c.shape[1], cap, beta, quantum))
    h.update(np.round(np.asarray(c, dtype=np.float64) / quantum).tobytes())
    h.update(np.ascontiguousarray(x0).tobytes())
    return h.digest()


@dataclass
class SolveCache:
    """Reuse state for a sequence of related ``P1`` solves.

    Attributes
    ----------
    memo:
        LRU digest -> ``(x_bits, objective)`` map; ``x_bits`` is the
        integral trajectory stored compactly as ``uint8``.
    flow_states:
        Per-SBS warm-resume snapshots for the flow backend.
    hits, misses:
        Memo lookup counters (exact skips vs. real solves).
    quant_hits:
        The subset of hits that a banded (quantized) key answered from an
        entry solved for different raw prices — the extra reuse the
        opt-in quantized memo bought over the exact digest.
    warm_resumes, warm_bailouts:
        Flow solves that started from a retained state, and the subset
        whose settle failed so they fell back to a cold solve.
    resume_backoff:
        Per state key ``[strikes, cooldown]``: consecutive bails and the
        number of upcoming attempts to skip (doubling per strike). A
        settled resume clears the entry; a strike whose cooldown would
        exceed :data:`BACKOFF_CAP` moves the key to ``resume_disabled``
        instead.
    resume_disabled:
        State keys whose warm resume is permanently off for this cache's
        lifetime: their bail streak exhausted the backoff schedule, so
        every further attempt would burn the settle budget for nothing.
        ``len(resume_disabled)`` is the ``flow_warm_disabled_keys``
        counter.
    """

    memo: "OrderedDict[bytes, tuple[np.ndarray, float, bytes | None]]" = field(
        default_factory=OrderedDict
    )
    flow_states: "dict[tuple[int, int, int, int], FlowState]" = field(
        default_factory=dict
    )
    hits: int = 0
    misses: int = 0
    quant_hits: int = 0
    warm_resumes: int = 0
    warm_bailouts: int = 0
    memo_limit: int = MEMO_LIMIT
    resume_backoff: "dict[tuple[int, int, int, int], list[int]]" = field(
        default_factory=dict
    )
    resume_disabled: "set[tuple[int, int, int, int]]" = field(default_factory=set)

    def lookup(self, key: bytes) -> tuple[FloatArray, float] | None:
        """Return the memoized ``(x, objective)`` for ``key``, if present.

        Counts the hit/miss; the returned trajectory is a fresh float
        array (callers may write it into larger buffers).
        """
        entry = self.memo.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self.memo.move_to_end(key)
        x_bits, obj, _ = entry
        return x_bits.astype(np.float64), obj

    def lookup_banded(
        self, key: bytes, exact_key: bytes
    ) -> tuple[FloatArray, float, bool] | None:
        """Lookup under a quantized key; flags hits that crossed a band.

        Returns ``(x, objective, banded)`` where ``banded`` is True when
        the stored entry was solved for *different* raw prices inside the
        same band — the caller must then re-evaluate the objective against
        its actual prices (the trajectory itself stays valid: the feasible
        set does not depend on prices).
        """
        entry = self.memo.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self.memo.move_to_end(key)
        x_bits, obj, stored_exact = entry
        banded = stored_exact != exact_key
        if banded:
            self.quant_hits += 1
        return x_bits.astype(np.float64), obj, banded

    def store(
        self,
        key: bytes,
        x: FloatArray,
        objective: float,
        *,
        exact_key: bytes | None = None,
    ) -> None:
        """Memoize a solved ``(x, objective)`` under ``key`` (LRU-bounded).

        ``exact_key`` records the exact digest of the solved subproblem so
        banded lookups can tell same-bytes hits from cross-band reuse.
        """
        self.memo[key] = (x.astype(np.uint8), objective, exact_key)
        self.memo.move_to_end(key)
        while len(self.memo) > self.memo_limit:
            self.memo.popitem(last=False)

    def warm_state_for(
        self, state_key: tuple[int, int, int, int]
    ) -> "FlowState | None":
        """The stored warm state for ``state_key``, unless it is cooling down.

        Each call during a cooldown consumes one tick, so the key is
        automatically re-probed when the cooldown runs out. Disabled keys
        never return a state.
        """
        if state_key in self.resume_disabled:
            return None
        state = self.flow_states.get(state_key)
        if state is None:
            return None
        backoff = self.resume_backoff.get(state_key)
        if backoff is not None and backoff[1] > 0:
            backoff[1] -= 1
            return None
        return state

    def is_resume_disabled(self, state_key: tuple[int, int, int, int]) -> bool:
        """Whether warm resume is permanently off for ``state_key``."""
        return state_key in self.resume_disabled

    def note_resume(self, state_key: tuple[int, int, int, int], bailed: bool) -> bool:
        """Record a resume outcome, updating the key's backoff schedule.

        Returns ``True`` when *this* outcome disabled the key: the bail
        streak's next cooldown would exceed :data:`BACKOFF_CAP`, so rather
        than re-probing forever the key's warm state is dropped and resume
        is switched off for the cache's lifetime. Callers surface the
        decision as the ``flow_warm_disabled_keys`` counter.
        """
        if not bailed:
            self.resume_backoff.pop(state_key, None)
            return False
        backoff = self.resume_backoff.setdefault(state_key, [0, 0])
        backoff[0] += 1
        cooldown = 1 << backoff[0]
        if cooldown > BACKOFF_CAP:
            self.resume_backoff.pop(state_key, None)
            self.flow_states.pop(state_key, None)
            self.resume_disabled.add(state_key)
            return True
        backoff[1] = cooldown
        return False

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the memo (0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Counter snapshot for telemetry and benchmark reports."""
        return {
            "p1_memo_hits": self.hits,
            "p1_memo_misses": self.misses,
            "p1_memo_hit_rate": self.hit_rate,
            "p1_quant_memo_hits": self.quant_hits,
            "flow_warm_resumes": self.warm_resumes,
            "flow_warm_bailouts": self.warm_bailouts,
            "flow_warm_disabled_keys": len(self.resume_disabled),
        }

"""Lightweight stage timers for the solver hot paths.

A :class:`StageTimers` accumulates wall-clock seconds per named stage with
one ``perf_counter`` pair per measurement — cheap enough to leave on in
production solves. Algorithm 1 times its ``p1`` / ``p2`` / ``repair``
stages and surfaces the totals on :class:`~repro.core.primal_dual.
PrimalDualResult.timings`; the benchmark harness folds the same dicts into
the machine-readable ``BENCH_*.json`` reports.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence


class StageTimers:
    """Accumulate wall-clock time and call counts per named stage."""

    __slots__ = ("_seconds", "_calls")

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    def add(self, stage: str, seconds: float, calls: int = 1) -> None:
        """Record ``seconds`` of wall-clock time against ``stage``."""
        self._seconds[stage] = self._seconds.get(stage, 0.0) + float(seconds)
        self._calls[stage] = self._calls.get(stage, 0) + calls

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block against ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def merge(
        self,
        other: "StageTimers | Mapping[str, float | Sequence[float]]",
    ) -> None:
        """Fold another timer's totals into this one (for reductions).

        Accepts another :class:`StageTimers`, a plain ``{stage: seconds}``
        mapping (each entry counts as one call), or a
        ``{stage: (seconds, calls)}`` mapping as produced by
        :meth:`as_pairs` — the round-trip form that preserves call counts
        through JSON, so merged reports stop under-counting per-call
        latency.
        """
        if isinstance(other, StageTimers):
            for name, seconds in other._seconds.items():
                self.add(name, seconds, other._calls.get(name, 1))
            return
        for name, value in other.items():
            if isinstance(value, (int, float)):
                self.add(name, float(value))
            else:
                seconds, calls = value
                self.add(name, float(seconds), int(calls))

    def seconds(self, stage: str) -> float:
        return self._seconds.get(stage, 0.0)

    def calls(self, stage: str) -> int:
        return self._calls.get(stage, 0)

    def as_dict(self) -> dict[str, float]:
        """Stage totals in insertion order, ready for JSON serialization."""
        return dict(self._seconds)

    def as_pairs(self) -> dict[str, tuple[float, int]]:
        """``{stage: (seconds, calls)}`` — JSON round-trips via ``merge``."""
        return {
            name: (seconds, self._calls.get(name, 1))
            for name, seconds in self._seconds.items()
        }

    def report(self) -> str:
        """One line per stage: ``name  total_s  calls  per_call_ms``."""
        lines = []
        for name, total in self._seconds.items():
            calls = self._calls.get(name, 1)
            per_call = 1000.0 * total / max(calls, 1)
            lines.append(f"{name:<12}{total:>10.3f}s{calls:>8}x{per_call:>10.2f}ms")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in self._seconds.items())
        return f"StageTimers({inner})"

"""Strategy-matrix benchmark — the ``repro bench matrix`` backend.

Runs the Section V-C(1) headline comparison through every cell of the
(executor x incremental) strategy grid — serial, thread pools and process
pools at the requested worker counts, each with the incremental re-solve
layer off and on — and emits one ``repro bench diff``-compatible record:

- every cell's wall-time lands as a top-level ``<cell>_seconds`` field, so
  two matrix records diff cell-by-cell with the ordinary wall-time gate;
- the cost metrics of the serial/incremental-off baseline are embedded as
  the ``sweep`` payload, so ``--gate-costs`` works across matrix records;
- ``costs_identical`` asserts the determinism contract *within* the run:
  every cell must reproduce the baseline's cost metrics bit for bit
  (executors and the memo layer select strategy, not semantics).

Worker counts are clamped to ``[2, 8]`` per the CI matrix contract and to
the host's core count (a pool wider than the host only measures
oversubscription noise).
"""

from __future__ import annotations

import os
import time
from typing import Sequence

from repro.config import RuntimeConfig, resolved_bw_closed_form
from repro.exceptions import ConfigurationError
from repro.obs import Recorder, record_into

#: Counters snapshotted from the serial baseline cell.
_SOLVE_COUNTERS = (
    "p1_memo_hits",
    "p1_memo_misses",
    "p1_batched_solves",
    "p1_batched_fallbacks",
    "p2_bw_bound_rows",
    "p2_bw_closed_form",
    "p2_bisection_fallbacks",
)


def _cost_metrics(sweep) -> dict:
    """All recorded metrics except the timing measurement."""
    return {
        name: {m: v for m, v in vals.items() if m != "wall_time"}
        for name, vals in sweep.points[0].metrics.items()
    }


def matrix_cells(
    workers: Sequence[int], cpu_count: int | None = None
) -> list[tuple[str, str]]:
    """The ``(label, executor spec)`` grid, one entry per strategy cell.

    Labels are stable identifiers (``serial``, ``thread4``, ``process2``)
    used to build the record's ``<label>_inc_<off|on>_seconds`` keys.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    ws: list[int] = []
    for w in workers:
        w = int(w)
        if not 2 <= w <= 8:
            raise ConfigurationError(
                f"matrix worker counts must be in [2, 8], got {w}"
            )
        w = min(w, max(2, cpus))
        if w not in ws:
            ws.append(w)
    cells = [("serial", "serial")]
    for kind in ("thread", "process"):
        for w in sorted(ws):
            cells.append((f"{kind}{w}", f"{kind}:{w}"))
    return cells


def run_bench_matrix(
    *,
    beta: float = 50.0,
    seeds: Sequence[int] = (1,),
    horizon: int = 20,
    workers: Sequence[int] = (2, 4),
    verbose: bool = False,
) -> dict:
    """Run the full strategy matrix; returns the benchmark record."""
    from repro.api import headline_comparison, sweep_to_dict

    cpu_count = os.cpu_count() or 1
    cells = matrix_cells(workers, cpu_count)
    record: dict = {
        "bench": "matrix",
        "beta": beta,
        "horizon": horizon,
        "seeds": list(int(s) for s in seeds),
        "bw_closed_form": resolved_bw_closed_form(None),
        "cpu_count": cpu_count,
        "cells": [],
    }
    baseline_metrics = None
    costs_identical = True
    for incremental in (False, True):
        config = RuntimeConfig(incremental=incremental)
        for label, spec in cells:
            recorder = Recorder()
            started = time.perf_counter()
            with record_into(recorder):
                sweep = headline_comparison(
                    beta=beta,
                    seeds=seeds,
                    horizon=horizon,
                    executor=None if spec == "serial" else spec,
                    config=config,
                )
            elapsed = time.perf_counter() - started
            key = f"{label}_inc_{'on' if incremental else 'off'}"
            record[f"{key}_seconds"] = elapsed
            record["cells"].append(key)
            metrics = _cost_metrics(sweep)
            if baseline_metrics is None:
                # Serial / incremental-off is the first cell visited: it
                # is the baseline whose sweep payload the record carries.
                baseline_metrics = metrics
                record["sweep"] = sweep_to_dict(sweep)
                record["solve_counters"] = {
                    name: recorder.metrics.counter(name)
                    for name in _SOLVE_COUNTERS
                }
            elif metrics != baseline_metrics:
                costs_identical = False
            if verbose:
                print(f"  {key:<24} {elapsed:8.2f}s")
    record["costs_identical"] = costs_identical
    counters = record["solve_counters"]
    # The bound-row accounting identity must hold on the baseline cell.
    if (
        counters["p2_bw_closed_form"] + counters["p2_bisection_fallbacks"]
        != counters["p2_bw_bound_rows"]
    ):
        raise AssertionError(
            "P2 bound-row accounting broken: "
            f"{counters['p2_bw_closed_form']} closed + "
            f"{counters['p2_bisection_fallbacks']} fallbacks != "
            f"{counters['p2_bw_bound_rows']} bound"
        )
    return record

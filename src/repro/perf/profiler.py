"""Profile a benchmark leg under ``cProfile`` — ``repro bench profile``.

Answers "where does the time go" from the same artifacts CI already
ships: the leg runs exactly as ``repro bench`` would run it (pytest on
``benchmarks/bench_<leg>.py`` at the requested ``REPRO_BENCH_SCALE``),
wrapped in a :class:`cProfile.Profile`, and the result lands as a
deterministic text table next to the leg's ``BENCH_*.json``.

Deterministic here means the *shape* of the artifact: rows are sorted by
cumulative time with a stable ``(path, line, function)`` tiebreak, paths
are rendered repo-relative (interpreter-install prefixes are stripped so
two hosts produce comparable rows), floats are fixed-width. The measured
times themselves naturally vary run to run — the artifact is for reading
hot spots, not for gating.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from pathlib import Path
from typing import Callable

__all__ = ["profile_bench", "render_profile"]

#: Rows emitted into the table by default.
DEFAULT_TOP = 30

#: Directory-name markers after which a non-repo path becomes readable and
#: host-independent (``.../site-packages/numpy/core/fromnumeric.py`` ->
#: ``numpy/core/fromnumeric.py``).
_PATH_MARKERS = ("site-packages", "dist-packages")


def _render_location(filename: str, line: int, func: str, repo_root: Path) -> str:
    """One profile row's code location, repo-relative and host-independent."""
    if filename in ("~", ""):  # built-ins carry the name in ``func``
        return func
    p = Path(filename)
    try:
        rel = p.resolve().relative_to(repo_root.resolve()).as_posix()
    except (ValueError, OSError):
        parts = p.parts
        rel = None
        for marker in _PATH_MARKERS:
            if marker in parts:
                idx = len(parts) - 1 - parts[::-1].index(marker)
                tail = parts[idx + 1 :]
                if tail:
                    rel = "/".join(tail)
                    break
        if rel is None:
            # Stdlib (or anything else outside the repo): keep the last two
            # components so ``python3.x/threading.py`` stays recognizable.
            rel = "/".join(p.parts[-2:]) if len(p.parts) >= 2 else p.name
    return f"{rel}:{line}({func})"


def render_profile(
    stats: pstats.Stats,
    *,
    repo_root: Path,
    top: int = DEFAULT_TOP,
    header: str = "",
) -> str:
    """Render a :class:`pstats.Stats` as the deterministic top-N table."""
    rows = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        location = _render_location(filename, line, func, repo_root)
        rows.append((ct, tt, nc, cc, location))
    # Primary order: cumulative time, descending. Ties (and near-ties) are
    # broken by the rendered location so reruns list identical rows in an
    # identical order.
    rows.sort(key=lambda r: (-r[0], r[4]))
    out = io.StringIO()
    if header:
        out.write(header.rstrip("\n") + "\n")
    out.write(f"top {min(top, len(rows))} of {len(rows)} functions by cumulative time\n")
    out.write(f"{'ncalls':>12} {'tottime':>10} {'cumtime':>10}  location\n")
    for ct, tt, nc, cc, location in rows[:top]:
        ncalls = str(nc) if nc == cc else f"{nc}/{cc}"
        out.write(f"{ncalls:>12} {tt:>10.4f} {ct:>10.4f}  {location}\n")
    return out.getvalue()


def profile_bench(
    leg: str,
    bench_dir: Path,
    *,
    scale: str = "quick",
    top: int = DEFAULT_TOP,
    out_dir: Path | None = None,
    runner: Callable[[], None] | None = None,
) -> Path:
    """Run one bench leg under ``cProfile``; write ``PROFILE_<leg>.txt``.

    ``leg`` names the module the same way the bench files do:
    ``"headline"`` profiles ``benchmarks/bench_headline.py``. The table is
    written next to the leg's ``BENCH_*.json`` (``bench_dir/results`` by
    default; ``out_dir`` overrides) and the path is returned.

    ``runner`` substitutes the profiled workload — tests inject a cheap
    callable; the default runs the leg through pytest exactly like
    ``repro bench --filter`` would.
    """
    leg = leg.removeprefix("bench_").removesuffix(".py")
    if runner is None:
        leg_file = bench_dir / f"bench_{leg}.py"
        if not leg_file.is_file():
            available = sorted(
                p.stem.removeprefix("bench_") for p in bench_dir.glob("bench_*.py")
            )
            raise FileNotFoundError(
                f"no benchmark leg {leg!r} under {bench_dir} "
                f"(available: {', '.join(available)})"
            )

        def runner() -> None:
            import os

            import pytest

            os.environ["REPRO_BENCH_SCALE"] = scale
            # ``--benchmark-disable`` turns the benchmark fixture into a
            # passthrough. This matters twice over: pytest-benchmark's
            # PauseInstrumentation would otherwise hide the measured region
            # from the profiler entirely, and its pause/restore of an
            # active ``cProfile.Profile`` via ``sys.setprofile`` crashes
            # (the C profiler object is not a callable profilefunc).
            code = pytest.main(
                [
                    str(leg_file),
                    "-q",
                    "-p",
                    "no:cacheprovider",
                    "--benchmark-disable",
                ]
            )
            if code != 0:
                raise RuntimeError(f"bench leg {leg!r} failed under profile ({code})")

    profile = cProfile.Profile()
    profile.enable()
    try:
        runner()
    finally:
        profile.disable()
    stats = pstats.Stats(profile)

    repo_root = bench_dir.parent
    table = render_profile(
        stats,
        repo_root=repo_root,
        top=top,
        header=f"profile: bench leg {leg!r} at scale {scale!r}",
    )
    target_dir = out_dir if out_dir is not None else bench_dir / "results"
    target_dir.mkdir(parents=True, exist_ok=True)
    out_path = target_dir / f"PROFILE_{leg}.txt"
    out_path.write_text(table, encoding="utf-8")
    return out_path

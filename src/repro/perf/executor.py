"""Shared parallel-execution layer for the per-SBS / per-sweep-point fan-outs.

The joint problem is exactly separable per SBS (Eqs. 5, 6, 8 all sum per
SBS), the figure sweeps are separable per ``(value, seed, policy)`` point,
and the distributed solver is separable per sub-problem. All three fan-out
sites funnel through the :class:`Executor` abstraction defined here so that
the execution strategy is a deployment choice, not an algorithmic one:

- ``serial`` — plain in-process loop (the default; zero overhead);
- ``thread`` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (useful when the work releases the GIL or is I/O-bound);
- ``process`` — a shared :class:`~concurrent.futures.ProcessPoolExecutor`
  (the right choice for the CPU-bound pure-Python solver loops).

Selection is by explicit argument, by :class:`repro.config.RuntimeConfig`,
or by the deprecated environment fallbacks (each warns once per process):

- ``REPRO_WORKERS=<n>`` — worker count; ``n > 1`` with no explicit kind
  selects the ``process`` backend.
- ``REPRO_EXECUTOR=<kind>[:<n>]`` — e.g. ``thread``, ``process:4``.

Precedence: explicit argument > ``RuntimeConfig`` field > environment >
default (serial).

Determinism contract: :meth:`Executor.map` always returns results in the
order of its inputs, every task function used with it is pure, and callers
reduce in fixed SBS/point order — so results are bit-identical across the
three backends (asserted by ``tests/test_parallel_determinism.py``).

Nested fan-outs are collapsed automatically: code running inside a worker
(thread or process) resolves to the ``serial`` executor, so a parallel
sweep does not spawn a process pool per window solve.
"""

from __future__ import annotations

import atexit
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.config import EXECUTOR_ENV, WORKERS_ENV, RuntimeConfig, deprecated_env
from repro.exceptions import ConfigurationError

_NESTED_ENV = "REPRO_NESTED_WORKER"

_KINDS = ("serial", "thread", "process")

_tls = threading.local()


def _mark_process_worker() -> None:
    """Process-pool initializer: flag the child so it never nests pools."""
    os.environ[_NESTED_ENV] = "1"


def in_worker() -> bool:
    """True when running inside an executor worker (thread or process)."""
    return bool(getattr(_tls, "in_worker", False)) or (
        os.environ.get(_NESTED_ENV) == "1"
    )


class Executor(ABC):
    """Ordered-map execution strategy; see module docstring."""

    kind: str
    workers: int

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every item; results in input order.

        ``fn`` must be pure. With the ``process`` backend it must also be a
        module-level (picklable) callable. Exceptions propagate.
        """

    def close(self) -> None:  # noqa: B027 — optional hook
        """Release pooled resources (no-op for poolless executors)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """In-process loop; the deterministic reference implementation."""

    kind = "serial"
    workers = 1

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        return [fn(item) for item in items]


def _run_marked(fn_item: tuple[Callable[[Any], Any], Any]) -> Any:
    """Thread-pool trampoline: run one task with the nested-worker flag set."""
    fn, item = fn_item
    _tls.in_worker = True
    try:
        return fn(item)
    finally:
        _tls.in_worker = False


class ThreadExecutor(Executor):
    """Shared thread pool; workers flag themselves to suppress nesting."""

    kind = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-exec"
                )
            return self._pool

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        pool = self._ensure_pool()
        return list(pool.map(_run_marked, [(fn, item) for item in items]))

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


class ProcessExecutor(Executor):
    """Shared process pool for the CPU-bound solver loops.

    Children inherit the parent's modules (fork on Linux) and are flagged
    via :data:`_NESTED_ENV` so that any executor they resolve is serial.
    """

    kind = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, initializer=_mark_process_worker
                )
            return self._pool

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        pool = self._ensure_pool()
        return list(pool.map(fn, items))

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# ------------------------------------------------------------------ selection

def parse_spec(spec: str) -> tuple[str, int | None]:
    """Parse ``"kind"`` or ``"kind:workers"`` into its components."""
    kind, _, count = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in _KINDS:
        raise ConfigurationError(
            f"unknown executor kind {kind!r}; pick from {_KINDS}"
        )
    if not count:
        return kind, None
    try:
        workers = int(count)
    except ValueError as exc:
        raise ConfigurationError(f"bad worker count in spec {spec!r}") from exc
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return kind, workers


_shared: dict[tuple[str, int], Executor] = {}
_shared_lock = threading.Lock()
_SERIAL = SerialExecutor()


def _shared_executor(kind: str, workers: int) -> Executor:
    """Process/thread pools are expensive; share them per (kind, workers)."""
    key = (kind, workers)
    with _shared_lock:
        ex = _shared.get(key)
        if ex is None:
            ex = (ThreadExecutor if kind == "thread" else ProcessExecutor)(workers)
            _shared[key] = ex
        return ex


@atexit.register
def _close_shared() -> None:  # pragma: no cover - interpreter shutdown
    with _shared_lock:
        for ex in _shared.values():
            ex.close()
        _shared.clear()


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS``, else the usable CPU count."""
    env = deprecated_env(WORKERS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from exc
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def get_executor(
    spec: "Executor | str | None" = None,
    *,
    workers: int | None = None,
    config: RuntimeConfig | None = None,
) -> Executor:
    """Resolve an executor from an explicit spec, config, or the environment.

    Precedence: an :class:`Executor` instance is passed through; a string
    spec (``"process:4"``) wins over ``config``, which wins over the
    deprecated ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` fallbacks; the
    default is serial. Inside a worker the result is always serial (no
    nested pools).
    """
    if isinstance(spec, Executor):
        return spec
    if in_worker():
        return _SERIAL

    if config is not None:
        if spec is None:
            spec = config.executor
        if workers is None:
            workers = config.workers

    kind: str | None = None
    spec_workers: int | None = None
    if spec is not None:
        kind, spec_workers = parse_spec(spec)
    else:
        env_spec = deprecated_env(EXECUTOR_ENV)
        if env_spec:
            kind, spec_workers = parse_spec(env_spec)

    if workers is None:
        workers = spec_workers
    if workers is None:
        env_workers = os.environ.get(WORKERS_ENV)
        workers = default_workers() if (env_workers or kind) else 1

    if kind is None:
        kind = "process" if workers > 1 else "serial"
    if kind == "serial" or workers <= 1:
        return _SERIAL
    return _shared_executor(kind, workers)


def resolve_executor(
    executor: "Executor | str | None", *, config: RuntimeConfig | None = None
) -> Executor:
    """Normalize the ``executor`` argument accepted across the library."""
    return get_executor(executor, config=config)


# ----------------------------------------------------------- recorded fan-out

def _recorded_call(fn_item: tuple[Callable[[Any], Any], Any]) -> tuple[Any, Any]:
    """Run one task inside a fresh recorder; module-level for pickling.

    ContextVars do not propagate into pool workers, so the parent's ambient
    recorder cannot simply be inherited — instead every task gets its own
    recorder whose events/metrics travel back with the result.
    """
    from repro.obs.recorder import Recorder, record_into

    recorder = Recorder()
    with record_into(recorder):
        return fn_item[0](fn_item[1]), recorder


def map_recorded(
    executor: Executor,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    recorder: "Any",
) -> list[Any]:
    """Ordered map that merges per-task telemetry into ``recorder``.

    Each task runs with a *fresh* ambient recorder (even on the serial
    backend, so serial and pooled runs produce identical traces); the
    per-task recorders are merged into ``recorder`` in task-input order —
    the same ordered-reduce discipline as
    :meth:`repro.perf.timers.StageTimers.merge` — making the combined
    event stream independent of worker scheduling. Returns the mapped
    results in input order.
    """
    pairs = executor.map(_recorded_call, [(fn, item) for item in items])
    results = []
    for result, task_recorder in pairs:
        recorder.merge(task_recorder)
        results.append(result)
    return results

"""Compare two ``BENCH_*.json`` records — the ``repro bench diff`` backend.

Benchmarks persist machine-readable records (see ``benchmarks/conftest.py``)
so perf regressions are diffable without parsing tables. This module loads
two such records, separates *configuration* (what was measured) from
*results* (timings, costs, counters), and reports:

- **wall-times** — every top-level ``*_seconds`` field present in both
  records, with the new/old ratio. When the records' configuration digests
  match, a ratio above ``1 + threshold`` is a gated regression
  (:attr:`BenchComparison.regressions`); with differing digests the runs
  measured different things, so timings are reported but never gated.
- **costs** — per-policy metric values from the embedded sweep payload
  (everything except ``wall_time``), listing the entries that drifted.
- **counters** — the ``solve_counters`` snapshot (memo hit/miss and
  warm-resume counts recorded by the headline bench), side by side.
- **slo** — the serve bench's live-SLO block (decision-latency
  quantiles, shed/swap-drop ratios, alert counts), side by side.
  Informational only: latency quantiles are wall-clock measurements, so
  they are never gated.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path


#: Top-level fields that are measurement outcomes or runtime *strategy*
#: (executor choice, incremental re-solve on/off), not problem
#: configuration. Strategy fields are excluded from the config digest on
#: purpose: A/B runs of the same problem under different strategies are
#: exactly the comparisons the wall-time gate exists for.
_RESULT_FIELDS = frozenset(
    {
        "speedup",
        "cpu_count",
        "workers",
        "executor",
        "incremental",
        "bw_closed_form",
        "batched_ties",
        "costs_identical",
        "executors_identical",
        "parallel_skipped",
        "solve_counters",
        "sweep",
        "schedule",
        "policies",
        "events",
        "trace_digest",
        "overhead_fraction",
        "executors_checked",
        # serve-runtime measurement payloads (bench_serve)
        "paced",
        "replay",
        "deterministic",
        "strategies",
        "slo",
    }
)


def load_bench(path: str | Path) -> dict:
    """Load one ``BENCH_*.json`` record."""
    with open(path, encoding="utf-8") as fh:
        record = json.load(fh)
    if not isinstance(record, dict) or "bench" not in record:
        raise ValueError(f"{path} is not a BENCH_*.json record (no 'bench' key)")
    return record


def config_digest(record: dict) -> str:
    """Digest of the record's configuration (never of its measurements).

    Two records with equal digests benchmarked the same thing — same bench,
    scale, and run parameters — so their wall-times are comparable and a
    slowdown is a genuine regression, not a config change.
    """
    config = {
        k: v
        for k, v in record.items()
        if k not in _RESULT_FIELDS and not k.endswith("_seconds")
    }
    sweep = record.get("sweep")
    if isinstance(sweep, dict):
        config["sweep"] = {
            k: sweep.get(k) for k in ("parameter", "values", "policies")
        }
    blob = json.dumps(config, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of diffing two benchmark records.

    ``wall_times`` maps each shared ``*_seconds`` field to
    ``(old, new, ratio)``; ``regressions`` lists the subset gated as
    regressions. ``cost_drift`` maps ``policy/metric`` to ``(old, new)``
    for drifted values only; ``counters`` merges both records'
    ``solve_counters`` (absent values are ``None``).
    """

    old_digest: str
    new_digest: str
    threshold: float
    wall_times: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    regressions: tuple[str, ...] = ()
    cost_drift: dict[str, tuple[float, float]] = field(default_factory=dict)
    counters: dict[str, tuple[float | None, float | None]] = field(
        default_factory=dict
    )
    slo: dict[str, tuple[float | None, float | None]] = field(default_factory=dict)

    @property
    def comparable(self) -> bool:
        """Whether the two records share a configuration digest."""
        return self.old_digest == self.new_digest

    @property
    def gate_failed(self) -> bool:
        """True when a comparable pair shows a gated wall-time regression."""
        return self.comparable and bool(self.regressions)


def _sweep_metrics(record: dict) -> dict[str, float]:
    """Flatten the sweep payload to ``value/policy/metric -> number``."""
    out: dict[str, float] = {}
    sweep = record.get("sweep")
    if not isinstance(sweep, dict):
        return out
    for point in sweep.get("points", ()):
        for policy, metrics in point.get("metrics", {}).items():
            for metric, value in metrics.items():
                if metric == "wall_time" or not isinstance(value, (int, float)):
                    continue
                out[f"{point.get('value')}/{policy}/{metric}"] = float(value)
    return out


def _slo_metrics(record: dict) -> dict[str, float]:
    """Flatten a record's serve-SLO block to ``field -> number``.

    Handles the shape :meth:`repro.serve.ServeReport.to_dict` emits:
    scalar quantiles/ratios/alert counts at the top, a per-SBS
    utilization list underneath.
    """
    out: dict[str, float] = {}
    slo = record.get("slo")
    if not isinstance(slo, dict):
        return out
    for key, value in slo.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
        elif key == "sbs_utilization" and isinstance(value, (list, tuple)):
            for n, item in enumerate(value):
                if isinstance(item, (int, float)) and not isinstance(item, bool):
                    out[f"sbs_utilization/{n}"] = float(item)
    return out


def diff_bench(old: dict, new: dict, *, threshold: float = 0.10) -> BenchComparison:
    """Compare two benchmark records (see module docstring)."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    wall_times: dict[str, tuple[float, float, float]] = {}
    regressions: list[str] = []
    for key in old:
        if not key.endswith("_seconds") or key not in new:
            continue
        o, n = float(old[key]), float(new[key])
        ratio = n / o if o > 0 else float("inf")
        wall_times[key] = (o, n, ratio)
        if ratio > 1.0 + threshold:
            regressions.append(key)

    old_metrics = _sweep_metrics(old)
    new_metrics = _sweep_metrics(new)
    cost_drift = {
        key: (old_metrics[key], new_metrics[key])
        for key in old_metrics
        if key in new_metrics and old_metrics[key] != new_metrics[key]
    }

    counters: dict[str, tuple[float | None, float | None]] = {}
    old_counters = old.get("solve_counters") or {}
    new_counters = new.get("solve_counters") or {}
    for key in {**old_counters, **new_counters}:
        counters[key] = (old_counters.get(key), new_counters.get(key))

    slo: dict[str, tuple[float | None, float | None]] = {}
    old_slo = _slo_metrics(old)
    new_slo = _slo_metrics(new)
    for key in {**old_slo, **new_slo}:
        slo[key] = (old_slo.get(key), new_slo.get(key))

    return BenchComparison(
        old_digest=config_digest(old),
        new_digest=config_digest(new),
        threshold=threshold,
        wall_times=wall_times,
        regressions=tuple(sorted(regressions)),
        cost_drift=cost_drift,
        counters=counters,
        slo=slo,
    )


def render_bench_diff(cmp: BenchComparison) -> str:
    """Human-readable report of a :class:`BenchComparison`."""
    lines: list[str] = []
    if cmp.comparable:
        lines.append(f"config: identical (digest {cmp.old_digest[:12]})")
    else:
        lines.append(
            f"config: DIFFERS (old {cmp.old_digest[:12]}, new "
            f"{cmp.new_digest[:12]}) — wall-time gate disabled"
        )
    if cmp.wall_times:
        lines.append("wall-times:")
        for key, (o, n, ratio) in sorted(cmp.wall_times.items()):
            flag = "  << REGRESSION" if key in cmp.regressions else ""
            lines.append(f"  {key:<20} {o:>9.2f}s -> {n:>9.2f}s  x{ratio:.3f}{flag}")
    if cmp.cost_drift:
        lines.append(f"cost drift ({len(cmp.cost_drift)} entries):")
        for key, (o, n) in sorted(cmp.cost_drift.items()):
            rel = (n - o) / abs(o) if o else float("inf")
            lines.append(f"  {key:<40} {o:.4f} -> {n:.4f} ({rel:+.2%})")
    else:
        lines.append("cost drift: none")
    if cmp.counters:
        lines.append("solve counters:")
        for key, (o, n) in sorted(cmp.counters.items()):
            fmt = lambda v: "-" if v is None else f"{v:g}"  # noqa: E731
            lines.append(f"  {key:<24} {fmt(o):>10} -> {fmt(n):>10}")
    if cmp.slo:
        lines.append("serve SLO (informational, never gated):")
        for key, (o, n) in sorted(cmp.slo.items()):
            fmt = lambda v: "-" if v is None else f"{v:g}"  # noqa: E731
            lines.append(f"  {key:<24} {fmt(o):>10} -> {fmt(n):>10}")
    if cmp.gate_failed:
        lines.append(
            f"FAIL: wall-time regression beyond {cmp.threshold:.0%} on "
            f"{', '.join(cmp.regressions)}"
        )
    elif cmp.comparable:
        lines.append(f"OK: no wall-time regression beyond {cmp.threshold:.0%}")
    return "\n".join(lines)

"""Pluggable request-routing strategies for the serve runtime.

Per request the serve loop builds the list of *eligible* servers — the
class's SBS when it is up, has the content cached, and is below its
concurrency cap, and the macro BS always (uncapacitated fallback) — and
asks a :class:`RoutingStrategy` to pick one. Three classic load-balancer
heuristics are provided (round-robin, least-connections, health-score, in
the shape of the adaptable-load-balancer strategy interface) next to
:class:`OptimalYStrategy`, which paces requests to the paper's fractional
load-balancing solution ``y`` so the heuristics can be benchmarked
*against* the optimum on identical request streams.

Strategies must be deterministic functions of the request sequence: they
may keep internal counters (cursors, accumulators) but must not consult
the wall clock or any RNG, or two same-seed serve runs stop producing
byte-identical decision logs.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, Sequence

from repro.exceptions import ConfigurationError
from repro.obs.recorder import set_gauge


@dataclass
class ServerView:
    """Mutable per-server routing state the loop maintains.

    Attributes
    ----------
    sid:
        Server id: ``"sbs:<n>"`` or ``"bs"``.
    connections:
        Currently open (virtual-time) connections.
    failures:
        Cumulative routing failures charged to this server — cache-hit
        requests spilled to the BS because the server was saturated.
    capacity:
        Concurrency cap (``inf`` for the BS).
    """

    sid: str
    connections: int = 0
    failures: int = 0
    capacity: float = math.inf

    @property
    def is_bs(self) -> bool:
        return self.sid == "bs"

    @property
    def utilization(self) -> float:
        """Connection occupancy vs the concurrency cap (0 when uncapped
        or the cap is 0 — a down SBS carries no utilizable bandwidth)."""
        if not math.isfinite(self.capacity) or self.capacity <= 0:
            return 0.0
        return self.connections / self.capacity


def observe_server_gauges(
    sbs_views: Sequence[ServerView], bs_view: ServerView
) -> None:
    """Publish per-server connection/utilization gauges.

    Called by the serve loop at slot boundaries (never per request): one
    labeled gauge pair per SBS — open connections and occupancy vs the
    slot's concurrency cap (the paper's per-SBS bandwidth ``B_n``) — plus
    the BS connection count. All through the ambient-recorder fast path,
    so this is a no-op in untelemetered runs.
    """
    for n, view in enumerate(sbs_views):
        set_gauge("serve_sbs_connections", view.connections, {"sbs": n})
        set_gauge("serve_sbs_utilization", view.utilization, {"sbs": n})
    set_gauge("serve_bs_connections", bs_view.connections)


@dataclass(frozen=True)
class RouteContext:
    """Read-only facts about the request being routed."""

    slot: int
    mu_class: int
    item: int
    cached: bool
    sbs_up: bool
    y_fraction: float


class RoutingStrategy(ABC):
    """Picks a server for each request from the eligible list.

    ``servers`` is never empty and always ends with the BS; when the
    class's SBS is eligible it precedes the BS. Implementations return one
    element of ``servers``.
    """

    #: Registry name (``strategy_by_name``) and report label.
    name: ClassVar[str] = "abstract"

    def reset(self) -> None:
        """Drop internal counters (called once per serve run)."""

    @abstractmethod
    def select_server(
        self, servers: Sequence[ServerView], ctx: RouteContext
    ) -> ServerView:
        """Choose the server that answers this request."""


class RoundRobinStrategy(RoutingStrategy):
    """Cycle through the eligible servers in arrival order."""

    name: ClassVar[str] = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select_server(
        self, servers: Sequence[ServerView], ctx: RouteContext
    ) -> ServerView:
        choice = servers[self._cursor % len(servers)]
        self._cursor += 1
        return choice


class LeastConnectionsStrategy(RoutingStrategy):
    """Pick the eligible server with the fewest open connections."""

    name: ClassVar[str] = "least-connections"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select_server(
        self, servers: Sequence[ServerView], ctx: RouteContext
    ) -> ServerView:
        best = min(s.connections for s in servers)
        candidates = [s for s in servers if s.connections == best]
        choice = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return choice


class HealthScoreStrategy(RoutingStrategy):
    """Score servers by load *and* recent failures; pick the healthiest.

    ``score = 1 / (1 + connections) * 1 / (1 + failures)`` — the
    adaptable-load-balancer formula: a saturated or failure-prone server
    decays toward 0 and sheds traffic to healthier peers. Ties break
    round-robin.
    """

    name: ClassVar[str] = "health-score"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    @staticmethod
    def score(server: ServerView) -> float:
        return 1.0 / (1.0 + server.connections) / (1.0 + server.failures)

    def select_server(
        self, servers: Sequence[ServerView], ctx: RouteContext
    ) -> ServerView:
        best = max(self.score(s) for s in servers)
        candidates = [s for s in servers if self.score(s) == best]
        choice = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return choice


@dataclass
class OptimalYStrategy(RoutingStrategy):
    """Pace requests to the committed plan's fractional split ``y``.

    The paper's solution says class ``m`` should send fraction
    ``y[m, k]`` of its requests for item ``k`` to the SBS. Per ``(m, k)``
    an error accumulator adds ``y`` each time the SBS is eligible and
    fires an SBS route whenever it crosses 1 — deterministic
    largest-remainder pacing whose long-run SBS share converges to ``y``
    exactly.
    """

    name: ClassVar[str] = "optimal-y"

    _acc: dict[tuple[int, int], float] = field(default_factory=dict)

    def reset(self) -> None:
        self._acc.clear()

    def select_server(
        self, servers: Sequence[ServerView], ctx: RouteContext
    ) -> ServerView:
        if servers[0].is_bs:
            return servers[0]
        key = (ctx.mu_class, ctx.item)
        acc = self._acc.get(key, 0.0) + min(max(ctx.y_fraction, 0.0), 1.0)
        if acc >= 1.0 - 1e-9:
            self._acc[key] = acc - 1.0
            return servers[0]
        self._acc[key] = acc
        return servers[-1]


#: Registered strategy constructors, keyed by :attr:`RoutingStrategy.name`.
STRATEGIES = {
    cls.name: cls
    for cls in (
        RoundRobinStrategy,
        LeastConnectionsStrategy,
        HealthScoreStrategy,
        OptimalYStrategy,
    )
}


def strategy_by_name(name: str) -> RoutingStrategy:
    """Instantiate a registered strategy (fresh state) by name."""
    cls = STRATEGIES.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown routing strategy {name!r}; pick from {sorted(STRATEGIES)}"
        )
    return cls()
